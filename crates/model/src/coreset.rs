//! A fixed-width bitset of [`CoreId`]s.
//!
//! Directory-side sharer lists and ack-collection sets were heap
//! `Vec<CoreId>`s: every invalidation round allocated, and membership
//! tests were linear scans. [`CoreSet`] packs the same information into
//! `MAX_CORES / 64` inline words — no allocation, O(1) insert/remove/
//! contains, popcount-backed length, and ascending-order iteration that
//! compiles to `trailing_zeros` loops. The paper's largest evaluated
//! machine is 1024 cores (Table 4), which bounds the width;
//! [`SystemConfig::validate`](crate::SystemConfig::validate) rejects
//! larger machines.
//!
//! # Examples
//!
//! ```
//! use lacc_model::{CoreId, CoreSet};
//!
//! let mut s: CoreSet = [3, 1, 60].into_iter().map(CoreId::new).collect();
//! assert_eq!(s.len(), 3);
//! assert!(s.contains(CoreId::new(60)));
//! s.remove(CoreId::new(1));
//! let members: Vec<usize> = s.iter().map(|c| c.index()).collect();
//! assert_eq!(members, vec![3, 60]); // ascending order
//! ```

use std::fmt;

use crate::CoreId;

/// Largest machine size any fixed-width per-core structure must handle
/// (the paper's biggest evaluated configuration).
pub const MAX_CORES: usize = 1024;

const WORDS: usize = MAX_CORES / 64;

/// A set of cores over `0..MAX_CORES`, stored as an inline bitmap with a
/// cached population count.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct CoreSet {
    words: [u64; WORDS],
    count: u16,
}

impl Default for CoreSet {
    fn default() -> Self {
        Self::new()
    }
}

impl CoreSet {
    /// Creates an empty set.
    #[must_use]
    pub const fn new() -> Self {
        CoreSet { words: [0; WORDS], count: 0 }
    }

    /// Number of member cores.
    #[must_use]
    pub fn len(&self) -> usize {
        usize::from(self.count)
    }

    /// `true` when no core is a member.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether `core` is a member.
    ///
    /// # Panics
    ///
    /// Panics if `core.index() >= MAX_CORES`.
    #[must_use]
    pub fn contains(&self, core: CoreId) -> bool {
        let i = core.index();
        assert!(i < MAX_CORES, "core index {i} exceeds MAX_CORES");
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Adds `core`; returns `true` if it was not already a member.
    ///
    /// # Panics
    ///
    /// Panics if `core.index() >= MAX_CORES`.
    pub fn insert(&mut self, core: CoreId) -> bool {
        let i = core.index();
        assert!(i < MAX_CORES, "core index {i} exceeds MAX_CORES");
        let mask = 1u64 << (i % 64);
        let fresh = self.words[i / 64] & mask == 0;
        if fresh {
            self.words[i / 64] |= mask;
            self.count += 1;
        }
        fresh
    }

    /// Removes `core`; returns `true` if it was a member.
    ///
    /// # Panics
    ///
    /// Panics if `core.index() >= MAX_CORES`.
    pub fn remove(&mut self, core: CoreId) -> bool {
        let i = core.index();
        assert!(i < MAX_CORES, "core index {i} exceeds MAX_CORES");
        let mask = 1u64 << (i % 64);
        let present = self.words[i / 64] & mask != 0;
        if present {
            self.words[i / 64] &= !mask;
            self.count -= 1;
        }
        present
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
        self.count = 0;
    }

    /// Iterates the members in ascending core order.
    #[must_use]
    pub fn iter(&self) -> CoreSetIter {
        CoreSetIter { words: self.words, word: 0, remaining: self.count }
    }
}

impl fmt::Debug for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|c| c.index())).finish()
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut s = CoreSet::new();
        s.extend(iter);
        s
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl IntoIterator for &CoreSet {
    type Item = CoreId;
    type IntoIter = CoreSetIter;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Ascending-order iterator over a [`CoreSet`] (by value — the set is a
/// small inline array).
#[derive(Clone, Debug)]
pub struct CoreSetIter {
    words: [u64; WORDS],
    word: usize,
    remaining: u16,
}

impl Iterator for CoreSetIter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                self.remaining -= 1;
                return Some(CoreId::new(self.word * 64 + bit));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (usize::from(self.remaining), Some(usize::from(self.remaining)))
    }
}

impl ExactSizeIterator for CoreSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = CoreSet::new();
        assert!(s.is_empty());
        assert!(s.insert(c(0)));
        assert!(s.insert(c(63)));
        assert!(s.insert(c(64)));
        assert!(s.insert(c(MAX_CORES - 1)));
        assert!(!s.insert(c(63)), "re-insert is a no-op");
        assert_eq!(s.len(), 4);
        assert!(s.contains(c(64)));
        assert!(!s.contains(c(65)));
        assert!(s.remove(c(64)));
        assert!(!s.remove(c(64)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_ascending_and_exact() {
        let s: CoreSet = [900, 2, 65, 2, 130].into_iter().map(c).collect();
        let v: Vec<usize> = s.iter().map(|x| x.index()).collect();
        assert_eq!(v, vec![2, 65, 130, 900]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn clear_and_debug() {
        let mut s: CoreSet = [1, 2].into_iter().map(c).collect();
        assert_eq!(format!("{s:?}"), "{1, 2}");
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().next(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn out_of_width_panics() {
        let mut s = CoreSet::new();
        s.insert(c(MAX_CORES));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// CoreSet behaves exactly like a reference BTreeSet under any
        /// interleaving of inserts and removes, including iteration order.
        #[test]
        fn matches_btreeset_model(
            ops in proptest::collection::vec((0usize..MAX_CORES, proptest::bool::ANY), 1..200)
        ) {
            let mut s = CoreSet::new();
            let mut model = std::collections::BTreeSet::new();
            for (i, add) in ops {
                if add {
                    prop_assert_eq!(s.insert(CoreId::new(i)), model.insert(i));
                } else {
                    prop_assert_eq!(s.remove(CoreId::new(i)), model.remove(&i));
                }
                prop_assert_eq!(s.len(), model.len());
            }
            let got: Vec<usize> = s.iter().map(|x| x.index()).collect();
            let want: Vec<usize> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }
}
