//! Architectural configuration (Table 1 of the paper).
//!
//! [`SystemConfig`] aggregates every parameter of the evaluated machine:
//! core count, cache geometry, directory protocol, locality-classifier
//! settings, mesh timing and DRAM characteristics. The
//! [`SystemConfig::isca13_64core`] constructor reproduces Table 1 exactly;
//! experiments derive variants through the `with_*` chainers.

use crate::error::ConfigError;
use crate::time::Cycle;

/// Geometry and access latency of one cache (Table 1 rows "L1-I Cache",
/// "L1-D Cache", "L2 Cache").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
    /// Data-array access latency in cycles.
    pub latency: Cycle,
}

impl CacheConfig {
    /// Creates a cache configuration.
    #[must_use]
    pub fn new(size_bytes: usize, associativity: usize, latency: Cycle) -> Self {
        CacheConfig { size_bytes, associativity, latency }
    }

    /// Number of sets given a line size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly.
    #[must_use]
    pub fn num_sets(&self, line_bytes: usize) -> usize {
        let lines = self.size_bytes / line_bytes;
        assert_eq!(lines * line_bytes, self.size_bytes, "size not line-divisible");
        let sets = lines / self.associativity;
        assert_eq!(sets * self.associativity, lines, "lines not assoc-divisible");
        sets
    }

    /// Number of cache lines held.
    #[must_use]
    pub fn num_lines(&self, line_bytes: usize) -> usize {
        self.size_bytes / line_bytes
    }
}

/// Sharer-tracking organization of the coherence directory.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DirectoryKind {
    /// One presence bit per core: exact sharer sets, no broadcasts.
    FullMap,
    /// ACKwise_p limited directory (Kurian et al., PACT 2010): up to
    /// `pointers` sharers are tracked exactly; beyond that only the sharer
    /// *count* is kept and exclusive requests broadcast invalidations, with
    /// acknowledgements expected only from actual sharers.
    AckWise {
        /// Number of hardware sharer pointers (`p`); Table 1 uses 4.
        pointers: usize,
    },
}

impl DirectoryKind {
    /// The paper's default: ACKwise with 4 pointers.
    #[must_use]
    pub fn ackwise4() -> Self {
        DirectoryKind::AckWise { pointers: 4 }
    }
}

/// How much locality state the directory keeps per cache line (§3.4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TrackingKind {
    /// The *Complete* classifier: locality information for every core.
    Complete,
    /// The *Limited_k* classifier: locality information for at most `k`
    /// cores; untracked cores are classified by a majority vote of the
    /// tracked modes (§3.4).
    Limited {
        /// Number of tracked cores (`k`); Table 1 uses 3.
        k: usize,
    },
}

/// Mechanism used to decide remote→private promotions (§3.2 vs §3.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MechanismKind {
    /// The idealized Timestamp check of §3.2: promote after `PCT` remote
    /// accesses, counting an access only if the line's last-access time at
    /// the L2 exceeds the minimum last-access time in the requester's L1
    /// set. Requires a 64-bit timestamp per L1 line and per directory entry.
    Timestamp,
    /// The cost-efficient approximation of §3.3: a per-core Remote Access
    /// Threshold (RAT) stepped between `PCT` and `rat_max` across
    /// `levels` levels, raised on eviction-demotions and reset when the core
    /// classifies as private.
    RatLevels {
        /// `nRATlevels`; Table 1 uses 2.
        levels: usize,
        /// `RATmax`; Table 1 uses 16.
        rat_max: u32,
    },
}

impl MechanismKind {
    /// The paper's default RAT mechanism (2 levels, RATmax = 16).
    #[must_use]
    pub fn rat_default() -> Self {
        MechanismKind::RatLevels { levels: 2, rat_max: 16 }
    }

    /// The threshold ladder for a RAT mechanism given `pct`.
    ///
    /// §3.3: "RAT is additively increased in equal steps from PCT to RATmax,
    /// the number of steps being equal to (nRATlevels − 1)". With a single
    /// level the RAT stays pinned at `pct`.
    #[must_use]
    pub fn rat_ladder(&self, pct: u32) -> Vec<u32> {
        match *self {
            MechanismKind::Timestamp => vec![pct],
            MechanismKind::RatLevels { levels, rat_max } => {
                let levels = levels.max(1);
                if levels == 1 {
                    return vec![pct];
                }
                let span = rat_max.saturating_sub(pct) as f64;
                (0..levels)
                    .map(|i| {
                        let frac = i as f64 / (levels - 1) as f64;
                        (pct as f64 + span * frac).round() as u32
                    })
                    .collect()
            }
        }
    }
}

/// Full configuration of the locality-aware adaptive protocol (§3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClassifierConfig {
    /// Private Caching Threshold: utilization at or above which a core is a
    /// private sharer (Table 1 default: 4). A `pct` of 1 disables remote
    /// accesses entirely and reduces the system to the baseline directory
    /// protocol that the paper normalizes against.
    pub pct: u32,
    /// How many cores the directory tracks locality for.
    pub tracking: TrackingKind,
    /// Timestamp-ideal or RAT-approximate promotion mechanism.
    pub mechanism: MechanismKind,
    /// §3.7's simpler Adapt1-way protocol: once demoted to remote, a core
    /// can never be promoted back.
    pub one_way: bool,
    /// The learning shortcut §5.3 suggests for the Complete classifier:
    /// a core's *first* classification is inferred by majority vote over
    /// the cores that have already demonstrated a mode, instead of
    /// defaulting to Private. (Limited_k has this behaviour built into its
    /// replacement policy; this flag retrofits it to Complete tracking.
    /// No effect on Limited_k.)
    pub shortcut: bool,
}

impl ClassifierConfig {
    /// Table 1 defaults: PCT 4, Limited_3 tracking, RAT(2 levels, max 16),
    /// two-way transitions.
    #[must_use]
    pub fn isca13_default() -> Self {
        ClassifierConfig {
            pct: 4,
            tracking: TrackingKind::Limited { k: 3 },
            mechanism: MechanismKind::rat_default(),
            one_way: false,
            shortcut: false,
        }
    }

    /// The baseline (locality-unaware) configuration: PCT 1 makes every
    /// sharer private on its first access.
    #[must_use]
    pub fn baseline() -> Self {
        ClassifierConfig { pct: 1, ..Self::isca13_default() }
    }
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        Self::isca13_default()
    }
}

/// Complete architectural configuration (Table 1).
///
/// Fields are public: this is a passive parameter record in the C-struct
/// spirit, validated as a whole by [`SystemConfig::validate`].
#[derive(Clone, PartialEq, Debug)]
pub struct SystemConfig {
    /// Number of cores / tiles (Table 1: 64 @ 1 GHz).
    pub num_cores: usize,
    /// Private L1 instruction cache (16 KB, 4-way, 1 cycle).
    pub l1i: CacheConfig,
    /// Private L1 data cache (32 KB, 4-way, 1 cycle).
    pub l1d: CacheConfig,
    /// Per-tile slice of the shared L2 (256 KB, 8-way, 7 cycles, inclusive).
    pub l2: CacheConfig,
    /// Cache line size in bytes (64).
    pub line_bytes: usize,
    /// Directory sharer tracking (ACKwise_4 by default).
    pub directory: DirectoryKind,
    /// Locality-aware protocol parameters.
    pub classifier: ClassifierConfig,
    /// Number of on-chip memory controllers (8).
    pub num_mem_ctrls: usize,
    /// DRAM access latency in cycles (100 ns @ 1 GHz).
    pub dram_latency: Cycle,
    /// DRAM bandwidth per controller in bytes per cycle (5 GBps @ 1 GHz).
    pub dram_bytes_per_cycle: f64,
    /// Router traversal latency per hop in cycles (Table 1: 1).
    pub hop_router_cycles: Cycle,
    /// Link traversal latency per hop in cycles (Table 1: 1).
    pub hop_link_cycles: Cycle,
    /// Flit width in bits (64).
    pub flit_bits: usize,
    /// R-NUCA instruction-replication cluster size (4 cores).
    pub rnuca_cluster: usize,
}

impl SystemConfig {
    /// The exact Table 1 machine: 64 in-order cores at 1 GHz, 16 KB/32 KB
    /// L1-I/L1-D, 256 KB L2 slices, ACKwise_4, PCT 4, Limited_3 classifier
    /// with RATmax 16 and 2 RAT levels, 8 memory controllers at 5 GBps and
    /// 100 ns, an electrical 2-D mesh with 2-cycle hops and 64-bit flits.
    #[must_use]
    pub fn isca13_64core() -> Self {
        SystemConfig {
            num_cores: 64,
            l1i: CacheConfig::new(16 * 1024, 4, 1),
            l1d: CacheConfig::new(32 * 1024, 4, 1),
            l2: CacheConfig::new(256 * 1024, 8, 7),
            line_bytes: 64,
            directory: DirectoryKind::ackwise4(),
            classifier: ClassifierConfig::isca13_default(),
            num_mem_ctrls: 8,
            dram_latency: 100,
            dram_bytes_per_cycle: 5.0,
            hop_router_cycles: 1,
            hop_link_cycles: 1,
            flit_bits: 64,
            rnuca_cluster: 4,
        }
    }

    /// A scaled-down machine for unit tests and doc examples: `n` cores with
    /// small caches so that evictions and contention appear quickly.
    #[must_use]
    pub fn small_for_tests(n: usize) -> Self {
        let mut cfg = SystemConfig {
            num_cores: n,
            l1i: CacheConfig::new(1024, 2, 1),
            l1d: CacheConfig::new(1024, 2, 1),
            l2: CacheConfig::new(8 * 1024, 4, 7),
            num_mem_ctrls: n.min(2),
            ..Self::isca13_64core()
        };
        cfg.classifier.tracking = TrackingKind::Limited { k: 3.min(n) };
        cfg.rnuca_cluster = if n % 4 == 0 { 4 } else { 1 };
        cfg
    }

    /// Replaces the Private Caching Threshold, raising `RATmax` to keep
    /// the §3.3 ladder well-formed when `pct` exceeds it (the Figure 11
    /// sweep reaches PCT 20 against the default RATmax of 16).
    #[must_use]
    pub fn with_pct(mut self, pct: u32) -> Self {
        self.classifier.pct = pct;
        if let MechanismKind::RatLevels { levels, rat_max } = self.classifier.mechanism {
            if rat_max < pct {
                self.classifier.mechanism = MechanismKind::RatLevels { levels, rat_max: pct };
            }
        }
        self
    }

    /// Replaces the classifier configuration.
    #[must_use]
    pub fn with_classifier(mut self, classifier: ClassifierConfig) -> Self {
        self.classifier = classifier;
        self
    }

    /// Replaces the directory organization.
    #[must_use]
    pub fn with_directory(mut self, directory: DirectoryKind) -> Self {
        self.directory = directory;
        self
    }

    /// Number of 64-bit words per cache line.
    #[must_use]
    pub fn words_per_line(&self) -> usize {
        self.line_bytes / 8
    }

    /// Flits needed for a bare protocol message: one header flit carrying
    /// source, destination, address and message type (§3.6 shows the private
    /// utilization counter also fits in this flit).
    #[must_use]
    pub fn header_flits(&self) -> usize {
        1
    }

    /// Flits for a message carrying one 64-bit word (header + word).
    #[must_use]
    pub fn word_msg_flits(&self) -> usize {
        1 + (64 / self.flit_bits).max(1)
    }

    /// Flits for a message carrying a whole cache line (header + 8 words).
    #[must_use]
    pub fn line_msg_flits(&self) -> usize {
        1 + (self.line_bytes * 8).div_ceil(self.flit_bits)
    }

    /// Mesh side length: the smallest `w` with `w * w >= num_cores`.
    #[must_use]
    pub fn mesh_width(&self) -> usize {
        let mut w = 1usize;
        while w * w < self.num_cores {
            w += 1;
        }
        w
    }

    /// Checks internal consistency of the whole parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first violated constraint
    /// (zero cores, non-power-of-two geometry, a PCT of zero, RAT settings
    /// inconsistent with the PCT, an oversubscribed Limited_k classifier, or
    /// more memory controllers than tiles).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::new("num_cores must be at least 1"));
        }
        if self.num_cores > crate::coreset::MAX_CORES {
            return Err(ConfigError::new(format!(
                "num_cores must be at most {} (the paper's largest machine; fixed-width \
                 CoreSet bound)",
                crate::coreset::MAX_CORES
            )));
        }
        if self.num_mem_ctrls == 0 || self.num_mem_ctrls > self.num_cores {
            return Err(ConfigError::new("num_mem_ctrls must be in 1..=num_cores"));
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 8 {
            return Err(ConfigError::new("line_bytes must be a power of two >= 8"));
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.size_bytes == 0 || c.associativity == 0 {
                return Err(ConfigError::new(format!("{name}: zero size or associativity")));
            }
            let lines = c.size_bytes / self.line_bytes;
            if lines * self.line_bytes != c.size_bytes || lines % c.associativity != 0 {
                return Err(ConfigError::new(format!("{name}: geometry not divisible")));
            }
            if !(lines / c.associativity).is_power_of_two() {
                return Err(ConfigError::new(format!("{name}: set count must be a power of two")));
            }
        }
        if self.classifier.pct == 0 {
            return Err(ConfigError::new("pct must be at least 1"));
        }
        if let MechanismKind::RatLevels { levels, rat_max } = self.classifier.mechanism {
            if levels == 0 {
                return Err(ConfigError::new("nRATlevels must be at least 1"));
            }
            if rat_max < self.classifier.pct {
                return Err(ConfigError::new("RATmax must be >= PCT"));
            }
        }
        if let TrackingKind::Limited { k } = self.classifier.tracking {
            if k == 0 || k > self.num_cores {
                return Err(ConfigError::new("Limited_k needs 1 <= k <= num_cores"));
            }
        }
        if let DirectoryKind::AckWise { pointers } = self.directory {
            if pointers == 0 {
                return Err(ConfigError::new("ACKwise needs at least one pointer"));
            }
        }
        if self.dram_bytes_per_cycle <= 0.0 {
            return Err(ConfigError::new("dram_bytes_per_cycle must be positive"));
        }
        if self.rnuca_cluster == 0 || self.num_cores % self.rnuca_cluster != 0 {
            return Err(ConfigError::new("rnuca_cluster must divide num_cores"));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::isca13_64core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults_validate() {
        let cfg = SystemConfig::isca13_64core();
        cfg.validate().unwrap();
        assert_eq!(cfg.l1d.num_sets(cfg.line_bytes), 128);
        assert_eq!(cfg.l1i.num_sets(cfg.line_bytes), 64);
        assert_eq!(cfg.l2.num_sets(cfg.line_bytes), 512);
        assert_eq!(cfg.mesh_width(), 8);
        assert_eq!(cfg.word_msg_flits(), 2);
        assert_eq!(cfg.line_msg_flits(), 9);
    }

    #[test]
    fn small_config_validates() {
        for n in [1, 2, 4, 16] {
            SystemConfig::small_for_tests(n).validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = SystemConfig::isca13_64core();
        let mut c = base.clone();
        c.num_cores = 0;
        assert!(c.validate().is_err());

        let c = base.clone().with_pct(0);
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.classifier.mechanism = MechanismKind::RatLevels { levels: 2, rat_max: 2 };
        assert!(c.validate().is_err(), "RATmax below PCT must fail");

        let mut c = base.clone();
        c.classifier.tracking = TrackingKind::Limited { k: 0 };
        assert!(c.validate().is_err());

        let mut c = base.clone();
        c.num_mem_ctrls = 100;
        assert!(c.validate().is_err());

        let mut c = base;
        c.l1d = CacheConfig::new(1000, 3, 1);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rat_ladder_matches_section_3_3() {
        // Table 1 defaults: 2 levels from PCT=4 to RATmax=16.
        assert_eq!(MechanismKind::rat_default().rat_ladder(4), vec![4, 16]);
        // Four levels: equal additive steps.
        let m = MechanismKind::RatLevels { levels: 4, rat_max: 16 };
        assert_eq!(m.rat_ladder(4), vec![4, 8, 12, 16]);
        // A single level pins RAT at PCT.
        let m = MechanismKind::RatLevels { levels: 1, rat_max: 16 };
        assert_eq!(m.rat_ladder(4), vec![4]);
        // Timestamp mechanism has no ladder beyond PCT.
        assert_eq!(MechanismKind::Timestamp.rat_ladder(4), vec![4]);
    }

    #[test]
    fn mesh_width_rounds_up() {
        let mut c = SystemConfig::small_for_tests(5);
        assert_eq!(c.mesh_width(), 3);
        c.num_cores = 9;
        assert_eq!(c.mesh_width(), 3);
        c.num_cores = 10;
        assert_eq!(c.mesh_width(), 4);
    }

    #[test]
    fn pct1_is_the_baseline() {
        let b = ClassifierConfig::baseline();
        assert_eq!(b.pct, 1);
        assert!(!b.one_way);
    }
}
