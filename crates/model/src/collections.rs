//! Hot-path hashed collections.
//!
//! Every line-addressed table in the simulator (in-flight home
//! transactions, waiter queues, the DRAM backing store, the coherence
//! monitor's shadow memory) is keyed by a [`LineAddr`] — a small integer.
//! `std`'s default SipHash is a DoS-hardened cryptographic hash; paying it
//! per simulated memory access is pure overhead because the keys are not
//! attacker-controlled. This module provides an FxHash-style multiplicative
//! hasher (the `rustc-hash` construction: rotate, xor, multiply by a
//! golden-ratio-derived odd constant) with no external dependencies, plus
//! the [`LineMap`]/[`LineSet`] aliases used throughout the workspace.
//!
//! The hasher is deterministic across processes (no random seeding), which
//! the repository's replay-equivalence tests rely on; nothing in the
//! simulator may depend on map iteration order regardless.
//!
//! # Examples
//!
//! ```
//! use lacc_model::collections::LineMap;
//! use lacc_model::LineAddr;
//!
//! let mut m: LineMap<u32> = LineMap::default();
//! m.insert(LineAddr::new(0x41), 7);
//! assert_eq!(m.get(&LineAddr::new(0x41)), Some(&7));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::LineAddr;

/// Multiplier from the 64-bit golden ratio (`2^64 / φ`), forced odd — the
/// same constant family rustc's FxHash uses. Multiplication by an odd
/// constant is a bijection on `u64`, so no information is lost; the
/// rotate-xor step mixes consecutive writes.
const K: u64 = 0x9e37_79b9_7f4a_7c15;

/// A fast, deterministic, non-cryptographic hasher for small integer keys.
///
/// One rotate + xor + multiply per 8 bytes of input. Do **not** use it for
/// attacker-controlled keys; simulated physical addresses are not.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        // Returned raw: multiplication by the odd constant is a bijection,
        // so the low bits hashbrown uses for bucket selection stay distinct
        // for sequential keys, and the well-mixed high bits feed its
        // control-byte tags.
        self.hash
    }
}

/// `BuildHasher` producing [`FxHasher`]s (stateless, deterministic).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

/// The workspace's line-addressed table: `LineAddr -> V` with fx hashing.
pub type LineMap<V> = FxHashMap<LineAddr, V>;

/// A set of line addresses with fx hashing.
pub type LineSet = FxHashSet<LineAddr>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(v: u64) -> u64 {
        let mut h = FxHasher::default();
        h.write_u64(v);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(0x1234), hash_of(0x1234));
        assert_eq!(
            FxBuildHasher::default().hash_one(LineAddr::new(99)),
            FxBuildHasher::default().hash_one(LineAddr::new(99)),
        );
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        // Sequential line addresses (the common workload pattern) must
        // spread over the low bits HashMap actually uses.
        let mut low7 = std::collections::BTreeSet::new();
        for i in 0..128u64 {
            low7.insert(hash_of(i) & 0x7f);
        }
        assert!(low7.len() > 96, "only {} distinct low-7-bit values", low7.len());
    }

    #[test]
    fn byte_writes_match_padded_word_writes() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn line_map_round_trips() {
        let mut m: LineMap<u64> = LineMap::default();
        for i in 0..10_000u64 {
            m.insert(LineAddr::new(i * 64 + 1), i);
        }
        for i in 0..10_000u64 {
            assert_eq!(m.get(&LineAddr::new(i * 64 + 1)), Some(&i));
        }
        assert_eq!(m.len(), 10_000);
    }

    #[test]
    fn line_set_membership() {
        let mut s = LineSet::default();
        assert!(s.insert(LineAddr::new(5)));
        assert!(!s.insert(LineAddr::new(5)));
        assert!(s.contains(&LineAddr::new(5)));
        assert!(!s.contains(&LineAddr::new(6)));
    }
}
