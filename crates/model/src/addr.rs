//! Physical address arithmetic.
//!
//! The paper's machine uses 48-bit physical addresses, 64-byte cache lines
//! and 4-KB pages (Table 1 and the Reactive-NUCA placement it builds on).
//! A [`LineAddr`] is an address shifted right by the line bits; a
//! [`PageAddr`] is shifted right by the page bits. The newtypes prevent the
//! classic bug of mixing a byte address with a line number.

use std::fmt;

/// log2 of the cache-line size (64 bytes).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes (Table 1).
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;
/// log2 of the OS page size used by the R-NUCA classification (4 KB).
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_BYTES: u64 = 1 << PAGE_SHIFT;
/// Number of 64-bit words in a cache line.
pub const WORDS_PER_LINE: u64 = LINE_BYTES / 8;
/// Physical address width in bits (Table 1).
pub const PHYS_ADDR_BITS: u32 = 48;

/// A 48-bit physical byte address.
///
/// # Examples
///
/// ```
/// use lacc_model::Addr;
/// let a = Addr::new(0x1040);
/// assert_eq!(a.line().raw(), 0x41);
/// assert_eq!(a.word_in_line(), 0);
/// assert_eq!(Addr::new(0x1048).word_in_line(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address, masking it into the 48-bit physical space.
    #[must_use]
    pub fn new(byte_addr: u64) -> Self {
        Addr(byte_addr & ((1 << PHYS_ADDR_BITS) - 1))
    }

    /// Returns the raw byte address.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[must_use]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the page containing this address.
    #[must_use]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> PAGE_SHIFT)
    }

    /// Index of the 64-bit word within the cache line (`0..8`).
    #[must_use]
    pub fn word_in_line(self) -> usize {
        ((self.0 >> 3) & (WORDS_PER_LINE - 1)) as usize
    }

    /// Byte offset within the cache line (`0..64`). This is the "cache line
    /// offset" that §3.6 notes must be carried in every miss request.
    #[must_use]
    pub fn offset_in_line(self) -> usize {
        (self.0 & (LINE_BYTES - 1)) as usize
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#014x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(v: u64) -> Self {
        Addr::new(v)
    }
}

/// A cache-line address (byte address divided by the 64-byte line size).
///
/// # Examples
///
/// ```
/// use lacc_model::{Addr, LineAddr};
/// let l = LineAddr::new(0x41);
/// assert_eq!(l.base(), Addr::new(0x1040));
/// assert_eq!(l.word_addr(2), Addr::new(0x1050));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    #[must_use]
    pub fn new(line_number: u64) -> Self {
        LineAddr(line_number & ((1 << (PHYS_ADDR_BITS - LINE_SHIFT)) - 1))
    }

    /// Returns the raw line number.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    #[must_use]
    pub fn base(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// Byte address of the `word`-th 64-bit word in this line.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8`.
    #[must_use]
    pub fn word_addr(self, word: usize) -> Addr {
        assert!(word < WORDS_PER_LINE as usize, "word index {word} out of line");
        Addr((self.0 << LINE_SHIFT) + (word as u64) * 8)
    }

    /// Returns the page containing this line.
    #[must_use]
    pub fn page(self) -> PageAddr {
        PageAddr(self.0 >> (PAGE_SHIFT - LINE_SHIFT))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0)
    }
}

/// A page address (byte address divided by the 4-KB page size), the
/// granularity at which Reactive-NUCA classifies data as private or shared.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PageAddr(u64);

impl PageAddr {
    /// Creates a page address from a page number.
    #[must_use]
    pub fn new(page_number: u64) -> Self {
        PageAddr(page_number & ((1 << (PHYS_ADDR_BITS - PAGE_SHIFT)) - 1))
    }

    /// Returns the raw page number.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of the page.
    #[must_use]
    pub fn base(self) -> Addr {
        Addr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_and_page_extraction() {
        let a = Addr::new(0x0001_2345_6789);
        assert_eq!(a.line().raw(), 0x0001_2345_6789 >> 6);
        assert_eq!(a.page().raw(), 0x0001_2345_6789 >> 12);
        assert_eq!(a.line().page(), a.page());
    }

    #[test]
    fn word_index_covers_line() {
        let base = LineAddr::new(10).base().raw();
        for w in 0..8 {
            assert_eq!(Addr::new(base + w * 8).word_in_line(), w as usize);
        }
    }

    #[test]
    fn addr_masks_to_48_bits() {
        assert_eq!(Addr::new(u64::MAX).raw(), (1 << 48) - 1);
    }

    #[test]
    fn line_base_roundtrip() {
        let l = LineAddr::new(0xdead);
        assert_eq!(l.base().line(), l);
    }

    #[test]
    fn offset_in_line() {
        assert_eq!(Addr::new(0x1043).offset_in_line(), 3);
        assert_eq!(Addr::new(0x1040).offset_in_line(), 0);
    }

    #[test]
    #[should_panic(expected = "out of line")]
    fn word_addr_bounds() {
        let _ = LineAddr::new(1).word_addr(8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(LineAddr::new(0x41).to_string(), "line:0x41");
        assert_eq!(PageAddr::new(0x2).to_string(), "page:0x2");
    }
}
