//! Statistics containers shared by the simulator and the experiment harness.
//!
//! These mirror the paper's evaluation metrics (§4.4): the completion-time
//! breakdown plotted in Figure 9, the energy breakdown of Figure 8, the
//! five-way cache-miss classification of Figure 10, and the utilization
//! histograms behind the motivation Figures 1 and 2.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

use crate::time::Cycle;

/// The completion-time components of §4.4 / Figure 9, in cycles.
///
/// `compute` covers pipeline execution including 1-cycle L1 hits;
/// `l1_to_l2` is the round trip from an L1 miss to the home L2 slice
/// including the first L2 access; `l2_waiting` is the queueing delay from
/// serializing requests to the same line; `l2_to_sharers` is the
/// invalidation / synchronous-write-back round trip; `l2_to_offchip` is DRAM
/// time; `synchronization` is time blocked on barriers and locks.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CompletionBreakdown {
    /// Compute pipeline cycles (includes L1 hit cycles).
    pub compute: Cycle,
    /// L1-cache-to-L2-cache latency component.
    pub l1_to_l2: Cycle,
    /// L2-cache waiting time (per-line serialization queueing).
    pub l2_waiting: Cycle,
    /// L2-cache-to-sharers latency (invalidations, synchronous write-backs).
    pub l2_to_sharers: Cycle,
    /// L2-cache-to-off-chip-memory latency.
    pub l2_to_offchip: Cycle,
    /// Synchronization latency (barriers, locks).
    pub synchronization: Cycle,
}

impl CompletionBreakdown {
    /// Sum of all components: the completion time this core observed.
    #[must_use]
    pub fn total(&self) -> Cycle {
        self.compute
            + self.l1_to_l2
            + self.l2_waiting
            + self.l2_to_sharers
            + self.l2_to_offchip
            + self.synchronization
    }

    /// Component values in Figure 9's stacking order, paired with labels.
    #[must_use]
    pub fn components(&self) -> [(&'static str, Cycle); 6] {
        [
            ("Compute", self.compute),
            ("L1Cache-L2Cache", self.l1_to_l2),
            ("L2Cache-Waiting", self.l2_waiting),
            ("L2Cache-Sharers", self.l2_to_sharers),
            ("L2Cache-OffChip", self.l2_to_offchip),
            ("Synchronization", self.synchronization),
        ]
    }
}

impl Add for CompletionBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        CompletionBreakdown {
            compute: self.compute + rhs.compute,
            l1_to_l2: self.l1_to_l2 + rhs.l1_to_l2,
            l2_waiting: self.l2_waiting + rhs.l2_waiting,
            l2_to_sharers: self.l2_to_sharers + rhs.l2_to_sharers,
            l2_to_offchip: self.l2_to_offchip + rhs.l2_to_offchip,
            synchronization: self.synchronization + rhs.synchronization,
        }
    }
}

impl AddAssign for CompletionBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for CompletionBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

impl fmt::Display for CompletionBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total().max(1) as f64;
        for (i, (name, v)) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={v} ({:.1}%)", 100.0 * *v as f64 / t)?;
        }
        Ok(())
    }
}

/// The dynamic-energy components of Figure 8, in picojoules.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// L1 instruction cache energy.
    pub l1i: f64,
    /// L1 data cache energy.
    pub l1d: f64,
    /// Shared L2 cache energy (word and line accesses).
    pub l2: f64,
    /// Coherence directory energy (integrated in the L2 tag arrays).
    pub directory: f64,
    /// Network router energy.
    pub router: f64,
    /// Network link energy.
    pub link: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.l1i + self.l1d + self.l2 + self.directory + self.router + self.link
    }

    /// Component values in Figure 8's stacking order, paired with labels.
    #[must_use]
    pub fn components(&self) -> [(&'static str, f64); 6] {
        [
            ("L1-I Cache", self.l1i),
            ("L1-D Cache", self.l1d),
            ("L2 Cache", self.l2),
            ("Directory", self.directory),
            ("Network Router", self.router),
            ("Network Link", self.link),
        ]
    }
}

impl Add for EnergyBreakdown {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        EnergyBreakdown {
            l1i: self.l1i + rhs.l1i,
            l1d: self.l1d + rhs.l1d,
            l2: self.l2 + rhs.l2,
            directory: self.directory + rhs.directory,
            router: self.router + rhs.router,
            link: self.link + rhs.link,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total().max(f64::MIN_POSITIVE);
        for (i, (name, v)) in self.components().iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{name}={v:.0}pJ ({:.1}%)", 100.0 * v / t)?;
        }
        Ok(())
    }
}

/// The five cache-miss types of §4.4 (Figure 10's stacking).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MissClass {
    /// Line never previously brought into this cache.
    Cold,
    /// Line previously brought in but evicted to make room.
    Capacity,
    /// Exclusive request for a line held in read-only state.
    Upgrade,
    /// Line previously invalidated or downgraded by another core's request.
    Sharing,
    /// Line previously accessed remotely at the shared L2 (new in this
    /// protocol: the miss is served as a word access without L1 allocation).
    Word,
}

impl MissClass {
    /// All miss classes in Figure 10's stacking order.
    pub const ALL: [MissClass; 5] = [
        MissClass::Cold,
        MissClass::Capacity,
        MissClass::Upgrade,
        MissClass::Sharing,
        MissClass::Word,
    ];

    /// Stable index of this class into arrays of five counters.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            MissClass::Cold => 0,
            MissClass::Capacity => 1,
            MissClass::Upgrade => 2,
            MissClass::Sharing => 3,
            MissClass::Word => 4,
        }
    }

    /// The label used in Figure 10.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MissClass::Cold => "Cold",
            MissClass::Capacity => "Capacity",
            MissClass::Upgrade => "Upgrade",
            MissClass::Sharing => "Sharing",
            MissClass::Word => "Word",
        }
    }
}

impl fmt::Display for MissClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Hit/miss counters with the five-way miss classification of Figure 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MissStats {
    /// Accesses that hit in the cache.
    pub hits: u64,
    /// Misses, indexed by [`MissClass::index`].
    pub misses: [u64; 5],
}

impl MissStats {
    /// Records one hit.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Records one miss of the given class.
    pub fn record_miss(&mut self, class: MissClass) {
        self.misses[class.index()] += 1;
    }

    /// Total misses across all classes.
    #[must_use]
    pub fn total_misses(&self) -> u64 {
        self.misses.iter().sum()
    }

    /// Total accesses (hits plus misses).
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.hits + self.total_misses()
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        let total = self.total_accesses();
        if total == 0 {
            0.0
        } else {
            self.total_misses() as f64 / total as f64
        }
    }

    /// Miss count for one class.
    #[must_use]
    pub fn of(&self, class: MissClass) -> u64 {
        self.misses[class.index()]
    }
}

impl Add for MissStats {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        let mut misses = [0u64; 5];
        for (m, (a, b)) in misses.iter_mut().zip(self.misses.iter().zip(rhs.misses.iter())) {
            *m = a + b;
        }
        MissStats { hits: self.hits + rhs.hits, misses }
    }
}

impl AddAssign for MissStats {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sum for MissStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), Add::add)
    }
}

/// Histogram over the utilization bins of Figures 1 and 2:
/// `{1, 2-3, 4-5, 6-7, >=8}` accesses per private-cache residency.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct UtilizationHistogram {
    bins: [u64; 5],
}

impl UtilizationHistogram {
    /// The bin labels used by Figures 1 and 2.
    pub const LABELS: [&'static str; 5] = ["1", "2,3", "4,5", "6,7", ">=8"];

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one eviction/invalidation whose line had the given
    /// utilization. A utilization of zero is clamped into the first bin
    /// (it can occur when a line is invalidated before its first use).
    pub fn record(&mut self, utilization: u32) {
        let idx = match utilization {
            0 | 1 => 0,
            2 | 3 => 1,
            4 | 5 => 2,
            6 | 7 => 3,
            _ => 4,
        };
        self.bins[idx] += 1;
    }

    /// Raw bin counts in label order.
    #[must_use]
    pub fn bins(&self) -> [u64; 5] {
        self.bins
    }

    /// Total recorded events.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Bin shares in `[0, 1]`, in label order; all zero when empty.
    #[must_use]
    pub fn fractions(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0 {
            return [0.0; 5];
        }
        let mut out = [0.0; 5];
        for (o, b) in out.iter_mut().zip(self.bins.iter()) {
            *o = *b as f64 / t as f64;
        }
        out
    }

    /// Fraction of events with utilization strictly below `pct`
    /// (e.g. the paper's "80% of invalidated lines have utilization < 4"
    /// observation for streamcluster uses `below(4)`).
    #[must_use]
    pub fn below(&self, pct: u32) -> f64 {
        // Bins are coarse; this is exact only for pct in {2, 4, 6, 8}, which
        // covers the sweep the paper reports.
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let upto = match pct {
            0 | 1 => 0,
            2 | 3 => 1,
            4 | 5 => 2,
            6 | 7 => 3,
            _ => 4,
        };
        let s: u64 = self.bins[..upto].iter().sum();
        s as f64 / t as f64
    }
}

impl AddAssign for UtilizationHistogram {
    fn add_assign(&mut self, rhs: Self) {
        for i in 0..5 {
            self.bins[i] += rhs.bins[i];
        }
    }
}

/// Where the home tile spent time while serving one request; piggybacked on
/// the reply so the requesting core can attribute its stall cycles to the
/// Figure 9 components.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct LatencyAnnotation {
    /// Cycles the request waited in the home's per-line serialization queue.
    pub waiting: Cycle,
    /// Cycles spent invalidating sharers / fetching synchronous write-backs.
    pub sharers: Cycle,
    /// Cycles spent on the off-chip DRAM round trip.
    pub offchip: Cycle,
}

impl Add for LatencyAnnotation {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        LatencyAnnotation {
            waiting: self.waiting + rhs.waiting,
            sharers: self.sharers + rhs.sharers,
            offchip: self.offchip + rhs.offchip,
        }
    }
}

impl AddAssign for LatencyAnnotation {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_breakdown_total_and_sum() {
        let a = CompletionBreakdown { compute: 10, l1_to_l2: 5, ..Default::default() };
        let b = CompletionBreakdown { l2_waiting: 3, synchronization: 2, ..Default::default() };
        let s: CompletionBreakdown = [a, b].into_iter().sum();
        assert_eq!(s.total(), 20);
        assert_eq!(s.compute, 10);
        assert_eq!(s.l2_waiting, 3);
    }

    #[test]
    fn energy_breakdown_total() {
        let e =
            EnergyBreakdown { l1i: 1.0, l1d: 2.0, l2: 3.0, directory: 0.5, router: 1.5, link: 2.0 };
        assert!((e.total() - 10.0).abs() < 1e-12);
        let d = e + e;
        assert!((d.total() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn miss_class_indices_are_stable() {
        for (i, c) in MissClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn miss_stats_rates() {
        let mut m = MissStats::default();
        for _ in 0..98 {
            m.record_hit();
        }
        m.record_miss(MissClass::Cold);
        m.record_miss(MissClass::Word);
        assert_eq!(m.total_accesses(), 100);
        assert!((m.miss_rate() - 0.02).abs() < 1e-12);
        assert_eq!(m.of(MissClass::Word), 1);
        assert_eq!(m.of(MissClass::Sharing), 0);
    }

    #[test]
    fn miss_rate_of_empty_stats_is_zero() {
        assert_eq!(MissStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn utilization_histogram_binning() {
        let mut h = UtilizationHistogram::new();
        for u in [0, 1, 2, 3, 4, 5, 6, 7, 8, 100] {
            h.record(u);
        }
        assert_eq!(h.bins(), [2, 2, 2, 2, 2]);
        assert_eq!(h.total(), 10);
        // Fraction with utilization < 4: bins {0-1, 2-3} = 4 of 10.
        assert!((h.below(4) - 0.4).abs() < 1e-12);
        let f = h.fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn latency_annotation_adds() {
        let a = LatencyAnnotation { waiting: 1, sharers: 2, offchip: 3 };
        let b = a + a;
        assert_eq!(b.waiting, 2);
        assert_eq!(b.sharers, 4);
        assert_eq!(b.offchip, 6);
    }

    #[test]
    fn displays_are_nonempty() {
        assert!(!CompletionBreakdown::default().to_string().is_empty());
        assert!(!EnergyBreakdown::default().to_string().is_empty());
        assert_eq!(MissClass::Word.to_string(), "Word");
    }
}
