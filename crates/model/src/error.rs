//! Error types for configuration validation.

use std::error::Error;
use std::fmt;

/// An invalid architectural configuration.
///
/// Returned by [`crate::config::SystemConfig::validate`]; the message names
/// the first violated constraint.
///
/// # Examples
///
/// ```
/// use lacc_model::config::SystemConfig;
/// let mut cfg = SystemConfig::isca13_64core();
/// cfg.num_cores = 0;
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("num_cores"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }

    /// The human-readable description of the violated constraint.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("pct must be at least 1");
        assert_eq!(e.to_string(), "invalid configuration: pct must be at least 1");
        assert_eq!(e.message(), "pct must be at least 1");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn takes_err<E: Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x"));
    }
}
