//! Error types: configuration validation and trace-file decoding.

use std::fmt;

/// An invalid architectural configuration.
///
/// Returned by [`crate::config::SystemConfig::validate`]; the message names
/// the first violated constraint.
///
/// # Examples
///
/// ```
/// use lacc_model::config::SystemConfig;
/// let mut cfg = SystemConfig::isca13_64core();
/// cfg.num_cores = 0;
/// let err = cfg.validate().unwrap_err();
/// assert!(err.to_string().contains("num_cores"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates a configuration error with the given description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }

    /// The human-readable description of the violated constraint.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

/// A malformed, truncated or unreadable LACC Trace Format (LTF) stream.
///
/// Returned by the `lacc-sim` LTF writer/reader (`lacc_sim::ltf`); every
/// decode failure is a typed variant so robustness tests can assert on the
/// exact failure mode instead of matching message strings. Decoding never
/// panics on malformed input.
///
/// # Examples
///
/// ```
/// use lacc_model::TraceError;
/// let e = TraceError::Truncated { what: "op operand" };
/// assert!(e.to_string().contains("truncated"));
/// assert!(matches!(e, TraceError::Truncated { .. }));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed (open, read, seek, write).
    ///
    /// The original `std::io::Error` is flattened to its kind and message
    /// so the variant stays `Clone + PartialEq` for test assertions.
    Io {
        /// `std::io::ErrorKind` of the failed operation, as `Debug` text.
        kind: String,
        /// Human-readable description from the I/O layer.
        message: String,
    },
    /// The file does not start with the 8-byte LTF magic.
    BadMagic {
        /// The bytes actually found (shorter if the file is tiny).
        found: Vec<u8>,
    },
    /// The header declares a format version this build cannot decode.
    UnsupportedVersion {
        /// The version number found in the header.
        found: u64,
    },
    /// The stream ended in the middle of a field.
    Truncated {
        /// Which field was being decoded when the bytes ran out.
        what: &'static str,
    },
    /// A varint ran past the 10-byte limit or overflowed 64 bits.
    OverlongVarint {
        /// Which field was being decoded.
        what: &'static str,
    },
    /// An op record began with an opcode byte this version does not define.
    BadOpCode {
        /// The unknown opcode.
        code: u8,
    },
    /// A region declaration used an undefined class tag.
    BadRegionClass {
        /// The unknown class tag.
        tag: u8,
    },
    /// A header string was not valid UTF-8.
    BadUtf8 {
        /// Which field held the invalid bytes.
        what: &'static str,
    },
    /// A structurally valid field carries a semantically impossible value
    /// (a core count beyond the architecture, an offset past end-of-file,
    /// an oversized string).
    Corrupt {
        /// What invariant the value violated.
        what: &'static str,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { kind, message } => {
                write!(f, "trace i/o error ({kind}): {message}")
            }
            TraceError::BadMagic { found } => {
                write!(f, "not an LTF trace: bad magic {found:02x?}")
            }
            TraceError::UnsupportedVersion { found } => {
                write!(f, "unsupported LTF version {found}")
            }
            TraceError::Truncated { what } => {
                write!(f, "truncated LTF stream while reading {what}")
            }
            TraceError::OverlongVarint { what } => {
                write!(f, "over-long varint while reading {what}")
            }
            TraceError::BadOpCode { code } => {
                write!(f, "unknown LTF opcode {code:#04x}")
            }
            TraceError::BadRegionClass { tag } => {
                write!(f, "unknown LTF region class tag {tag:#04x}")
            }
            TraceError::BadUtf8 { what } => {
                write!(f, "invalid UTF-8 in LTF field {what}")
            }
            TraceError::Corrupt { what } => {
                write!(f, "corrupt LTF stream: {what}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        // An EOF surfacing from `read_exact` means the stream ended inside
        // a fixed-width field; report it as truncation like the varint path.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { what: "fixed-width field" }
        } else {
            TraceError::Io { kind: format!("{:?}", e.kind()), message: e.to_string() }
        }
    }
}

/// Any error the workspace can produce: configuration validation or trace
/// decoding.
///
/// # Examples
///
/// ```
/// use lacc_model::{ConfigError, Error, TraceError};
/// let e: Error = ConfigError::new("num_cores must be positive").into();
/// assert!(matches!(e, Error::Config(_)));
/// let e: Error = TraceError::BadMagic { found: vec![0] }.into();
/// assert!(e.to_string().contains("magic"));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Error {
    /// An invalid architectural configuration.
    Config(ConfigError),
    /// A malformed or unreadable trace file.
    Trace(TraceError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => e.fmt(f),
            Error::Trace(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Trace(e) => Some(e),
        }
    }
}

impl From<ConfigError> for Error {
    fn from(e: ConfigError) -> Self {
        Error::Config(e)
    }
}

impl From<TraceError> for Error {
    fn from(e: TraceError) -> Self {
        Error::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("pct must be at least 1");
        assert_eq!(e.to_string(), "invalid configuration: pct must be at least 1");
        assert_eq!(e.message(), "pct must be at least 1");
    }

    #[test]
    fn is_std_error_send_sync() {
        fn takes_err<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        takes_err(ConfigError::new("x"));
        takes_err(TraceError::OverlongVarint { what: "t" });
        takes_err(Error::Config(ConfigError::new("x")));
    }

    #[test]
    fn trace_error_displays_name_the_field() {
        assert!(TraceError::Truncated { what: "header" }.to_string().contains("header"));
        assert!(TraceError::BadOpCode { code: 0xfe }.to_string().contains("0xfe"));
        assert!(TraceError::UnsupportedVersion { found: 9 }.to_string().contains('9'));
        assert!(TraceError::BadRegionClass { tag: 7 }.to_string().contains("0x07"));
        assert!(TraceError::BadUtf8 { what: "name" }.to_string().contains("name"));
        assert!(TraceError::Corrupt { what: "core offset" }.to_string().contains("core offset"));
    }

    #[test]
    fn io_errors_flatten_preserving_kind() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope");
        let e = TraceError::from(io);
        assert!(matches!(&e, TraceError::Io { kind, .. } if kind == "PermissionDenied"));
        assert!(e.to_string().contains("nope"));
    }

    #[test]
    fn unexpected_eof_becomes_truncated() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        assert!(matches!(TraceError::from(io), TraceError::Truncated { .. }));
    }

    #[test]
    fn unified_error_wraps_both_sides() {
        let c: Error = ConfigError::new("x").into();
        let t: Error = TraceError::BadOpCode { code: 1 }.into();
        assert_ne!(c, t);
        assert!(std::error::Error::source(&c).is_some());
    }
}
