//! Strongly-typed identifiers for cores, tiles and memory controllers.
//!
//! The evaluated machine is a *tiled* multicore: each tile contains one core,
//! its private L1 caches, one slice of the shared L2 with its integrated
//! directory, and one mesh router. Because the mapping is 1:1, a [`CoreId`]
//! doubles as the tile identifier throughout the workspace.

use std::fmt;

/// Identifier of a core (equivalently, of its tile) in the range
/// `0..num_cores`.
///
/// # Examples
///
/// ```
/// use lacc_model::CoreId;
/// let c = CoreId::new(7);
/// assert_eq!(c.index(), 7);
/// assert_eq!(format!("{c}"), "core7");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 16 bits (the paper's largest
    /// configuration is 1024 cores).
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index <= u16::MAX as usize, "core index {index} out of range");
        CoreId(index as u16)
    }

    /// Returns the zero-based index of this core.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(v: u16) -> Self {
        CoreId(v)
    }
}

/// Identifier of an on-chip memory controller (Table 1: eight controllers).
///
/// # Examples
///
/// ```
/// use lacc_model::MemCtrlId;
/// let m = MemCtrlId::new(3);
/// assert_eq!(m.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct MemCtrlId(u8);

impl MemCtrlId {
    /// Creates a memory-controller identifier from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 8 bits.
    #[must_use]
    pub fn new(index: usize) -> Self {
        assert!(index <= u8::MAX as usize, "memctrl index {index} out of range");
        MemCtrlId(index as u8)
    }

    /// Returns the zero-based index of this controller.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemCtrlId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memctrl{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        for i in [0usize, 1, 63, 1023] {
            assert_eq!(CoreId::new(i).index(), i);
        }
    }

    #[test]
    fn core_id_ordering_follows_index() {
        assert!(CoreId::new(3) < CoreId::new(40));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_id_rejects_huge_index() {
        let _ = CoreId::new(1 << 20);
    }

    #[test]
    fn memctrl_display() {
        assert_eq!(MemCtrlId::new(5).to_string(), "memctrl5");
    }

    #[test]
    fn ids_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreId>();
        assert_send_sync::<MemCtrlId>();
    }
}
