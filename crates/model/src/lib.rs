//! Common vocabulary types for the `lacc` workspace.
//!
//! This crate defines the identifiers, address arithmetic, architectural
//! configuration (Table 1 of the paper) and statistics containers shared by
//! every other crate in the reproduction of *The Locality-Aware Adaptive
//! Cache Coherence Protocol* (Kurian, Khan, Devadas — ISCA 2013).
//!
//! Nothing in this crate simulates anything: it is the pure data layer, so
//! that the cache, network, DRAM, energy, protocol and simulator crates can
//! interoperate without depending on one another.
//!
//! # Examples
//!
//! ```
//! use lacc_model::config::SystemConfig;
//!
//! // The 64-core configuration of Table 1.
//! let cfg = SystemConfig::isca13_64core();
//! assert_eq!(cfg.num_cores, 64);
//! assert_eq!(cfg.classifier.pct, 4);
//! cfg.validate().expect("Table 1 parameters are self-consistent");
//! ```

pub mod addr;
pub mod collections;
pub mod config;
pub mod coreset;
pub mod error;
pub mod ids;
pub mod stats;
pub mod time;

pub use addr::{Addr, LineAddr, PageAddr};
pub use collections::{FxBuildHasher, FxHashMap, FxHashSet, LineMap, LineSet};
pub use config::{
    CacheConfig, ClassifierConfig, DirectoryKind, MechanismKind, SystemConfig, TrackingKind,
};
pub use coreset::{CoreSet, MAX_CORES};
pub use error::{ConfigError, Error, TraceError};
pub use ids::{CoreId, MemCtrlId};
pub use stats::{
    CompletionBreakdown, EnergyBreakdown, LatencyAnnotation, MissClass, MissStats,
    UtilizationHistogram,
};
pub use time::Cycle;
