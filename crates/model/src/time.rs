//! Simulated time.
//!
//! Cores run at 1 GHz (Table 1), so one cycle equals one nanosecond; all
//! latency parameters in the paper convert directly. A plain `u64` alias is
//! used rather than a newtype because cycles participate in arithmetic on
//! every simulated event and the protocol/simulator code stays markedly more
//! readable with native integer syntax.

/// A point in simulated time, or a duration, in core clock cycles @ 1 GHz.
pub type Cycle = u64;

/// Converts nanoseconds to cycles at the 1 GHz Table-1 clock.
///
/// # Examples
///
/// ```
/// use lacc_model::time::ns_to_cycles;
/// assert_eq!(ns_to_cycles(100), 100); // DRAM latency: 100 ns -> 100 cycles
/// ```
#[must_use]
pub fn ns_to_cycles(ns: u64) -> Cycle {
    ns
}

/// Converts a per-second rate (e.g. bytes/s) into a per-cycle rate.
///
/// # Examples
///
/// ```
/// use lacc_model::time::per_second_to_per_cycle;
/// // 5 GBps per memory controller -> 5 bytes per cycle.
/// assert!((per_second_to_per_cycle(5.0e9) - 5.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn per_second_to_per_cycle(rate_per_s: f64) -> f64 {
    rate_per_s / 1.0e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_is_identity_at_1ghz() {
        assert_eq!(ns_to_cycles(0), 0);
        assert_eq!(ns_to_cycles(12345), 12345);
    }

    #[test]
    fn dram_bandwidth_conversion() {
        assert!((per_second_to_per_cycle(5.0e9) - 5.0).abs() < 1e-9);
    }
}
