//! Electrical 2-D mesh on-chip network model.
//!
//! Reproduces the interconnect of Table 1: XY dimension-ordered routing,
//! 2-cycle hops (1 router + 1 link), 64-bit flits, and a contention model
//! that (quoting the paper) tracks "only link contention (infinite input
//! buffers)". The mesh is "augmented with broadcast support. Each router
//! selectively replicates a broadcast'ed message on its output links such
//! that all cores are reached with a single injection" (§3.1) — required by
//! the ACKwise protocol when its sharer pointers overflow.
//!
//! Timing model: a message of `F` flits traversing a path of `H` links
//! occupies each link for `F` cycles (wormhole serialization), pays the
//! per-hop router + link latency, waits when a link is still busy with an
//! earlier message, and is fully received `F - 1` cycles after its head
//! flit. Per-(source, destination) delivery times are clamped monotone,
//! modeling FIFO ordering of wormhole links on a fixed XY path.
//!
//! # Examples
//!
//! ```
//! use lacc_network::MeshNetwork;
//! use lacc_model::CoreId;
//!
//! let mut net = MeshNetwork::new(16, 1, 1); // 4x4 mesh, 2-cycle hops
//! let src = CoreId::new(0);
//! let dst = CoreId::new(15);
//! // 6 hops x 2 cycles + (1-1) serialization = 12 cycles for a 1-flit msg.
//! assert_eq!(net.unicast(src, dst, 1, 0), 12);
//! ```

pub mod mesh;
pub mod topology;

pub use mesh::{MeshNetwork, NetStats};
pub use topology::{Direction, Topology};
