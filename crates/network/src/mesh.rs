//! Timed mesh model: unicast and broadcast with link contention.

use std::collections::HashMap;

use lacc_model::{CoreId, Cycle};

use crate::topology::Topology;

/// Aggregate traffic counters, consumed by the energy model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NetStats {
    /// Unicast messages injected.
    pub unicasts: u64,
    /// Broadcast messages injected.
    pub broadcasts: u64,
    /// Flit–router traversal events (one per flit per router visited).
    pub router_flits: u64,
    /// Flit–link traversal events (one per flit per link crossed).
    pub link_flits: u64,
    /// Cycles any message spent blocked on a busy link.
    pub contention_cycles: u64,
}

/// The timed 2-D mesh.
///
/// All methods take the current simulated time and return delivery times;
/// the mesh records per-link busy windows so later messages crossing the
/// same links queue behind earlier ones ("only link contention, infinite
/// input buffers" — Table 1).
#[derive(Clone, Debug)]
pub struct MeshNetwork {
    topo: Topology,
    hop_cycles: Cycle,
    link_next_free: Vec<Cycle>,
    link_busy_cycles: Vec<u64>,
    fifo_last: HashMap<(u16, u16), Cycle>,
    stats: NetStats,
}

impl MeshNetwork {
    /// Creates a mesh for `num_tiles` tiles with the given per-hop router
    /// and link latencies (Table 1: 1 + 1 = 2 cycles per hop).
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    #[must_use]
    pub fn new(num_tiles: usize, hop_router_cycles: Cycle, hop_link_cycles: Cycle) -> Self {
        let topo = Topology::for_tiles(num_tiles);
        let slots = topo.num_link_slots();
        MeshNetwork {
            topo,
            hop_cycles: hop_router_cycles + hop_link_cycles,
            link_next_free: vec![0; slots],
            link_busy_cycles: vec![0; slots],
            fifo_last: HashMap::new(),
            stats: NetStats::default(),
        }
    }

    /// The static geometry.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> NetStats {
        self.stats
    }

    /// Hop distance helper (Manhattan).
    #[must_use]
    pub fn hops(&self, src: CoreId, dst: CoreId) -> usize {
        self.topo.hops(src, dst)
    }

    /// The minimum latency of any message between two *distinct* tiles:
    /// one hop's router + link traversal. This is the mesh's lookahead
    /// guarantee — an event committed at cycle `t` can schedule work on
    /// another tile no earlier than `t + min_cross_tile_latency()` — and
    /// the sharded engine sizes its commit windows from it, so it must
    /// stay the single source of truth (a proptest pins `unicast`
    /// against it).
    #[must_use]
    pub fn min_cross_tile_latency(&self) -> Cycle {
        self.hop_cycles
    }

    /// Zero-load latency of a unicast: `hops * hop_cycles + (flits - 1)`.
    /// Useful for analytical checks; does not reserve links.
    #[must_use]
    pub fn zero_load_latency(&self, src: CoreId, dst: CoreId, flits: usize) -> Cycle {
        if src == dst {
            return 0;
        }
        self.topo.hops(src, dst) as Cycle * self.hop_cycles + (flits as Cycle - 1)
    }

    /// Sends a `flits`-flit message from `src` to `dst` at time `now`;
    /// returns the cycle at which the message is fully received.
    ///
    /// A message to the local tile (`src == dst`) never enters the network
    /// and arrives at `now` (the R-NUCA case of private data homed at the
    /// requester's own L2 slice).
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn unicast(&mut self, src: CoreId, dst: CoreId, flits: usize, now: Cycle) -> Cycle {
        assert!(flits > 0, "messages carry at least the header flit");
        if src == dst {
            return now;
        }
        self.stats.unicasts += 1;
        let route = self.topo.xy_route(src, dst);
        let mut head = now;
        for &(router, dir) in &route {
            let li = self.topo.link_index(router, dir);
            let depart = head.max(self.link_next_free[li]);
            self.stats.contention_cycles += depart - head;
            self.link_next_free[li] = depart + flits as Cycle;
            self.link_busy_cycles[li] += flits as u64;
            head = depart + self.hop_cycles;
        }
        // Head flit arrives at `head`; the tail arrives flits-1 later.
        let arrival = head + flits as Cycle - 1;
        let arrival = self.clamp_fifo(src, dst, arrival);
        self.stats.router_flits += (flits * (route.len() + 1)) as u64;
        self.stats.link_flits += (flits * route.len()) as u64;
        arrival
    }

    /// Injects a broadcast at `src` at time `now`; returns each tile's
    /// delivery time (index = tile id). The source's own entry is `now`.
    ///
    /// The message is replicated along the XY broadcast tree; every tree
    /// link is occupied for `flits` cycles, so one injection reaches all
    /// tiles (§3.1) at the cost of `num_tiles - 1` link traversals.
    ///
    /// # Panics
    ///
    /// Panics if `flits` is zero.
    pub fn broadcast(&mut self, src: CoreId, flits: usize, now: Cycle) -> Vec<Cycle> {
        assert!(flits > 0, "messages carry at least the header flit");
        self.stats.broadcasts += 1;
        let n = self.topo.num_tiles();
        let mut head_at: Vec<Cycle> = vec![0; n];
        head_at[src.index()] = now;
        let edges = self.topo.broadcast_tree(src);
        for &(parent, dir, child) in &edges {
            let li = self.topo.link_index(parent, dir);
            let ready = head_at[parent.index()];
            let depart = ready.max(self.link_next_free[li]);
            self.stats.contention_cycles += depart - ready;
            self.link_next_free[li] = depart + flits as Cycle;
            self.link_busy_cycles[li] += flits as u64;
            head_at[child.index()] = depart + self.hop_cycles;
        }
        self.stats.router_flits += (flits * n) as u64;
        self.stats.link_flits += (flits * edges.len()) as u64;
        let mut arrivals = head_at;
        for (i, a) in arrivals.iter_mut().enumerate() {
            if i != src.index() {
                *a += flits as Cycle - 1;
                *a = self.clamp_fifo(src, CoreId::new(i), *a);
            }
        }
        arrivals
    }

    /// Per-directed-link busy cycles (for utilization reports).
    #[must_use]
    pub fn link_busy_cycles(&self) -> &[u64] {
        &self.link_busy_cycles
    }

    fn clamp_fifo(&mut self, src: CoreId, dst: CoreId, arrival: Cycle) -> Cycle {
        let key = (src.index() as u16, dst.index() as u16);
        let last = self.fifo_last.entry(key).or_insert(0);
        let clamped = arrival.max(*last);
        *last = clamped;
        clamped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn zero_load_matches_table1_hop_cost() {
        let mut net = MeshNetwork::new(64, 1, 1);
        // (0,0) -> (7,7): 14 hops * 2 cycles + 0 = 28 for 1 flit.
        assert_eq!(net.unicast(t(0), t(63), 1, 0), 28);
        // A 9-flit cache-line message adds 8 serialization cycles.
        assert_eq!(net.zero_load_latency(t(0), t(63), 9), 36);
    }

    #[test]
    fn local_delivery_is_free() {
        let mut net = MeshNetwork::new(16, 1, 1);
        assert_eq!(net.unicast(t(5), t(5), 9, 100), 100);
        assert_eq!(net.stats().unicasts, 0, "local messages never enter the network");
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut net = MeshNetwork::new(4, 1, 1); // 2x2

        // Two 8-flit messages over the same single link 0->1 at t=0.
        let a = net.unicast(t(0), t(1), 8, 0);
        let b = net.unicast(t(0), t(1), 8, 0);
        assert_eq!(a, 2 + 7); // 1 hop * 2 + 7
                              // Second message departs when the link frees at t=8.
        assert_eq!(b, 8 + 2 + 7);
        assert_eq!(net.stats().contention_cycles, 8);
    }

    #[test]
    fn disjoint_paths_do_not_contend() {
        let mut net = MeshNetwork::new(16, 1, 1);
        let a = net.unicast(t(0), t(1), 8, 0);
        let b = net.unicast(t(4), t(5), 8, 0);
        assert_eq!(a, b, "independent links see no contention");
        assert_eq!(net.stats().contention_cycles, 0);
    }

    #[test]
    fn fifo_clamp_keeps_src_dst_order() {
        let mut net = MeshNetwork::new(16, 1, 1);
        // A big message then a small one on the same pair: the small one
        // must not overtake even though its serialization is shorter.
        let big = net.unicast(t(0), t(3), 9, 0);
        let small = net.unicast(t(0), t(3), 1, 0);
        assert!(small >= big, "FIFO violated: {small} < {big}");
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let mut net = MeshNetwork::new(16, 1, 1);
        let arrivals = net.broadcast(t(5), 1, 10);
        assert_eq!(arrivals.len(), 16);
        assert_eq!(arrivals[5], 10);
        for (i, &a) in arrivals.iter().enumerate() {
            if i != 5 {
                assert!(a > 10, "tile {i} must be reached after injection");
                // No tile can be closer in time than its hop distance.
                assert!(a >= 10 + 2 * net.hops(t(5), t(i)) as Cycle);
            }
        }
        assert_eq!(net.stats().broadcasts, 1);
        assert_eq!(net.stats().link_flits, 15, "single injection: one flit per tree link");
    }

    #[test]
    fn broadcast_energy_counts_single_injection() {
        // §3.1/§5: ACKwise relies on broadcast being one injection, not N
        // unicasts. For an 8x8 mesh a 1-flit broadcast must cross exactly 63
        // links; 64 unicasts would cross sum-of-hops >> 63.
        let mut net = MeshNetwork::new(64, 1, 1);
        net.broadcast(t(0), 1, 0);
        assert_eq!(net.stats().link_flits, 63);
    }

    #[test]
    fn stats_accumulate() {
        let mut net = MeshNetwork::new(4, 1, 1);
        net.unicast(t(0), t(3), 2, 0); // 2 hops
        let s = net.stats();
        assert_eq!(s.unicasts, 1);
        assert_eq!(s.router_flits, 2 * 3); // 3 routers visited
        assert_eq!(s.link_flits, 2 * 2);
    }

    #[test]
    #[should_panic(expected = "at least the header flit")]
    fn zero_flit_message_panics() {
        let mut net = MeshNetwork::new(4, 1, 1);
        let _ = net.unicast(t(0), t(1), 0, 0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Delivery time is never earlier than the zero-load latency, and
        /// per-pair deliveries are monotone in injection order.
        #[test]
        fn timing_lower_bound_and_fifo(
            msgs in proptest::collection::vec((0usize..16, 0usize..16, 1usize..10, 0u64..50), 1..60)
        ) {
            let mut net = MeshNetwork::new(16, 1, 1);
            let mut last: std::collections::HashMap<(usize, usize), Cycle> =
                std::collections::HashMap::new();
            // Inject in nondecreasing time order like a real event loop.
            let mut msgs = msgs;
            msgs.sort_by_key(|m| m.3);
            for (s, d, f, now) in msgs {
                let src = CoreId::new(s);
                let dst = CoreId::new(d);
                let zl = net.zero_load_latency(src, dst, f);
                let arr = net.unicast(src, dst, f, now);
                prop_assert!(arr >= now + zl);
                if src != dst {
                    // The sharded engine's window lookahead leans on this.
                    prop_assert!(arr >= now + net.min_cross_tile_latency());
                }
                if let Some(prev) = last.get(&(s, d)) {
                    prop_assert!(arr >= *prev);
                }
                last.insert((s, d), arr);
            }
        }

        /// Broadcast arrival at each tile is at least its unicast zero-load
        /// latency from the source.
        #[test]
        fn broadcast_arrivals_bounded(src in 0usize..16, flits in 1usize..10, now in 0u64..100) {
            let mut net = MeshNetwork::new(16, 1, 1);
            let src = CoreId::new(src);
            let arr = net.broadcast(src, flits, now);
            for (i, &a) in arr.iter().enumerate() {
                let dst = CoreId::new(i);
                if dst != src {
                    prop_assert!(a >= now + net.zero_load_latency(src, dst, flits));
                }
            }
        }
    }
}
