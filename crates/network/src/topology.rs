//! Mesh geometry: coordinates, directed links, XY routes, broadcast trees.

use lacc_model::CoreId;

/// One of the four mesh directions. The numeric value indexes a router's
/// output links.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Towards larger x.
    East = 0,
    /// Towards smaller x.
    West = 1,
    /// Towards larger y.
    North = 2,
    /// Towards smaller y.
    South = 3,
}

impl Direction {
    /// All directions in link-index order.
    pub const ALL: [Direction; 4] =
        [Direction::East, Direction::West, Direction::North, Direction::South];
}

/// Static geometry of a `width x height` mesh holding `num_tiles` tiles in
/// row-major order. The mesh is always an exact rectangle
/// (`width * height == num_tiles`), so every grid slot has a router and XY
/// routes never cross unpopulated slots.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    width: usize,
    height: usize,
    num_tiles: usize,
}

impl Topology {
    /// Builds the most square exact-rectangle mesh holding `num_tiles`
    /// tiles: height is the largest divisor of `num_tiles` not exceeding
    /// its square root (64 → 8×8, 12 → 4×3, primes degrade to a line).
    ///
    /// # Panics
    ///
    /// Panics if `num_tiles` is zero.
    #[must_use]
    pub fn for_tiles(num_tiles: usize) -> Self {
        assert!(num_tiles > 0, "need at least one tile");
        let mut height = 1usize;
        let mut d = 1usize;
        while d * d <= num_tiles {
            if num_tiles % d == 0 {
                height = d;
            }
            d += 1;
        }
        let width = num_tiles / height;
        Topology { width, height, num_tiles }
    }

    /// Mesh width (tiles per row).
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Mesh height (rows).
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of populated tiles.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.num_tiles
    }

    /// `(x, y)` coordinate of a tile.
    ///
    /// # Panics
    ///
    /// Panics if the tile index is out of range.
    #[must_use]
    pub fn coord(&self, tile: CoreId) -> (usize, usize) {
        let i = tile.index();
        assert!(i < self.num_tiles, "tile {i} out of range");
        (i % self.width, i / self.width)
    }

    /// Tile at an `(x, y)` coordinate, if populated.
    #[must_use]
    pub fn tile_at(&self, x: usize, y: usize) -> Option<CoreId> {
        if x >= self.width || y >= self.height {
            return None;
        }
        let i = y * self.width + x;
        (i < self.num_tiles).then(|| CoreId::new(i))
    }

    /// Manhattan hop distance between two tiles.
    #[must_use]
    pub fn hops(&self, a: CoreId, b: CoreId) -> usize {
        let (ax, ay) = self.coord(a);
        let (bx, by) = self.coord(b);
        ax.abs_diff(bx) + ay.abs_diff(by)
    }

    /// Total number of directed link slots (4 per tile; edge slots exist
    /// but are never routed through).
    #[must_use]
    pub fn num_link_slots(&self) -> usize {
        self.num_tiles * 4
    }

    /// Index of the directed link leaving `tile` in `dir`.
    #[must_use]
    pub fn link_index(&self, tile: CoreId, dir: Direction) -> usize {
        tile.index() * 4 + dir as usize
    }

    /// Neighbor of `tile` in `dir`, if populated.
    #[must_use]
    pub fn neighbor(&self, tile: CoreId, dir: Direction) -> Option<CoreId> {
        let (x, y) = self.coord(tile);
        match dir {
            Direction::East => self.tile_at(x + 1, y),
            Direction::West => x.checked_sub(1).and_then(|x| self.tile_at(x, y)),
            Direction::North => self.tile_at(x, y + 1),
            Direction::South => y.checked_sub(1).and_then(|y| self.tile_at(x, y)),
        }
    }

    /// The XY (dimension-ordered: x first, then y) route from `src` to
    /// `dst` as a list of `(router, direction)` steps; empty when
    /// `src == dst`.
    #[must_use]
    pub fn xy_route(&self, src: CoreId, dst: CoreId) -> Vec<(CoreId, Direction)> {
        let (mut x, mut y) = self.coord(src);
        let (dx, dy) = self.coord(dst);
        let mut steps = Vec::with_capacity(self.hops(src, dst));
        while x != dx {
            let dir = if x < dx { Direction::East } else { Direction::West };
            steps.push((self.tile_at(x, y).expect("on-path tile"), dir));
            x = if x < dx { x + 1 } else { x - 1 };
        }
        while y != dy {
            let dir = if y < dy { Direction::North } else { Direction::South };
            steps.push((self.tile_at(x, y).expect("on-path tile"), dir));
            y = if y < dy { y + 1 } else { y - 1 };
        }
        steps
    }

    /// The XY broadcast tree rooted at `src` (§3.1): the message first
    /// travels both ways along the root's row, and every router in that row
    /// replicates it up and down its column. Returned as parent→child edges
    /// in deterministic breadth-usable order (row edges first, then column
    /// edges), covering every populated tile exactly once.
    #[must_use]
    pub fn broadcast_tree(&self, src: CoreId) -> Vec<(CoreId, Direction, CoreId)> {
        let (sx, sy) = self.coord(src);
        let mut edges = Vec::with_capacity(self.num_tiles.saturating_sub(1));
        // Row edges, outward from the source.
        for x in sx..self.width.saturating_sub(1) {
            if let (Some(a), Some(b)) = (self.tile_at(x, sy), self.tile_at(x + 1, sy)) {
                edges.push((a, Direction::East, b));
            }
        }
        for x in (1..=sx).rev() {
            if let (Some(a), Some(b)) = (self.tile_at(x, sy), self.tile_at(x - 1, sy)) {
                edges.push((a, Direction::West, b));
            }
        }
        // Column edges from every row tile, outward from the source row.
        for x in 0..self.width {
            for y in sy..self.height.saturating_sub(1) {
                if let (Some(a), Some(b)) = (self.tile_at(x, y), self.tile_at(x, y + 1)) {
                    edges.push((a, Direction::North, b));
                }
            }
            for y in (1..=sy).rev() {
                if let (Some(a), Some(b)) = (self.tile_at(x, y), self.tile_at(x, y - 1)) {
                    edges.push((a, Direction::South, b));
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn square_topology_for_64() {
        let topo = Topology::for_tiles(64);
        assert_eq!((topo.width(), topo.height()), (8, 8));
        assert_eq!(topo.coord(t(0)), (0, 0));
        assert_eq!(topo.coord(t(63)), (7, 7));
        assert_eq!(topo.hops(t(0), t(63)), 14);
    }

    #[test]
    fn non_square_counts_form_exact_rectangles() {
        let topo = Topology::for_tiles(12); // 4x3
        assert_eq!((topo.width(), topo.height()), (4, 3));
        assert_eq!(topo.tile_at(3, 2), Some(t(11)));
        let topo = Topology::for_tiles(5); // prime: 5x1 line
        assert_eq!((topo.width(), topo.height()), (5, 1));
        assert_eq!(topo.tile_at(4, 0), Some(t(4)));
        assert_eq!(topo.tile_at(0, 1), None);
    }

    #[test]
    fn xy_route_goes_x_then_y() {
        let topo = Topology::for_tiles(16); // 4x4
        let route = topo.xy_route(t(0), t(15)); // (0,0) -> (3,3)
        assert_eq!(route.len(), 6);
        let dirs: Vec<Direction> = route.iter().map(|&(_, d)| d).collect();
        assert_eq!(
            dirs,
            vec![
                Direction::East,
                Direction::East,
                Direction::East,
                Direction::North,
                Direction::North,
                Direction::North
            ]
        );
    }

    #[test]
    fn xy_route_adjacency() {
        let topo = Topology::for_tiles(16);
        for s in 0..16 {
            for d in 0..16 {
                let route = topo.xy_route(t(s), t(d));
                assert_eq!(route.len(), topo.hops(t(s), t(d)));
                // Each step moves to an adjacent tile; the walk ends at d.
                let mut cur = t(s);
                for &(router, dir) in &route {
                    assert_eq!(router, cur);
                    cur = topo.neighbor(cur, dir).expect("route stays on mesh");
                }
                assert_eq!(cur, t(d));
            }
        }
    }

    #[test]
    fn broadcast_tree_covers_all_tiles_once() {
        for n in [1usize, 4, 5, 9, 16, 64] {
            let topo = Topology::for_tiles(n);
            for s in 0..n {
                let edges = topo.broadcast_tree(t(s));
                assert_eq!(edges.len(), n - 1, "tree edge count for n={n}, src={s}");
                let mut reached = vec![false; n];
                reached[s] = true;
                for &(a, dir, b) in &edges {
                    assert_eq!(topo.neighbor(a, dir), Some(b));
                    assert!(reached[a.index()], "parent {a} reached before child (src {s})");
                    assert!(!reached[b.index()], "tile {b} reached twice (src {s})");
                    reached[b.index()] = true;
                }
                assert!(reached.iter().all(|&r| r));
            }
        }
    }

    #[test]
    fn neighbor_edges() {
        let topo = Topology::for_tiles(4); // 2x2
        assert_eq!(topo.neighbor(t(0), Direction::East), Some(t(1)));
        assert_eq!(topo.neighbor(t(0), Direction::West), None);
        assert_eq!(topo.neighbor(t(0), Direction::North), Some(t(2)));
        assert_eq!(topo.neighbor(t(3), Direction::North), None);
    }

    #[test]
    fn link_indices_are_unique() {
        let topo = Topology::for_tiles(9);
        let mut seen = std::collections::HashSet::new();
        for i in 0..9 {
            for d in Direction::ALL {
                assert!(seen.insert(topo.link_index(t(i), d)));
            }
        }
        assert_eq!(seen.len(), topo.num_link_slots());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn routes_valid_on_random_meshes(n in 1usize..40, s in 0usize..40, d in 0usize..40) {
            let s = s % n;
            let d = d % n;
            let topo = Topology::for_tiles(n);
            let route = topo.xy_route(CoreId::new(s), CoreId::new(d));
            let mut cur = CoreId::new(s);
            for &(router, dir) in &route {
                prop_assert_eq!(router, cur);
                cur = topo.neighbor(cur, dir).expect("valid step");
            }
            prop_assert_eq!(cur, CoreId::new(d));
            prop_assert_eq!(route.len(), topo.hops(CoreId::new(s), CoreId::new(d)));
        }

        #[test]
        fn broadcast_tree_spans(n in 1usize..40, s in 0usize..40) {
            let s = s % n;
            let topo = Topology::for_tiles(n);
            let edges = topo.broadcast_tree(CoreId::new(s));
            prop_assert_eq!(edges.len(), n - 1);
        }
    }
}
