//! Micro-benchmarks of the substrate crates: the structures every
//! simulated memory access touches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lacc_cache::SetAssocCache;
use lacc_core::classifier::{LocalityClassifier, RemovalReason, RequestHints};
use lacc_core::sharer::SharerTracker;
use lacc_core::DirectoryKind;
use lacc_model::config::ClassifierConfig;
use lacc_model::{CoreId, LineAddr};
use lacc_network::MeshNetwork;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_assoc_cache");
    g.bench_function("hit_get_mut", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(128, 4);
        for l in 0..512u64 {
            cache.insert(LineAddr::new(l), l);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 512;
            black_box(cache.get_mut(LineAddr::new(i)));
        });
    });
    g.bench_function("miss_insert_evict", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(128, 4);
        let mut l = 0u64;
        b.iter(|| {
            l += 1;
            black_box(cache.insert(LineAddr::new(l), l));
        });
    });
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.bench_function("unicast_64tiles", |b| {
        let mut net = MeshNetwork::new(64, 1, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(net.unicast(CoreId::new(0), CoreId::new(63), 9, t));
        });
    });
    g.bench_function("broadcast_64tiles", |b| {
        let mut net = MeshNetwork::new(64, 1, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(net.broadcast(CoreId::new(27), 1, t));
        });
    });
    g.finish();
}

fn bench_sharers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharer_tracker");
    for (label, kind) in
        [("full_map", DirectoryKind::FullMap), ("ackwise4", DirectoryKind::ackwise4())]
    {
        g.bench_function(format!("{label}_add_remove_8"), |b| {
            b.iter(|| {
                let mut t = SharerTracker::new(kind, 64);
                for i in 0..8 {
                    t.add(CoreId::new(i));
                }
                black_box(t.invalidation_plan(None));
                for i in 0..8 {
                    t.remove(CoreId::new(i));
                }
                black_box(t.count())
            });
        });
    }
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    let hints = RequestHints { set_min_last_access: 10, set_has_invalid: false };
    for (label, cfg) in [
        ("limited3", ClassifierConfig::isca13_default()),
        (
            "complete",
            ClassifierConfig {
                tracking: lacc_model::config::TrackingKind::Complete,
                ..ClassifierConfig::isca13_default()
            },
        ),
    ] {
        g.bench_function(format!("{label}_request_cycle"), |b| {
            let mut cl = LocalityClassifier::new(&cfg, 64);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 64;
                let core = CoreId::new(i);
                black_box(cl.classify_request(core, hints, 5));
                if i % 9 == 0 {
                    cl.on_sharer_removed(core, 1, RemovalReason::Eviction);
                }
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_network, bench_sharers, bench_classifier
);
criterion_main!(benches);
