//! Micro-benchmarks of the substrate crates: the structures every
//! simulated memory access touches.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lacc_cache::{DataSlab, LineData, SetAssocCache};
use lacc_core::classifier::{LocalityClassifier, RemovalReason, RequestHints};
use lacc_core::sharer::SharerTracker;
use lacc_core::DirectoryKind;
use lacc_model::config::ClassifierConfig;
use lacc_model::{CoreId, CoreSet, LineAddr, LineMap};
use lacc_network::MeshNetwork;
use lacc_sim::engine::queue::CalendarQueue;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("set_assoc_cache");
    g.bench_function("hit_get_mut", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(128, 4);
        for l in 0..512u64 {
            cache.insert(LineAddr::new(l), l);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 512;
            black_box(cache.get_mut(LineAddr::new(i)));
        });
    });
    g.bench_function("miss_insert_evict", |b| {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(128, 4);
        let mut l = 0u64;
        b.iter(|| {
            l += 1;
            black_box(cache.insert(LineAddr::new(l), l));
        });
    });
    g.finish();
}

/// The data-plane question behind zero-copy residents: what does shipping
/// a line grant cost as a handle retain vs the old 64-byte
/// slab-read/realloc round trip, and what does the copy-on-write split
/// cost when a write does hit a shared slot?
fn bench_slab(c: &mut Criterion) {
    let mut g = c.benchmark_group("slab");
    g.bench_function("alias_grant", |b| {
        let mut slab = DataSlab::new();
        let resident = slab.alloc(LineData::from_words([7; 8]));
        b.iter(|| {
            // Grant send + consume as handle traffic: no bytes move.
            let grant = slab.retain(resident);
            slab.release(black_box(grant));
        });
    });
    g.bench_function("copy_grant", |b| {
        let mut slab = DataSlab::new();
        let resident = slab.alloc(LineData::from_words([7; 8]));
        b.iter(|| {
            // The pre-refactor path: read the resident line out by value,
            // allocate a fresh slot for the grant, release on delivery.
            let line = *slab.get(resident);
            let grant = slab.alloc(line);
            slab.release(black_box(grant));
        });
    });
    g.bench_function("cow_write", |b| {
        let mut slab = DataSlab::new();
        let resident = slab.alloc(LineData::from_words([7; 8]));
        let mut i = 0u64;
        b.iter(|| {
            // Worst case for a store: the slot is shared, so the write
            // splits it (one 64-byte clone) before landing.
            i += 1;
            let alias = slab.retain(resident);
            let own = slab.make_mut(alias);
            slab.get_mut(own).set_word((i % 8) as usize, i);
            slab.release(black_box(own));
        });
    });
    g.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut g = c.benchmark_group("mesh");
    g.bench_function("unicast_64tiles", |b| {
        let mut net = MeshNetwork::new(64, 1, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(net.unicast(CoreId::new(0), CoreId::new(63), 9, t));
        });
    });
    g.bench_function("broadcast_64tiles", |b| {
        let mut net = MeshNetwork::new(64, 1, 1);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(net.broadcast(CoreId::new(27), 1, t));
        });
    });
    g.finish();
}

fn bench_sharers(c: &mut Criterion) {
    let mut g = c.benchmark_group("sharer_tracker");
    for (label, kind) in
        [("full_map", DirectoryKind::FullMap), ("ackwise4", DirectoryKind::ackwise4())]
    {
        g.bench_function(format!("{label}_add_remove_8"), |b| {
            b.iter(|| {
                let mut t = SharerTracker::new(kind, 64);
                for i in 0..8 {
                    t.add(CoreId::new(i));
                }
                black_box(t.invalidation_plan(None));
                for i in 0..8 {
                    t.remove(CoreId::new(i));
                }
                black_box(t.count())
            });
        });
    }
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier");
    let hints = RequestHints { set_min_last_access: 10, set_has_invalid: false };
    for (label, cfg) in [
        ("limited3", ClassifierConfig::isca13_default()),
        (
            "complete",
            ClassifierConfig {
                tracking: lacc_model::config::TrackingKind::Complete,
                ..ClassifierConfig::isca13_default()
            },
        ),
    ] {
        g.bench_function(format!("{label}_request_cycle"), |b| {
            let mut cl = LocalityClassifier::new(&cfg, 64);
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % 64;
                let core = CoreId::new(i);
                black_box(cl.classify_request(core, hints, 5));
                if i % 9 == 0 {
                    cl.on_sharer_removed(core, 1, RemovalReason::Eviction);
                }
            });
        });
    }
    g.finish();
}

fn bench_line_maps(c: &mut Criterion) {
    // The per-tile transaction/waiter/backing tables: LineAddr keys, a
    // lookup per simulated memory access. fx vs the std SipHash default.
    let mut g = c.benchmark_group("line_map");
    g.bench_function("fx_get_hit_1k", |b| {
        let mut m: LineMap<u64> = LineMap::default();
        for i in 0..1024u64 {
            m.insert(LineAddr::new(i * 3), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            black_box(m.get(&LineAddr::new(i * 3)))
        });
    });
    g.bench_function("siphash_get_hit_1k", |b| {
        let mut m: HashMap<LineAddr, u64> = HashMap::new();
        for i in 0..1024u64 {
            m.insert(LineAddr::new(i * 3), i);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 1024;
            black_box(m.get(&LineAddr::new(i * 3)))
        });
    });
    g.bench_function("fx_insert_remove", |b| {
        let mut m: LineMap<u64> = LineMap::default();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            m.insert(LineAddr::new(i % 512), i);
            black_box(m.remove(&LineAddr::new((i + 256) % 512)))
        });
    });
    g.finish();
}

fn bench_core_sets(c: &mut Criterion) {
    // The sharer-list representation: insert 8 sharers, plan an
    // invalidation round (iterate), tear down — CoreSet vs Vec<CoreId>.
    let mut g = c.benchmark_group("core_set");
    g.bench_function("bitset_fill_iter_drain_8", |b| {
        b.iter(|| {
            let mut s = CoreSet::new();
            for i in 0..8 {
                s.insert(CoreId::new(i * 7));
            }
            let mut acc = 0usize;
            for core in &s {
                acc += core.index();
            }
            for i in 0..8 {
                s.remove(CoreId::new(i * 7));
            }
            black_box((acc, s.is_empty()))
        });
    });
    g.bench_function("vec_fill_iter_drain_8", |b| {
        b.iter(|| {
            let mut v: Vec<CoreId> = Vec::new();
            for i in 0..8 {
                let core = CoreId::new(i * 7);
                if !v.contains(&core) {
                    v.push(core);
                }
            }
            let mut acc = 0usize;
            for core in &v {
                acc += core.index();
            }
            for i in 0..8 {
                let core = CoreId::new(i * 7);
                if let Some(p) = v.iter().position(|&c| c == core) {
                    v.remove(p);
                }
            }
            black_box((acc, v.is_empty()))
        });
    });
    g.finish();
}

fn bench_event_queues(c: &mut Criterion) {
    // The simulator's event-loop backbone under a protocol-like schedule:
    // a rolling window of short delays (hops, L2, DRAM) at 64 in-flight
    // events — calendar queue vs the BinaryHeap it replaced.
    const DELAYS: [u64; 8] = [2, 2, 4, 7, 9, 14, 32, 100];
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("calendar_push_pop_64live", |b| {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        for i in 0..64u32 {
            q.push(u64::from(i), i);
        }
        let mut k = 0usize;
        b.iter(|| {
            let (now, id) = q.pop().expect("queue stays at 64 events");
            k = (k + 1) % DELAYS.len();
            q.push(now + DELAYS[k], id);
            black_box(now)
        });
    });
    g.bench_function("binary_heap_push_pop_64live", |b| {
        let mut q: BinaryHeap<Reverse<(u64, u64, u32)>> = BinaryHeap::new();
        let mut seq = 0u64;
        for i in 0..64u32 {
            q.push(Reverse((u64::from(i), seq, i)));
            seq += 1;
        }
        let mut k = 0usize;
        b.iter(|| {
            let Reverse((now, _, id)) = q.pop().expect("queue stays at 64 events");
            k = (k + 1) % DELAYS.len();
            seq += 1;
            q.push(Reverse((now + DELAYS[k], seq, id)));
            black_box(now)
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_slab, bench_network, bench_sharers, bench_classifier,
        bench_line_maps, bench_core_sets, bench_event_queues
);
criterion_main!(benches);
