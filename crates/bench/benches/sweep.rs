//! Sweep-dispatch throughput: the same 16-job grid through `run_jobs`
//! serially (`--jobs 1`) and on the scoped worker pool (`--jobs 2`).
//! The two medians land in `results/bench_summary.json`, so the
//! parallel-sweep speedup — and any regression in the pool's
//! channel/aggregation path — is tracked across PRs alongside the engine
//! benches (suite `sweep`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lacc_experiments::run_jobs;
use lacc_model::SystemConfig;
use lacc_sim::SimOptions;
use lacc_workloads::Benchmark;

const CORES: usize = 8;
const SCALE: f64 = 0.03;
const BENCHES: [Benchmark; 4] =
    [Benchmark::Streamcluster, Benchmark::WaterSp, Benchmark::Concomp, Benchmark::Canneal];

/// The grid both benches dispatch: 4 benchmarks × PCT {1, 2, 4, 8} — the
/// shape of a small figure sweep.
fn grid() -> Vec<(String, Benchmark, SystemConfig)> {
    let mut jobs = Vec::new();
    for &pct in &[1u32, 2, 4, 8] {
        let cfg = SystemConfig::small_for_tests(CORES).with_pct(pct);
        for b in BENCHES {
            jobs.push((format!("pct{pct}"), b, cfg.clone()));
        }
    }
    jobs
}

fn sweep_dispatch(c: &mut Criterion) {
    c.bench_function("run_jobs_16grid/serial", |b| {
        b.iter(|| {
            let out = run_jobs(grid(), SCALE, true, SimOptions::default(), 1);
            black_box(out.len())
        });
    });
    // Workers pinned to 2, not auto: auto resolves to 1 on a single-CPU
    // host and would silently measure the serial branch twice.
    c.bench_function("run_jobs_16grid/parallel", |b| {
        b.iter(|| {
            let out = run_jobs(grid(), SCALE, true, SimOptions::default(), 2);
            black_box(out.len())
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = sweep_dispatch
);
criterion_main!(benches);
