//! Benchmarks of the protocol decision kernel (`DirectoryEntry`) and of
//! whole simulated accesses per second on representative workloads.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lacc_bench::{run_small, run_small_sharded};
use lacc_core::classifier::{RemovalReason, RequestHints};
use lacc_core::home::{AccessKind, DirectoryEntry, HomeRequest};
use lacc_core::DirectoryKind;
use lacc_model::config::ClassifierConfig;
use lacc_model::CoreId;
use lacc_workloads::Benchmark;

fn bench_directory_entry(c: &mut Criterion) {
    let mut g = c.benchmark_group("directory_entry");
    let hints = RequestHints { set_min_last_access: 0, set_has_invalid: true };
    g.bench_function("read_write_invalidate_cycle", |b| {
        let mut e =
            DirectoryEntry::new(DirectoryKind::ackwise4(), &ClassifierConfig::isca13_default(), 64);
        b.iter(|| {
            // Three readers then a writer: the §3.2 hot path.
            for i in 0..3 {
                let core = CoreId::new(i);
                let d = e.begin_request(
                    &HomeRequest { core, kind: AccessKind::Read, hints, instruction: false },
                    10,
                );
                if let Some(o) = d.fetch_from_owner {
                    e.owner_downgraded(o);
                }
                e.complete_grant(core, d.grant);
            }
            let w = CoreId::new(5);
            let d = e.begin_request(
                &HomeRequest { core: w, kind: AccessKind::Write, hints, instruction: false },
                20,
            );
            for i in 0..3 {
                e.sharer_response(CoreId::new(i), 1, RemovalReason::Invalidation);
            }
            e.complete_grant(w, d.grant);
            black_box(e.sharer_response(w, 2, RemovalReason::Eviction));
        });
    });
    g.finish();
}

fn bench_simulated_accesses(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for bench in [Benchmark::WaterSp, Benchmark::Streamcluster, Benchmark::Concomp] {
        let accesses = run_small(bench, 8, 4, 0.05).l1d.total_accesses();
        g.throughput(Throughput::Elements(accesses));
        g.bench_function(format!("sim_{}", bench.name().replace('.', "")), |b| {
            b.iter(|| black_box(run_small(bench, 8, 4, 0.05).completion_time));
        });
    }
    // The sharded engine against its serial oracle on the same workload:
    // shards1 tracks the serial path (it IS the serial path — shards = 1
    // never constructs the plane), shards2 tracks the windowed
    // commit plane, so the pair bounds the sharding overhead over time.
    let accesses = run_small(Benchmark::WaterSp, 8, 4, 0.05).l1d.total_accesses();
    for shards in [1usize, 2] {
        g.throughput(Throughput::Elements(accesses));
        g.bench_function(format!("sim_water-sp_shards{shards}"), |b| {
            b.iter(|| {
                black_box(run_small_sharded(Benchmark::WaterSp, 8, 4, 0.05, shards).completion_time)
            });
        });
    }
    g.finish();
    bench_shard_overhead(c);
}

/// The `--shards 2` sequencing-overhead ratio as one tracked number.
///
/// The two `sim_water-sp_shards{1,2}` medians above are measured minutes
/// apart, so their ratio folds in whatever the machine drifted between
/// them; here the serial and sharded runs alternate round by round —
/// interleaved A/B — so drift lands on both series equally, and the
/// recorded metric is `median(sharded) / median(serial)` as a percentage
/// (100 = parity; the acceptance bar is ≤ 105).
fn bench_shard_overhead(_c: &mut Criterion) {
    if !criterion::is_measuring() {
        return; // cargo-test smoke: the bench_functions above cover the bodies.
    }
    let fast = std::env::var_os("LACC_BENCH_FAST").is_some();
    let rounds = if fast { 2 } else { 15 };
    let time_one = |shards: usize| {
        let t = std::time::Instant::now();
        black_box(run_small_sharded(Benchmark::WaterSp, 8, 4, 0.05, shards).completion_time);
        t.elapsed().as_nanos() as f64
    };
    // One unmeasured warmup pair primes caches and the allocator.
    time_one(1);
    time_one(2);
    let mut serial: Vec<f64> = Vec::with_capacity(rounds);
    let mut sharded: Vec<f64> = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        serial.push(time_one(1));
        sharded.push(time_one(2));
    }
    let median = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let ratio_pct = 100.0 * median(&mut sharded) / median(&mut serial);
    criterion::record_metric("end_to_end/shard_overhead", ratio_pct);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_directory_entry, bench_simulated_accesses
);
criterion_main!(benches);
