//! Decode-plane benchmarks for the LTF trace format: what does pulling a
//! suite workload back off disk cost per op, and what do the v2 stream
//! encoding, the zero-copy cursors, and the batched decode API buy over
//! the v1 trace plane?
//!
//! All three benchmarks decode the *same* workload (every core stream,
//! start to end) per iteration, so their `Melem/s` figures compare
//! directly:
//!
//! - `decode_v1` — the genuine pre-v2 trace plane: one seek-positioned
//!   `BufReader<File>` per core (64 KiB buffer, as the old replay path
//!   held), per-op [`ltf::reader::decode_op`] pulls through `io::Read`,
//!   absolute varint addresses. The file sits in page cache, so this
//!   measures decode plus buffered-read overhead, not disk.
//! - `decode_v2` — the zero-copy [`LtfTrace`] cursor over one shared
//!   buffer, delta-compressed streams, one op per virtual call.
//! - `decode_v2_batch` — the same cursor drained through
//!   [`TraceSource::next_ops`], which is how the engine's shard feeds and
//!   the serial core pull actually consume traces.

use std::io::{BufReader, Seek, SeekFrom, Write};

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lacc_sim::ltf::{self, LtfTrace, SharedBuf};
use lacc_sim::trace::TraceOp;
use lacc_sim::TraceSource;
use lacc_workloads::Benchmark;

/// Matches the engine's shard-feed refill batch (`FEED_BATCH`).
const BATCH: usize = 64;

/// Per-core read-buffer size of the pre-v2 replay path.
const STREAM_BUF_BYTES: usize = 64 * 1024;

fn corpus_workload() -> lacc_sim::trace::Workload {
    Benchmark::WaterSp.build(8, 0.1)
}

fn bench_ltf(c: &mut Criterion) {
    let v1 = ltf::workload_to_ltf_bytes(corpus_workload()).expect("v1 encode");
    let v2 = ltf::workload_to_ltf_bytes_v2(corpus_workload()).expect("v2 encode");
    let (_, ops) = ltf::read_workload_bytes(&v1).expect("v1 decodes");
    let total_ops: u64 = ops.iter().map(|core| core.len() as u64).sum();
    println!(
        "ltf corpus: {} ops, v1 {} bytes, v2 {} bytes ({:.2}x)",
        total_ops,
        v1.len(),
        v2.len(),
        v1.len() as f64 / v2.len() as f64,
    );

    let mut g = c.benchmark_group("ltf");
    g.throughput(Throughput::Elements(total_ops));

    // The v1 plane read files, so the baseline does too: dump the image
    // once, then hold one buffered handle per core exactly as the old
    // `read_workload` did.
    let dir = std::env::temp_dir();
    let v1_path = dir.join(format!("lacc_bench_ltf_v1_{}.ltf", std::process::id()));
    std::fs::File::create(&v1_path)
        .and_then(|mut f| f.write_all(&v1))
        .expect("write v1 corpus file");
    let (header_v1, offsets_v1) = ltf::read_header_bytes(&v1).expect("v1 header");
    assert_eq!(header_v1.version, ltf::VERSION);
    let mut readers: Vec<BufReader<std::fs::File>> = offsets_v1
        .iter()
        .map(|_| {
            let file = std::fs::File::open(&v1_path).expect("open v1 corpus file");
            BufReader::with_capacity(STREAM_BUF_BYTES, file)
        })
        .collect();
    g.bench_function("decode_v1", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for (r, &offset) in readers.iter_mut().zip(&offsets_v1) {
                r.seek(SeekFrom::Start(offset)).expect("seek to stream");
                while let Some(op) = ltf::reader::decode_op(r).expect("valid v1 stream") {
                    black_box(op);
                    n += 1;
                }
            }
            assert_eq!(n, total_ops);
            n
        });
    });

    let buf = SharedBuf::from_vec(v2);
    let (header_v2, offsets_v2) = ltf::read_header_bytes(&buf).expect("v2 header");
    assert_eq!(header_v2.version, ltf::VERSION_V2);
    let mut traces: Vec<LtfTrace> = offsets_v2
        .iter()
        .map(|&o| LtfTrace::open(buf.clone(), o as usize, &header_v2).expect("valid v2 stream"))
        .collect();

    g.bench_function("decode_v2", |b| {
        b.iter(|| {
            let mut n = 0u64;
            for trace in &mut traces {
                trace.reset();
                while let Some(op) = trace.next_op() {
                    black_box(op);
                    n += 1;
                }
            }
            assert_eq!(n, total_ops);
            n
        });
    });

    g.bench_function("decode_v2_batch", |b| {
        let mut batch: Vec<TraceOp> = Vec::with_capacity(BATCH);
        b.iter(|| {
            let mut n = 0u64;
            for trace in &mut traces {
                trace.reset();
                loop {
                    batch.clear();
                    let got = trace.next_ops(&mut batch, BATCH);
                    n += black_box(&batch).len() as u64;
                    if got < BATCH {
                        break;
                    }
                }
            }
            assert_eq!(n, total_ops);
            n
        });
    });
    g.finish();

    drop(readers);
    let _ = std::fs::remove_file(&v1_path);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(200);
    targets = bench_ltf
);
criterion_main!(benches);
