//! Scaled-down per-figure harness runs: each bench exercises exactly the
//! code path that regenerates one paper figure, so `cargo bench` both
//! times them and continuously verifies they run. Full-scale regeneration
//! uses the `lacc-experiments` binaries (see EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lacc_bench::run_small;
use lacc_experiments::{fig12_variants, fig13_variants, geomean};
use lacc_model::SystemConfig;
use lacc_sim::Simulator;
use lacc_workloads::Benchmark;

const B: Benchmark = Benchmark::Streamcluster;
const CORES: usize = 8;
const SCALE: f64 = 0.03;

fn fig01_02(c: &mut Criterion) {
    c.bench_function("fig01_02_utilization_histograms", |b| {
        b.iter(|| {
            let r = run_small(B, CORES, 1, SCALE);
            black_box((r.inval_histogram.fractions(), r.evict_histogram.fractions()))
        });
    });
}

fn fig08_09_10_11(c: &mut Criterion) {
    c.bench_function("fig08_to_11_pct_point", |b| {
        // One (benchmark, PCT) grid point: the unit of work all four
        // PCT-sweep figures share.
        b.iter(|| {
            let r = run_small(B, CORES, 4, SCALE);
            black_box((r.energy.total(), r.completion_time, r.l1d.miss_rate()))
        });
    });
    c.bench_function("fig11_geomean_mini_sweep", |b| {
        b.iter(|| {
            let mut times = vec![];
            for pct in [1, 4] {
                times.push(run_small(B, CORES, pct, SCALE).completion_time as f64);
            }
            black_box(geomean(&[times[1] / times[0]]))
        });
    });
}

fn fig12(c: &mut Criterion) {
    c.bench_function("fig12_rat_variant_point", |b| {
        let (_, ccfg) = fig12_variants()[3]; // L-2,T-16 (the default)
        b.iter(|| {
            let cfg = SystemConfig::small_for_tests(CORES).with_classifier(ccfg);
            let r = Simulator::new(cfg, B.build(CORES, SCALE)).unwrap().run();
            black_box(r.energy.total())
        });
    });
}

fn fig13(c: &mut Criterion) {
    c.bench_function("fig13_limitedk_point", |b| {
        let variants = fig13_variants(CORES);
        let (_, ccfg) = variants[1]; // Limited-3
        b.iter(|| {
            let cfg = SystemConfig::small_for_tests(CORES).with_classifier(ccfg);
            let r = Simulator::new(cfg, B.build(CORES, SCALE)).unwrap().run();
            black_box(r.completion_time)
        });
    });
}

fn fig14(c: &mut Criterion) {
    c.bench_function("fig14_oneway_ratio", |b| {
        b.iter(|| {
            let two = run_small(B, CORES, 4, SCALE);
            let mut cfg = SystemConfig::small_for_tests(CORES);
            cfg.classifier.one_way = true;
            let one = Simulator::new(cfg, B.build(CORES, SCALE)).unwrap().run();
            black_box(one.completion_time as f64 / two.completion_time as f64)
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig01_02, fig08_09_10_11, fig12, fig13, fig14
);
criterion_main!(benches);
