//! Dev probe for the `--shards 2` overhead: interleaved A/B timing of
//! the exact workload the `end_to_end/shard_overhead` bench tracks,
//! with per-phase breakdown via `LACC_SIM_PROFILE=1`.

use lacc_bench::run_small_sharded;
use lacc_workloads::Benchmark;

fn main() {
    let rounds: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(9);
    let time_one = |shards: usize| {
        let t = std::time::Instant::now();
        std::hint::black_box(run_small_sharded(Benchmark::WaterSp, 8, 4, 0.05, shards));
        t.elapsed().as_secs_f64() * 1e3
    };
    time_one(1);
    time_one(2);
    let mut serial = Vec::new();
    let mut sharded = Vec::new();
    for _ in 0..rounds {
        serial.push(time_one(1));
        sharded.push(time_one(2));
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let (s, sh) = (med(&mut serial), med(&mut sharded));
    println!("serial {s:.3} ms  sharded {sh:.3} ms  ratio {:.2}%", 100.0 * sh / s);
    println!(
        "min    {:.3} ms          {:.3} ms        {:.2}%",
        serial[0],
        sharded[0],
        100.0 * sharded[0] / serial[0]
    );

    // Fixed-cost isolation: a near-empty workload is dominated by
    // construction + drain, so the 1-vs-2 gap here is the per-run
    // constant overhead rather than per-event cost.
    let tiny = |shards: usize| {
        let t = std::time::Instant::now();
        for _ in 0..20 {
            std::hint::black_box(run_small_sharded(Benchmark::WaterSp, 8, 4, 0.001, shards));
        }
        t.elapsed().as_secs_f64() * 1e3 / 20.0
    };
    tiny(1);
    tiny(2);
    let (t1, t2) = (tiny(1), tiny(2));
    println!("tiny serial {t1:.3} ms  tiny sharded {t2:.3} ms  fixed gap {:.3} ms", t2 - t1);
}
