//! # lacc-bench — Criterion benchmarks
//!
//! Four suites, run with `cargo bench`:
//!
//! * `substrates` — micro-benchmarks of the building blocks (set-assoc
//!   cache, mesh routing/contention, sharer trackers, classifiers);
//! * `protocol` — the directory-entry decision kernel under realistic
//!   request mixes;
//! * `figures` — scaled-down runs of the per-figure experiment harness,
//!   so the cost of regenerating each paper figure is tracked;
//! * `sweep` — the same job grid through `run_jobs` serially and on the
//!   scoped worker pool, so the parallel-sweep speedup is tracked.
//!
//! Helpers shared by the suites live here.

use lacc_model::SystemConfig;
use lacc_sim::{SimOptions, SimReport, Simulator};
use lacc_workloads::Benchmark;

/// Runs `bench` on an `n`-core test machine at `scale` with the given PCT.
///
/// # Panics
///
/// Panics on configuration errors or coherence violations — benchmarks
/// must measure correct executions only.
#[must_use]
pub fn run_small(bench: Benchmark, cores: usize, pct: u32, scale: f64) -> SimReport {
    run_small_sharded(bench, cores, pct, scale, 1)
}

/// [`run_small`] on the sharded engine (`--shards N`). `shards = 1` is
/// the serial engine; any other count must produce the identical report,
/// so the `end_to_end` suite benches both and the delta is pure engine
/// overhead/speedup.
///
/// # Panics
///
/// As [`run_small`].
#[must_use]
pub fn run_small_sharded(
    bench: Benchmark,
    cores: usize,
    pct: u32,
    scale: f64,
    shards: usize,
) -> SimReport {
    let cfg = SystemConfig::small_for_tests(cores).with_pct(pct);
    let opts = SimOptions { shards, ..SimOptions::default() };
    let r =
        Simulator::with_options(cfg, bench.build(cores, scale), opts).expect("valid config").run();
    assert_eq!(r.monitor.violations, 0);
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_small_is_usable_from_benches() {
        let r = run_small(Benchmark::WaterSp, 4, 4, 0.02);
        assert!(r.completion_time > 0);
    }
}
