//! # lacc_mc — exhaustive small-config model checking of the protocol core
//!
//! Enumerates **every reachable interleaving** of tiny configurations
//! (2–3 cores, 1–2 shared lines) of the real simulator — the checker
//! drives `Simulator::fire_choice`, which dispatches through the exact
//! transition functions of the shipping engine — and asserts the four
//! invariant families of DESIGN.md §8 at every state:
//!
//! 1. **SWMR** — at most one writable L1 copy of a line, and a writable
//!    copy is the only copy;
//! 2. **data value** — every read returned the last serialized write, and
//!    every at-rest resident copy matches the shadow oracle;
//! 3. **directory agreement** — the home's sharer tracking covers the
//!    real L1 copies and its exclusive-owner claim is accurate;
//! 4. **slab audit** — refcounted data handles balance their owners at
//!    every state, not just at end of run.
//!
//! Terminal states additionally satisfy **quiescence**: all cores
//! finished, no live transaction, waiter or blocked core.
//!
//! State deduplication uses a canonical fingerprint with symmetry
//! reduction over interchangeable cores (`Simulator::fingerprint`).
//! The checker itself is validated by mutation testing
//! ([`run_mutation`]): six seeded protocol bugs (the
//! [`FaultInjection`] variants) must each be killed with a replayable
//! counterexample.

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use lacc_core::rnuca::RegionClass;
use lacc_model::config::DirectoryKind;
use lacc_model::{Addr, LineAddr, SystemConfig};
use lacc_sim::trace::{default_instr_base, RegionDecl, TraceOp, TraceSource, VecTrace, Workload};
use lacc_sim::{FaultInjection, Simulator};

/// First line of the shared region the scenarios touch.
pub const LINE_A: u64 = 0x40;
/// Second shared line (the two-line scenarios).
pub const LINE_B: u64 = 0x41;

fn word_addr(line: u64, word: u64) -> Addr {
    Addr::new(line * 64 + word * 8)
}

fn load(line: u64) -> TraceOp {
    TraceOp::Load { addr: word_addr(line, 0) }
}

fn store(line: u64, value: u64) -> TraceOp {
    TraceOp::Store { addr: word_addr(line, 0), value }
}

// ---------------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------------

/// A small workload the checker enumerates exhaustively.
///
/// Symmetry-reduction soundness (see `Simulator::fingerprint`) requires
/// every touched region to be declared [`RegionClass::Shared`] (homes
/// then depend only on the address) and `sym_groups` to list only cores
/// with **identical** scripts, store values included.
pub struct Scenario {
    /// Display name.
    pub name: &'static str,
    /// Machine size the scenario is built for.
    pub cores: usize,
    /// Distinct shared lines the scripts touch.
    pub lines: u64,
    /// Groups of interchangeable (identical-script) cores.
    pub sym_groups: Vec<Vec<usize>>,
    /// Builds a fresh workload (the checker replays from the root, so
    /// this is called once per explored state).
    pub build: fn() -> Workload,
}

fn workload(name: &str, lines: u64, scripts: Vec<Vec<TraceOp>>) -> Workload {
    Workload {
        name: name.into(),
        traces: scripts
            .into_iter()
            .map(|s| Box::new(VecTrace::new(s)) as Box<dyn TraceSource>)
            .collect(),
        regions: vec![RegionDecl {
            first_line: LineAddr::new(LINE_A),
            lines,
            class: RegionClass::Shared,
        }],
        instr_lines: 0,
        instr_base: default_instr_base(),
    }
}

/// The scenario registry: every named small workload the checker knows.
#[must_use]
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "ping_pong",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || {
                workload(
                    "ping_pong",
                    1,
                    vec![
                        vec![store(LINE_A, 1), load(LINE_A)],
                        vec![store(LINE_A, 2), load(LINE_A)],
                    ],
                )
            },
        },
        Scenario {
            name: "reader_writer",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || {
                workload("reader_writer", 1, vec![vec![load(LINE_A)], vec![store(LINE_A, 9)]])
            },
        },
        Scenario {
            name: "upgrade_race",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || {
                workload(
                    "upgrade_race",
                    1,
                    vec![
                        vec![load(LINE_A), store(LINE_A, 3)],
                        vec![load(LINE_A), store(LINE_A, 4)],
                    ],
                )
            },
        },
        Scenario {
            name: "symmetric_writers",
            cores: 2,
            lines: 1,
            sym_groups: vec![vec![0, 1]],
            build: || {
                workload(
                    "symmetric_writers",
                    1,
                    vec![
                        vec![store(LINE_A, 5), load(LINE_A)],
                        vec![store(LINE_A, 5), load(LINE_A)],
                    ],
                )
            },
        },
        Scenario {
            name: "barrier_handoff",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || {
                workload(
                    "barrier_handoff",
                    1,
                    vec![
                        vec![store(LINE_A, 7), TraceOp::Barrier { id: 0 }],
                        vec![TraceOp::Barrier { id: 0 }, load(LINE_A)],
                    ],
                )
            },
        },
        Scenario {
            name: "two_lines",
            cores: 2,
            lines: 2,
            sym_groups: vec![],
            build: || {
                workload(
                    "two_lines",
                    2,
                    vec![
                        vec![store(LINE_A, 1), load(LINE_B)],
                        vec![store(LINE_B, 2), load(LINE_A)],
                    ],
                )
            },
        },
        Scenario {
            name: "three_core_mix",
            cores: 3,
            lines: 1,
            sym_groups: vec![vec![1, 2]],
            build: || {
                workload(
                    "three_core_mix",
                    1,
                    vec![vec![store(LINE_A, 1)], vec![load(LINE_A)], vec![load(LINE_A)]],
                )
            },
        },
    ]
}

/// The directory/classifier configurations each scenario runs under:
/// full-map and ACKwise_1 directories, each in a mostly-private
/// (`pct = 1`) and a remote-then-promoted (`pct = 4`) classifier mode.
#[must_use]
pub fn config_matrix(cores: usize) -> Vec<(String, SystemConfig)> {
    let mut out = Vec::new();
    for (dname, dir) in
        [("fullmap", DirectoryKind::FullMap), ("ackwise1", DirectoryKind::AckWise { pointers: 1 })]
    {
        for pct in [1u32, 4] {
            out.push((
                format!("{dname}/pct{pct}"),
                SystemConfig::small_for_tests(cores).with_directory(dir).with_pct(pct),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Enumeration
// ---------------------------------------------------------------------------

/// Bounds for one enumeration.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Maximum path length; `None` enumerates the full reachable space.
    pub depth: Option<usize>,
    /// Safety cap on distinct states (a runaway backstop, not a target).
    pub max_states: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig { depth: None, max_states: 2_000_000 }
    }
}

/// A violating run: the choice sequence is the replayable artifact —
/// feed it back through [`replay`] to reproduce the failure on the
/// normal engine.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// Enabled-choice indices from the initial state.
    pub path: Vec<u16>,
    /// Human-readable labels of the fired events.
    pub choices: Vec<String>,
    /// What broke (invariant description or handler panic message).
    pub error: String,
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "violation: {}", self.error)?;
        writeln!(f, "replay path {:?}:", self.path)?;
        for (i, c) in self.choices.iter().enumerate() {
            writeln!(f, "  {i:3}. {c}")?;
        }
        Ok(())
    }
}

/// Outcome of one enumeration.
#[derive(Clone, Debug, Default)]
pub struct CheckResult {
    /// Distinct canonical states visited.
    pub states: usize,
    /// Transitions that reached an already-visited state.
    pub duplicates: u64,
    /// Quiescent terminal states.
    pub terminals: usize,
    /// Longest explored path.
    pub max_depth: usize,
    /// `true` if the `max_states` cap stopped the enumeration.
    pub capped: bool,
    /// The first violation found, if any.
    pub violation: Option<Counterexample>,
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    e.downcast_ref::<&str>().map(|s| (*s).to_string()).unwrap_or_else(|| {
        e.downcast_ref::<String>().cloned().unwrap_or_else(|| "non-string panic payload".into())
    })
}

/// Rebuilds the simulator and replays a choice path through the real
/// engine, catching handler panics (which are protocol-bug detectors).
///
/// # Errors
///
/// Returns the panic message if any fired handler panicked.
pub fn replay(
    cfg: &SystemConfig,
    scenario: &Scenario,
    fault: Option<FaultInjection>,
    path: &[u16],
) -> Result<Simulator, String> {
    let cfg = cfg.clone();
    let wl = (scenario.build)();
    catch_unwind(AssertUnwindSafe(move || {
        let mut sim = Simulator::for_exploration(cfg, wl, fault).expect("exploration config");
        for &k in path {
            sim.fire_choice(usize::from(k));
        }
        sim
    }))
    .map_err(|e| format!("handler panic: {}", panic_message(e)))
}

/// Replays `path`, collecting the label of each fired choice (stops at a
/// panicking step, returning the labels gathered so far).
fn describe_path(
    cfg: &SystemConfig,
    scenario: &Scenario,
    fault: Option<FaultInjection>,
    path: &[u16],
) -> Vec<String> {
    let mut labels = Vec::new();
    let cfgc = cfg.clone();
    let wl = (scenario.build)();
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Simulator::for_exploration(cfgc, wl, fault).expect("exploration config");
        for &k in path {
            let choices = sim.enabled_choices();
            labels.push(
                choices.get(usize::from(k)).cloned().unwrap_or_else(|| format!("choice #{k}")),
            );
            sim.fire_choice(usize::from(k));
        }
    }));
    labels
}

/// Builds the core permutations the fingerprint minimizes over: the
/// identity composed with every permutation within each symmetry group.
#[must_use]
pub fn symmetry_perms(cores: usize, groups: &[Vec<usize>]) -> Vec<Vec<usize>> {
    fn arrangements(items: &[usize]) -> Vec<Vec<usize>> {
        if items.len() <= 1 {
            return vec![items.to_vec()];
        }
        let mut out = Vec::new();
        for i in 0..items.len() {
            let mut rest = items.to_vec();
            let first = rest.remove(i);
            for mut tail in arrangements(&rest) {
                tail.insert(0, first);
                out.push(tail);
            }
        }
        out
    }

    let mut perms: Vec<Vec<usize>> = vec![(0..cores).collect()];
    for group in groups {
        let mut next = Vec::new();
        for base in &perms {
            for arr in arrangements(group) {
                let mut p = base.clone();
                for (&slot, &role) in group.iter().zip(arr.iter()) {
                    p[slot] = role;
                }
                next.push(p);
            }
        }
        perms = next;
    }
    perms
}

/// Exhaustive DFS over every reachable interleaving of `scenario` on
/// `cfg` (optionally with a seeded fault), checking the invariants at
/// every distinct state. States are deduplicated by canonical
/// fingerprint with symmetry reduction; the simulator is rebuilt and
/// the path replayed per state (the engine is not cloneable), which the
/// tiny configurations keep affordable.
#[must_use]
pub fn explore(
    cfg: &SystemConfig,
    scenario: &Scenario,
    fault: Option<FaultInjection>,
    ck: CheckConfig,
) -> CheckResult {
    let perms = symmetry_perms(cfg.num_cores, &scenario.sym_groups);
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut stack: Vec<Vec<u16>> = vec![Vec::new()];
    let mut result = CheckResult::default();

    while let Some(path) = stack.pop() {
        if result.states >= ck.max_states {
            result.capped = true;
            break;
        }
        let mut sim = match replay(cfg, scenario, fault, &path) {
            Ok(sim) => sim,
            Err(error) => {
                result.violation = Some(Counterexample {
                    choices: describe_path(cfg, scenario, fault, &path),
                    path,
                    error,
                });
                break;
            }
        };
        if !visited.insert(sim.fingerprint(&perms)) {
            result.duplicates += 1;
            continue;
        }
        result.states += 1;
        result.max_depth = result.max_depth.max(path.len());

        let checked = catch_unwind(AssertUnwindSafe(|| sim.check_invariants()))
            .unwrap_or_else(|e| Err(format!("invariant check panic: {}", panic_message(e))));
        if let Err(error) = checked {
            result.violation = Some(Counterexample {
                choices: describe_path(cfg, scenario, fault, &path),
                path,
                error,
            });
            break;
        }

        let enabled = sim.enabled_count();
        if enabled == 0 {
            result.terminals += 1;
            if let Err(error) = sim.check_quiescent() {
                result.violation = Some(Counterexample {
                    choices: describe_path(cfg, scenario, fault, &path),
                    path,
                    error,
                });
                break;
            }
        } else if ck.depth.map_or(true, |d| path.len() < d) {
            for k in (0..enabled).rev() {
                let mut child = path.clone();
                child.push(u16::try_from(k).expect("enabled set fits u16"));
                stack.push(child);
            }
        }
    }
    result
}

// ---------------------------------------------------------------------------
// Mutation testing
// ---------------------------------------------------------------------------

/// Every seeded protocol bug the checker must kill.
pub const MUTANTS: [FaultInjection; 6] = [
    FaultInjection::DropInvalidation,
    FaultInjection::StaleGrant,
    FaultInjection::SkippedAckDecrement,
    FaultInjection::WrongSharerClear,
    FaultInjection::PrematureTxnRetire,
    FaultInjection::MonitorWordSkew,
];

/// The minimal scenario that exposes each mutant (see DESIGN.md §8.4).
#[must_use]
pub fn mutant_scenario(fault: FaultInjection) -> Scenario {
    match fault {
        // These need an invalidation round: a reader holds a private
        // copy when the other core's store arrives at the home.
        FaultInjection::DropInvalidation
        | FaultInjection::SkippedAckDecrement
        | FaultInjection::WrongSharerClear => Scenario {
            name: "mutant_read_then_remote_store",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || workload("mutant_rw", 1, vec![vec![load(LINE_A)], vec![store(LINE_A, 9)]]),
        },
        // These need a dirty owner serving a later read: the stale grant
        // ships zeroes where the write-back put real data, and the
        // premature retire loses the in-flight write-back.
        FaultInjection::StaleGrant | FaultInjection::PrematureTxnRetire => Scenario {
            name: "mutant_store_then_remote_load",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || workload("mutant_wr", 1, vec![vec![store(LINE_A, 5)], vec![load(LINE_A)]]),
        },
        // A single core writing then reading its own line: the skewed
        // oracle disagrees with a perfectly coherent machine.
        FaultInjection::MonitorWordSkew => Scenario {
            name: "mutant_self_check",
            cores: 2,
            lines: 1,
            sym_groups: vec![],
            build: || workload("mutant_self", 1, vec![vec![store(LINE_A, 5), load(LINE_A)]]),
        },
    }
}

/// Result of hunting one mutant across the configuration matrix.
#[derive(Debug)]
pub struct MutationOutcome {
    /// The seeded bug.
    pub fault: FaultInjection,
    /// The configuration that killed it (empty if it survived).
    pub config: String,
    /// States explored before the kill (summed over configs tried).
    pub states_explored: usize,
    /// The replayable counterexample (`None` means the mutant SURVIVED —
    /// a checker bug).
    pub counterexample: Option<Counterexample>,
}

/// Runs the enumerator against one seeded mutant over the configuration
/// matrix, stopping at the first kill.
#[must_use]
pub fn run_mutation(fault: FaultInjection, ck: CheckConfig) -> MutationOutcome {
    let scenario = mutant_scenario(fault);
    let mut states = 0;
    for (name, cfg) in config_matrix(scenario.cores) {
        let r = explore(&cfg, &scenario, Some(fault), ck);
        states += r.states;
        if let Some(cx) = r.violation {
            return MutationOutcome {
                fault,
                config: name,
                states_explored: states,
                counterexample: Some(cx),
            };
        }
    }
    MutationOutcome { fault, config: String::new(), states_explored: states, counterexample: None }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(name: &str) -> Scenario {
        scenarios().into_iter().find(|s| s.name == name).expect("known scenario")
    }

    /// The acceptance-criterion run: full (un-depth-bounded) enumeration
    /// of a 2-core, 1-line config in both directory flavors, every
    /// invariant holding over the whole space.
    #[test]
    fn full_enumeration_two_cores_one_line_is_clean() {
        for (name, cfg) in config_matrix(2) {
            let r = explore(&cfg, &scenario("reader_writer"), None, CheckConfig::default());
            assert!(r.violation.is_none(), "[{name}] {}", r.violation.unwrap());
            assert!(!r.capped, "[{name}] enumeration hit the state cap");
            assert!(r.states > 10, "[{name}] suspiciously small space: {} states", r.states);
            assert!(r.terminals > 0, "[{name}] no terminal state reached");
            assert!(r.duplicates > 0, "[{name}] dedup never fired");
        }
    }

    /// Symmetry reduction folds permuted runs of identical cores into
    /// one canonical orbit: the reduced space must be strictly smaller.
    #[test]
    fn symmetry_reduction_shrinks_the_symmetric_space() {
        let cfg = config_matrix(2).remove(0).1;
        let sym = scenario("symmetric_writers");
        let mut nosym = scenario("symmetric_writers");
        nosym.sym_groups.clear();
        let ck = CheckConfig::default();
        let with = explore(&cfg, &sym, None, ck);
        let without = explore(&cfg, &nosym, None, ck);
        assert!(with.violation.is_none() && without.violation.is_none());
        assert!(
            with.states < without.states,
            "symmetry reduction had no effect: {} vs {}",
            with.states,
            without.states
        );
    }

    /// Barriers participate in the interleaving too; the sync-blocked
    /// states must drain (quiescence holds everywhere).
    #[test]
    fn barrier_scenario_is_clean() {
        let cfg = config_matrix(2).remove(0).1;
        let r = explore(&cfg, &scenario("barrier_handoff"), None, CheckConfig::default());
        assert!(r.violation.is_none(), "{}", r.violation.unwrap());
        assert!(r.terminals > 0);
    }

    /// The mutation kill matrix: every seeded protocol bug must be
    /// killed, and its counterexample must replay to the same failure
    /// through the normal engine.
    #[test]
    fn all_seeded_mutants_are_killed() {
        let ck = CheckConfig::default();
        let mut survivors = Vec::new();
        for fault in MUTANTS {
            let outcome = run_mutation(fault, ck);
            match outcome.counterexample {
                None => survivors.push(fault),
                Some(cx) => {
                    // Replay the artifact: rebuilding the simulator and
                    // re-firing the recorded choices must reproduce a
                    // failure (panic or invariant violation), not a
                    // clean state.
                    let sc = mutant_scenario(fault);
                    let cfg = config_matrix(sc.cores)
                        .into_iter()
                        .find(|(n, _)| *n == outcome.config)
                        .expect("killing config exists")
                        .1;
                    let reproduced = match replay(&cfg, &sc, Some(fault), &cx.path) {
                        Err(_) => true,
                        Ok(mut sim) => {
                            catch_unwind(AssertUnwindSafe(|| sim.check_invariants()))
                                .map_or(true, |r| r.is_err())
                                || (sim.enabled_count() == 0 && sim.check_quiescent().is_err())
                        }
                    };
                    assert!(reproduced, "{fault:?}: counterexample did not replay:\n{cx}");
                    assert!(!cx.choices.is_empty(), "{fault:?}: empty counterexample");
                }
            }
        }
        assert!(survivors.is_empty(), "mutants survived the checker: {survivors:?}");
    }

    /// A clean run under every mutant scenario *without* the fault —
    /// the kills come from the seeded bugs, not from flaky scenarios.
    #[test]
    fn mutant_scenarios_are_clean_without_the_fault() {
        for fault in MUTANTS {
            let sc = mutant_scenario(fault);
            let cfg = config_matrix(sc.cores).remove(0).1;
            let r = explore(&cfg, &sc, None, CheckConfig::default());
            assert!(r.violation.is_none(), "[{fault:?}] {}", r.violation.unwrap());
        }
    }
}
