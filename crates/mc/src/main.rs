//! CLI for the model checker: enumerate scenario × configuration
//! matrices, print reachable-state counts, and run the mutation kill
//! matrix. Exits nonzero on any violation (or surviving mutant), so CI
//! can gate on it. See docs/EXPERIMENTS.md ("Model checking").

use std::process::ExitCode;

use lacc_mc::{config_matrix, explore, run_mutation, scenarios, CheckConfig, MUTANTS};

const USAGE: &str = "\
usage: lacc_mc [--cores N] [--lines N] [--depth N | --depth-full]
               [--max-states N] [--mutations] [--shard-plane]

  --cores N      machine size of the scenarios to run (default 2)
  --lines N      max distinct shared lines of the scenarios (default 1)
  --depth N      bound explored paths at N choices
  --depth-full   no depth bound: enumerate the full reachable space (default)
  --max-states N safety cap on distinct states (default 2000000)
  --mutations    run the mutation kill matrix instead of the clean sweep
  --shard-plane  differential-check the windowed shard plane's barrier
                 boundary against the serial oracle (honors --depth,
                 default 4 reaction steps) instead of the protocol sweep
";

fn parse_num(args: &mut std::env::Args, flag: &str) -> usize {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("{flag} needs a numeric argument\n{USAGE}"))
}

fn main() -> ExitCode {
    let mut cores = 2usize;
    let mut lines = 1u64;
    let mut ck = CheckConfig::default();
    let mut mutations = false;
    let mut shard_plane = false;

    let mut args = std::env::args();
    let _ = args.next();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cores" => cores = parse_num(&mut args, "--cores"),
            "--lines" => lines = parse_num(&mut args, "--lines") as u64,
            "--depth" => ck.depth = Some(parse_num(&mut args, "--depth")),
            "--depth-full" => ck.depth = None,
            "--max-states" => ck.max_states = parse_num(&mut args, "--max-states"),
            "--mutations" => mutations = true,
            "--shard-plane" => shard_plane = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    if shard_plane {
        let depth = ck.depth.unwrap_or(4);
        return match lacc_sim::engine::planecheck::check_shard_plane(depth) {
            Ok(r) => {
                println!(
                    "shard-plane        depth {:<5} configs {:>7}  paths {:>9}  pops {:>9}  ok",
                    depth, r.configs, r.paths, r.pops
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                println!("FAIL shard-plane\n{e}");
                ExitCode::FAILURE
            }
        };
    }

    // Handler panics are kills the checker catches and reports; keep
    // their default backtrace spew out of the report.
    std::panic::set_hook(Box::new(|_| {}));

    if mutations {
        return run_mutations(ck);
    }

    let mut failed = false;
    for scenario in scenarios() {
        if scenario.cores != cores || scenario.lines > lines {
            continue;
        }
        for (cfg_name, cfg) in config_matrix(scenario.cores) {
            let r = explore(&cfg, &scenario, None, ck);
            let depth = ck.depth.map_or_else(|| "full".into(), |d| format!("≤{d}"));
            println!(
                "{:<18} {:<14} depth {:<5} states {:>7}  dups {:>7}  terminals {:>5}  max-path {}{}",
                scenario.name,
                cfg_name,
                depth,
                r.states,
                r.duplicates,
                r.terminals,
                r.max_depth,
                if r.capped { "  [CAPPED]" } else { "" },
            );
            if let Some(cx) = r.violation {
                println!("FAIL {} [{}]\n{cx}", scenario.name, cfg_name);
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_mutations(ck: CheckConfig) -> ExitCode {
    let mut survivors = 0;
    for fault in MUTANTS {
        let outcome = run_mutation(fault, ck);
        match outcome.counterexample {
            Some(cx) => {
                println!(
                    "KILLED   {:<22} [{}] after {} states, {}-step counterexample",
                    format!("{fault:?}"),
                    outcome.config,
                    outcome.states_explored,
                    cx.path.len()
                );
                for line in cx.to_string().lines() {
                    println!("    {line}");
                }
            }
            None => {
                println!(
                    "SURVIVED {:<22} after {} states — the checker missed it",
                    format!("{fault:?}"),
                    outcome.states_explored
                );
                survivors += 1;
            }
        }
    }
    if survivors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
