//! Dynamic-energy model of the memory system and interconnect.
//!
//! The paper evaluates *dynamic* energy of the caches (McPAT) and network
//! (DSENT) at the 11 nm node (§4.2). Neither tool is available offline, so
//! this crate encodes per-event energies whose **ratios** carry the paper's
//! argument (see `DESIGN.md`):
//!
//! * the L2 is **word-addressable** (§4.2), so a word access is much cheaper
//!   than a line access — this is what makes remote-word misses cheaper than
//!   whole-line movement;
//! * at 11 nm, "network links have a higher contribution to the energy
//!   consumption than network routers ... attributed to the poor scaling
//!   trends of wires compared to transistors" (§5.1.1) — the per-flit link
//!   energy exceeds the per-flit router energy;
//! * directory energy "is negligible compared to all other sources" (§5.1.1)
//!   — per-event directory energies are an order of magnitude below cache
//!   accesses.
//!
//! The simulator increments an [`EnergyCounts`] ledger; [`EnergyParams`]
//! converts the ledger into the Figure-8 [`EnergyBreakdown`].
//!
//! # Examples
//!
//! ```
//! use lacc_energy::{EnergyCounts, EnergyParams};
//!
//! let params = EnergyParams::isca13_11nm();
//! let mut counts = EnergyCounts::default();
//! counts.l1d_reads = 1000;
//! counts.link_flits = 500;
//! let breakdown = params.charge(&counts);
//! assert!(breakdown.l1d > 0.0 && breakdown.link > 0.0);
//! assert_eq!(breakdown.l2, 0.0);
//! ```

use lacc_model::EnergyBreakdown;

/// Per-event dynamic energies in picojoules at the 11 nm node.
///
/// All values are exposed so ablation experiments can perturb them; the
/// [`EnergyParams::isca13_11nm`] constructor is the calibrated default used
/// by every figure.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyParams {
    /// L1-I read (per instruction-fetch access).
    pub l1i_read: f64,
    /// L1-I fill (line install).
    pub l1i_fill: f64,
    /// L1-D read hit (data + tag; the utilization-counter update rides the
    /// LRU tag write the cache performs anyway, §3.6).
    pub l1d_read: f64,
    /// L1-D write hit.
    pub l1d_write: f64,
    /// L1-D tag-only probe (miss detection).
    pub l1d_tag_probe: f64,
    /// L1-D line fill / eviction read-out.
    pub l1d_fill: f64,
    /// L2 whole-line read (private-sharer data return, write-backs).
    pub l2_line_read: f64,
    /// L2 whole-line write (DRAM fill, dirty write-back absorb).
    pub l2_line_write: f64,
    /// L2 single-word read (remote-sharer load, §4.2 word-addressable).
    pub l2_word_read: f64,
    /// L2 single-word write (remote-sharer store).
    pub l2_word_write: f64,
    /// L2 tag probe.
    pub l2_tag_probe: f64,
    /// Directory entry read (integrated in the L2 tag array).
    pub dir_read: f64,
    /// Directory entry update (sharer pointers, utilization counters,
    /// mode/RAT bits).
    pub dir_update: f64,
    /// Router traversal, per flit.
    pub router_flit: f64,
    /// Link traversal, per flit per hop.
    pub link_flit: f64,
}

impl EnergyParams {
    /// Calibrated 11 nm defaults (see crate docs for the ratio rationale).
    #[must_use]
    pub fn isca13_11nm() -> Self {
        EnergyParams {
            l1i_read: 3.2,
            l1i_fill: 6.0,
            l1d_read: 5.0,
            l1d_write: 5.6,
            l1d_tag_probe: 1.2,
            l1d_fill: 11.0,
            l2_line_read: 55.0,
            l2_line_write: 60.0,
            l2_word_read: 10.5,
            l2_word_write: 11.5,
            l2_tag_probe: 2.4,
            dir_read: 0.9,
            dir_update: 1.1,
            router_flit: 1.5,
            link_flit: 3.0,
        }
    }

    /// Converts an event ledger into the Figure-8 component breakdown.
    #[must_use]
    pub fn charge(&self, c: &EnergyCounts) -> EnergyBreakdown {
        EnergyBreakdown {
            l1i: c.l1i_reads as f64 * self.l1i_read + c.l1i_fills as f64 * self.l1i_fill,
            l1d: c.l1d_reads as f64 * self.l1d_read
                + c.l1d_writes as f64 * self.l1d_write
                + c.l1d_tag_probes as f64 * self.l1d_tag_probe
                + c.l1d_fills as f64 * self.l1d_fill,
            l2: c.l2_line_reads as f64 * self.l2_line_read
                + c.l2_line_writes as f64 * self.l2_line_write
                + c.l2_word_reads as f64 * self.l2_word_read
                + c.l2_word_writes as f64 * self.l2_word_write
                + c.l2_tag_probes as f64 * self.l2_tag_probe,
            directory: c.dir_reads as f64 * self.dir_read + c.dir_updates as f64 * self.dir_update,
            router: c.router_flits as f64 * self.router_flit,
            link: c.link_flits as f64 * self.link_flit,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::isca13_11nm()
    }
}

/// Ledger of energy-consuming events, incremented by the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EnergyCounts {
    /// Instruction-fetch reads of the L1-I.
    pub l1i_reads: u64,
    /// L1-I line fills.
    pub l1i_fills: u64,
    /// L1-D read hits.
    pub l1d_reads: u64,
    /// L1-D write hits.
    pub l1d_writes: u64,
    /// L1-D miss tag probes.
    pub l1d_tag_probes: u64,
    /// L1-D line fills and eviction read-outs.
    pub l1d_fills: u64,
    /// L2 whole-line reads.
    pub l2_line_reads: u64,
    /// L2 whole-line writes.
    pub l2_line_writes: u64,
    /// L2 word reads (remote sharers).
    pub l2_word_reads: u64,
    /// L2 word writes (remote sharers).
    pub l2_word_writes: u64,
    /// L2 tag probes.
    pub l2_tag_probes: u64,
    /// Directory reads.
    pub dir_reads: u64,
    /// Directory updates.
    pub dir_updates: u64,
    /// Flit–router traversals.
    pub router_flits: u64,
    /// Flit–link traversals.
    pub link_flits: u64,
}

impl EnergyCounts {
    /// Element-wise accumulation (used to merge per-tile ledgers).
    pub fn add(&mut self, other: &EnergyCounts) {
        self.l1i_reads += other.l1i_reads;
        self.l1i_fills += other.l1i_fills;
        self.l1d_reads += other.l1d_reads;
        self.l1d_writes += other.l1d_writes;
        self.l1d_tag_probes += other.l1d_tag_probes;
        self.l1d_fills += other.l1d_fills;
        self.l2_line_reads += other.l2_line_reads;
        self.l2_line_writes += other.l2_line_writes;
        self.l2_word_reads += other.l2_word_reads;
        self.l2_word_writes += other.l2_word_writes;
        self.l2_tag_probes += other.l2_tag_probes;
        self.dir_reads += other.dir_reads;
        self.dir_updates += other.dir_updates;
        self.router_flits += other.router_flits;
        self.link_flits += other.link_flits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_counts_zero_energy() {
        let e = EnergyParams::isca13_11nm().charge(&EnergyCounts::default());
        assert_eq!(e.total(), 0.0);
    }

    #[test]
    fn paper_ratios_hold() {
        let p = EnergyParams::isca13_11nm();
        // Word-addressable L2: word access far cheaper than line access.
        assert!(p.l2_word_read * 2.0 < p.l2_line_read);
        assert!(p.l2_word_write * 2.0 < p.l2_line_write);
        // 11 nm wires scale worse than transistors: links dominate routers.
        assert!(p.link_flit > p.router_flit);
        // Directory energy is negligible next to cache accesses.
        assert!(p.dir_read < p.l1d_read / 2.0);
        assert!(p.dir_update < p.l2_word_read / 2.0);
    }

    #[test]
    fn word_miss_cheaper_than_line_miss_end_to_end() {
        // The central energy claim (§1, §5.1.1): serving a low-locality miss
        // as a 2-flit word round-trip beats moving a 9-flit line, per hop.
        let p = EnergyParams::isca13_11nm();
        let hops = 6.0; // average 8x8-mesh distance
        let word = p.l2_word_read
            + 2.0 * hops * (p.router_flit + p.link_flit) // request
            + 2.0 * 2.0 * hops * (p.router_flit + p.link_flit); // 2-flit reply... request is 2 flits too
        let line = p.l2_line_read
            + 2.0 * hops * (p.router_flit + p.link_flit) // 1-flit request... conservative
            + 9.0 * hops * (p.router_flit + p.link_flit)
            + p.l1d_fill;
        assert!(word < line, "word path ({word:.1} pJ) must beat line path ({line:.1} pJ)");
    }

    #[test]
    fn charge_maps_components() {
        let p = EnergyParams::isca13_11nm();
        let c = EnergyCounts {
            l1i_reads: 10,
            l2_word_reads: 3,
            dir_updates: 7,
            router_flits: 11,
            link_flits: 13,
            ..Default::default()
        };
        let e = p.charge(&c);
        assert!((e.l1i - 10.0 * p.l1i_read).abs() < 1e-9);
        assert!((e.l2 - 3.0 * p.l2_word_read).abs() < 1e-9);
        assert!((e.directory - 7.0 * p.dir_update).abs() < 1e-9);
        assert!((e.router - 11.0 * p.router_flit).abs() < 1e-9);
        assert!((e.link - 13.0 * p.link_flit).abs() < 1e-9);
        assert_eq!(e.l1d, 0.0);
    }

    #[test]
    fn add_merges_ledgers() {
        let mut a = EnergyCounts { l1d_reads: 1, link_flits: 2, ..Default::default() };
        let b = EnergyCounts { l1d_reads: 10, dir_reads: 5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.l1d_reads, 11);
        assert_eq!(a.link_flits, 2);
        assert_eq!(a.dir_reads, 5);
    }
}
