//! Off-chip DRAM model.
//!
//! Table 1: eight on-chip memory controllers, 5 GBps of bandwidth per
//! controller, 100 ns access latency. The model is a latency + bandwidth
//! queue per controller: a request pays the fixed DRAM latency and occupies
//! its controller for `bytes / bytes_per_cycle` cycles, so bursts of misses
//! experience queueing delay — the "queueing delay incurred due to finite
//! off-chip bandwidth" included in the paper's *L2 cache to off-chip memory*
//! completion-time component (§4.4).
//!
//! Controllers are attached to evenly spaced tiles (the paper: "Some cores
//! have a connection to a memory controller"); lines interleave across
//! controllers by a mixing hash of the line address.
//!
//! # Examples
//!
//! ```
//! use lacc_dram::DramSystem;
//! use lacc_model::LineAddr;
//!
//! let mut dram = DramSystem::new(8, 64, 100, 5.0);
//! let ctrl = dram.ctrl_for_line(LineAddr::new(42));
//! // One 64-byte line: 100 cycles latency + ceil(64/5) transfer.
//! let done = dram.access(ctrl, 64, 1000);
//! assert_eq!(done, 1000 + 100 + 13);
//! ```

use lacc_model::{CoreId, Cycle, LineAddr, MemCtrlId};

/// Aggregate DRAM traffic counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DramStats {
    /// Requests served (reads + writes).
    pub accesses: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// Cycles requests spent queued behind earlier transfers.
    pub queue_cycles: u64,
}

#[derive(Clone, Debug)]
struct Controller {
    tile: CoreId,
    next_free: Cycle,
}

/// The set of memory controllers of one chip.
#[derive(Clone, Debug)]
pub struct DramSystem {
    ctrls: Vec<Controller>,
    latency: Cycle,
    bytes_per_cycle: f64,
    stats: DramStats,
}

impl DramSystem {
    /// Creates `num_ctrls` controllers for a chip of `num_tiles` tiles with
    /// the given access latency (cycles) and per-controller bandwidth
    /// (bytes per cycle). Controllers are attached to tiles
    /// `i * num_tiles / num_ctrls`.
    ///
    /// # Panics
    ///
    /// Panics if `num_ctrls` is zero, exceeds `num_tiles`, or the bandwidth
    /// is not positive.
    #[must_use]
    pub fn new(num_ctrls: usize, num_tiles: usize, latency: Cycle, bytes_per_cycle: f64) -> Self {
        assert!(num_ctrls > 0 && num_ctrls <= num_tiles, "bad controller count");
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        let ctrls = (0..num_ctrls)
            .map(|i| Controller { tile: CoreId::new(i * num_tiles / num_ctrls), next_free: 0 })
            .collect();
        DramSystem { ctrls, latency, bytes_per_cycle, stats: DramStats::default() }
    }

    /// Number of controllers.
    #[must_use]
    pub fn num_ctrls(&self) -> usize {
        self.ctrls.len()
    }

    /// The controller that owns a cache line (mixing-hash interleaving so
    /// strided workloads still balance across controllers).
    #[must_use]
    pub fn ctrl_for_line(&self, line: LineAddr) -> MemCtrlId {
        // SplitMix64 finalizer: avalanche the line number.
        let mut z = line.raw().wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        MemCtrlId::new((z % self.ctrls.len() as u64) as usize)
    }

    /// The tile a controller is attached to (protocol messages to DRAM are
    /// routed to this tile over the mesh).
    ///
    /// # Panics
    ///
    /// Panics if the controller id is out of range.
    #[must_use]
    pub fn tile_of(&self, ctrl: MemCtrlId) -> CoreId {
        self.ctrls[ctrl.index()].tile
    }

    /// Serves a `bytes`-byte access arriving at the controller at `now`;
    /// returns the completion cycle (`queue + latency + transfer`).
    ///
    /// # Panics
    ///
    /// Panics if the controller id is out of range or `bytes` is zero.
    pub fn access(&mut self, ctrl: MemCtrlId, bytes: usize, now: Cycle) -> Cycle {
        assert!(bytes > 0, "zero-byte DRAM access");
        let c = &mut self.ctrls[ctrl.index()];
        let start = now.max(c.next_free);
        let transfer = (bytes as f64 / self.bytes_per_cycle).ceil() as Cycle;
        c.next_free = start + transfer;
        self.stats.accesses += 1;
        self.stats.bytes += bytes as u64;
        self.stats.queue_cycles += start - now;
        start + self.latency + transfer
    }

    /// Traffic counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_plus_transfer() {
        let mut d = DramSystem::new(1, 4, 100, 5.0);
        // 64 bytes at 5 B/cycle: ceil(12.8) = 13 transfer cycles.
        assert_eq!(d.access(MemCtrlId::new(0), 64, 0), 113);
    }

    #[test]
    fn back_to_back_requests_queue() {
        let mut d = DramSystem::new(1, 4, 100, 5.0);
        let a = d.access(MemCtrlId::new(0), 64, 0);
        let b = d.access(MemCtrlId::new(0), 64, 0);
        assert_eq!(a, 113);
        assert_eq!(b, 13 + 113, "second access waits for the first transfer");
        assert_eq!(d.stats().queue_cycles, 13);
    }

    #[test]
    fn independent_controllers_do_not_queue() {
        let mut d = DramSystem::new(2, 4, 100, 5.0);
        let a = d.access(MemCtrlId::new(0), 64, 0);
        let b = d.access(MemCtrlId::new(1), 64, 0);
        assert_eq!(a, b);
        assert_eq!(d.stats().queue_cycles, 0);
    }

    #[test]
    fn placement_is_evenly_spread() {
        let d = DramSystem::new(8, 64, 100, 5.0);
        let tiles: Vec<usize> = (0..8).map(|i| d.tile_of(MemCtrlId::new(i)).index()).collect();
        assert_eq!(tiles, vec![0, 8, 16, 24, 32, 40, 48, 56]);
    }

    #[test]
    fn line_interleaving_balances() {
        let d = DramSystem::new(8, 64, 100, 5.0);
        let mut counts = [0u32; 8];
        for l in 0..8000u64 {
            counts[d.ctrl_for_line(LineAddr::new(l)).index()] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "imbalanced controller load: {counts:?}");
        }
    }

    #[test]
    fn strided_lines_balance_too() {
        // Page-strided accesses (every 64th line) must not all map to one
        // controller — this is why the hash exists.
        let d = DramSystem::new(8, 64, 100, 5.0);
        let mut counts = [0u32; 8];
        for i in 0..4096u64 {
            counts[d.ctrl_for_line(LineAddr::new(i * 64)).index()] += 1;
        }
        for &c in &counts {
            assert!(c > 0, "controller starved under stride: {counts:?}");
        }
    }

    #[test]
    fn mapping_is_deterministic() {
        let d = DramSystem::new(8, 64, 100, 5.0);
        for l in [0u64, 7, 1 << 20, (1 << 40) + 3] {
            assert_eq!(d.ctrl_for_line(LineAddr::new(l)), d.ctrl_for_line(LineAddr::new(l)));
        }
    }

    #[test]
    #[should_panic(expected = "bad controller count")]
    fn too_many_controllers_panics() {
        let _ = DramSystem::new(5, 4, 100, 5.0);
    }
}
