//! Trace interface between workload generators and the simulator.
//!
//! Each core executes a per-core instruction/memory trace (the Graphite
//! methodology: functional streams with timing models). A [`TraceOp`] is
//! one unit of work; a [`TraceSource`] produces them lazily and
//! deterministically. A [`Workload`] bundles one source per core with the
//! R-NUCA region declarations (the placement oracle, see DESIGN.md) and the
//! instruction-footprint parameters.

use lacc_core::rnuca::RegionClass;
use lacc_model::{Addr, LineAddr};

/// One trace operation for an in-order core.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// Execute `n` non-memory instructions (1 cycle each, fetched from the
    /// instruction footprint).
    Compute(u32),
    /// Load one 64-bit word.
    Load {
        /// Byte address (word-aligned).
        addr: Addr,
    },
    /// Store one 64-bit word.
    Store {
        /// Byte address (word-aligned).
        addr: Addr,
        /// The value written (functional simulation).
        value: u64,
    },
    /// Wait until every participating core reaches barrier `id`.
    Barrier {
        /// Barrier identifier (reusable across phases).
        id: u32,
    },
    /// Acquire lock `id` (queueing if held).
    Acquire {
        /// Lock identifier.
        id: u32,
    },
    /// Release lock `id`.
    Release {
        /// Lock identifier.
        id: u32,
    },
}

/// A lazy, deterministic stream of [`TraceOp`]s for one core.
///
/// `Send` is a supertrait: a trace is owned by exactly one
/// [`Simulator`](crate::Simulator), and the experiment harness dispatches
/// whole simulations across worker threads (`lacc_experiments::run_jobs`),
/// so every source must be movable to the thread that runs it. Sources
/// never need `Sync` — nothing shares a trace between threads.
pub trait TraceSource: Send {
    /// The next operation, or `None` when the core's work is done.
    fn next_op(&mut self) -> Option<TraceOp>;

    /// Appends up to `max` further operations to `out`, returning how
    /// many were appended. Appending fewer than `max` means the stream
    /// ended (and stays ended: later calls return 0) — consumers rely on
    /// that to detect exhaustion without a separate probe.
    ///
    /// This is the amortization point of the trace plane: batch-friendly
    /// sources (the LTF cursors, [`VecTrace`]) decode a whole batch per
    /// virtual call instead of paying per-op dispatch, which is what the
    /// engine's prefetch feeds and the serial core pull consume. The
    /// default just loops [`next_op`](Self::next_op), so existing sources
    /// keep working unchanged.
    fn next_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let mut appended = 0;
        while appended < max {
            match self.next_op() {
                Some(op) => {
                    out.push(op);
                    appended += 1;
                }
                None => break,
            }
        }
        appended
    }
}

/// A boxed trace for each core is also a trace. Both methods forward, so
/// batching survives the indirection.
impl TraceSource for Box<dyn TraceSource> {
    fn next_op(&mut self) -> Option<TraceOp> {
        (**self).next_op()
    }

    fn next_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        (**self).next_ops(out, max)
    }
}

/// A trace backed by a pre-built vector (tests, examples).
#[derive(Clone, Debug, Default)]
pub struct VecTrace {
    ops: std::vec::IntoIter<TraceOp>,
}

impl VecTrace {
    /// Wraps a vector of operations.
    #[must_use]
    pub fn new(ops: Vec<TraceOp>) -> Self {
        VecTrace { ops: ops.into_iter() }
    }
}

impl TraceSource for VecTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.ops.next()
    }

    fn next_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        let before = out.len();
        out.extend(self.ops.by_ref().take(max));
        out.len() - before
    }
}

/// Declares the R-NUCA class of an address region (the oracle that stands
/// in for the paper's OS page-table classification).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RegionDecl {
    /// First line of the region.
    pub first_line: LineAddr,
    /// Length in lines.
    pub lines: u64,
    /// R-NUCA class.
    pub class: RegionClass,
}

/// A complete multi-threaded workload: one trace per core plus placement
/// metadata.
pub struct Workload {
    /// Workload name (used in reports).
    pub name: String,
    /// One trace per core, indexed by core id. Cores beyond the vector's
    /// length idle.
    pub traces: Vec<Box<dyn TraceSource>>,
    /// R-NUCA oracle declarations.
    pub regions: Vec<RegionDecl>,
    /// Instruction footprint per core, in cache lines (walked cyclically;
    /// 8 instructions per 64-byte line).
    pub instr_lines: u64,
    /// First line of the (shared, replicated-per-cluster) text segment.
    pub instr_base: LineAddr,
}

impl Workload {
    /// Number of cores that actually execute a trace.
    #[must_use]
    pub fn active_cores(&self) -> usize {
        self.traces.len()
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("cores", &self.traces.len())
            .field("regions", &self.regions.len())
            .field("instr_lines", &self.instr_lines)
            .finish()
    }
}

/// The default text-segment base: high in the 48-bit space so it never
/// collides with generator-assigned data regions.
#[must_use]
pub fn default_instr_base() -> LineAddr {
    LineAddr::new(0x7000_0000_0000 >> 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_trace_yields_in_order() {
        let mut t = VecTrace::new(vec![
            TraceOp::Compute(3),
            TraceOp::Load { addr: Addr::new(64) },
            TraceOp::Barrier { id: 0 },
        ]);
        assert_eq!(t.next_op(), Some(TraceOp::Compute(3)));
        assert_eq!(t.next_op(), Some(TraceOp::Load { addr: Addr::new(64) }));
        assert_eq!(t.next_op(), Some(TraceOp::Barrier { id: 0 }));
        assert_eq!(t.next_op(), None);
        assert_eq!(t.next_op(), None, "exhausted traces stay exhausted");
    }

    #[test]
    fn next_ops_batches_and_signals_exhaustion() {
        let ops =
            vec![TraceOp::Compute(1), TraceOp::Compute(2), TraceOp::Load { addr: Addr::new(64) }];
        let mut t = VecTrace::new(ops.clone());
        let mut out = Vec::new();
        assert_eq!(t.next_ops(&mut out, 2), 2, "full batch while ops remain");
        assert_eq!(t.next_ops(&mut out, 2), 1, "short batch at end of stream");
        assert_eq!(out, ops);
        assert_eq!(t.next_ops(&mut out, 2), 0, "exhausted sources append nothing");

        // The default impl (through a Box) agrees with the override.
        let mut boxed: Box<dyn TraceSource> = Box::new(VecTrace::new(ops.clone()));
        let mut out2 = Vec::new();
        assert_eq!(boxed.next_ops(&mut out2, 100), 3);
        assert_eq!(out2, ops);
    }

    #[test]
    fn workload_reports_active_cores() {
        let w = Workload {
            name: "t".into(),
            traces: vec![Box::new(VecTrace::new(vec![])), Box::new(VecTrace::new(vec![]))],
            regions: vec![],
            instr_lines: 4,
            instr_base: default_instr_base(),
        };
        assert_eq!(w.active_cores(), 2);
        assert!(format!("{w:?}").contains("cores"));
    }
}
