//! The coherence monitor: a functional-correctness oracle.
//!
//! Graphite "requires the memory system (including the cache hierarchy) to
//! be functionally correct to complete simulation", which the paper calls
//! "a good test that all our cache coherence protocols are working
//! correctly" (§4.1). This monitor is the equivalent for our simulator and
//! is stronger: it maintains a shadow copy of memory updated at every write
//! *serialization point* and asserts that **every read returns exactly the
//! shadow value**.
//!
//! Why that assertion is sound for an invalidation-based SWMR protocol, in
//! event-processing order: a write serializes only after every private copy
//! is invalidated, so while any private copy is readable its content equals
//! the shadow; remote (word) reads execute at the L2 at the serialization
//! point itself. Any stale read — a missed invalidation, a lost write-back,
//! a wrong merge — breaks the equality immediately.

use lacc_cache::{DataRef, DataSlab, LineData};
use lacc_model::{CoreId, LineAddr, LineMap};

/// Statistics and failure record of the monitor.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Reads checked.
    pub reads_checked: u64,
    /// Writes recorded.
    pub writes_recorded: u64,
    /// Description of the first violation, if any.
    pub first_violation: Option<String>,
    /// Total violations.
    pub violations: u64,
}

/// Shadow-memory coherence checker.
///
/// The shadow is line-granular: one [`DataSlab`] slot per touched line,
/// reached through a single `LineMap` lookup per checked access (rather
/// than hashing a per-word key). Slots are allocated zero-filled on a
/// line's first write — untouched memory reads as zero — and released
/// never: a shadow line stays resident for the run, so the monitor's
/// slab trivially satisfies `live() == shadow.len()`.
#[derive(Clone, Debug)]
pub struct CoherenceMonitor {
    shadow: LineMap<DataRef>,
    slab: DataSlab,
    enabled: bool,
    panic_on_violation: bool,
    report: MonitorReport,
}

impl CoherenceMonitor {
    /// Creates a monitor; `panic_on_violation` makes any violation a test
    /// failure (used by the test suite), otherwise violations are counted
    /// and reported.
    #[must_use]
    pub fn new(enabled: bool, panic_on_violation: bool) -> Self {
        CoherenceMonitor {
            shadow: LineMap::default(),
            slab: DataSlab::new(),
            enabled,
            panic_on_violation,
            report: MonitorReport::default(),
        }
    }

    /// Records a serialized write of `value` to `word` of `line`.
    pub fn on_write(&mut self, _core: CoreId, line: LineAddr, word: usize, value: u64) {
        if !self.enabled {
            return;
        }
        self.report.writes_recorded += 1;
        let r = match self.shadow.get(&line) {
            Some(&r) => r,
            None => {
                let r = self.slab.alloc(LineData::zeroed());
                self.shadow.insert(line, r);
                r
            }
        };
        self.slab.get_mut(r).set_word(word, value);
    }

    /// Checks a read of `word` of `line` that returned `value`.
    ///
    /// # Panics
    ///
    /// Panics on a violation when constructed with `panic_on_violation`.
    pub fn on_read(&mut self, core: CoreId, line: LineAddr, word: usize, value: u64) {
        if !self.enabled {
            return;
        }
        self.report.reads_checked += 1;
        let expected = self.shadow.get(&line).map_or(0, |&r| self.slab.get(r).word(word));
        if value != expected {
            self.report.violations += 1;
            let msg = format!(
                "coherence violation: {core} read {line} word {word}: got {value:#x}, expected {expected:#x}"
            );
            if self.report.first_violation.is_none() {
                self.report.first_violation = Some(msg.clone());
            }
            assert!(!self.panic_on_violation, "{msg}");
        }
    }

    /// The accumulated report.
    #[must_use]
    pub fn report(&self) -> &MonitorReport {
        &self.report
    }

    /// `true` when no violation was observed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.report.violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn reads_of_untouched_memory_expect_zero() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_read(CoreId::new(0), l(5), 3, 0);
        assert!(m.clean());
        assert_eq!(m.report().reads_checked, 1);
    }

    #[test]
    fn write_then_read_matches() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(1), l(5), 3, 0xabc);
        m.on_read(CoreId::new(2), l(5), 3, 0xabc);
        assert!(m.clean());
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn stale_read_panics() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(1), l(5), 3, 1);
        m.on_write(CoreId::new(1), l(5), 3, 2);
        m.on_read(CoreId::new(2), l(5), 3, 1);
    }

    #[test]
    fn non_panicking_mode_counts_violations() {
        let mut m = CoherenceMonitor::new(true, false);
        m.on_write(CoreId::new(0), l(1), 0, 7);
        m.on_read(CoreId::new(0), l(1), 0, 8);
        m.on_read(CoreId::new(0), l(1), 0, 9);
        assert_eq!(m.report().violations, 2);
        assert!(m.report().first_violation.as_deref().unwrap().contains("expected 0x7"));
        assert!(!m.clean());
    }

    #[test]
    fn disabled_monitor_is_free() {
        let mut m = CoherenceMonitor::new(false, true);
        m.on_write(CoreId::new(0), l(1), 0, 7);
        m.on_read(CoreId::new(0), l(1), 0, 999);
        assert!(m.clean());
        assert_eq!(m.report().reads_checked, 0);
    }

    #[test]
    fn words_are_independent() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(0), l(1), 0, 7);
        m.on_read(CoreId::new(0), l(1), 1, 0);
        m.on_read(CoreId::new(0), l(1), 0, 7);
        assert!(m.clean());
    }
}
