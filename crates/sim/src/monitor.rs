//! The coherence monitor: a functional-correctness oracle.
//!
//! Graphite "requires the memory system (including the cache hierarchy) to
//! be functionally correct to complete simulation", which the paper calls
//! "a good test that all our cache coherence protocols are working
//! correctly" (§4.1). This monitor is the equivalent for our simulator and
//! is stronger: it maintains a shadow copy of memory updated at every write
//! *serialization point* and asserts that **every read returns exactly the
//! shadow value**.
//!
//! Why that assertion is sound for an invalidation-based SWMR protocol, in
//! event-processing order: a write serializes only after every private copy
//! is invalidated, so while any private copy is readable its content equals
//! the shadow; remote (word) reads execute at the L2 at the serialization
//! point itself. Any stale read — a missed invalidation, a lost write-back,
//! a wrong merge — breaks the equality immediately.
//!
//! Beyond the per-run read check, the model checker (`lacc_mc`) uses the
//! monitor as the data-value reference: [`CoherenceMonitor::verify_resident`]
//! compares a resident cache copy word against the shadow at any state, and
//! [`CoherenceMonitor::record_swmr_breach`] lets an external invariant
//! checker report multiple-writer states through the same reporting path.

use lacc_cache::{DataRef, DataSlab, LineData};
use lacc_model::{CoreId, Cycle, LineAddr, LineMap};

/// Words per cache line in the shadow (64-byte lines of 8-byte words).
const WORDS_PER_LINE: usize = 8;

/// What kind of coherence property a violation broke.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViolationKind {
    /// A read returned a value different from the last serialized write.
    StaleRead,
    /// More than one core held a writable (M/E) copy of a line.
    SwmrBreach,
    /// A resident cache copy disagreed with the shadow memory.
    ShadowMismatch,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ViolationKind::StaleRead => "stale read",
            ViolationKind::SwmrBreach => "SWMR breach",
            ViolationKind::ShadowMismatch => "shadow mismatch",
        })
    }
}

/// One recorded coherence violation: everything needed to diagnose the
/// failure without rerunning under `panic_on_violation`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ViolationRecord {
    /// Which property broke.
    pub kind: ViolationKind,
    /// The core whose access (or copy) exposed the violation.
    pub core: CoreId,
    /// The line involved.
    pub line: LineAddr,
    /// The word within the line (0 for whole-line violations).
    pub word: usize,
    /// The cycle at which the violation was observed.
    pub cycle: Cycle,
    /// The global commit sequence number of the event that exposed the
    /// violation. Within one cycle many events commit; `(cycle, seq)`
    /// totally orders violations, so "first violation" is deterministic
    /// even when the windowed shard plane commits a cycle's events in
    /// batches.
    pub seq: u64,
    /// The value observed.
    pub got: u64,
    /// The value the shadow expected.
    pub expected: u64,
}

impl std::fmt::Display for ViolationRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "coherence violation ({}): {} at {} word {} cycle {} event {}: got {:#x}, expected {:#x}",
            self.kind, self.core, self.line, self.word, self.cycle, self.seq, self.got, self.expected
        )
    }
}

/// Statistics and failure record of the monitor.
#[derive(Clone, Debug, Default)]
pub struct MonitorReport {
    /// Reads checked.
    pub reads_checked: u64,
    /// Writes recorded.
    pub writes_recorded: u64,
    /// The first violation, if any (line, cycle, core and kind — enough to
    /// diagnose without a rerun).
    pub first_violation: Option<ViolationRecord>,
    /// Total violations.
    pub violations: u64,
}

/// Shadow-memory coherence checker.
///
/// The shadow is line-granular: one [`DataSlab`] slot per touched line,
/// reached through a single `LineMap` lookup per checked access (rather
/// than hashing a per-word key). Slots are allocated zero-filled on a
/// line's first write — untouched memory reads as zero — and released
/// never: a shadow line stays resident for the run, so the monitor's
/// slab trivially satisfies `live() == shadow.len()`.
#[derive(Clone, Debug)]
pub struct CoherenceMonitor {
    shadow: LineMap<DataRef>,
    slab: DataSlab,
    enabled: bool,
    panic_on_violation: bool,
    word_skew: usize,
    event_seq: u64,
    report: MonitorReport,
}

impl CoherenceMonitor {
    /// Creates a monitor; `panic_on_violation` makes any violation a test
    /// failure (used by the test suite), otherwise violations are counted
    /// and reported.
    #[must_use]
    pub fn new(enabled: bool, panic_on_violation: bool) -> Self {
        CoherenceMonitor {
            shadow: LineMap::default(),
            slab: DataSlab::new(),
            enabled,
            panic_on_violation,
            word_skew: 0,
            event_seq: 0,
            report: MonitorReport::default(),
        }
    }

    /// Tells the monitor which event is committing: the simulator calls
    /// this once per dispatched event with its global commit index, and
    /// every violation recorded until the next call is stamped with it
    /// (see [`ViolationRecord::seq`]).
    pub fn set_event_seq(&mut self, seq: u64) {
        self.event_seq = seq;
    }

    /// Seeded bug (mutation testing): shadow writes land `skew` words away
    /// from the word actually written, so the oracle itself is off by one.
    /// The model checker's mutation harness uses this to prove the checker
    /// detects a broken monitor; never set in a normal run.
    pub fn set_word_skew(&mut self, skew: usize) {
        self.word_skew = skew;
    }

    fn record(&mut self, mut rec: ViolationRecord) {
        rec.seq = self.event_seq;
        self.report.violations += 1;
        if self.report.first_violation.is_none() {
            self.report.first_violation = Some(rec);
        }
        assert!(!self.panic_on_violation, "{rec}");
    }

    /// Records a serialized write of `value` to `word` of `line` at `now`.
    pub fn on_write(
        &mut self,
        _core: CoreId,
        line: LineAddr,
        word: usize,
        value: u64,
        _now: Cycle,
    ) {
        if !self.enabled {
            return;
        }
        self.report.writes_recorded += 1;
        let r = match self.shadow.get(&line) {
            Some(&r) => r,
            None => {
                let r = self.slab.alloc(LineData::zeroed());
                self.shadow.insert(line, r);
                r
            }
        };
        let word = (word + self.word_skew) % WORDS_PER_LINE;
        self.slab.get_mut(r).set_word(word, value);
    }

    /// Checks a read of `word` of `line` that returned `value` at `now`.
    ///
    /// # Panics
    ///
    /// Panics on a violation when constructed with `panic_on_violation`.
    pub fn on_read(&mut self, core: CoreId, line: LineAddr, word: usize, value: u64, now: Cycle) {
        if !self.enabled {
            return;
        }
        self.report.reads_checked += 1;
        let expected = self.shadow.get(&line).map_or(0, |&r| self.slab.get(r).word(word));
        if value != expected {
            self.record(ViolationRecord {
                kind: ViolationKind::StaleRead,
                core,
                line,
                word,
                cycle: now,
                seq: 0, // stamped by `record`
                got: value,
                expected,
            });
        }
    }

    /// Checks a *resident* copy's word against the shadow without counting
    /// it as a read (the model checker's at-every-state data-value sweep).
    ///
    /// # Panics
    ///
    /// Panics on a violation when constructed with `panic_on_violation`.
    pub fn verify_resident(
        &mut self,
        core: CoreId,
        line: LineAddr,
        word: usize,
        value: u64,
        now: Cycle,
    ) {
        if !self.enabled {
            return;
        }
        let expected = self.shadow.get(&line).map_or(0, |&r| self.slab.get(r).word(word));
        if value != expected {
            self.record(ViolationRecord {
                kind: ViolationKind::ShadowMismatch,
                core,
                line,
                word,
                cycle: now,
                seq: 0, // stamped by `record`
                got: value,
                expected,
            });
        }
    }

    /// Reports that `core` holds a writable copy of `line` while another
    /// writable copy exists (detected by an external invariant checker;
    /// the monitor itself cannot see cache states).
    ///
    /// # Panics
    ///
    /// Panics when constructed with `panic_on_violation`.
    pub fn record_swmr_breach(&mut self, core: CoreId, line: LineAddr, now: Cycle) {
        if !self.enabled {
            return;
        }
        self.record(ViolationRecord {
            kind: ViolationKind::SwmrBreach,
            core,
            line,
            word: 0,
            cycle: now,
            seq: 0, // stamped by `record`
            got: 0,
            expected: 0,
        });
    }

    /// Appends a canonical encoding of the shadow memory to `out` (lines
    /// sorted by address, eight words each) — the model checker
    /// fingerprints the oracle state alongside the machine state.
    pub(crate) fn encode_shadow(&self, out: &mut Vec<u64>) {
        let mut lines: Vec<(LineAddr, DataRef)> =
            self.shadow.iter().map(|(l, r)| (*l, *r)).collect();
        lines.sort_unstable_by_key(|&(l, _)| l.raw());
        out.push(lines.len() as u64);
        for (line, r) in lines {
            out.push(line.raw());
            out.extend_from_slice(self.slab.get(r).words());
        }
    }

    /// The accumulated report.
    #[must_use]
    pub fn report(&self) -> &MonitorReport {
        &self.report
    }

    /// `true` when no violation was observed.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.report.violations == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn reads_of_untouched_memory_expect_zero() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_read(CoreId::new(0), l(5), 3, 0, 0);
        assert!(m.clean());
        assert_eq!(m.report().reads_checked, 1);
    }

    #[test]
    fn write_then_read_matches() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(1), l(5), 3, 0xabc, 0);
        m.on_read(CoreId::new(2), l(5), 3, 0xabc, 1);
        assert!(m.clean());
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn stale_read_panics() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(1), l(5), 3, 1, 0);
        m.on_write(CoreId::new(1), l(5), 3, 2, 1);
        m.on_read(CoreId::new(2), l(5), 3, 1, 2);
    }

    #[test]
    fn non_panicking_mode_records_the_first_violation() {
        let mut m = CoherenceMonitor::new(true, false);
        m.on_write(CoreId::new(0), l(1), 0, 7, 10);
        m.set_event_seq(41);
        m.on_read(CoreId::new(3), l(1), 0, 8, 20);
        m.set_event_seq(42);
        m.on_read(CoreId::new(0), l(1), 0, 9, 30);
        assert_eq!(m.report().violations, 2);
        let first = m.report().first_violation.expect("violation recorded");
        assert_eq!(first.kind, ViolationKind::StaleRead);
        assert_eq!(first.core, CoreId::new(3));
        assert_eq!(first.line, l(1));
        assert_eq!(first.word, 0);
        assert_eq!(first.cycle, 20);
        assert_eq!(first.seq, 41, "first violation keeps its own commit stamp");
        assert_eq!((first.got, first.expected), (8, 7));
        assert!(first.to_string().contains("expected 0x7"), "{first}");
        assert!(first.to_string().contains("event 41"), "{first}");
        assert!(!m.clean());
    }

    #[test]
    fn disabled_monitor_is_free() {
        let mut m = CoherenceMonitor::new(false, true);
        m.on_write(CoreId::new(0), l(1), 0, 7, 0);
        m.on_read(CoreId::new(0), l(1), 0, 999, 1);
        m.verify_resident(CoreId::new(0), l(1), 0, 999, 1);
        m.record_swmr_breach(CoreId::new(0), l(1), 1);
        assert!(m.clean());
        assert_eq!(m.report().reads_checked, 0);
    }

    #[test]
    fn words_are_independent() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(0), l(1), 0, 7, 0);
        m.on_read(CoreId::new(0), l(1), 1, 0, 1);
        m.on_read(CoreId::new(0), l(1), 0, 7, 2);
        assert!(m.clean());
    }

    #[test]
    fn verify_resident_flags_shadow_mismatch_without_counting_reads() {
        let mut m = CoherenceMonitor::new(true, false);
        m.on_write(CoreId::new(1), l(9), 2, 0xbeef, 5);
        m.verify_resident(CoreId::new(2), l(9), 2, 0xbeef, 6);
        assert!(m.clean(), "matching resident copy is no violation");
        m.verify_resident(CoreId::new(2), l(9), 2, 0xdead, 7);
        assert_eq!(m.report().violations, 1);
        assert_eq!(m.report().reads_checked, 0, "resident sweeps are not reads");
        let first = m.report().first_violation.expect("recorded");
        assert_eq!(first.kind, ViolationKind::ShadowMismatch);
        assert_eq!((first.got, first.expected), (0xdead, 0xbeef));
        assert_eq!(first.cycle, 7);
    }

    #[test]
    fn swmr_breach_is_recorded_with_core_and_line() {
        let mut m = CoherenceMonitor::new(true, false);
        m.record_swmr_breach(CoreId::new(5), l(40), 123);
        assert_eq!(m.report().violations, 1);
        let first = m.report().first_violation.expect("recorded");
        assert_eq!(first.kind, ViolationKind::SwmrBreach);
        assert_eq!(first.core, CoreId::new(5));
        assert_eq!(first.line, l(40));
        assert_eq!(first.cycle, 123);
        assert!(first.to_string().contains("SWMR breach"));
    }

    #[test]
    #[should_panic(expected = "SWMR breach")]
    fn swmr_breach_panics_in_panicking_mode() {
        let mut m = CoherenceMonitor::new(true, true);
        m.record_swmr_breach(CoreId::new(0), l(1), 0);
    }

    #[test]
    #[should_panic(expected = "shadow mismatch")]
    fn shadow_mismatch_panics_in_panicking_mode() {
        let mut m = CoherenceMonitor::new(true, true);
        m.on_write(CoreId::new(0), l(1), 0, 1, 0);
        m.verify_resident(CoreId::new(1), l(1), 0, 2, 1);
    }

    #[test]
    fn word_skew_breaks_the_oracle_on_purpose() {
        let mut m = CoherenceMonitor::new(true, false);
        m.set_word_skew(1);
        m.on_write(CoreId::new(0), l(1), 0, 7, 0);
        // The shadow recorded the write at word 1; a correct protocol
        // returning 7 at word 0 now looks like a violation.
        m.on_read(CoreId::new(0), l(1), 0, 7, 1);
        assert_eq!(m.report().violations, 1);
        assert_eq!(m.report().first_violation.map(|v| v.expected), Some(0));
    }
}
