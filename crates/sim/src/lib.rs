//! # lacc-sim — the multicore simulator substrate
//!
//! A deterministic discrete-event simulator of the Table-1 machine (the
//! Graphite-methodology stand-in; see DESIGN.md): 64 in-order cores at
//! 1 GHz, private L1s, a distributed shared L2 with integrated directories
//! running the locality-aware adaptive coherence protocol from
//! [`lacc_core`], an electrical 2-D mesh with link contention and broadcast
//! support, and bandwidth-limited DRAM controllers.
//!
//! The simulator is *functional*: stores write real values, loads return
//! them, and a [`monitor::CoherenceMonitor`] asserts on every read that the
//! protocol delivered the serialized value (§4.1's correctness argument,
//! made mechanical).
//!
//! # Examples
//!
//! ```
//! use lacc_model::{Addr, SystemConfig};
//! use lacc_sim::trace::{default_instr_base, TraceOp, VecTrace, Workload};
//! use lacc_sim::Simulator;
//!
//! // Two cores ping a value through a shared line.
//! let w = Workload {
//!     name: "doc".into(),
//!     traces: vec![
//!         Box::new(VecTrace::new(vec![
//!             TraceOp::Store { addr: Addr::new(0x1000), value: 42 },
//!             TraceOp::Barrier { id: 0 },
//!         ])),
//!         Box::new(VecTrace::new(vec![
//!             TraceOp::Barrier { id: 0 },
//!             TraceOp::Load { addr: Addr::new(0x1000) },
//!         ])),
//!     ],
//!     regions: vec![],
//!     instr_lines: 0,
//!     instr_base: default_instr_base(),
//! };
//! let sim = Simulator::new(SystemConfig::small_for_tests(2), w)?;
//! let report = sim.run();
//! assert!(report.monitor.violations == 0);
//! assert!(report.completion_time > 0);
//! # Ok::<(), lacc_model::ConfigError>(())
//! ```

pub mod engine;
pub mod ltf;
pub mod monitor;
pub mod msg;
pub mod report;
pub mod sync;
pub mod trace;

pub use engine::explore::FaultInjection;
pub use engine::{SimOptions, Simulator};
pub use monitor::CoherenceMonitor;
pub use report::{ProtocolStats, SimReport};
pub use trace::{RegionDecl, TraceOp, TraceSource, VecTrace, Workload};
