//! The discrete-event multicore simulator.
//!
//! One [`Simulator`] models the full Table-1 machine: in-order cores
//! executing traces, private L1s, distributed shared L2 slices with
//! integrated directories running the locality-aware protocol, the 2-D
//! mesh, and DRAM controllers. Methodology follows Graphite (§4.1):
//! functional execution with analytical timing, laxly synchronized core
//! clocks, and event-ordered interactions through the network.
//!
//! Key structural choices (see DESIGN.md §4 for the protocol walk-through):
//!
//! * **Per-line home serialization**: requests to a busy line queue at the
//!   home tile; queueing time becomes the *L2 cache waiting time* component.
//! * **Blocking cores**: one outstanding miss per core (in-order,
//!   single-issue), which bounds protocol concurrency exactly as in the
//!   evaluated machine.
//! * **FIFO delivery per (src, dst)**: models wormhole XY links and is what
//!   makes eviction-notify/invalidation races resolvable without NACK
//!   retry loops.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use lacc_cache::{LineData, SetAssocCache};
use lacc_core::classifier::{RemovalReason, RequestHints, SharerMode};
use lacc_core::home::{AccessKind, DirectoryEntry, Grant, HomeDecision, HomeRequest};
use lacc_core::l1::{L1Cache, StoreOutcome};
use lacc_core::mesi::MesiState;
use lacc_core::miss_class::MissClassifier;
use lacc_core::rnuca::{RegionClass, Rnuca};
use lacc_dram::DramSystem;
use lacc_energy::{EnergyCounts, EnergyParams};
use lacc_model::{
    CompletionBreakdown, ConfigError, CoreId, Cycle, LatencyAnnotation, LineAddr, MissStats,
    SystemConfig, UtilizationHistogram,
};
use lacc_network::MeshNetwork;

use crate::monitor::CoherenceMonitor;
use crate::msg::{Message, Payload};
use crate::report::{ProtocolStats, SimReport};
use crate::sync::{SyncManager, SyncOutcome};
use crate::trace::{TraceOp, TraceSource, Workload};

const INSTR_PER_LINE: u64 = 8; // 64-byte line / 8-byte instruction
const INSTALL_RETRY_CYCLES: Cycle = 32;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Event {
    /// (Re)start executing a core's trace at the event time.
    CoreStep(usize),
    /// A message arrives at its destination tile.
    Deliver(Message),
    /// The home's L2 tag/data access for a queued transaction completes.
    HomeLookup { tile: usize, line: LineAddr },
}

struct OrderedEvent {
    at: Cycle,
    seq: u64,
    ev: Event,
}

impl PartialEq for OrderedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for OrderedEvent {}
impl PartialOrd for OrderedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

// ---------------------------------------------------------------------------
// Per-core state
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Blocked {
    No,
    IFetch,
    Data,
    Sync,
}

#[derive(Clone, Copy, Debug)]
struct Outstanding {
    line: LineAddr,
    word: usize,
    is_store: bool,
    value: u64,
    issue_time: Cycle,
    instr: bool,
}

struct CoreState {
    trace: Option<Box<dyn TraceSource>>,
    clock: Cycle,
    finished: bool,
    breakdown: CompletionBreakdown,
    miss_class: MissClassifier,
    l1d_stats: MissStats,
    l1i_stats: MissStats,
    pending_compute: u32,
    replay: Option<TraceOp>,
    replay_ifetched: bool,
    blocked: Blocked,
    instr_pos: u64,
    instructions: u64,
    outstanding: Option<Outstanding>,
}

// ---------------------------------------------------------------------------
// Per-tile state (home side)
// ---------------------------------------------------------------------------

struct L2Line {
    dirty: bool,
    data: LineData,
    entry: DirectoryEntry,
}

#[derive(Clone, PartialEq, Debug)]
enum Awaiting {
    Set(Vec<CoreId>),
    Count(usize),
}

impl Awaiting {
    fn note_response(&mut self, core: CoreId) -> bool {
        match self {
            Awaiting::Set(v) => {
                if let Some(i) = v.iter().position(|&c| c == core) {
                    v.remove(i);
                    true
                } else {
                    false
                }
            }
            Awaiting::Count(n) => {
                if *n > 0 {
                    *n -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn done(&self) -> bool {
        match self {
            Awaiting::Set(v) => v.is_empty(),
            Awaiting::Count(n) => *n == 0,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Lookup,
    AwaitDram,
    Installing,
    AwaitWb,
    AwaitAcks,
}

struct RequestTxn {
    requester: CoreId,
    kind: AccessKind,
    hints: RequestHints,
    word: usize,
    value: u64,
    instr: bool,
    wait: Cycle,
    offchip: Cycle,
    sharers_lat: Cycle,
    phase: Phase,
    phase_start: Cycle,
    decision: Option<HomeDecision>,
    awaiting: Awaiting,
}

struct EvictTxn {
    entry: DirectoryEntry,
    data: LineData,
    dirty: bool,
    awaiting: Awaiting,
}

enum HomeTxn {
    Request(RequestTxn),
    Evict(EvictTxn),
}

struct TileState {
    l1i: L1Cache,
    l1d: L1Cache,
    l2: SetAssocCache<L2Line>,
    txns: HashMap<LineAddr, HomeTxn>,
    waiters: HashMap<LineAddr, VecDeque<(Message, Cycle)>>,
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// The full-system simulator. Construct with [`Simulator::new`], then call
/// [`Simulator::run`].
pub struct Simulator {
    cfg: SystemConfig,
    workload_name: String,
    instr_lines: u64,
    instr_base: LineAddr,
    rnuca: Rnuca,
    net: MeshNetwork,
    dram: DramSystem,
    sync: SyncManager,
    monitor: CoherenceMonitor,
    counts: EnergyCounts,
    energy_params: EnergyParams,
    backing: HashMap<LineAddr, LineData>,
    cores: Vec<CoreState>,
    tiles: Vec<TileState>,
    events: BinaryHeap<Reverse<OrderedEvent>>,
    seq: u64,
    inval_histogram: UtilizationHistogram,
    evict_histogram: UtilizationHistogram,
    protocol: ProtocolStats,
    active_cores: usize,
}

impl Simulator {
    /// Builds a simulator for `cfg` running `workload`.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`SystemConfig::validate`], or one
    /// describing a workload/machine mismatch (more traces than cores).
    pub fn new(cfg: SystemConfig, workload: Workload) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.traces.len() > cfg.num_cores {
            return Err(ConfigError::new(format!(
                "workload has {} traces but the machine has {} cores",
                workload.traces.len(),
                cfg.num_cores
            )));
        }
        let mut rnuca = Rnuca::new(cfg.num_cores, cfg.rnuca_cluster);
        for r in &workload.regions {
            rnuca.declare_lines(r.first_line, r.lines, r.class);
        }
        if workload.instr_lines > 0 {
            rnuca.declare_lines(
                workload.instr_base,
                workload.instr_lines,
                RegionClass::Instruction,
            );
        }
        let net = MeshNetwork::new(cfg.num_cores, cfg.hop_router_cycles, cfg.hop_link_cycles);
        let dram = DramSystem::new(
            cfg.num_mem_ctrls,
            cfg.num_cores,
            cfg.dram_latency,
            cfg.dram_bytes_per_cycle,
        );
        let active = workload.active_cores().max(1);
        let mut traces: Vec<Option<Box<dyn TraceSource>>> =
            workload.traces.into_iter().map(Some).collect();
        traces.resize_with(cfg.num_cores, || None);

        let cores = traces
            .into_iter()
            .map(|t| CoreState {
                finished: t.is_none(),
                trace: t,
                clock: 0,
                breakdown: CompletionBreakdown::default(),
                miss_class: MissClassifier::new(),
                l1d_stats: MissStats::default(),
                l1i_stats: MissStats::default(),
                pending_compute: 0,
                replay: None,
                replay_ifetched: false,
                blocked: Blocked::No,
                instr_pos: 0,
                instructions: 0,
                outstanding: None,
            })
            .collect::<Vec<_>>();

        let tiles = (0..cfg.num_cores)
            .map(|i| TileState {
                l1i: L1Cache::new(&cfg.l1i, cfg.line_bytes, CoreId::new(i)),
                l1d: L1Cache::new(&cfg.l1d, cfg.line_bytes, CoreId::new(i)),
                l2: SetAssocCache::new(cfg.l2.num_sets(cfg.line_bytes), cfg.l2.associativity),
                txns: HashMap::new(),
                waiters: HashMap::new(),
            })
            .collect();

        let mut sim = Simulator {
            workload_name: workload.name,
            instr_lines: workload.instr_lines,
            instr_base: workload.instr_base,
            rnuca,
            net,
            dram,
            sync: SyncManager::new(active),
            monitor: CoherenceMonitor::new(true, cfg_check_panics()),
            counts: EnergyCounts::default(),
            energy_params: EnergyParams::isca13_11nm(),
            backing: HashMap::new(),
            cores,
            tiles,
            events: BinaryHeap::new(),
            seq: 0,
            inval_histogram: UtilizationHistogram::new(),
            evict_histogram: UtilizationHistogram::new(),
            protocol: ProtocolStats::default(),
            active_cores: active,
            cfg,
        };
        for c in 0..sim.cores.len() {
            if !sim.cores[c].finished {
                sim.schedule(0, Event::CoreStep(c));
            }
        }
        Ok(sim)
    }

    /// Disables the coherence monitor (large calibration runs).
    pub fn set_monitor(&mut self, enabled: bool) {
        self.monitor = CoherenceMonitor::new(enabled, enabled && cfg_check_panics());
    }

    /// Runs to completion and produces the report.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (an event-queue drain while cores are
    /// still blocked) — this is a protocol-bug detector, not a user error.
    pub fn run(mut self) -> SimReport {
        while let Some(Reverse(oe)) = self.events.pop() {
            let now = oe.at;
            match oe.ev {
                Event::CoreStep(c) => self.step_core(c, now),
                Event::Deliver(msg) => self.deliver(msg, now),
                Event::HomeLookup { tile, line } => self.home_lookup(tile, line, now),
            }
        }
        let stuck: Vec<usize> =
            (0..self.cores.len()).filter(|&c| !self.cores[c].finished).collect();
        assert!(
            stuck.is_empty(),
            "deadlock: cores {stuck:?} never finished (blocked states: {:?})",
            stuck.iter().map(|&c| self.cores[c].blocked).collect::<Vec<_>>()
        );
        self.build_report()
    }

    // -- infrastructure ----------------------------------------------------

    fn schedule(&mut self, at: Cycle, ev: Event) {
        self.seq += 1;
        self.events.push(Reverse(OrderedEvent { at, seq: self.seq, ev }));
    }

    fn send(&mut self, src: CoreId, dst: CoreId, line: LineAddr, payload: Payload, now: Cycle) {
        let flits = payload.flits();
        let arrival = self.net.unicast(src, dst, flits, now);
        self.schedule(arrival, Event::Deliver(Message { src, dst, line, payload, sent: now }));
    }

    fn broadcast_inv(&mut self, home: usize, line: LineAddr, back: bool, now: Cycle) {
        let src = CoreId::new(home);
        let arrivals = self.net.broadcast(src, 1, now);
        for (t, &at) in arrivals.iter().enumerate() {
            let dst = CoreId::new(t);
            self.schedule(
                at,
                Event::Deliver(Message {
                    src,
                    dst,
                    line,
                    payload: Payload::Inv { back },
                    sent: now,
                }),
            );
        }
    }

    fn home_of(&mut self, line: LineAddr, requester: CoreId) -> CoreId {
        self.rnuca.home_for(line, requester)
    }

    // -- core execution ----------------------------------------------------

    fn step_core(&mut self, ci: usize, now: Cycle) {
        loop {
            if self.cores[ci].finished || self.cores[ci].blocked != Blocked::No {
                return;
            }
            if self.cores[ci].pending_compute > 0 && !self.run_compute(ci, now) {
                return;
            }
            let op = match self.cores[ci].replay.take() {
                Some(op) => op,
                None => match self.cores[ci].trace.as_mut().and_then(|t| t.next_op()) {
                    Some(op) => op,
                    None => {
                        self.cores[ci].finished = true;
                        self.cores[ci].trace = None;
                        return;
                    }
                },
            };
            if !self.exec_op(ci, op, now) {
                return;
            }
        }
    }

    /// Executes pending compute instructions; `false` when blocked or
    /// rescheduled.
    fn run_compute(&mut self, ci: usize, now: Cycle) -> bool {
        while self.cores[ci].pending_compute > 0 {
            if !self.fetch_instr(ci, now) {
                return false;
            }
            let core = &mut self.cores[ci];
            core.pending_compute -= 1;
            core.clock += 1;
            core.breakdown.compute += 1;
            core.instructions += 1;
            self.counts.l1i_reads += 1;
        }
        true
    }

    /// Fetches the next instruction (I-cache model); `false` when blocked
    /// on an I-miss or rescheduled to the core's local clock.
    fn fetch_instr(&mut self, ci: usize, now: Cycle) -> bool {
        if self.instr_lines == 0 {
            return true;
        }
        let pos = self.cores[ci].instr_pos;
        let line = LineAddr::new(self.instr_base.raw() + (pos / INSTR_PER_LINE) % self.instr_lines);
        if pos % INSTR_PER_LINE == 0 {
            let clock = self.cores[ci].clock;
            let hit = self.tiles[ci].l1i.load(line, 0, clock).is_some();
            if !hit {
                if clock > now {
                    self.schedule(clock, Event::CoreStep(ci));
                    return false;
                }
                let miss = self.cores[ci].miss_class.classify(line, false);
                self.cores[ci].l1i_stats.record_miss(miss);
                self.issue_request(
                    ci,
                    Outstanding {
                        line,
                        word: 0,
                        is_store: false,
                        value: 0,
                        issue_time: clock,
                        instr: true,
                    },
                );
                self.cores[ci].blocked = Blocked::IFetch;
                return false;
            }
            self.cores[ci].l1i_stats.record_hit();
        }
        self.cores[ci].instr_pos = pos + 1;
        true
    }

    /// Executes one trace op; `false` when blocked or rescheduled.
    fn exec_op(&mut self, ci: usize, op: TraceOp, now: Cycle) -> bool {
        // Instruction fetch for the op itself (memory ops are instructions
        // too; sync ops are abstract and free).
        if matches!(op, TraceOp::Load { .. } | TraceOp::Store { .. })
            && !self.cores[ci].replay_ifetched
        {
            if !self.fetch_instr(ci, now) {
                self.cores[ci].replay = Some(op);
                return false;
            }
            self.cores[ci].replay_ifetched = true;
            self.cores[ci].instructions += 1;
            self.counts.l1i_reads += 1;
        }

        let done = match op {
            TraceOp::Compute(n) => {
                self.cores[ci].pending_compute = n;
                self.run_compute(ci, now)
            }
            TraceOp::Load { addr } => {
                let line = addr.line();
                let word = addr.word_in_line();
                let clock = self.cores[ci].clock;
                if let Some(v) = self.tiles[ci].l1d.load(line, word, clock) {
                    self.counts.l1d_reads += 1;
                    self.cores[ci].l1d_stats.record_hit();
                    self.cores[ci].clock += 1;
                    self.cores[ci].breakdown.compute += 1;
                    self.monitor.on_read(CoreId::new(ci), line, word, v);
                    true
                } else {
                    if clock > now {
                        self.cores[ci].replay = Some(op);
                        self.schedule(clock, Event::CoreStep(ci));
                        return false;
                    }
                    self.counts.l1d_tag_probes += 1;
                    let miss = self.cores[ci].miss_class.classify(line, false);
                    self.cores[ci].l1d_stats.record_miss(miss);
                    self.issue_request(
                        ci,
                        Outstanding {
                            line,
                            word,
                            is_store: false,
                            value: 0,
                            issue_time: clock,
                            instr: false,
                        },
                    );
                    self.cores[ci].blocked = Blocked::Data;
                    // The op is consumed (its completion happens at reply
                    // delivery); reset the per-op fetch flag.
                    self.cores[ci].replay_ifetched = false;
                    false
                }
            }
            TraceOp::Store { addr, value } => {
                let line = addr.line();
                let word = addr.word_in_line();
                let clock = self.cores[ci].clock;
                match self.tiles[ci].l1d.store(line, word, value, clock) {
                    StoreOutcome::Done => {
                        self.counts.l1d_writes += 1;
                        self.cores[ci].l1d_stats.record_hit();
                        self.cores[ci].clock += 1;
                        self.cores[ci].breakdown.compute += 1;
                        self.monitor.on_write(CoreId::new(ci), line, word, value);
                        true
                    }
                    outcome => {
                        if clock > now {
                            self.cores[ci].replay = Some(op);
                            self.schedule(clock, Event::CoreStep(ci));
                            return false;
                        }
                        let upgrade = outcome == StoreOutcome::NeedsUpgrade;
                        self.counts.l1d_tag_probes += 1;
                        let miss = self.cores[ci].miss_class.classify(line, upgrade);
                        self.cores[ci].l1d_stats.record_miss(miss);
                        self.issue_request(
                            ci,
                            Outstanding {
                                line,
                                word,
                                is_store: true,
                                value,
                                issue_time: clock,
                                instr: false,
                            },
                        );
                        self.cores[ci].blocked = Blocked::Data;
                        self.cores[ci].replay_ifetched = false;
                        false
                    }
                }
            }
            TraceOp::Barrier { id } => {
                self.sync_op(ci, op, now, |s, c, t| s.barrier_arrive(id, c, t))
            }
            TraceOp::Acquire { id } => self.sync_op(ci, op, now, |s, c, t| s.acquire(id, c, t)),
            TraceOp::Release { id } => self.sync_op(ci, op, now, |s, c, t| s.release(id, c, t)),
        };
        if done {
            self.cores[ci].replay_ifetched = false;
        }
        done
    }

    fn sync_op(
        &mut self,
        ci: usize,
        op: TraceOp,
        now: Cycle,
        f: impl FnOnce(&mut SyncManager, CoreId, Cycle) -> SyncOutcome,
    ) -> bool {
        let clock = self.cores[ci].clock;
        if clock > now {
            // Re-run the op at the core's local time so sync interleavings
            // are event-ordered. The op has no side effects yet.
            self.cores[ci].replay = Some(op);
            self.schedule(clock, Event::CoreStep(ci));
            return false;
        }
        match f(&mut self.sync, CoreId::new(ci), clock) {
            SyncOutcome::Proceed => true,
            SyncOutcome::Blocked => {
                self.cores[ci].blocked = Blocked::Sync;
                false
            }
            SyncOutcome::Release(list) => {
                let mut self_proceeds = true;
                for (c, t) in list {
                    let idx = c.index();
                    if idx == ci {
                        let core = &mut self.cores[ci];
                        core.breakdown.synchronization += t.saturating_sub(core.clock);
                        core.clock = t;
                        self_proceeds = true;
                    } else {
                        let core = &mut self.cores[idx];
                        core.breakdown.synchronization += t.saturating_sub(core.clock);
                        core.clock = t;
                        core.blocked = Blocked::No;
                        self.schedule(t, Event::CoreStep(idx));
                    }
                }
                self_proceeds
            }
        }
    }

    fn issue_request(&mut self, ci: usize, req: Outstanding) {
        let Outstanding { line, word, is_store, value, issue_time: clock, instr } = req;
        let src = CoreId::new(ci);
        let home = self.home_of(line, src);
        let hints = if instr {
            self.tiles[ci].l1i.hints_for(line)
        } else {
            self.tiles[ci].l1d.hints_for(line)
        };
        let payload = if is_store {
            Payload::WriteReq { hints, word, value }
        } else {
            Payload::ReadReq { hints, word, instr }
        };
        self.cores[ci].outstanding = Some(req);
        self.send(src, home, line, payload, clock);
    }

    // -- message delivery --------------------------------------------------

    fn deliver(&mut self, msg: Message, now: Cycle) {
        match msg.payload {
            Payload::ReadReq { .. } | Payload::WriteReq { .. } => {
                self.home_request_arrival(msg, now);
            }
            Payload::GrantLine { .. }
            | Payload::GrantUpgrade { .. }
            | Payload::WordReadReply { .. }
            | Payload::WordWriteAck { .. } => self.core_resume(msg, now),
            Payload::Inv { back } => {
                self.l1_invalidate(msg.dst.index(), msg.src, msg.line, back, now)
            }
            Payload::InvAck { util, dirty, data, back } => {
                self.home_inv_ack(msg.dst.index(), msg.src, msg.line, util, dirty, data, back, now);
            }
            Payload::WbReq => self.l1_writeback_req(msg.dst.index(), msg.src, msg.line, now),
            Payload::WbData { dirty, data } => {
                self.home_wb_response(msg.dst.index(), msg.src, msg.line, Some((dirty, data)), now);
            }
            Payload::WbNack => self.home_wb_response(msg.dst.index(), msg.src, msg.line, None, now),
            Payload::EvictNotify { util, dirty, data } => {
                self.home_evict_notify(msg.dst.index(), msg.src, msg.line, util, dirty, data, now);
            }
            Payload::DramFetch => {
                let ctrl = self.dram.ctrl_for_line(msg.line);
                debug_assert_eq!(self.dram.tile_of(ctrl), msg.dst);
                let done = self.dram.access(ctrl, self.cfg.line_bytes, now);
                let data = self.backing.get(&msg.line).copied().unwrap_or_else(LineData::zeroed);
                self.send(msg.dst, msg.src, msg.line, Payload::DramData { data }, done);
            }
            Payload::DramData { data } => self.home_dram_data(msg.dst.index(), msg.line, data, now),
            Payload::DramWriteBack { data } => {
                let ctrl = self.dram.ctrl_for_line(msg.line);
                let _ = self.dram.access(ctrl, self.cfg.line_bytes, now);
                self.backing.insert(msg.line, data);
            }
        }
    }

    // -- home side ----------------------------------------------------------

    fn home_request_arrival(&mut self, msg: Message, now: Cycle) {
        let tile = msg.dst.index();
        let line = msg.line;
        let busy = self.tiles[tile].txns.contains_key(&line)
            || self.tiles[tile].waiters.get(&line).is_some_and(|q| !q.is_empty());
        if busy {
            self.tiles[tile].waiters.entry(line).or_default().push_back((msg, now));
        } else {
            self.start_home_txn(tile, msg, now, now);
        }
    }

    fn start_home_txn(&mut self, tile: usize, msg: Message, arrival: Cycle, now: Cycle) {
        let (kind, hints, word, value, instr) = match msg.payload {
            Payload::ReadReq { hints, word, instr } => (AccessKind::Read, hints, word, 0, instr),
            Payload::WriteReq { hints, word, value } => {
                (AccessKind::Write, hints, word, value, false)
            }
            _ => unreachable!("only requests start transactions"),
        };
        self.counts.l2_tag_probes += 1;
        self.counts.dir_reads += 1;
        let txn = RequestTxn {
            requester: msg.src,
            kind,
            hints,
            word,
            value,
            instr,
            wait: now - arrival,
            offchip: 0,
            sharers_lat: 0,
            phase: Phase::Lookup,
            phase_start: now,
            decision: None,
            awaiting: Awaiting::Count(0),
        };
        self.tiles[tile].txns.insert(msg.line, HomeTxn::Request(txn));
        self.schedule(now + self.cfg.l2.latency, Event::HomeLookup { tile, line: msg.line });
    }

    fn home_lookup(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        if self.tiles[tile].l2.contains(line) {
            self.home_decide(tile, line, now);
        } else {
            let home = CoreId::new(tile);
            {
                let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                    unreachable!("lookup without transaction");
                };
                txn.phase = Phase::AwaitDram;
                txn.phase_start = now;
            }
            let ctrl = self.dram.ctrl_for_line(line);
            let ctrl_tile = self.dram.tile_of(ctrl);
            self.send(home, ctrl_tile, line, Payload::DramFetch, now);
        }
    }

    fn home_dram_data(&mut self, tile: usize, line: LineAddr, data: LineData, now: Cycle) {
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                unreachable!("DRAM data without transaction");
            };
            if txn.phase == Phase::AwaitDram {
                txn.offchip += now - txn.phase_start;
                txn.phase = Phase::Installing;
            }
        }
        if !self.install_l2_line(tile, line, data, now) {
            // Every way in the set is protocol-busy; retry shortly.
            let home = CoreId::new(tile);
            self.schedule(
                now + INSTALL_RETRY_CYCLES,
                Event::Deliver(Message {
                    src: home,
                    dst: home,
                    line,
                    payload: Payload::DramData { data },
                    sent: now,
                }),
            );
            return;
        }
        self.home_decide(tile, line, now);
    }

    fn install_l2_line(&mut self, tile: usize, line: LineAddr, data: LineData, now: Cycle) -> bool {
        let entry =
            DirectoryEntry::new(self.cfg.directory, &self.cfg.classifier, self.cfg.num_cores);
        let fresh = L2Line { dirty: false, data, entry };
        // A victim must not have an in-flight transaction of its own.
        let txns = &self.tiles[tile].txns;
        let waiters = &self.tiles[tile].waiters;
        let protected: Vec<LineAddr> = txns
            .keys()
            .copied()
            .chain(waiters.iter().filter(|(_, q)| !q.is_empty()).map(|(l, _)| *l))
            .collect();
        let result = self.tiles[tile]
            .l2
            .try_insert_filtered(line, fresh, |l, _| l != line && !protected.contains(&l));
        match result {
            Err(_) => false,
            Ok(victim) => {
                self.counts.l2_line_writes += 1;
                if let Some((vline, vmeta)) = victim {
                    self.spawn_l2_eviction(tile, vline, vmeta, now);
                }
                true
            }
        }
    }

    fn spawn_l2_eviction(&mut self, tile: usize, vline: LineAddr, vmeta: L2Line, now: Cycle) {
        self.protocol.l2_evictions += 1;
        let home = CoreId::new(tile);
        match vmeta.entry.back_invalidation_plan() {
            None => {
                if vmeta.dirty {
                    let ctrl_tile = self.dram.tile_of(self.dram.ctrl_for_line(vline));
                    self.send(
                        home,
                        ctrl_tile,
                        vline,
                        Payload::DramWriteBack { data: vmeta.data },
                        now,
                    );
                }
            }
            Some(plan) => {
                let awaiting = match &plan {
                    lacc_core::sharer::InvalidationPlan::Unicast(cores) => {
                        for &c in cores {
                            self.protocol.invalidations_sent += 1;
                            self.send(home, c, vline, Payload::Inv { back: true }, now);
                        }
                        Awaiting::Set(cores.clone())
                    }
                    lacc_core::sharer::InvalidationPlan::Broadcast { expected_acks } => {
                        self.protocol.broadcasts += 1;
                        self.protocol.invalidations_sent += 1;
                        self.broadcast_inv(tile, vline, true, now);
                        Awaiting::Count(*expected_acks)
                    }
                };
                self.tiles[tile].txns.insert(
                    vline,
                    HomeTxn::Evict(EvictTxn {
                        entry: vmeta.entry,
                        data: vmeta.data,
                        dirty: vmeta.dirty,
                        awaiting,
                    }),
                );
            }
        }
    }

    fn home_decide(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let decision;
        {
            let (requester, kind, hints, instr) = {
                let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get(&line) else {
                    unreachable!("decide without transaction");
                };
                (txn.requester, txn.kind, txn.hints, txn.instr)
            };
            let l2line = self.tiles[tile].l2.get_mut(line).expect("decide on resident line");
            let req = HomeRequest { core: requester, kind, hints, instruction: instr };
            decision = l2line.entry.begin_request(&req, now);
            self.counts.dir_updates += 1;
        }
        let fetch_from = decision.fetch_from_owner;
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                unreachable!();
            };
            txn.decision = Some(decision);
            if let Some(owner) = fetch_from {
                txn.phase = Phase::AwaitWb;
                txn.phase_start = now;
                self.protocol.write_backs += 1;
                let home = CoreId::new(tile);
                self.send(home, owner, line, Payload::WbReq, now);
                return;
            }
        }
        self.home_proceed_invalidate(tile, line, now);
    }

    fn home_proceed_invalidate(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let plan = {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                unreachable!();
            };
            match &txn.decision.as_ref().expect("decision made").invalidate {
                Some(plan) if txn.phase != Phase::AwaitAcks => {
                    txn.phase = Phase::AwaitAcks;
                    txn.phase_start = now;
                    Some(plan.clone())
                }
                _ => None,
            }
        };
        match plan {
            Some(lacc_core::sharer::InvalidationPlan::Unicast(cores)) => {
                let home = CoreId::new(tile);
                for &c in &cores {
                    self.protocol.invalidations_sent += 1;
                    self.send(home, c, line, Payload::Inv { back: false }, now);
                }
                if let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) {
                    txn.awaiting = Awaiting::Set(cores);
                }
            }
            Some(lacc_core::sharer::InvalidationPlan::Broadcast { expected_acks }) => {
                self.protocol.broadcasts += 1;
                self.protocol.invalidations_sent += 1;
                self.broadcast_inv(tile, line, false, now);
                if let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) {
                    txn.awaiting = Awaiting::Count(expected_acks);
                }
            }
            None => self.home_grant(tile, line, now),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn home_inv_ack(
        &mut self,
        tile: usize,
        from: CoreId,
        line: LineAddr,
        util: u32,
        dirty: bool,
        data: LineData,
        back: bool,
        now: Cycle,
    ) {
        match self.tiles[tile].txns.get_mut(&line) {
            Some(HomeTxn::Request(txn)) => {
                debug_assert_eq!(txn.phase, Phase::AwaitAcks, "unexpected inv-ack");
                debug_assert!(!back);
                self.inval_histogram.record(util);
                let counted = txn.awaiting.note_response(from);
                debug_assert!(counted, "uncounted inv-ack from {from}");
                let done = txn.awaiting.done();
                let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
                let mode = l2line.entry.sharer_response(from, util, RemovalReason::Invalidation);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if dirty {
                    l2line.data = data;
                    l2line.dirty = true;
                    self.counts.l2_line_writes += 1;
                }
                if done {
                    let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                        unreachable!();
                    };
                    txn.sharers_lat += now - txn.phase_start;
                    self.home_grant(tile, line, now);
                }
            }
            Some(HomeTxn::Evict(et)) => {
                self.evict_histogram.record(util);
                et.entry.sharer_response(from, util, RemovalReason::BackInvalidation);
                if dirty {
                    et.data = data;
                    et.dirty = true;
                }
                et.awaiting.note_response(from);
                if et.awaiting.done() {
                    self.finish_l2_eviction(tile, line, now);
                }
            }
            None => debug_assert!(false, "inv-ack for idle line {line}"),
        }
    }

    fn finish_l2_eviction(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let Some(HomeTxn::Evict(et)) = self.tiles[tile].txns.remove(&line) else {
            unreachable!();
        };
        if et.dirty {
            let home = CoreId::new(tile);
            let ctrl_tile = self.dram.tile_of(self.dram.ctrl_for_line(line));
            self.send(home, ctrl_tile, line, Payload::DramWriteBack { data: et.data }, now);
        }
        self.drain_waiter(tile, line, now);
    }

    #[allow(clippy::too_many_arguments)]
    fn home_evict_notify(
        &mut self,
        tile: usize,
        from: CoreId,
        line: LineAddr,
        util: u32,
        dirty: bool,
        data: LineData,
        now: Cycle,
    ) {
        self.protocol.evictions += 1;
        self.evict_histogram.record(util);
        match self.tiles[tile].txns.get_mut(&line) {
            Some(HomeTxn::Request(txn)) if txn.phase == Phase::AwaitAcks => {
                let counted = txn.awaiting.note_response(from);
                let done = txn.awaiting.done();
                let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
                let mode = l2line.entry.sharer_response(from, util, RemovalReason::Eviction);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if dirty {
                    l2line.data = data;
                    l2line.dirty = true;
                    self.counts.l2_line_writes += 1;
                }
                if counted && done {
                    let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                        unreachable!();
                    };
                    txn.sharers_lat += now - txn.phase_start;
                    self.home_grant(tile, line, now);
                }
            }
            Some(HomeTxn::Evict(et)) => {
                et.entry.sharer_response(from, util, RemovalReason::Eviction);
                if dirty {
                    et.data = data;
                    et.dirty = true;
                }
                et.awaiting.note_response(from);
                if et.awaiting.done() {
                    self.finish_l2_eviction(tile, line, now);
                }
            }
            _ => {
                // No transaction (or one not yet collecting acks): plain
                // bookkeeping on the resident line.
                let Some(l2line) = self.tiles[tile].l2.peek_mut(line) else {
                    debug_assert!(false, "evict notify for non-resident {line}");
                    return;
                };
                let mode = l2line.entry.sharer_response(from, util, RemovalReason::Eviction);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if dirty {
                    l2line.data = data;
                    l2line.dirty = true;
                    self.counts.l2_line_writes += 1;
                }
                self.counts.dir_updates += 1;
            }
        }
    }

    fn home_wb_response(
        &mut self,
        tile: usize,
        owner: CoreId,
        line: LineAddr,
        response: Option<(bool, LineData)>,
        now: Cycle,
    ) {
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.get_mut(&line) else {
                unreachable!("write-back response without transaction");
            };
            debug_assert_eq!(txn.phase, Phase::AwaitWb);
            txn.sharers_lat += now - txn.phase_start;
            let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
            match response {
                Some((dirty, data)) => {
                    l2line.entry.owner_downgraded(owner);
                    if dirty {
                        l2line.data = data;
                        l2line.dirty = true;
                        self.counts.l2_line_writes += 1;
                    }
                }
                None => {
                    // Owner evicted; its notify (FIFO-ordered ahead of the
                    // nack) already removed it from the sharer set.
                    debug_assert_ne!(l2line.entry.state.owner(), Some(owner));
                }
            }
        }
        self.home_proceed_invalidate(tile, line, now);
    }

    fn home_grant(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let Some(HomeTxn::Request(txn)) = self.tiles[tile].txns.remove(&line) else {
            unreachable!("grant without transaction");
        };
        let decision = txn.decision.expect("granting after decision");
        let ann =
            LatencyAnnotation { waiting: txn.wait, sharers: txn.sharers_lat, offchip: txn.offchip };
        let home = CoreId::new(tile);
        if decision.outcome.promoted {
            self.protocol.promotions += 1;
        }
        let payload = {
            let l2line = self.tiles[tile].l2.get_mut(line).expect("resident during txn");
            match decision.grant {
                Grant::LineShared | Grant::LineExclusive | Grant::LineModified => {
                    self.counts.l2_line_reads += 1;
                    self.protocol.line_grants += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    let mesi = match decision.grant {
                        Grant::LineShared => MesiState::Shared,
                        Grant::LineExclusive => MesiState::Exclusive,
                        _ => MesiState::Modified,
                    };
                    Payload::GrantLine { mesi, data: l2line.data, ann }
                }
                Grant::Upgrade => {
                    self.counts.dir_updates += 1;
                    self.protocol.upgrades += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    Payload::GrantUpgrade { ann }
                }
                Grant::WordRead => {
                    self.counts.l2_word_reads += 1;
                    self.counts.dir_updates += 1;
                    self.protocol.word_reads += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    let value = l2line.data.word(txn.word);
                    self.monitor.on_read(txn.requester, line, txn.word, value);
                    Payload::WordReadReply { value, ann }
                }
                Grant::WordWrite => {
                    self.counts.l2_word_writes += 1;
                    self.counts.dir_updates += 1;
                    self.protocol.word_writes += 1;
                    l2line.data.set_word(txn.word, txn.value);
                    l2line.dirty = true;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    self.monitor.on_write(txn.requester, line, txn.word, txn.value);
                    Payload::WordWriteAck { ann }
                }
            }
        };
        self.send(home, txn.requester, line, payload, now);
        self.drain_waiter(tile, line, now);
    }

    fn drain_waiter(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let next = {
            let Some(q) = self.tiles[tile].waiters.get_mut(&line) else { return };
            let n = q.pop_front();
            if q.is_empty() {
                self.tiles[tile].waiters.remove(&line);
            }
            n
        };
        if let Some((msg, arrival)) = next {
            self.start_home_txn(tile, msg, arrival, now);
        }
    }

    // -- L1 side ------------------------------------------------------------

    fn l1_invalidate(&mut self, tile: usize, home: CoreId, line: LineAddr, back: bool, now: Cycle) {
        // Broadcast invalidations reach every tile, but a copy answers only
        // to its own home. This matters for R-NUCA-replicated instruction
        // lines: the same address is homed per cluster, and a broadcast
        // from one cluster's home must not kill (or collect acks from)
        // another cluster's copies.
        if self.home_of(line, CoreId::new(tile)) != home {
            return;
        }
        let victim = self.tiles[tile]
            .l1d
            .process_inv(line)
            .or_else(|| self.tiles[tile].l1i.process_inv(line));
        if let Some(v) = victim {
            let reason =
                if back { RemovalReason::BackInvalidation } else { RemovalReason::Invalidation };
            self.cores[tile].miss_class.record_removal(line, reason);
            self.counts.l1d_fills += u64::from(v.dirty); // dirty read-out
            self.send(
                CoreId::new(tile),
                home,
                line,
                Payload::InvAck { util: v.utilization, dirty: v.dirty, data: v.data, back },
                now,
            );
        }
        // No copy: stay silent — the eviction notify in flight (or the
        // broadcast over-approximation) is accounted by the home.
    }

    fn l1_writeback_req(&mut self, tile: usize, home: CoreId, line: LineAddr, now: Cycle) {
        let resp = self.tiles[tile]
            .l1d
            .process_downgrade(line)
            .or_else(|| self.tiles[tile].l1i.process_downgrade(line));
        let payload = match resp {
            Some((dirty, data)) => Payload::WbData { dirty, data },
            None => Payload::WbNack,
        };
        self.send(CoreId::new(tile), home, line, payload, now);
    }

    fn core_resume(&mut self, msg: Message, now: Cycle) {
        let ci = msg.dst.index();
        let out = self.cores[ci].outstanding.take().expect("resume without outstanding miss");
        debug_assert_eq!(out.line, msg.line);
        let ann = match &msg.payload {
            Payload::GrantLine { ann, .. }
            | Payload::GrantUpgrade { ann }
            | Payload::WordReadReply { ann, .. }
            | Payload::WordWriteAck { ann } => *ann,
            _ => unreachable!("not a reply"),
        };
        let total = now - out.issue_time;
        let overlap = ann.waiting + ann.sharers + ann.offchip;
        {
            let b = &mut self.cores[ci].breakdown;
            b.l1_to_l2 += total.saturating_sub(overlap);
            b.l2_waiting += ann.waiting;
            b.l2_to_sharers += ann.sharers;
            b.l2_to_offchip += ann.offchip;
        }
        self.cores[ci].clock = now;
        let core_id = CoreId::new(ci);

        match msg.payload {
            Payload::GrantLine { mesi, mut data, .. } => {
                if out.is_store {
                    debug_assert_eq!(mesi, MesiState::Modified);
                    data.set_word(out.word, out.value);
                    self.monitor.on_write(core_id, out.line, out.word, out.value);
                } else {
                    let v = data.word(out.word);
                    self.monitor.on_read(core_id, out.line, out.word, v);
                }
                let cache =
                    if out.instr { &mut self.tiles[ci].l1i } else { &mut self.tiles[ci].l1d };
                let victim = cache.install(out.line, mesi, data, now);
                if out.instr {
                    self.counts.l1i_fills += 1;
                } else {
                    self.counts.l1d_fills += 1;
                }
                if let Some(v) = victim {
                    self.cores[ci].miss_class.record_removal(v.line, RemovalReason::Eviction);
                    let vhome = self.home_of(v.line, core_id);
                    self.send(
                        core_id,
                        vhome,
                        v.line,
                        Payload::EvictNotify { util: v.utilization, dirty: v.dirty, data: v.data },
                        now,
                    );
                }
            }
            Payload::GrantUpgrade { .. } => {
                self.tiles[ci].l1d.apply_upgrade(out.line, out.word, out.value, now);
                self.counts.l1d_writes += 1;
                self.monitor.on_write(core_id, out.line, out.word, out.value);
            }
            Payload::WordReadReply { .. } => {
                self.cores[ci].miss_class.record_remote_access(out.line);
            }
            Payload::WordWriteAck { .. } => {
                self.cores[ci].miss_class.record_remote_access(out.line);
            }
            _ => unreachable!(),
        }
        self.cores[ci].blocked = Blocked::No;
        self.step_core(ci, now);
    }

    // -- reporting ----------------------------------------------------------

    fn build_report(self) -> SimReport {
        let mut counts = self.counts;
        let net = self.net.stats();
        counts.router_flits = net.router_flits;
        counts.link_flits = net.link_flits;
        let energy = self.energy_params.charge(&counts);
        let per_core: Vec<CompletionBreakdown> =
            (0..self.active_cores).map(|c| self.cores[c].breakdown).collect();
        let completion_time =
            (0..self.active_cores).map(|c| self.cores[c].clock).max().unwrap_or(0);
        SimReport {
            workload: self.workload_name,
            completion_time,
            breakdown: per_core.iter().copied().sum(),
            per_core,
            energy,
            energy_counts: counts,
            l1d: self.cores.iter().map(|c| c.l1d_stats).sum(),
            l1i: self.cores.iter().map(|c| c.l1i_stats).sum(),
            inval_histogram: self.inval_histogram,
            evict_histogram: self.evict_histogram,
            net,
            dram: self.dram.stats(),
            protocol: self.protocol,
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            monitor: self.monitor.report().clone(),
        }
    }
}

/// Whether coherence violations should panic (on by default; large
/// calibration sweeps may disable the monitor wholesale instead).
fn cfg_check_panics() -> bool {
    true
}
