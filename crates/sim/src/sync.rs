//! Abstract synchronization manager: barriers and queued locks.
//!
//! The paper's *Synchronization* completion-time component is the time
//! cores spend blocked on barriers and locks (§4.4). Lock and barrier
//! *variables* are managed abstractly (see DESIGN.md substitutions); the
//! data accessed inside critical sections still runs through the full
//! coherence protocol, which is where the paper's sync-time reductions come
//! from ("reducing these components may decrease synchronization time as
//! well if the responsible memory accesses lie within the critical
//! section").
//!
//! Releases can be *zero-cycle*: the last barrier arrival (or an unlock)
//! wakes cross-tile waiters at the very cycle it commits. On the sharded
//! event plane those wakeups land inside the open commit window, which
//! routes them through the coordinator's pending merge — barrier-local,
//! never deferred across a window (DESIGN.md §7); the `lacc_mc`
//! shard-plane scenario drives exactly this corner.

use std::collections::{HashMap, VecDeque};

use lacc_model::{CoreId, Cycle};

/// Outcome of an acquire/arrive call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SyncOutcome {
    /// The caller proceeds immediately.
    Proceed,
    /// The caller blocks; it will be woken by a later event.
    Blocked,
    /// The caller's arrival released these cores at the given cycle (the
    /// caller itself proceeds too).
    Release(Vec<(CoreId, Cycle)>),
}

#[derive(Clone, Debug, Default)]
struct BarrierState {
    waiting: Vec<(CoreId, Cycle)>,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<CoreId>,
    queue: VecDeque<(CoreId, Cycle)>,
}

/// Barriers and locks for one simulation.
#[derive(Clone, Debug)]
pub struct SyncManager {
    participants: usize,
    barriers: HashMap<u32, BarrierState>,
    locks: HashMap<u32, LockState>,
}

impl SyncManager {
    /// Creates a manager where each barrier waits for `participants` cores.
    ///
    /// # Panics
    ///
    /// Panics if `participants` is zero.
    #[must_use]
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barriers need at least one participant");
        SyncManager { participants, barriers: HashMap::new(), locks: HashMap::new() }
    }

    /// Core `core` arrives at barrier `id` at its local cycle `now`.
    ///
    /// When the last participant arrives, everyone — **including the
    /// caller** — is released at the maximum arrival time. (Core clocks are
    /// laxly synchronized, so the final arriver in processing order may not
    /// hold the maximum local clock.)
    pub fn barrier_arrive(&mut self, id: u32, core: CoreId, now: Cycle) -> SyncOutcome {
        let b = self.barriers.entry(id).or_default();
        b.waiting.push((core, now));
        if b.waiting.len() == self.participants {
            let release = b.waiting.iter().map(|&(_, t)| t).max().unwrap_or(now);
            let released = b.waiting.drain(..).map(|(c, _)| (c, release)).collect();
            SyncOutcome::Release(released)
        } else {
            SyncOutcome::Blocked
        }
    }

    /// Core `core` tries to acquire lock `id` at its local cycle `now`.
    pub fn acquire(&mut self, id: u32, core: CoreId, now: Cycle) -> SyncOutcome {
        let l = self.locks.entry(id).or_default();
        if l.holder.is_none() {
            l.holder = Some(core);
            SyncOutcome::Proceed
        } else {
            l.queue.push_back((core, now));
            SyncOutcome::Blocked
        }
    }

    /// Core `core` releases lock `id` at its local cycle `now`; the head
    /// waiter (if any) is woken at `max(now, its arrival)`.
    ///
    /// # Panics
    ///
    /// Panics if `core` does not hold the lock (a workload bug).
    pub fn release(&mut self, id: u32, core: CoreId, now: Cycle) -> SyncOutcome {
        let l = self.locks.get_mut(&id).expect("release of unknown lock");
        assert_eq!(l.holder, Some(core), "release by non-holder");
        match l.queue.pop_front() {
            None => {
                l.holder = None;
                SyncOutcome::Proceed
            }
            Some((next, arrived)) => {
                l.holder = Some(next);
                SyncOutcome::Release(vec![(next, now.max(arrived))])
            }
        }
    }

    /// Number of cores currently blocked (diagnostics / deadlock checks).
    #[must_use]
    pub fn blocked_count(&self) -> usize {
        self.barriers.values().map(|b| b.waiting.len()).sum::<usize>()
            + self.locks.values().map(|l| l.queue.len()).sum::<usize>()
    }

    /// Appends a canonical encoding of barrier/lock occupancy to `out`,
    /// remapping core indices through `map` (the model checker's
    /// symmetry-reduction hook).
    ///
    /// Variables are emitted sorted by id; waiter lists and lock queues in
    /// list order (arrival order is release order, so it is behavioral).
    /// Arrival cycles are excluded — the checker abstracts timing.
    pub fn encode_state(&self, out: &mut Vec<u64>, map: &mut dyn FnMut(usize) -> usize) {
        let mut barrier_ids: Vec<u32> = self.barriers.keys().copied().collect();
        barrier_ids.sort_unstable();
        out.push(barrier_ids.len() as u64);
        for id in barrier_ids {
            let b = &self.barriers[&id];
            out.push(u64::from(id));
            out.push(b.waiting.len() as u64);
            out.extend(b.waiting.iter().map(|&(c, _)| map(c.index()) as u64));
        }
        let mut lock_ids: Vec<u32> = self.locks.keys().copied().collect();
        lock_ids.sort_unstable();
        out.push(lock_ids.len() as u64);
        for id in lock_ids {
            let l = &self.locks[&id];
            out.push(u64::from(id));
            out.push(l.holder.map_or(u64::MAX, |c| map(c.index()) as u64));
            out.push(l.queue.len() as u64);
            out.extend(l.queue.iter().map(|&(c, _)| map(c.index()) as u64));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn barrier_releases_at_max_arrival() {
        let mut s = SyncManager::new(3);
        assert_eq!(s.barrier_arrive(0, c(0), 100), SyncOutcome::Blocked);
        assert_eq!(s.barrier_arrive(0, c(1), 250), SyncOutcome::Blocked);
        // The trigger itself arrived at 180 < 250: it too must wait to 250.
        let out = s.barrier_arrive(0, c(2), 180);
        assert_eq!(out, SyncOutcome::Release(vec![(c(0), 250), (c(1), 250), (c(2), 250)]));
        // Barrier is reusable.
        assert_eq!(s.barrier_arrive(0, c(0), 300), SyncOutcome::Blocked);
    }

    #[test]
    fn single_participant_barrier_never_blocks() {
        let mut s = SyncManager::new(1);
        assert_eq!(s.barrier_arrive(7, c(0), 5), SyncOutcome::Release(vec![(c(0), 5)]));
    }

    #[test]
    fn lock_hands_off_in_fifo_order() {
        let mut s = SyncManager::new(4);
        assert_eq!(s.acquire(1, c(0), 10), SyncOutcome::Proceed);
        assert_eq!(s.acquire(1, c(1), 20), SyncOutcome::Blocked);
        assert_eq!(s.acquire(1, c(2), 30), SyncOutcome::Blocked);
        // Holder releases at 50: c1 wakes at max(50, 20) = 50.
        assert_eq!(s.release(1, c(0), 50), SyncOutcome::Release(vec![(c(1), 50)]));
        // c1 releases at 45?? it can only release after waking at 50; say 60.
        assert_eq!(s.release(1, c(1), 60), SyncOutcome::Release(vec![(c(2), 60)]));
        assert_eq!(s.release(1, c(2), 70), SyncOutcome::Proceed);
        // Lock is free again.
        assert_eq!(s.acquire(1, c(3), 80), SyncOutcome::Proceed);
    }

    #[test]
    fn waiter_that_arrived_late_wakes_at_its_arrival() {
        let mut s = SyncManager::new(2);
        s.acquire(0, c(0), 0);
        assert_eq!(s.acquire(0, c(1), 500), SyncOutcome::Blocked);
        // Released at 100 but the waiter only arrived at 500.
        assert_eq!(s.release(0, c(0), 100), SyncOutcome::Release(vec![(c(1), 500)]));
    }

    #[test]
    #[should_panic(expected = "non-holder")]
    fn release_by_non_holder_panics() {
        let mut s = SyncManager::new(2);
        s.acquire(0, c(0), 0);
        let _ = s.release(0, c(1), 10);
    }

    #[test]
    fn blocked_count_tracks_waiters() {
        let mut s = SyncManager::new(3);
        s.barrier_arrive(0, c(0), 0);
        s.acquire(0, c(1), 0);
        s.acquire(0, c(2), 0);
        assert_eq!(s.blocked_count(), 2); // one barrier waiter + one lock waiter
    }
}
