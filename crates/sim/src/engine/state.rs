//! Per-core and per-tile simulator state.
//!
//! The [`Simulator`](super::Simulator) owns one [`CoreState`] per core
//! (trace cursor, local clock, completion breakdown, miss classifier) and
//! one [`TileState`] per tile (private L1s, the local L2/directory slice,
//! in-flight home transactions and their waiter queues). Everything here
//! is data + small invariant-preserving helpers; the protocol logic that
//! drives it lives in the sibling `core_side`/`home_side`/`l1_side`
//! modules.

use std::collections::VecDeque;

use lacc_cache::{DataRef, SetAssocCache};
use lacc_core::classifier::RequestHints;
use lacc_core::home::{AccessKind, DirectoryEntry, HomeDecision};
use lacc_core::l1::L1Cache;
use lacc_core::miss_class::MissClassifier;
use lacc_model::{CompletionBreakdown, CoreId, CoreSet, Cycle, LineAddr, LineMap, MissStats};

use crate::trace::{TraceOp, TraceSource};

use super::shard::FeedHandle;

// ---------------------------------------------------------------------------
// Core side
// ---------------------------------------------------------------------------

/// How many ops the serial engine pulls from a core's source per refill.
/// Matches the shard feed batch: decode amortizes identically whether the
/// trace is consumed inline or through a prefetch worker.
const LOCAL_BATCH: usize = 64;

/// A [`TraceSource`] wrapped with a small refill buffer, so the serial
/// engine's per-op pull consumes batched decodes
/// ([`TraceSource::next_ops`]) instead of paying a virtual call and a
/// record decode per op. Pure pass-through semantically: the op sequence
/// is exactly the source's.
pub(crate) struct BatchedSource {
    src: Box<dyn TraceSource>,
    buf: Vec<TraceOp>,
    pos: usize,
}

impl BatchedSource {
    pub fn new(src: Box<dyn TraceSource>) -> Self {
        BatchedSource { src, buf: Vec::with_capacity(LOCAL_BATCH), pos: 0 }
    }
}

impl TraceSource for BatchedSource {
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.src.next_ops(&mut self.buf, LOCAL_BATCH) == 0 {
                return None;
            }
        }
        let op = self.buf[self.pos];
        self.pos += 1;
        Some(op)
    }

    fn next_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        // Serve anything buffered first, then delegate the remainder as
        // one batch — a shard feed worker adopting a `BatchedSource`
        // never double-buffers.
        let buffered = (self.buf.len() - self.pos).min(max);
        out.extend_from_slice(&self.buf[self.pos..self.pos + buffered]);
        self.pos += buffered;
        if buffered == max {
            return max;
        }
        buffered + self.src.next_ops(out, max - buffered)
    }
}

/// Where a core's next trace op comes from.
///
/// Serial runs decode the core's [`TraceSource`] inline (`Local`, with a
/// [`BatchedSource`] refill buffer amortizing the decode). Sharded runs
/// hand the sources to per-shard prefetch workers and give each core a
/// blocking [`FeedHandle`] into its shard's feed (`Ring`) — the op
/// *sequence* is identical either way, which is part of the
/// byte-exactness argument in DESIGN.md §7. The prefetch workers are
/// independent of the commit mode: an inline window-commit run can still
/// prefetch, and a concurrent-commit run adds harvest crews *beside*
/// these feed workers in the same thread scope.
pub(crate) enum TraceFeed {
    /// Trace exhausted (or the core never had one).
    Done,
    /// Decode inline on the coordinator (serial engine).
    Local(BatchedSource),
    /// Pull from a shard prefetch worker's bounded feed.
    Ring(FeedHandle),
}

impl TraceFeed {
    /// The core's next op; `None` once the trace ends.
    pub fn next_op(&mut self) -> Option<TraceOp> {
        match self {
            TraceFeed::Done => None,
            TraceFeed::Local(src) => src.next_op(),
            TraceFeed::Ring(handle) => handle.next_op(),
        }
    }
}

/// Why a core is not executing its trace.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Blocked {
    No,
    IFetch,
    Data,
    Sync,
}

/// The single outstanding miss of a blocked core (in-order, one miss).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Outstanding {
    pub line: LineAddr,
    pub word: usize,
    pub is_store: bool,
    pub value: u64,
    pub issue_time: Cycle,
    pub instr: bool,
}

pub(crate) struct CoreState {
    pub trace: TraceFeed,
    pub clock: Cycle,
    pub finished: bool,
    pub breakdown: CompletionBreakdown,
    pub miss_class: MissClassifier,
    pub l1d_stats: MissStats,
    pub l1i_stats: MissStats,
    pub pending_compute: u32,
    pub replay: Option<TraceOp>,
    pub replay_ifetched: bool,
    pub blocked: Blocked,
    pub instr_pos: u64,
    pub instructions: u64,
    pub outstanding: Option<Outstanding>,
    /// Ops pulled from the trace so far. The refill buffer in
    /// [`BatchedSource`] makes the raw source position unobservable; this
    /// counter is the architectural trace cursor the model checker
    /// fingerprints.
    pub ops_consumed: u64,
}

impl CoreState {
    pub fn new(trace: Option<Box<dyn TraceSource>>) -> Self {
        CoreState {
            finished: trace.is_none(),
            trace: trace.map_or(TraceFeed::Done, |src| TraceFeed::Local(BatchedSource::new(src))),
            clock: 0,
            breakdown: CompletionBreakdown::default(),
            miss_class: MissClassifier::new(),
            l1d_stats: MissStats::default(),
            l1i_stats: MissStats::default(),
            pending_compute: 0,
            replay: None,
            replay_ifetched: false,
            blocked: Blocked::No,
            instr_pos: 0,
            instructions: 0,
            outstanding: None,
            ops_consumed: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Home side
// ---------------------------------------------------------------------------

/// An L2-resident line: data handle, dirtiness, and its directory entry.
///
/// The L2 owns one slab reference per resident line; shared grants alias
/// it ([`DataSlab::retain`](lacc_cache::DataSlab::retain)) rather than
/// copying the 64 bytes, and eviction transfers or releases it.
pub(crate) struct L2Line {
    pub dirty: bool,
    pub data: DataRef,
    pub entry: DirectoryEntry,
}

// ---------------------------------------------------------------------------
// Transaction arena
// ---------------------------------------------------------------------------

/// Index of a transaction slot in a [`TxnArena`].
pub(crate) type TxnId = u32;

/// Slot-recycling arena for in-flight home transactions.
///
/// A home slice begins and retires one transaction per miss it serves; with
/// transactions stored directly in a hash map, that is one full
/// [`HomeTxn`]-sized move in and out of the table per miss, plus the map's
/// own churn. The arena keeps fixed-size slots alive for the whole run and
/// recycles them through a LIFO free list: steady-state transaction
/// turnover touches no allocator at all, and the line → transaction map
/// shrinks to 4-byte [`TxnId`] values. Slots are only added when the
/// number of *simultaneously* live transactions exceeds every previous
/// high-water mark (bounded in practice by the blocking-core protocol:
/// one outstanding request per core plus the evictions they spawn).
///
/// [`TxnArena::live`] is the leak-check quantity: when a tile is idle it
/// must be zero, or a transaction was begun and never retired.
pub(crate) struct TxnArena<T> {
    slots: Vec<Option<T>>,
    free: Vec<TxnId>,
}

impl<T> TxnArena<T> {
    /// An arena with `cap` slots pre-created (empty, free-listed).
    pub fn with_capacity(cap: usize) -> Self {
        let mut arena = TxnArena { slots: Vec::with_capacity(cap), free: Vec::with_capacity(cap) };
        for i in 0..cap {
            arena.slots.push(None);
            arena.free.push(i as TxnId);
        }
        // LIFO free list: pop order is ascending slot index.
        arena.free.reverse();
        arena
    }

    /// Stores `txn` in a recycled (or, past the high-water mark, fresh)
    /// slot and returns its id.
    pub fn insert(&mut self, txn: T) -> TxnId {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none(), "free-listed slot occupied");
                self.slots[id as usize] = Some(txn);
                id
            }
            None => {
                let id = TxnId::try_from(self.slots.len()).expect("txn arena exceeds u32 slots");
                self.slots.push(Some(txn));
                id
            }
        }
    }

    /// Shared access to the transaction in slot `id` (invariant checks).
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (stale id).
    pub fn get(&self, id: TxnId) -> &T {
        self.slots[id as usize].as_ref().expect("stale TxnId: slot is vacant")
    }

    /// Mutable access to the transaction in slot `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (stale id).
    pub fn get_mut(&mut self, id: TxnId) -> &mut T {
        self.slots[id as usize].as_mut().expect("stale TxnId: slot is vacant")
    }

    /// Retires the transaction in slot `id`, recycling the slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is vacant (double retire).
    pub fn remove(&mut self, id: TxnId) -> T {
        let txn = self.slots[id as usize].take().expect("double retire of TxnId");
        self.free.push(id);
        txn
    }

    /// Number of live transactions.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }
}

/// The responses a home transaction still waits for: exact identities
/// (unicast rounds) or a bare count (ACKwise broadcast rounds).
#[derive(Clone, Copy, PartialEq, Debug)]
pub(crate) enum Awaiting {
    Set(CoreSet),
    Count(usize),
}

impl Awaiting {
    /// Consumes one expected response from `core`; `false` if the response
    /// was not awaited (stale/over-approximated).
    pub fn note_response(&mut self, core: CoreId) -> bool {
        match self {
            Awaiting::Set(s) => s.remove(core),
            Awaiting::Count(n) => {
                if *n > 0 {
                    *n -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// `true` when every expected response has arrived.
    pub fn done(&self) -> bool {
        match self {
            Awaiting::Set(s) => s.is_empty(),
            Awaiting::Count(n) => *n == 0,
        }
    }
}

/// Phase of an in-flight request transaction (for latency attribution).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Phase {
    Lookup,
    AwaitDram,
    Installing,
    AwaitWb,
    AwaitAcks,
}

/// A miss request being served by the home tile.
pub(crate) struct RequestTxn {
    pub requester: CoreId,
    pub kind: AccessKind,
    pub hints: RequestHints,
    pub word: usize,
    pub value: u64,
    pub instr: bool,
    pub wait: Cycle,
    pub offchip: Cycle,
    pub sharers_lat: Cycle,
    pub phase: Phase,
    pub phase_start: Cycle,
    pub decision: Option<HomeDecision>,
    pub awaiting: Awaiting,
}

/// An L2 eviction collecting back-invalidation acks. Holds the evicted
/// line's data handle until the acks resolve its fate (DRAM write-back
/// transfer when dirty, release when clean).
pub(crate) struct EvictTxn {
    pub entry: DirectoryEntry,
    pub data: DataRef,
    pub dirty: bool,
    pub awaiting: Awaiting,
}

pub(crate) enum HomeTxn {
    Request(RequestTxn),
    Evict(EvictTxn),
}

/// Per-line FIFO queues of requests that arrived while the line was busy.
///
/// Queueing time becomes the *L2 cache waiting time* completion component,
/// so fairness is an accounting invariant, not just a liveness one: for any
/// line, requests are served in exactly the order they arrived.
pub(crate) struct Waiters<T> {
    map: LineMap<VecDeque<T>>,
}

impl<T> Waiters<T> {
    pub fn new() -> Self {
        Waiters { map: LineMap::default() }
    }

    /// Whether `line` has queued requests.
    pub fn line_busy(&self, line: LineAddr) -> bool {
        self.map.get(&line).is_some_and(|q| !q.is_empty())
    }

    /// Appends a request to `line`'s queue.
    pub fn push(&mut self, line: LineAddr, item: T) {
        self.map.entry(line).or_default().push_back(item);
    }

    /// Pops the oldest queued request for `line`, dropping the queue when
    /// it empties so `line_busy` stays O(1)-accurate.
    pub fn pop(&mut self, line: LineAddr) -> Option<T> {
        let q = self.map.get_mut(&line)?;
        let item = q.pop_front();
        if q.is_empty() {
            self.map.remove(&line);
        }
        item
    }

    /// `true` when no line has queued requests (quiescence checks).
    pub fn is_empty(&self) -> bool {
        self.map.values().all(VecDeque::is_empty)
    }

    /// Iterates every non-empty queue as `(line, queue)` in map order
    /// (callers needing a canonical order sort by line).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &VecDeque<T>)> {
        self.map.iter().map(|(l, q)| (*l, q))
    }
}

/// One tile: the private L1 pair and the local shared-L2 slice with its
/// in-flight transaction table and waiter queues.
///
/// Transactions live in the slot-recycling [`TxnArena`]; `txns` maps a
/// busy line to its arena slot. Use the `txn*` helpers — they keep the
/// map and the arena in lock-step.
pub(crate) struct TileState {
    pub l1i: L1Cache,
    pub l1d: L1Cache,
    pub l2: SetAssocCache<L2Line>,
    pub txns: LineMap<TxnId>,
    pub txn_arena: TxnArena<HomeTxn>,
    pub waiters: Waiters<(crate::msg::Message, Cycle)>,
}

impl TileState {
    /// The in-flight transaction on `line`, if any.
    pub fn txn_mut(&mut self, line: LineAddr) -> Option<&mut HomeTxn> {
        let id = *self.txns.get(&line)?;
        Some(self.txn_arena.get_mut(id))
    }

    /// Begins a transaction on `line` (which must be idle).
    pub fn txn_insert(&mut self, line: LineAddr, txn: HomeTxn) {
        let id = self.txn_arena.insert(txn);
        let prev = self.txns.insert(line, id);
        debug_assert!(prev.is_none(), "line {line} already has an in-flight transaction");
    }

    /// Retires `line`'s transaction, recycling its arena slot.
    pub fn txn_remove(&mut self, line: LineAddr) -> Option<HomeTxn> {
        let id = self.txns.remove(&line)?;
        Some(self.txn_arena.remove(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn awaiting_set_tracks_identities() {
        let mut a = Awaiting::Set([1, 4].into_iter().map(c).collect());
        assert!(!a.done());
        assert!(a.note_response(c(4)));
        assert!(!a.note_response(c(4)), "double response not awaited");
        assert!(!a.note_response(c(9)), "stranger not awaited");
        assert!(a.note_response(c(1)));
        assert!(a.done());
    }

    #[test]
    fn awaiting_count_saturates() {
        let mut a = Awaiting::Count(2);
        assert!(a.note_response(c(0)));
        assert!(a.note_response(c(0)), "count mode ignores identities");
        assert!(a.done());
        assert!(!a.note_response(c(1)));
    }

    #[test]
    fn txn_arena_recycles_slots() {
        let mut a: TxnArena<&'static str> = TxnArena::with_capacity(2);
        assert_eq!(a.live(), 0);
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!((x, y), (0, 1), "pre-created slots hand out in index order");
        assert_eq!(a.live(), 2);
        let z = a.insert("z"); // past the high-water mark: grows
        assert_eq!(z, 2);
        assert_eq!(a.remove(y), "y");
        assert_eq!(a.insert("y2"), y, "retired slot is recycled, not grown");
        assert_eq!(*a.get_mut(z), "z");
        *a.get_mut(x) = "x2";
        assert_eq!(a.remove(x), "x2");
        assert_eq!(a.remove(z), "z");
        assert_eq!(a.remove(y), "y2");
        assert_eq!(a.live(), 0);
        // Steady-state reuse: a full drain puts every slot back in play.
        let again = a.insert("again");
        assert!(again < 3, "no growth while free slots exist");
    }

    #[test]
    #[should_panic(expected = "stale TxnId")]
    fn txn_arena_stale_id_panics() {
        let mut a: TxnArena<u8> = TxnArena::with_capacity(1);
        let id = a.insert(7);
        a.remove(id);
        let _ = a.get_mut(id);
    }

    #[test]
    fn waiters_fifo_per_line() {
        let mut w: Waiters<u32> = Waiters::new();
        let l = LineAddr::new(7);
        assert!(!w.line_busy(l));
        w.push(l, 1);
        w.push(l, 2);
        assert!(w.line_busy(l));
        assert_eq!(w.pop(l), Some(1));
        assert_eq!(w.pop(l), Some(2));
        assert_eq!(w.pop(l), None);
        assert!(!w.line_busy(l));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// FIFO fairness under contention: with arbitrary interleavings of
        /// arrivals and drains across many contended lines, every line
        /// serves its requests in exact arrival order and no request is
        /// lost or duplicated (matches a per-line VecDeque reference
        /// model).
        #[test]
        fn waiters_match_reference_queues(
            ops in proptest::collection::vec((0u64..8, proptest::bool::ANY), 1..300)
        ) {
            let mut w: Waiters<usize> = Waiters::new();
            let mut model: std::collections::BTreeMap<u64, VecDeque<usize>> =
                std::collections::BTreeMap::new();
            for (ticket, (line, push)) in ops.into_iter().enumerate() {
                let l = LineAddr::new(line);
                if push {
                    w.push(l, ticket);
                    model.entry(line).or_default().push_back(ticket);
                } else {
                    prop_assert_eq!(w.pop(l), model.entry(line).or_default().pop_front());
                }
                prop_assert_eq!(
                    w.line_busy(l),
                    !model.entry(line).or_default().is_empty()
                );
            }
            // Drain: remaining arrivals come out in arrival order.
            for (line, q) in model {
                let l = LineAddr::new(line);
                for expect in q {
                    prop_assert_eq!(w.pop(l), Some(expect));
                }
                prop_assert_eq!(w.pop(l), None);
            }
        }
    }
}
