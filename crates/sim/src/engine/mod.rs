//! The discrete-event multicore simulator engine.
//!
//! One [`Simulator`] models the full Table-1 machine: in-order cores
//! executing traces, private L1s, distributed shared L2 slices with
//! integrated directories running the locality-aware protocol, the 2-D
//! mesh, and DRAM controllers. Methodology follows Graphite (§4.1):
//! functional execution with analytical timing, laxly synchronized core
//! clocks, and event-ordered interactions through the network.
//!
//! Key structural choices (see DESIGN.md §4 for the protocol walk-through):
//!
//! * **Per-line home serialization**: requests to a busy line queue at the
//!   home tile; queueing time becomes the *L2 cache waiting time* component.
//! * **Blocking cores**: one outstanding miss per core (in-order,
//!   single-issue), which bounds protocol concurrency exactly as in the
//!   evaluated machine.
//! * **FIFO delivery per (src, dst)**: models wormhole XY links and is what
//!   makes eviction-notify/invalidation races resolvable without NACK
//!   retry loops.
//!
//! The engine is split by subsystem (DESIGN.md §2 maps this layout):
//!
//! * [`queue`] — the two-level calendar event queue;
//! * `state` — per-core and per-tile state (L1s, L2 slice, transaction
//!   tables, waiter queues);
//! * `core_side` — trace execution, instruction fetch, replay, miss
//!   issue and reply handling;
//! * `home_side` — directory transactions, L2 installs/evictions, ack
//!   collection, grants and waiter draining;
//! * `l1_side` — remote-initiated L1 actions (invalidations, write-back
//!   requests).

pub mod explore;
pub mod planecheck;
pub mod queue;

mod core_side;
mod home_side;
mod l1_side;
mod shard;
mod state;

use lacc_cache::{DataRef, DataSlab, LineData, SetAssocCache};
use lacc_core::l1::L1Cache;
use lacc_core::rnuca::{RegionClass, Rnuca};
use lacc_dram::DramSystem;
use lacc_energy::{EnergyCounts, EnergyParams};
use lacc_model::{
    CompletionBreakdown, ConfigError, CoreId, Cycle, LineAddr, LineMap, SystemConfig,
    UtilizationHistogram,
};
use lacc_network::MeshNetwork;

use crate::monitor::CoherenceMonitor;
use crate::msg::{Message, Payload};
use crate::report::{ProtocolStats, SimReport};
use crate::sync::SyncManager;
use crate::trace::{TraceSource, Workload};

use explore::{ChoicePlane, FaultInjection};
use queue::CalendarQueue;
use shard::{CrewShutdownGuard, FeedHandle, FeedShared, ShardPlane, ShutdownGuard};
use state::{CoreState, TileState, TraceFeed, TxnArena, Waiters};

pub(crate) const INSTR_PER_LINE: u64 = 8; // 64-byte line / 8-byte instruction
pub(crate) const INSTALL_RETRY_CYCLES: Cycle = 32;
/// Transaction slots pre-created per tile; blocking cores keep the
/// simultaneous in-flight count per home slice small, so the arena
/// rarely grows past its seed.
pub(crate) const TXN_ARENA_SEED_SLOTS: usize = 8;

/// One scheduled occurrence in the simulation.
#[derive(Debug)]
pub(crate) enum Event {
    /// (Re)start executing a core's trace at the event time.
    CoreStep(usize),
    /// A message arrives at its destination tile.
    Deliver(Message),
    /// The home's L2 tag/data access for a queued transaction completes.
    HomeLookup { tile: usize, line: LineAddr },
}

impl Event {
    /// The tile an event executes at — the sharded plane's partition
    /// key. Every event mutates state rooted at exactly one tile (a
    /// core's step, a message's destination, a home lookup's slice).
    pub(crate) fn owner_tile(&self) -> usize {
        match self {
            Event::CoreStep(c) => *c,
            Event::Deliver(m) => m.dst.index(),
            Event::HomeLookup { tile, .. } => *tile,
        }
    }
}

// Every queued occurrence moves one `Event` through the calendar queue,
// so its size is the hot-path unit of the whole simulation. Pre-refactor
// (payloads embedding `LineData` inline) `Event` measured 120 bytes;
// slab handles bound it at 64. The first bound is the acceptance
// criterion ("drops below its pre-refactor value"), the second is the
// measured regression pin.
const PRE_REFACTOR_EVENT_BYTES: usize = 120;
const _: () = {
    assert!(std::mem::size_of::<Event>() < PRE_REFACTOR_EVENT_BYTES);
    assert!(std::mem::size_of::<Event>() <= 64);
};

/// Run-time switches that do not belong to the simulated machine
/// ([`SystemConfig`] describes the machine; this describes the run).
///
/// # Examples
///
/// ```
/// use lacc_sim::SimOptions;
///
/// let opts = SimOptions::default();
/// assert!(opts.monitor && opts.panic_on_violation);
/// assert_eq!(opts.shards, 1); // serial engine
/// assert!(!opts.concurrent_commit); // barriers harvest inline by default
/// let sweep = SimOptions { monitor: false, shards: 4, ..SimOptions::default() };
/// assert!(!sweep.monitor);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SimOptions {
    /// Run the shadow-memory coherence monitor (functional oracle). Large
    /// calibration sweeps disable it to save the shadow-map traffic.
    pub monitor: bool,
    /// Panic on the first coherence violation (tests) instead of counting
    /// violations into the report. Irrelevant when `monitor` is off.
    pub panic_on_violation: bool,
    /// Shards for the intra-simulation event plane (`--shards N`):
    /// tiles partition into `shards` contiguous blocks, each with its
    /// own calendar queue, payload-slab arena and trace-prefetch worker
    /// thread; commit proceeds in cycle windows harvested at barriers.
    /// `1` (or `0`) is the serial engine, untouched; any value is
    /// clamped to the number of tiles. Every shard count produces
    /// **byte-identical** reports — the serial engine is the oracle
    /// (see DESIGN.md §7).
    pub shards: usize,
    /// Run the window-barrier harvests on per-shard worker threads
    /// (`--shard-commit concurrent`) instead of inline on the
    /// coordinator. Deterministic and byte-identical either way; the
    /// concurrent mode buys overlap on multicore hosts and costs
    /// condvar round-trips on single-CPU ones. `LACC_SHARD_COMMIT=
    /// concurrent|inline` overrides this field. Ignored at `shards <= 1`.
    pub concurrent_commit: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { monitor: true, panic_on_violation: true, shards: 1, concurrent_commit: false }
    }
}

/// The event queue behind [`Simulator::schedule`]: the single serial
/// calendar queue, or the sharded plane (`SimOptions::shards > 1`).
/// Both yield the identical global `(cycle, push order)` total order —
/// the dispatch is one predictable branch per event.
#[derive(Debug)]
pub(crate) enum EventPlane {
    Serial(CalendarQueue<Event>),
    Sharded(Box<ShardPlane>),
    /// The model checker's pending-event set ([`explore`]): every push
    /// lands in an inspectable list, pops replay the serial `(cycle,
    /// push-order)` total order, and `Simulator::fire_choice` can instead
    /// fire any *enabled* pending event out of order.
    Choice(ChoicePlane),
}

impl EventPlane {
    #[inline]
    fn push(&mut self, at: Cycle, ev: Event) {
        match self {
            EventPlane::Serial(q) => q.push(at, ev),
            EventPlane::Sharded(p) => p.push(at, ev),
            EventPlane::Choice(p) => p.push(at, ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, Event)> {
        match self {
            EventPlane::Serial(q) => q.pop(),
            EventPlane::Sharded(p) => p.pop(),
            EventPlane::Choice(p) => p.pop(),
        }
    }
}

/// The full-system simulator. Construct with [`Simulator::new`] (or
/// [`Simulator::with_options`]), then call [`Simulator::run`].
pub struct Simulator {
    pub(crate) cfg: SystemConfig,
    pub(crate) workload_name: String,
    pub(crate) instr_lines: u64,
    pub(crate) instr_base: LineAddr,
    pub(crate) rnuca: Rnuca,
    pub(crate) net: MeshNetwork,
    pub(crate) dram: DramSystem,
    pub(crate) sync: SyncManager,
    pub(crate) monitor: CoherenceMonitor,
    pub(crate) counts: EnergyCounts,
    pub(crate) energy_params: EnergyParams,
    /// The single home of every line's bytes: resident L1/L2 lines, the
    /// DRAM backing store (`backing` maps a line to its slab handle) and
    /// every data-bearing `Payload` in the event queue all hold refcounted
    /// handles into this slab — grants and DRAM fills alias slots instead
    /// of copying them, writes split shared slots copy-on-write. Invariant
    /// (checked at end of run): once the queue drains, the outstanding
    /// handle count `slab.total_refs()` equals resident L1 + L2 lines +
    /// backing entries — anything more is a leaked handle, anything less a
    /// double release (caught earlier by the slab's generation check).
    pub(crate) slab: DataSlab,
    pub(crate) backing: LineMap<DataRef>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) tiles: Vec<TileState>,
    pub(crate) events: EventPlane,
    pub(crate) inval_histogram: UtilizationHistogram,
    pub(crate) evict_histogram: UtilizationHistogram,
    pub(crate) protocol: ProtocolStats,
    pub(crate) active_cores: usize,
    /// Monotone dispatch clock for exploration mode (`explore`): the
    /// maximum cycle any fired event has carried. Out-of-order firing must
    /// never hand a handler a `now` below state timestamps it compares
    /// against (`now - issue_time` etc.). Zero and unused outside
    /// exploration.
    pub(crate) explore_now: Cycle,
    /// The seeded protocol bug this instance injects (`None` in every
    /// normal run; the model checker's mutation harness sets it through
    /// [`Simulator::for_exploration`]).
    pub(crate) fault: Option<FaultInjection>,
    /// Committed (dispatched) events so far — the deterministic tie-break
    /// the monitor stamps into violation records as `seq`.
    pub(crate) committed: u64,
    /// Self-time counters (`LACC_SIM_PROFILE=1`); `None` keeps the event
    /// loop free of timer calls.
    profile: Option<Box<ProfileCounters>>,
}

/// Wall-clock self-time by engine phase, printed at the end of a run
/// when `LACC_SIM_PROFILE=1` (to stderr — stdout stays byte-identical
/// for the determinism diffs). The phases index by [`Event`] kind.
#[derive(Debug, Default)]
struct ProfileCounters {
    /// Nanoseconds inside `EventPlane::pop` (includes window barriers).
    pop_ns: u64,
    /// Nanoseconds dispatching [CoreStep, Deliver, HomeLookup].
    phase_ns: [u64; 3],
    /// Events dispatched per phase.
    phase_events: [u64; 3],
}

// The experiment harness (`lacc_experiments::run_jobs`) dispatches whole
// simulations across worker threads: one thread builds, owns and runs one
// `Simulator`, then sends the `SimReport` back for ordered aggregation.
// These assertions make that isolation story a compile-time guarantee —
// adding an `Rc`, a thread-local handle or a non-`Send` trace source
// anywhere in the simulator breaks the build here, not racily at runtime.
// (`Sync` is deliberately not asserted: nothing shares a live simulator.)
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Simulator>();
    assert_send::<SystemConfig>();
    assert_send::<SimOptions>();
    assert_send::<SimReport>();
    assert_send::<Workload>();
};

impl Simulator {
    /// Builds a simulator for `cfg` running `workload` with default
    /// [`SimOptions`] (monitor on, violations panic).
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] from [`SystemConfig::validate`], or one
    /// describing a workload/machine mismatch (more traces than cores).
    pub fn new(cfg: SystemConfig, workload: Workload) -> Result<Self, ConfigError> {
        Self::with_options(cfg, workload, SimOptions::default())
    }

    /// Builds a simulator with explicit run-time [`SimOptions`].
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::new`].
    pub fn with_options(
        cfg: SystemConfig,
        workload: Workload,
        options: SimOptions,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        if workload.traces.len() > cfg.num_cores {
            return Err(ConfigError::new(format!(
                "workload has {} traces but the machine has {} cores",
                workload.traces.len(),
                cfg.num_cores
            )));
        }
        let mut rnuca = Rnuca::new(cfg.num_cores, cfg.rnuca_cluster);
        for r in &workload.regions {
            rnuca.declare_lines(r.first_line, r.lines, r.class);
        }
        if workload.instr_lines > 0 {
            rnuca.declare_lines(
                workload.instr_base,
                workload.instr_lines,
                RegionClass::Instruction,
            );
        }
        let net = MeshNetwork::new(cfg.num_cores, cfg.hop_router_cycles, cfg.hop_link_cycles);
        let dram = DramSystem::new(
            cfg.num_mem_ctrls,
            cfg.num_cores,
            cfg.dram_latency,
            cfg.dram_bytes_per_cycle,
        );
        let active = workload.active_cores().max(1);
        let mut traces: Vec<Option<Box<dyn TraceSource>>> =
            workload.traces.into_iter().map(Some).collect();
        traces.resize_with(cfg.num_cores, || None);

        let cores = traces.into_iter().map(CoreState::new).collect::<Vec<_>>();

        // `--shards 1` (or 0) is the serial engine, untouched; N > 1
        // selects the sharded plane with the conservative lookahead set
        // to the minimum cross-tile network latency (one mesh hop).
        let shards = options.shards.clamp(1, cfg.num_cores);
        let events = if shards > 1 {
            let lookahead = net.min_cross_tile_latency();
            let concurrent = match std::env::var("LACC_SHARD_COMMIT").as_deref() {
                Ok("concurrent") => true,
                Ok("inline") => false,
                Ok(other) => {
                    panic!("LACC_SHARD_COMMIT must be 'concurrent' or 'inline', got {other:?}")
                }
                Err(_) => options.concurrent_commit,
            };
            EventPlane::Sharded(Box::new(ShardPlane::new(
                cfg.num_cores,
                shards,
                lookahead,
                concurrent,
            )))
        } else {
            EventPlane::Serial(CalendarQueue::new())
        };

        let tiles = (0..cfg.num_cores)
            .map(|i| TileState {
                l1i: L1Cache::new(&cfg.l1i, cfg.line_bytes, CoreId::new(i)),
                l1d: L1Cache::new(&cfg.l1d, cfg.line_bytes, CoreId::new(i)),
                l2: SetAssocCache::new(cfg.l2.num_sets(cfg.line_bytes), cfg.l2.associativity),
                txns: LineMap::default(),
                txn_arena: TxnArena::with_capacity(TXN_ARENA_SEED_SLOTS),
                waiters: Waiters::new(),
            })
            .collect();

        let mut sim = Simulator {
            workload_name: workload.name,
            instr_lines: workload.instr_lines,
            instr_base: workload.instr_base,
            rnuca,
            net,
            dram,
            sync: SyncManager::new(active),
            monitor: CoherenceMonitor::new(
                options.monitor,
                options.monitor && options.panic_on_violation,
            ),
            counts: EnergyCounts::default(),
            energy_params: EnergyParams::isca13_11nm(),
            // One payload arena per shard: allocations land in the arena
            // of the shard committing the event (`dispatch` points the
            // home), handles stay pinned to their arena across shards.
            slab: DataSlab::sharded(shards),
            backing: LineMap::default(),
            cores,
            tiles,
            events,
            inval_histogram: UtilizationHistogram::new(),
            evict_histogram: UtilizationHistogram::new(),
            protocol: ProtocolStats::default(),
            active_cores: active,
            explore_now: 0,
            fault: None,
            committed: 0,
            profile: (std::env::var("LACC_SIM_PROFILE").as_deref() == Ok("1")).then(Box::default),
            cfg,
        };
        for c in 0..sim.cores.len() {
            if !sim.cores[c].finished {
                sim.schedule(0, Event::CoreStep(c));
            }
        }
        Ok(sim)
    }

    /// Runs to completion and produces the report.
    ///
    /// With `SimOptions::shards > 1` the run executes on the sharded
    /// event plane with one trace-prefetch worker thread per shard; the
    /// report is byte-identical to the serial engine's either way.
    ///
    /// # Panics
    ///
    /// Panics if the system deadlocks (an event-queue drain while cores are
    /// still blocked) — this is a protocol-bug detector, not a user error.
    /// Under shards, a panic on either side of a trace feed (a shard
    /// worker or this coordinator) shuts the other side down instead of
    /// hanging it, and the original message still propagates.
    pub fn run(mut self) -> SimReport {
        match self.events {
            EventPlane::Serial(_) | EventPlane::Choice(_) => self.event_loop(),
            EventPlane::Sharded(_) => self.run_sharded(),
        }
        self.finish()
    }

    fn event_loop(&mut self) {
        if self.profile.is_some() {
            self.event_loop_profiled();
            return;
        }
        while let Some((now, ev)) = self.events.pop() {
            self.dispatch(ev, now);
        }
    }

    /// The `LACC_SIM_PROFILE=1` event loop: identical commit order, plus
    /// two monotonic-clock reads per event charged to the pop (event
    /// plane + barriers) and dispatch (handler) phases. A separate loop
    /// keeps the hot path timer-free when profiling is off.
    fn event_loop_profiled(&mut self) {
        use std::time::Instant;
        let mut mark = Instant::now();
        while let Some((now, ev)) = self.events.pop() {
            let popped = Instant::now();
            let phase = match &ev {
                Event::CoreStep(_) => 0,
                Event::Deliver(_) => 1,
                Event::HomeLookup { .. } => 2,
            };
            self.dispatch(ev, now);
            let done = Instant::now();
            let p = self.profile.as_mut().expect("profiled loop requires counters");
            p.pop_ns += (popped - mark).as_nanos() as u64;
            p.phase_ns[phase] += (done - popped).as_nanos() as u64;
            p.phase_events[phase] += 1;
            mark = done;
        }
        let p = self.profile.as_mut().expect("profiled loop requires counters");
        p.pop_ns += mark.elapsed().as_nanos() as u64;
    }

    /// Executes one event at dispatch time `now` — the single transition
    /// function both the event loop and the exploration seam
    /// (`Simulator::fire_choice`) drive, so the model checker exercises
    /// exactly the shipping handlers.
    pub(crate) fn dispatch(&mut self, ev: Event, now: Cycle) {
        self.committed += 1;
        self.monitor.set_event_seq(self.committed);
        if let EventPlane::Sharded(p) = &self.events {
            // Payload allocations made while committing this event land
            // in the owning shard's slab arena (the plane precomputes
            // the owner on its serve path).
            self.slab.set_home(p.last_shard());
        }
        match ev {
            Event::CoreStep(c) => self.step_core(c, now),
            Event::Deliver(msg) => self.deliver(msg, now),
            Event::HomeLookup { tile, line } => self.home_lookup(tile, line, now),
        }
    }

    /// The sharded run: hand each shard's trace sources to a prefetch
    /// worker, wire the cores to blocking feed handles, and drive the
    /// event plane on this thread. The shutdown guards make the thread
    /// scope join on every exit path, panicking ones included.
    ///
    /// On a single-CPU host the workers cannot run concurrently with
    /// the coordinator, so the feed machinery is pure overhead (measured
    /// ~10 percentage points on top of the event plane's own cost —
    /// docs/EXPERIMENTS.md): the run then uses the plane without
    /// threads, which changes nothing observable (the report is
    /// byte-identical either way — that is the plane's whole contract).
    /// `LACC_SHARD_PREFETCH=1`/`=0` forces the choice; the containment
    /// tests use it to exercise the worker panic paths on any host.
    fn run_sharded(&mut self) {
        let prefetch = match std::env::var("LACC_SHARD_PREFETCH").as_deref() {
            Ok("0") => false,
            Ok("1") => true,
            _ => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1,
        };
        let EventPlane::Sharded(plane) = &self.events else { unreachable!("checked by run") };
        let wants_crew = plane.wants_crew();
        if !prefetch && !wants_crew {
            self.event_loop();
            return;
        }
        let nshards = plane.num_shards();
        // One entry per populated shard: the shared feed plus the trace
        // sources its worker thread will pump into it.
        type ShardFeed = (std::sync::Arc<FeedShared>, Vec<Box<dyn TraceSource>>);
        let mut workers: Vec<ShardFeed> = Vec::new();
        if prefetch {
            let mut shard_cores: Vec<Vec<usize>> = vec![Vec::new(); nshards];
            for c in 0..self.cores.len() {
                if matches!(self.cores[c].trace, TraceFeed::Local(_)) {
                    shard_cores[plane.shard_of_tile(c)].push(c);
                }
            }
            for (s, cores) in shard_cores.iter().enumerate() {
                if cores.is_empty() {
                    continue;
                }
                let feed = FeedShared::new(cores.len());
                let mut sources = Vec::with_capacity(cores.len());
                for (slot, &c) in cores.iter().enumerate() {
                    let prev = std::mem::replace(
                        &mut self.cores[c].trace,
                        TraceFeed::Ring(FeedHandle::new(feed.clone(), slot, s)),
                    );
                    let TraceFeed::Local(src) = prev else { unreachable!("selected Local above") };
                    // The run has not started, so the batching wrapper's
                    // refill buffer is empty; the worker adopts it whole and
                    // keeps pulling batches through `next_ops`.
                    sources.push(Box::new(src) as Box<dyn TraceSource>);
                }
                workers.push((feed, sources));
            }
        }
        // Concurrent commit: hand each shard's calendar queue to a
        // harvest worker; the coordinator keeps only the merge state.
        let crew = if wants_crew {
            let EventPlane::Sharded(plane) = &mut self.events else { unreachable!("checked") };
            plane.detach_workers()
        } else {
            Vec::new()
        };
        std::thread::scope(|scope| {
            // Guards drop at scope-closure exit — normal or unwinding —
            // flagging shutdown and waking parked workers, so the scope
            // always joins and a coordinator panic (e.g. the deadlock
            // assert below) propagates instead of hanging the barrier.
            let _guards: Vec<ShutdownGuard> =
                workers.iter().map(|(feed, _)| ShutdownGuard::new(feed.clone())).collect();
            let _crew_guards: Vec<CrewShutdownGuard> =
                crew.iter().map(|(shared, _)| CrewShutdownGuard::new(shared.clone())).collect();
            for (feed, sources) in workers.drain(..) {
                scope.spawn(move || shard::run_feed_worker(&feed, sources));
            }
            for (shared, queue) in crew {
                scope.spawn(move || shard::run_harvest_worker(&shared, queue));
            }
            self.event_loop();
        });
    }

    /// Post-drain checks and report construction.
    fn finish(mut self) -> SimReport {
        if let Some(p) = self.profile.take() {
            // Stderr only — stdout stays byte-identical with profiling on.
            let ms = |ns: u64| ns as f64 / 1e6;
            let (windows, scans, pending) = match &self.events {
                EventPlane::Sharded(pl) => (pl.stats.windows, pl.stats.scans, pl.stats.pending),
                _ => (0, 0, 0),
            };
            eprintln!(
                "[lacc-sim-profile] workload={} events={} windows={} scans={scans} \
                 pending={pending} pop_ms={:.3} \
                 core_step: n={} ms={:.3} deliver: n={} ms={:.3} home_lookup: n={} ms={:.3}",
                self.workload_name,
                self.committed,
                windows,
                ms(p.pop_ns),
                p.phase_events[0],
                ms(p.phase_ns[0]),
                p.phase_events[1],
                ms(p.phase_ns[1]),
                p.phase_events[2],
                ms(p.phase_ns[2]),
            );
        }
        let stuck: Vec<usize> =
            (0..self.cores.len()).filter(|&c| !self.cores[c].finished).collect();
        assert!(
            stuck.is_empty(),
            "deadlock: cores {stuck:?} never finished (blocked states: {:?})",
            stuck.iter().map(|&c| self.cores[c].blocked).collect::<Vec<_>>()
        );
        // Data-plane refcount audit. With the event queue drained, the
        // only legitimate handle owners are the resident L1/L2 lines and
        // the DRAM backing store: every message payload must have been
        // consumed on delivery and every home transaction retired. The
        // outstanding handle count must match the owners exactly — more is
        // a leaked handle, fewer is an unaccounted owner (a double release
        // panics inside the slab long before this). `live()` can be
        // smaller than the owner count (aliased slots), never larger.
        //
        // The count is the sum of the per-shard arena ledgers: handles
        // transfer ownership between arenas through messages, so no
        // single ledger balances on its own, but the sum must.
        let resident_lines: usize =
            self.tiles.iter().map(|t| t.l1i.len() + t.l1d.len() + t.l2.len()).sum();
        let expected = resident_lines + self.backing.len();
        let ledgers: Vec<u64> =
            (0..self.slab.num_arenas()).map(|s| self.slab.ledger(s).outstanding()).collect();
        let outstanding: u64 = ledgers.iter().sum();
        assert_eq!(
            outstanding as usize,
            expected,
            "data-slab handle leak: {} outstanding handles (per-shard ledgers {:?}) but \
             {} owners ({} resident L1/L2 lines + {} backing-store entries)",
            outstanding,
            ledgers,
            expected,
            resident_lines,
            self.backing.len()
        );
        debug_assert_eq!(outstanding as usize, self.slab.total_refs(), "ledger/refcount split");
        assert!(
            self.slab.live() <= expected,
            "data-slab leak: {} live slots exceed {} handle owners",
            self.slab.live(),
            expected
        );
        for (t, tile) in self.tiles.iter().enumerate() {
            assert_eq!(
                tile.txn_arena.live(),
                0,
                "tile {t}: {} home transaction(s) never retired",
                tile.txn_arena.live()
            );
        }
        self.build_report()
    }

    // -- infrastructure ----------------------------------------------------

    pub(crate) fn schedule(&mut self, at: Cycle, ev: Event) {
        self.events.push(at, ev);
    }

    pub(crate) fn send(
        &mut self,
        src: CoreId,
        dst: CoreId,
        line: LineAddr,
        payload: Payload,
        now: Cycle,
    ) {
        let flits = payload.flits();
        let arrival = self.net.unicast(src, dst, flits, now);
        self.schedule(arrival, Event::Deliver(Message { src, dst, line, payload, sent: now }));
    }

    pub(crate) fn broadcast_inv(&mut self, home: usize, line: LineAddr, back: bool, now: Cycle) {
        let src = CoreId::new(home);
        let arrivals = self.net.broadcast(src, 1, now);
        for (t, &at) in arrivals.iter().enumerate() {
            let dst = CoreId::new(t);
            self.schedule(
                at,
                Event::Deliver(Message {
                    src,
                    dst,
                    line,
                    payload: Payload::Inv { back },
                    sent: now,
                }),
            );
        }
    }

    pub(crate) fn home_of(&mut self, line: LineAddr, requester: CoreId) -> CoreId {
        self.rnuca.home_for(line, requester)
    }

    // -- message delivery --------------------------------------------------

    fn deliver(&mut self, msg: Message, now: Cycle) {
        match msg.payload {
            Payload::ReadReq { .. } | Payload::WriteReq { .. } => {
                self.home_request_arrival(msg, now);
            }
            Payload::GrantLine { .. }
            | Payload::GrantUpgrade { .. }
            | Payload::WordReadReply { .. }
            | Payload::WordWriteAck { .. } => self.core_resume(msg, now),
            Payload::Inv { back } => {
                self.l1_invalidate(msg.dst.index(), msg.src, msg.line, back, now)
            }
            Payload::InvAck { util, data, back } => {
                self.home_inv_ack(msg.dst.index(), msg.src, msg.line, util, data, back, now);
            }
            Payload::WbReq => self.l1_writeback_req(msg.dst.index(), msg.src, msg.line, now),
            Payload::WbData { data } => {
                self.home_wb_response(msg.dst.index(), msg.src, msg.line, Some(data), now);
            }
            Payload::WbNack => self.home_wb_response(msg.dst.index(), msg.src, msg.line, None, now),
            Payload::EvictNotify { util, data } => {
                self.home_evict_notify(msg.dst.index(), msg.src, msg.line, util, data, now);
            }
            Payload::DramFetch => {
                let ctrl = self.dram.ctrl_for_line(msg.line);
                debug_assert_eq!(self.dram.tile_of(ctrl), msg.dst);
                let done = self.dram.access(ctrl, self.cfg.line_bytes, now);
                // The reply aliases the backing store's resident slot (a
                // retain, not a copy); a never-written line starts as a
                // fresh zeroed slot.
                let data = match self.backing.get(&msg.line) {
                    Some(&r) => self.slab.retain(r),
                    None => self.slab.alloc(LineData::zeroed()),
                };
                self.send(msg.dst, msg.src, msg.line, Payload::DramData { data }, done);
            }
            Payload::DramData { data } => self.home_dram_data(msg.dst.index(), msg.line, data, now),
            Payload::DramWriteBack { data } => {
                let ctrl = self.dram.ctrl_for_line(msg.line);
                let _ = self.dram.access(ctrl, self.cfg.line_bytes, now);
                // Handle transfer: the message's slot *becomes* the backing
                // entry — no copy, no release/realloc pair.
                if let Some(old) = self.backing.insert(msg.line, data) {
                    self.slab.release(old);
                }
            }
        }
    }

    // -- reporting ----------------------------------------------------------

    fn build_report(self) -> SimReport {
        let mut counts = self.counts;
        let net = self.net.stats();
        counts.router_flits = net.router_flits;
        counts.link_flits = net.link_flits;
        let energy = self.energy_params.charge(&counts);
        let per_core: Vec<CompletionBreakdown> =
            (0..self.active_cores).map(|c| self.cores[c].breakdown).collect();
        let completion_time =
            (0..self.active_cores).map(|c| self.cores[c].clock).max().unwrap_or(0);
        SimReport {
            workload: self.workload_name,
            completion_time,
            breakdown: per_core.iter().copied().sum(),
            per_core,
            energy,
            energy_counts: counts,
            l1d: self.cores.iter().map(|c| c.l1d_stats).sum(),
            l1i: self.cores.iter().map(|c| c.l1i_stats).sum(),
            inval_histogram: self.inval_histogram,
            evict_histogram: self.evict_histogram,
            net,
            dram: self.dram.stats(),
            protocol: self.protocol,
            instructions: self.cores.iter().map(|c| c.instructions).sum(),
            monitor: self.monitor.report().clone(),
            slab: self.slab.stats(),
        }
    }
}
