//! L1-side engine: remote-initiated actions on a tile's private caches —
//! invalidations (unicast, broadcast, and back-invalidations on L2
//! eviction) and synchronous write-back requests from the home.

use lacc_core::classifier::RemovalReason;
use lacc_model::{CoreId, Cycle, LineAddr};

use crate::msg::Payload;

use super::Simulator;

impl Simulator {
    pub(crate) fn l1_invalidate(
        &mut self,
        tile: usize,
        home: CoreId,
        line: LineAddr,
        back: bool,
        now: Cycle,
    ) {
        // Broadcast invalidations reach every tile, but a copy answers only
        // to its own home. This matters for R-NUCA-replicated instruction
        // lines: the same address is homed per cluster, and a broadcast
        // from one cluster's home must not kill (or collect acks from)
        // another cluster's copies.
        if self.home_of(line, CoreId::new(tile)) != home {
            return;
        }
        let victim = self.tiles[tile]
            .l1d
            .process_inv(line)
            .or_else(|| self.tiles[tile].l1i.process_inv(line));
        if let Some(v) = victim {
            let reason =
                if back { RemovalReason::BackInvalidation } else { RemovalReason::Invalidation };
            self.cores[tile].miss_class.record_removal(line, reason);
            self.counts.l1d_fills += u64::from(v.dirty); // dirty read-out

            // A dirty copy's handle rides the ack to the home; a clean
            // copy's reference is simply dropped (bare-header ack).
            let data = if v.dirty {
                Some(v.data)
            } else {
                self.slab.release(v.data);
                None
            };
            self.send(
                CoreId::new(tile),
                home,
                line,
                Payload::InvAck { util: v.utilization, data, back },
                now,
            );
        }
        // No copy: stay silent — the eviction notify in flight (or the
        // broadcast over-approximation) is accounted by the home.
    }

    pub(crate) fn l1_writeback_req(
        &mut self,
        tile: usize,
        home: CoreId,
        line: LineAddr,
        now: Cycle,
    ) {
        let resp = self.tiles[tile]
            .l1d
            .process_downgrade(line)
            .or_else(|| self.tiles[tile].l1i.process_downgrade(line));
        let payload = match resp {
            // On the wire WbData always carries the line (9 flits); in
            // memory only a dirty copy materializes a payload — a clean
            // one matches the home's resident data. The L1 keeps its copy
            // in S, so the shipped handle is a retain (alias) of the
            // resident slot, not a move.
            Some((dirty, data)) => {
                Payload::WbData { data: if dirty { Some(self.slab.retain(data)) } else { None } }
            }
            None => Payload::WbNack,
        };
        self.send(CoreId::new(tile), home, line, payload, now);
    }
}
