//! Bounded-exhaustive differential check of the windowed shard plane.
//!
//! The determinism suite samples real workloads; this module *enumerates*
//! adversarial schedules. It drives a `ShardPlane` (inline
//! run-serving commit) and a serial `(cycle, seq)` oracle through every
//! scripted reaction sequence up to a depth bound, and fails on the first
//! pop that diverges from the oracle or any event the plane loses.
//!
//! The reaction alphabet is built from the deltas that sit exactly on the
//! commit protocol's corners (DESIGN.md §7):
//!
//! * `0` — a zero-cycle push from a committing event: the sync-release
//!   case, which must land in the *open* window via the pending merge;
//! * `1` — a sub-lookahead push (same case, off the exact barrier);
//! * `lookahead` — an event exactly at the window edge: the first cycle a
//!   freshly opened window does *not* contain;
//! * `lookahead + 1` and `2 × lookahead` — past-the-edge pushes that must
//!   harvest through the shards' calendars.
//!
//! Each delta targets either a tile in the popping event's own shard or
//! one in the farthest shard, so every corner is exercised both
//! shard-locally and across the partition. The initial state seeds one
//! event at cycle 0 in shard 0 and one at exactly `lookahead` in the last
//! shard — the first window's barrier boundary is adversarial from the
//! very first pop.
//!
//! `lacc_mc --shard-plane` runs the matrix from CI; the scenario is
//! engine-level rather than protocol-level, so it lives here beside the
//! plane instead of in the checker's protocol scenario list.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lacc_model::Cycle;

use super::shard::ShardPlane;
use super::Event;

/// Outcome of a clean [`check_shard_plane`] sweep.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlaneCheckReport {
    /// (shards, lookahead) configurations swept.
    pub configs: usize,
    /// Complete reaction scripts executed.
    pub paths: u64,
    /// Individual pops compared against the oracle.
    pub pops: u64,
}

/// One scripted reaction: on the k-th pop, optionally push a new event
/// `delta` cycles after the popped one, owned by `tile`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Reaction {
    delta: Cycle,
    tile: usize,
}

/// Tiles per checked machine: enough for two non-trivial shards at
/// `shards = 2` and an uneven split at `shards = 3`.
const TILES: usize = 4;

fn reaction_alphabet(lookahead: Cycle) -> Vec<Option<Reaction>> {
    let mut deltas = vec![0, 1, lookahead, lookahead + 1, 2 * lookahead];
    deltas.dedup();
    // Tile 0 and the last tile always land in different shards for every
    // `shards >= 2` contiguous partition of four tiles; which one is
    // "local" depends on the popped event, so both sides get exercised.
    let mut alphabet: Vec<Option<Reaction>> = vec![None];
    for &delta in &deltas {
        for tile in [0, TILES - 1] {
            alphabet.push(Some(Reaction { delta, tile }));
        }
    }
    alphabet
}

/// Runs one complete script against a fresh plane and oracle; returns the
/// number of pops compared, or a divergence description.
fn run_script(shards: usize, lookahead: Cycle, script: &[Option<Reaction>]) -> Result<u64, String> {
    let mut plane = ShardPlane::new(TILES, shards, lookahead, false);
    // The oracle: a plain min-heap over `(cycle, push-seq, tile)` — the
    // exact total order the serial engine would commit in.
    let mut oracle: BinaryHeap<Reverse<(Cycle, u64, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut push = |plane: &mut ShardPlane,
                    oracle: &mut BinaryHeap<Reverse<(Cycle, u64, usize)>>,
                    at: Cycle,
                    tile: usize| {
        oracle.push(Reverse((at, seq, tile)));
        seq += 1;
        plane.push(at, Event::CoreStep(tile));
    };
    // Seed: one event at cycle 0 in the first shard, one exactly at the
    // first window's edge in the last shard.
    push(&mut plane, &mut oracle, 0, 0);
    push(&mut plane, &mut oracle, lookahead, TILES - 1);

    let mut pops = 0u64;
    let mut step = 0usize;
    loop {
        let got = plane.pop();
        let want = oracle.pop();
        match (got, want) {
            (None, None) => break,
            (Some((at, ev)), Some(Reverse((wat, _, wtile)))) => {
                let tile = ev.owner_tile();
                if (at, tile) != (wat, wtile) {
                    return Err(format!(
                        "pop {pops}: plane served (cycle {at}, tile {tile}), \
                         oracle expects (cycle {wat}, tile {wtile})"
                    ));
                }
                pops += 1;
                if let Some(Some(r)) = script.get(step) {
                    push(&mut plane, &mut oracle, at + r.delta, r.tile);
                }
                step += 1;
            }
            (Some((at, ev)), None) => {
                return Err(format!(
                    "pop {pops}: plane invented (cycle {at}, tile {}) after the \
                     oracle drained",
                    ev.owner_tile()
                ));
            }
            (None, Some(Reverse((wat, _, wtile)))) => {
                return Err(format!(
                    "pop {pops}: plane drained but the oracle still holds \
                     (cycle {wat}, tile {wtile}) — the plane lost an event"
                ));
            }
        }
    }
    Ok(pops)
}

/// Sweeps every reaction script of length `depth` over shards ∈ {2, 3} ×
/// lookahead ∈ {1, 2, 3}, comparing the windowed plane's pop sequence to
/// the serial `(cycle, seq)` oracle on every pop.
///
/// # Errors
///
/// Returns the offending configuration, the script that exposed it, and
/// the first divergent pop.
pub fn check_shard_plane(depth: usize) -> Result<PlaneCheckReport, String> {
    let mut report = PlaneCheckReport::default();
    for shards in [2usize, 3] {
        for lookahead in [1, 2, 3] {
            report.configs += 1;
            let alphabet = reaction_alphabet(lookahead);
            // Odometer enumeration of alphabet^depth: each digit picks
            // the reaction applied at that pop step.
            let mut digits = vec![0usize; depth];
            let mut script: Vec<Option<Reaction>> = Vec::with_capacity(depth);
            loop {
                script.clear();
                script.extend(digits.iter().map(|&d| alphabet[d]));
                match run_script(shards, lookahead, &script) {
                    Ok(pops) => {
                        report.paths += 1;
                        report.pops += pops;
                    }
                    Err(e) => {
                        return Err(format!(
                            "shards={shards} lookahead={lookahead} script={script:?}: {e}"
                        ));
                    }
                }
                // Advance the odometer; done when it wraps.
                let mut i = 0;
                loop {
                    if i == depth {
                        break;
                    }
                    digits[i] += 1;
                    if digits[i] < alphabet.len() {
                        break;
                    }
                    digits[i] = 0;
                    i += 1;
                }
                if i == depth {
                    break;
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shallow_sweep_is_clean() {
        let r = check_shard_plane(2).expect("windowed plane diverged from the serial oracle");
        assert_eq!(r.configs, 6);
        assert!(r.paths > 500, "expected a real sweep, got {} paths", r.paths);
        assert!(r.pops > r.paths, "every path pops at least the two seeds");
    }

    #[test]
    fn alphabet_covers_the_barrier_corners() {
        let a = reaction_alphabet(2);
        let deltas: Vec<Cycle> = a.iter().flatten().map(|r| r.delta).collect();
        for corner in [0, 1, 2, 3, 4] {
            assert!(deltas.contains(&corner), "missing delta {corner}");
        }
        assert!(a.contains(&None), "the no-reaction step must stay enumerable");
    }
}
