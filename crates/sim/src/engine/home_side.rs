//! Home-side engine: directory transactions, L2 installs and evictions,
//! ack collection, grants, and waiter draining.
//!
//! Each line has at most one in-flight transaction per home slice
//! (`TileState::txns`, slots recycled through the per-tile `TxnArena`);
//! requests that find the line busy queue FIFO in `TileState::waiters`
//! and their queueing time is charged as *L2 cache waiting time*. The
//! decision kernel itself ([`DirectoryEntry::begin_request`]) is pure and
//! lives in `lacc_core`; this module executes its decisions with real
//! timing.
//!
//! Slab handle lifetimes on this side (DESIGN.md §6.2): an incoming dirty
//! `InvAck`/`EvictNotify`/`WbData` handle is *adopted* as the new resident
//! L2 data (the previous resident handle is released); a `DramData` handle
//! transfers straight into the resident array on install. Outgoing
//! `GrantLine` payloads retain (alias) the resident handle — no bytes
//! move — and `DramWriteBack` transfers the victim's handle to the memory
//! controller. A clean L2 eviction is a pure release.
//!
//! Under `--shards N` the slab is arena-per-shard and a handle adopted
//! here may have been allocated in another shard's arena: the `DataRef`'s
//! arena tag routes every retain/release to the owning arena, so this
//! module never needs to know which shard a payload came from (DESIGN.md
//! §7 — the handle *transfer* is the cross-shard ownership move).

use lacc_cache::{DataRef, LineData};
use lacc_core::classifier::{RemovalReason, SharerMode};
use lacc_core::home::{AccessKind, DirectoryEntry, Grant, HomeRequest};
use lacc_core::mesi::MesiState;
use lacc_core::sharer::InvalidationPlan;
use lacc_model::{CoreId, Cycle, LatencyAnnotation, LineAddr};

use crate::msg::{Message, Payload};

use super::explore::FaultInjection;
use super::state::{Awaiting, EvictTxn, HomeTxn, L2Line, Phase, RequestTxn};
use super::{Event, Simulator, INSTALL_RETRY_CYCLES};

impl Simulator {
    pub(crate) fn home_request_arrival(&mut self, msg: Message, now: Cycle) {
        let tile = msg.dst.index();
        let line = msg.line;
        let busy =
            self.tiles[tile].txns.contains_key(&line) || self.tiles[tile].waiters.line_busy(line);
        if busy {
            self.tiles[tile].waiters.push(line, (msg, now));
        } else {
            self.start_home_txn(tile, msg, now, now);
        }
    }

    fn start_home_txn(&mut self, tile: usize, msg: Message, arrival: Cycle, now: Cycle) {
        let (kind, hints, word, value, instr) = match msg.payload {
            Payload::ReadReq { hints, word, instr } => (AccessKind::Read, hints, word, 0, instr),
            Payload::WriteReq { hints, word, value } => {
                (AccessKind::Write, hints, word, value, false)
            }
            _ => unreachable!("only requests start transactions"),
        };
        self.counts.l2_tag_probes += 1;
        self.counts.dir_reads += 1;
        let txn = RequestTxn {
            requester: msg.src,
            kind,
            hints,
            word,
            value,
            instr,
            wait: now - arrival,
            offchip: 0,
            sharers_lat: 0,
            phase: Phase::Lookup,
            phase_start: now,
            decision: None,
            awaiting: Awaiting::Count(0),
        };
        self.tiles[tile].txn_insert(msg.line, HomeTxn::Request(txn));
        self.schedule(now + self.cfg.l2.latency, Event::HomeLookup { tile, line: msg.line });
    }

    pub(crate) fn home_lookup(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        if self.tiles[tile].l2.contains(line) {
            self.home_decide(tile, line, now);
        } else {
            let home = CoreId::new(tile);
            {
                let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                    unreachable!("lookup without transaction");
                };
                txn.phase = Phase::AwaitDram;
                txn.phase_start = now;
            }
            let ctrl = self.dram.ctrl_for_line(line);
            let ctrl_tile = self.dram.tile_of(ctrl);
            self.send(home, ctrl_tile, line, Payload::DramFetch, now);
        }
    }

    pub(crate) fn home_dram_data(
        &mut self,
        tile: usize,
        line: LineAddr,
        data: DataRef,
        now: Cycle,
    ) {
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                unreachable!("DRAM data without transaction");
            };
            if txn.phase == Phase::AwaitDram {
                txn.offchip += now - txn.phase_start;
                txn.phase = Phase::Installing;
            }
        }
        if let Err(data) = self.install_l2_line(tile, line, data, now) {
            // Every way in the set is protocol-busy; retry shortly. The
            // refused install hands the same handle back — the payload's
            // slot carries over to the retry without its bytes moving.
            let home = CoreId::new(tile);
            self.schedule(
                now + INSTALL_RETRY_CYCLES,
                Event::Deliver(Message {
                    src: home,
                    dst: home,
                    line,
                    payload: Payload::DramData { data },
                    sent: now,
                }),
            );
            return;
        }
        self.home_decide(tile, line, now);
    }

    /// Installs `data` as the resident L2 line, taking ownership of the
    /// handle. When every way of the set is protocol-busy the install is
    /// refused and the handle comes back in `Err` — the caller retries
    /// with it, untouched.
    fn install_l2_line(
        &mut self,
        tile: usize,
        line: LineAddr,
        data: DataRef,
        now: Cycle,
    ) -> Result<(), DataRef> {
        let entry =
            DirectoryEntry::new(self.cfg.directory, &self.cfg.classifier, self.cfg.num_cores);
        let fresh = L2Line { dirty: false, data, entry };
        // A victim must not have an in-flight transaction of its own.
        // Query the transaction/waiter maps directly per candidate (O(1)
        // each) instead of materializing every in-flight line per install.
        let tile_state = &mut self.tiles[tile];
        let txns = &tile_state.txns;
        let waiters = &tile_state.waiters;
        let result = tile_state.l2.try_insert_filtered(line, fresh, |l, _| {
            l != line && !txns.contains_key(&l) && !waiters.line_busy(l)
        });
        match result {
            Err(rejected) => Err(rejected.data),
            Ok(victim) => {
                self.counts.l2_line_writes += 1;
                if let Some((vline, vmeta)) = victim {
                    self.spawn_l2_eviction(tile, vline, vmeta, now);
                }
                Ok(())
            }
        }
    }

    fn spawn_l2_eviction(&mut self, tile: usize, vline: LineAddr, vmeta: L2Line, now: Cycle) {
        self.protocol.l2_evictions += 1;
        let home = CoreId::new(tile);
        match vmeta.entry.back_invalidation_plan() {
            None => {
                if vmeta.dirty {
                    // Handle transfer: the victim's resident slot rides the
                    // write-back message to the memory controller.
                    let ctrl_tile = self.dram.tile_of(self.dram.ctrl_for_line(vline));
                    self.send(
                        home,
                        ctrl_tile,
                        vline,
                        Payload::DramWriteBack { data: vmeta.data },
                        now,
                    );
                } else {
                    // Clean eviction: drop the L2's reference, nothing else.
                    self.slab.release(vmeta.data);
                }
            }
            Some(plan) => {
                let awaiting = match plan {
                    InvalidationPlan::Unicast(cores) => {
                        for c in &cores {
                            self.protocol.invalidations_sent += 1;
                            self.send(home, c, vline, Payload::Inv { back: true }, now);
                        }
                        Awaiting::Set(cores)
                    }
                    InvalidationPlan::Broadcast { expected_acks } => {
                        self.protocol.broadcasts += 1;
                        self.protocol.invalidations_sent += 1;
                        self.broadcast_inv(tile, vline, true, now);
                        Awaiting::Count(expected_acks)
                    }
                };
                self.tiles[tile].txn_insert(
                    vline,
                    HomeTxn::Evict(EvictTxn {
                        entry: vmeta.entry,
                        data: vmeta.data,
                        dirty: vmeta.dirty,
                        awaiting,
                    }),
                );
            }
        }
    }

    fn home_decide(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let decision;
        {
            let (requester, kind, hints, instr) = {
                let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                    unreachable!("decide without transaction");
                };
                (txn.requester, txn.kind, txn.hints, txn.instr)
            };
            let l2line = self.tiles[tile].l2.get_mut(line).expect("decide on resident line");
            let req = HomeRequest { core: requester, kind, hints, instruction: instr };
            decision = l2line.entry.begin_request(&req, now);
            self.counts.dir_updates += 1;
        }
        let fetch_from = decision.fetch_from_owner;
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                unreachable!();
            };
            txn.decision = Some(decision);
            if let Some(owner) = fetch_from {
                txn.phase = Phase::AwaitWb;
                txn.phase_start = now;
                self.protocol.write_backs += 1;
                let home = CoreId::new(tile);
                self.send(home, owner, line, Payload::WbReq, now);
                // Seeded bug (mutation testing): retire the transaction
                // while its write-back is still in flight.
                if self.fault == Some(FaultInjection::PrematureTxnRetire) {
                    self.tiles[tile].txn_remove(line);
                }
                return;
            }
        }
        self.home_proceed_invalidate(tile, line, now);
    }

    fn home_proceed_invalidate(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let plan = {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                unreachable!();
            };
            match &txn.decision.as_ref().expect("decision made").invalidate {
                Some(plan) if txn.phase != Phase::AwaitAcks => {
                    txn.phase = Phase::AwaitAcks;
                    txn.phase_start = now;
                    Some(*plan)
                }
                _ => None,
            }
        };
        match plan {
            Some(InvalidationPlan::Unicast(mut cores)) => {
                // Seeded bug (mutation testing): silently drop one of the
                // planned invalidations — neither sent nor awaited.
                if self.fault == Some(FaultInjection::DropInvalidation) {
                    if let Some(victim) = (&cores).into_iter().next() {
                        cores.remove(victim);
                    }
                }
                let home = CoreId::new(tile);
                for c in &cores {
                    self.protocol.invalidations_sent += 1;
                    self.send(home, c, line, Payload::Inv { back: false }, now);
                }
                if let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) {
                    txn.awaiting = Awaiting::Set(cores);
                }
            }
            Some(InvalidationPlan::Broadcast { expected_acks }) => {
                self.protocol.broadcasts += 1;
                self.protocol.invalidations_sent += 1;
                self.broadcast_inv(tile, line, false, now);
                if let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) {
                    txn.awaiting = Awaiting::Count(expected_acks);
                }
            }
            None => self.home_grant(tile, line, now),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn home_inv_ack(
        &mut self,
        tile: usize,
        from: CoreId,
        line: LineAddr,
        util: u32,
        data: Option<DataRef>,
        back: bool,
        now: Cycle,
    ) {
        // `Some` means the invalidated copy was dirty: its handle is
        // adopted as the new resident data (the old resident handle is
        // released), so the line content never moves by value.
        match self.tiles[tile].txn_mut(line) {
            Some(HomeTxn::Request(txn)) => {
                debug_assert_eq!(txn.phase, Phase::AwaitAcks, "unexpected inv-ack");
                debug_assert!(!back);
                self.inval_histogram.record(util);
                // Seeded bug (mutation testing): claim the ack was counted
                // without decrementing the awaited set/count.
                let counted = if self.fault == Some(FaultInjection::SkippedAckDecrement) {
                    true
                } else {
                    txn.awaiting.note_response(from)
                };
                debug_assert!(counted, "uncounted inv-ack from {from}");
                let done = txn.awaiting.done();
                // Seeded bug (mutation testing): clear the wrong core from
                // the sharer set.
                let ack_core = if self.fault == Some(FaultInjection::WrongSharerClear) {
                    CoreId::new((from.index() + 1) % self.cfg.num_cores)
                } else {
                    from
                };
                let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
                let mode =
                    l2line.entry.sharer_response(ack_core, util, RemovalReason::Invalidation);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if let Some(d) = data {
                    let old = std::mem::replace(&mut l2line.data, d);
                    l2line.dirty = true;
                    self.slab.release(old);
                    self.counts.l2_line_writes += 1;
                }
                if done {
                    let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                        unreachable!();
                    };
                    txn.sharers_lat += now - txn.phase_start;
                    self.home_grant(tile, line, now);
                }
            }
            Some(HomeTxn::Evict(et)) => {
                self.evict_histogram.record(util);
                et.entry.sharer_response(from, util, RemovalReason::BackInvalidation);
                if let Some(d) = data {
                    let old = std::mem::replace(&mut et.data, d);
                    et.dirty = true;
                    self.slab.release(old);
                }
                et.awaiting.note_response(from);
                if et.awaiting.done() {
                    self.finish_l2_eviction(tile, line, now);
                }
            }
            None => {
                debug_assert!(false, "inv-ack for idle line {line}");
                // Unreachable in a correct run; consume the handle anyway
                // so a release build cannot leak the slot.
                if let Some(d) = data {
                    self.slab.release(d);
                }
            }
        }
    }

    fn finish_l2_eviction(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let Some(HomeTxn::Evict(et)) = self.tiles[tile].txn_remove(line) else {
            unreachable!();
        };
        if et.dirty {
            let home = CoreId::new(tile);
            let ctrl_tile = self.dram.tile_of(self.dram.ctrl_for_line(line));
            self.send(home, ctrl_tile, line, Payload::DramWriteBack { data: et.data }, now);
        } else {
            self.slab.release(et.data);
        }
        self.drain_waiter(tile, line, now);
    }

    pub(crate) fn home_evict_notify(
        &mut self,
        tile: usize,
        from: CoreId,
        line: LineAddr,
        util: u32,
        data: Option<DataRef>,
        now: Cycle,
    ) {
        // As with inv-acks: a dirty notify's handle is adopted as the new
        // resident data and the old resident handle released.
        self.protocol.evictions += 1;
        self.evict_histogram.record(util);
        match self.tiles[tile].txn_mut(line) {
            Some(HomeTxn::Request(txn)) if txn.phase == Phase::AwaitAcks => {
                let counted = txn.awaiting.note_response(from);
                let done = txn.awaiting.done();
                let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
                let mode = l2line.entry.sharer_response(from, util, RemovalReason::Eviction);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if let Some(d) = data {
                    let old = std::mem::replace(&mut l2line.data, d);
                    l2line.dirty = true;
                    self.slab.release(old);
                    self.counts.l2_line_writes += 1;
                }
                if counted && done {
                    let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                        unreachable!();
                    };
                    txn.sharers_lat += now - txn.phase_start;
                    self.home_grant(tile, line, now);
                }
            }
            Some(HomeTxn::Evict(et)) => {
                et.entry.sharer_response(from, util, RemovalReason::Eviction);
                if let Some(d) = data {
                    let old = std::mem::replace(&mut et.data, d);
                    et.dirty = true;
                    self.slab.release(old);
                }
                et.awaiting.note_response(from);
                if et.awaiting.done() {
                    self.finish_l2_eviction(tile, line, now);
                }
            }
            _ => {
                // No transaction (or one not yet collecting acks): plain
                // bookkeeping on the resident line.
                let Some(l2line) = self.tiles[tile].l2.peek_mut(line) else {
                    debug_assert!(false, "evict notify for non-resident {line}");
                    if let Some(d) = data {
                        self.slab.release(d);
                    }
                    return;
                };
                let mode = l2line.entry.sharer_response(from, util, RemovalReason::Eviction);
                if mode == Some(SharerMode::Remote) {
                    self.protocol.demotions += 1;
                }
                if let Some(d) = data {
                    let old = std::mem::replace(&mut l2line.data, d);
                    l2line.dirty = true;
                    self.slab.release(old);
                    self.counts.l2_line_writes += 1;
                }
                self.counts.dir_updates += 1;
            }
        }
    }

    /// `response` is `None` for a `WbNack`, `Some(None)` for a clean
    /// `WbData` (the owner's copy matched the resident line) and
    /// `Some(Some(handle))` when the downgrade read out dirty data.
    pub(crate) fn home_wb_response(
        &mut self,
        tile: usize,
        owner: CoreId,
        line: LineAddr,
        response: Option<Option<DataRef>>,
        now: Cycle,
    ) {
        {
            let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_mut(line) else {
                unreachable!("write-back response without transaction");
            };
            debug_assert_eq!(txn.phase, Phase::AwaitWb);
            txn.sharers_lat += now - txn.phase_start;
            let l2line = self.tiles[tile].l2.peek_mut(line).expect("resident during txn");
            match response {
                Some(data) => {
                    l2line.entry.owner_downgraded(owner);
                    if let Some(d) = data {
                        let old = std::mem::replace(&mut l2line.data, d);
                        l2line.dirty = true;
                        self.slab.release(old);
                        self.counts.l2_line_writes += 1;
                    }
                }
                None => {
                    // Owner evicted; its notify (FIFO-ordered ahead of the
                    // nack) already removed it from the sharer set.
                    debug_assert_ne!(l2line.entry.state.owner(), Some(owner));
                }
            }
        }
        self.home_proceed_invalidate(tile, line, now);
    }

    fn home_grant(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        let Some(HomeTxn::Request(txn)) = self.tiles[tile].txn_remove(line) else {
            unreachable!("grant without transaction");
        };
        let decision = txn.decision.expect("granting after decision");
        let ann =
            LatencyAnnotation { waiting: txn.wait, sharers: txn.sharers_lat, offchip: txn.offchip };
        let home = CoreId::new(tile);
        if decision.outcome.promoted {
            self.protocol.promotions += 1;
        }
        let payload = {
            let l2line = self.tiles[tile].l2.get_mut(line).expect("resident during txn");
            match decision.grant {
                Grant::LineShared | Grant::LineExclusive | Grant::LineModified => {
                    self.counts.l2_line_reads += 1;
                    self.protocol.line_grants += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    let mesi = match decision.grant {
                        Grant::LineShared => MesiState::Shared,
                        Grant::LineExclusive => MesiState::Exclusive,
                        _ => MesiState::Modified,
                    };
                    // Alias the resident slot: the grant ships a second
                    // handle to the same 64 bytes instead of a copy.
                    // Seeded bug (mutation testing): grant stale (zeroed)
                    // data instead of the resident line. Allocating keeps
                    // the slab refcount audit balanced — the bug is purely
                    // a data-value one.
                    let data = if self.fault == Some(FaultInjection::StaleGrant) {
                        self.slab.alloc(LineData::zeroed())
                    } else {
                        self.slab.retain(l2line.data)
                    };
                    Payload::GrantLine { mesi, data, ann }
                }
                Grant::Upgrade => {
                    self.counts.dir_updates += 1;
                    self.protocol.upgrades += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    Payload::GrantUpgrade { ann }
                }
                Grant::WordRead => {
                    self.counts.l2_word_reads += 1;
                    self.counts.dir_updates += 1;
                    self.protocol.word_reads += 1;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    let value = self.slab.get(l2line.data).word(txn.word);
                    self.monitor.on_read(txn.requester, line, txn.word, value, now);
                    Payload::WordReadReply { value, ann }
                }
                Grant::WordWrite => {
                    self.counts.l2_word_writes += 1;
                    self.counts.dir_updates += 1;
                    self.protocol.word_writes += 1;
                    // The resident slot may be aliased by outstanding S
                    // copies; copy-on-write keeps their view intact.
                    l2line.data = self.slab.make_mut(l2line.data);
                    self.slab.get_mut(l2line.data).set_word(txn.word, txn.value);
                    l2line.dirty = true;
                    l2line.entry.complete_grant(txn.requester, decision.grant);
                    self.monitor.on_write(txn.requester, line, txn.word, txn.value, now);
                    Payload::WordWriteAck { ann }
                }
            }
        };
        self.send(home, txn.requester, line, payload, now);
        self.drain_waiter(tile, line, now);
    }

    fn drain_waiter(&mut self, tile: usize, line: LineAddr, now: Cycle) {
        if let Some((msg, arrival)) = self.tiles[tile].waiters.pop(line) {
            self.start_home_txn(tile, msg, arrival, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{default_instr_base, Workload};
    use lacc_cache::LineData;
    use lacc_model::SystemConfig;

    fn idle_sim() -> Simulator {
        let w = Workload {
            name: "retry-path".into(),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        Simulator::new(SystemConfig::small_for_tests(4), w).expect("valid config")
    }

    /// Satellite regression: a refused `install_l2_line` must hand the
    /// incoming `DataRef` back untouched — no slab traffic at all on the
    /// retry path (the old code round-tripped the payload through a
    /// 64-byte `get` copy per retry).
    #[test]
    fn refused_install_returns_the_handle_with_zero_copies() {
        let mut sim = idle_sim();
        let num_sets = sim.tiles[0].l2.num_sets() as u64;
        let assoc = sim.cfg.l2.associativity as u64;
        // Fill one L2 set and mark every resident way protocol-busy, so
        // the install filter refuses them all as victims.
        for i in 0..assoc {
            let resident = LineAddr::new(i * num_sets);
            let data = sim.slab.alloc(LineData::zeroed());
            sim.install_l2_line(0, resident, data, 0).expect("set not yet full");
            sim.tiles[0].txns.insert(resident, 0);
        }
        let incoming = LineAddr::new(assoc * num_sets); // same set, absent
        let data = sim.slab.alloc(LineData::from_words([42; 8]));
        let before = sim.slab.stats();

        let back = sim.install_l2_line(0, incoming, data, 1).expect_err("every way busy");

        assert_eq!(back, data, "the very same handle comes back for the retry");
        assert_eq!(
            sim.slab.stats(),
            before,
            "zero slab traffic on refusal: no copies, retains or releases"
        );
        assert_eq!(sim.slab.get(back).word(0), 42, "payload bytes untouched");

        // Once a way frees up, the retry lands that same handle as the
        // resident line (transfer), evicting the freed way cleanly.
        let freed = LineAddr::new(0);
        sim.tiles[0].txns.remove(&freed);
        let mid = sim.slab.stats();
        sim.install_l2_line(0, incoming, back, 2).expect("retry succeeds");
        assert!(sim.tiles[0].l2.contains(incoming));
        assert_eq!(
            sim.tiles[0].l2.get(incoming).map(|l| l.data),
            Some(back),
            "install is a handle transfer, not a copy"
        );
        let after = sim.slab.stats();
        assert_eq!(after.allocs, mid.allocs, "no new slots on the successful retry");
        assert_eq!(after.bytes_copied, mid.bytes_copied, "no bytes moved on the retry");
        assert_eq!(after.frees, mid.frees + 1, "the clean victim's slot was released");
    }
}
