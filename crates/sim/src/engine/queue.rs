//! The event queue: a two-level bucket (calendar) queue.
//!
//! The simulator previously ordered events with a
//! `BinaryHeap<Reverse<(cycle, seq)>>` — `O(log n)` comparisons and a
//! pointer-chasing sift per operation on the hottest path in the
//! repository (every message hop, core step and L2 lookup is one event).
//! Simulated time, however, is an integer that only moves forward, and
//! almost every event lands within a few hundred cycles of *now* (mesh
//! hops, L2 latency, DRAM round trips). A calendar queue exploits that:
//!
//! * a **near wheel** of `WINDOW` per-cycle FIFO buckets covers
//!   `[now, now + WINDOW)`; push is "append to `bucket[cycle % WINDOW]`",
//!   pop is "advance the cursor to the next non-empty bucket and pop its
//!   front" — both O(1) amortized, no comparisons. An occupancy bitmap
//!   (one bit per bucket) turns the advance into a next-set-bit jump, so
//!   sparse stretches of simulated time cost a handful of word scans
//!   instead of one iteration per empty cycle — which matters doubly for
//!   the sharded plane, where every shard's cursor walks the timeline;
//! * a **far map** (`BTreeMap<cycle, Vec>`) holds the rare events beyond
//!   the window (deep DRAM/contention backlogs); whole buckets migrate
//!   into the wheel as the cursor approaches, and an empty wheel jumps the
//!   cursor straight to the earliest far cycle.
//!
//! **Ordering contract**: `pop` yields events in exactly the total order
//! `(cycle, insertion sequence)` — identical to the `BinaryHeap` it
//! replaced, which is what keeps simulation reports byte-identical across
//! the swap. Within a bucket FIFO order *is* insertion order; far buckets
//! are appended in insertion order and migrate before any newer push can
//! land in the same wheel slot (pushes only happen between pops, and the
//! cursor only moves during pops). The property test in
//! `tests/engine_invariants.rs` checks this against a reference heap
//! model.

use std::collections::{BTreeMap, VecDeque};

use lacc_model::Cycle;

/// Near-wheel width in cycles. Must be a power of two. Covers every
/// common latency (hop ≈ 2, L2 ≈ 7–9, DRAM ≈ 100, install retry = 32)
/// so the far map is touched only under heavy contention backlogs.
///
/// Public so tests can pin the horizon boundary: a push landing at
/// exactly `cur + WINDOW` is the first cycle *outside* the wheel and
/// must route to the far map — `near[at % WINDOW]` is the bucket
/// currently serving cycle `cur`, and aliasing into it would deliver
/// the event a full window early.
pub const WINDOW: usize = 128;

/// One occupancy word covers 64 wheel slots.
const OCC_WORDS: usize = WINDOW / 64;

/// A monotonic-time priority queue of `(Cycle, T)` preserving insertion
/// order among equal cycles. See the module docs for the design.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    near: Vec<VecDeque<T>>,
    /// Scan cursor: no queued event is earlier than `cur`.
    cur: Cycle,
    near_len: usize,
    /// Wheel occupancy bitmap: bit `s` of the concatenated words is set
    /// iff `near[s]` is non-empty. Advancing the cursor is a circular
    /// next-set-bit scan (≤ 3 word reads) instead of stepping empty
    /// buckets one cycle at a time — on sparse timelines the per-cycle
    /// step is the dominant pop cost, and under the sharded plane it is
    /// paid once per *shard* cursor, so the bitmap is what keeps the
    /// multi-queue engines near the serial engine's pop rate.
    occ: [u64; OCC_WORDS],
    far: BTreeMap<Cycle, Vec<T>>,
    far_len: usize,
    /// Cached `far.keys().next()` (`Cycle::MAX` when `far` is empty).
    far_min: Cycle,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue starting at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            near: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            cur: 0,
            near_len: 0,
            occ: [0; OCC_WORDS],
            far: BTreeMap::new(),
            far_len: 0,
            far_min: Cycle::MAX,
        }
    }

    #[inline]
    fn occ_set(&mut self, slot: usize) {
        self.occ[slot / 64] |= 1 << (slot % 64);
    }

    #[inline]
    fn occ_clear(&mut self, slot: usize) {
        self.occ[slot / 64] &= !(1 << (slot % 64));
    }

    /// Circular distance from the cursor's slot to the nearest occupied
    /// slot (0 when the cursor's own bucket is non-empty). Callers must
    /// ensure `near_len > 0`.
    #[inline]
    fn next_occupied_distance(&self) -> usize {
        let s = self.cur as usize % WINDOW;
        let (w0, b0) = (s / 64, s % 64);
        let head = self.occ[w0] >> b0;
        if head != 0 {
            return head.trailing_zeros() as usize;
        }
        let mut dist = 64 - b0;
        for i in 1..=OCC_WORDS {
            // The final iteration rereads `w0` in full: its bits at or
            // above `b0` are known clear, so a hit there is a slot below
            // `b0` — a full wrap of the wheel.
            let w = self.occ[(w0 + i) % OCC_WORDS];
            if w != 0 {
                return dist + w.trailing_zeros() as usize;
            }
            dist += 64;
        }
        unreachable!("near_len > 0 implies an occupied wheel slot")
    }

    /// Total queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near_len + self.far_len
    }

    /// `true` when no event is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at cycle `at`.
    ///
    /// Time is monotonic: `at` must not precede the cycle of the last
    /// popped event (debug-asserted; a violating push is clamped to it,
    /// matching how a heap would deliver it immediately anyway).
    pub fn push(&mut self, at: Cycle, item: T) {
        debug_assert!(at >= self.cur, "event scheduled at {at} before current cycle {}", self.cur);
        let at = at.max(self.cur);
        if at < self.cur + WINDOW as Cycle {
            let slot = at as usize % WINDOW;
            self.near[slot].push_back(item);
            self.near_len += 1;
            self.occ_set(slot);
        } else {
            self.far.entry(at).or_default().push(item);
            self.far_len += 1;
            if at < self.far_min {
                self.far_min = at;
            }
        }
    }

    /// The scan cursor: the cycle the queue is currently serving. No
    /// queued event is earlier, and [`CalendarQueue::peek`] advances it
    /// to the head event's cycle. The sharded event plane uses this to
    /// decide whether a push can still enter this queue in order.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.cur
    }

    /// Migrates far buckets that entered the near window. A wheel slot a
    /// far bucket lands in is necessarily empty: its previous occupant
    /// cycle is < cur (already drained) and no direct push can have
    /// targeted this cycle while it was still outside the window.
    fn migrate_far(&mut self) {
        while self.far_min < self.cur + WINDOW as Cycle {
            let (at, batch) = self.far.pop_first().expect("far_min tracks a live key");
            self.far_len -= batch.len();
            self.near_len += batch.len();
            let slot = at as usize % WINDOW;
            debug_assert!(self.near[slot].is_empty(), "far bucket migrating into an occupied slot");
            self.near[slot].extend(batch);
            self.occ_set(slot);
            self.far_min = self.far.keys().next().copied().unwrap_or(Cycle::MAX);
        }
    }

    /// Advances the cursor (migrating far buckets) to the earliest
    /// queued event's cycle; `None` when empty.
    fn advance(&mut self) -> Option<Cycle> {
        loop {
            self.migrate_far();
            if self.near_len == 0 {
                if self.far_len == 0 {
                    return None;
                }
                // Nothing in the window: jump straight to the earliest far
                // cycle instead of scanning empty buckets.
                self.cur = self.far_min;
                continue;
            }
            let d = self.next_occupied_distance();
            if d == 0 {
                return Some(self.cur);
            }
            // Jump straight to the next occupied bucket. The skipped
            // slots are empty, so far buckets the jump pulls into the
            // window can still migrate into them (next iteration), and
            // every such cycle is ≥ the old `cur + WINDOW` — later than
            // the bucket just found — so the jump never overshoots.
            self.cur += d as Cycle;
        }
    }

    /// The earliest event as `(cycle, &item)` without removing it; the
    /// cursor advances to its cycle (pure navigation — the pop order is
    /// unaffected).
    pub fn peek(&mut self) -> Option<(Cycle, &T)> {
        let at = self.advance()?;
        let item = self.near[at as usize % WINDOW].front().expect("advance found a head");
        Some((at, item))
    }

    /// Like [`CalendarQueue::peek`], but bounded: returns the head only
    /// if its cycle is `<= limit`, and never advances the cursor past
    /// `limit + 1`. The sharded event plane races several queues toward
    /// the global minimum with this — an unbounded peek would park a
    /// queue's cursor at its own (possibly far-future) head, which then
    /// rejects pushes behind it that the global order still permits.
    pub fn peek_until(&mut self, limit: Cycle) -> Option<(Cycle, &T)> {
        let at = self.advance_until(limit)?;
        let item = self.near[at as usize % WINDOW].front().expect("advance found a head");
        Some((at, item))
    }

    /// [`CalendarQueue::advance`] bounded by `limit`: if no event exists
    /// at a cycle `<= limit`, the cursor parks at `limit + 1` and `None`
    /// is returned.
    fn advance_until(&mut self, limit: Cycle) -> Option<Cycle> {
        loop {
            self.migrate_far();
            if self.near_len == 0 {
                if self.far_min <= limit {
                    // The earliest event is far but within the bound:
                    // jump to it (migration happens next iteration).
                    self.cur = self.far_min;
                    continue;
                }
                if self.cur <= limit {
                    // Park at limit + 1 — but re-enter the loop so the
                    // migration sweep runs at the new cursor first. A
                    // far bucket left below `cur + WINDOW` would let a
                    // later near push at the same cycle slot in ahead
                    // of it, inverting the within-cycle seq order.
                    self.cur = limit + 1;
                    continue;
                }
                return None;
            }
            if self.cur > limit {
                return None;
            }
            let d = self.next_occupied_distance();
            if d == 0 {
                return Some(self.cur);
            }
            let next = self.cur + d as Cycle;
            if next > limit {
                // The nearest event is beyond the bound: park at
                // limit + 1 and re-loop for the migration sweep (see
                // the comment above), then report `None`.
                self.cur = limit + 1;
            } else {
                self.cur = next;
            }
        }
    }

    /// Removes and returns the earliest event as `(cycle, item)`; equal
    /// cycles pop in push order.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let at = self.advance()?;
        let slot = at as usize % WINDOW;
        let item = self.near[slot].pop_front().expect("advance found a head");
        self.near_len -= 1;
        if self.near[slot].is_empty() {
            self.occ_clear(slot);
        }
        Some((at, item))
    }

    /// Pops the head only when `pred` accepts it: advances the cursor
    /// to the earliest event, shows it to `pred` as `(cycle, &item)`,
    /// and removes it on `true`. On `false` (or an empty queue) the
    /// event stays queued with the cursor parked at its cycle, so a
    /// follow-up [`CalendarQueue::peek`] costs no re-scan.
    ///
    /// This is the sharded plane's fast-path serve — peek, compare
    /// against the run limit, pop — fused into one cursor walk and one
    /// bucket access.
    pub fn pop_if(&mut self, pred: impl FnOnce(Cycle, &T) -> bool) -> Option<(Cycle, T)> {
        let at = self.advance()?;
        let slot = at as usize % WINDOW;
        let bucket = &mut self.near[slot];
        if !pred(at, bucket.front().expect("advance found a head")) {
            return None;
        }
        let item = bucket.pop_front().expect("checked front");
        self.near_len -= 1;
        if bucket.is_empty() {
            self.occ_clear(slot);
        }
        Some((at, item))
    }

    /// Pops the event a preceding [`CalendarQueue::peek`] returned,
    /// without re-running the cursor advance: the peek parked the
    /// cursor on its (non-empty) bucket, so the head is one
    /// `pop_front` away. Calling this without a peeked head (empty
    /// cursor bucket) panics.
    ///
    /// This is the sharded plane's fast-path serve: peek-compare-pop
    /// per event would otherwise pay the advance machinery — far-map
    /// migration check and occupancy scan — twice.
    pub fn pop_peeked(&mut self) -> (Cycle, T) {
        let slot = self.cur as usize % WINDOW;
        let item = self.near[slot].pop_front().expect("pop_peeked requires a peeked head");
        self.near_len -= 1;
        if self.near[slot].is_empty() {
            self.occ_clear(slot);
        }
        (self.cur, item)
    }

    /// Like [`CalendarQueue::pop`], but bounded: removes the earliest
    /// event only if its cycle is `<= limit`. Once no such event remains
    /// the cursor parks at `limit + 1` and `None` is returned. The
    /// sharded event plane harvests a whole commit window out of each
    /// shard's queue with this — the parked cursor then guarantees every
    /// later push into the queue lands at or after the window boundary.
    pub fn pop_until(&mut self, limit: Cycle) -> Option<(Cycle, T)> {
        let at = self.advance_until(limit)?;
        let slot = at as usize % WINDOW;
        let item = self.near[slot].pop_front().expect("advance found a head");
        self.near_len -= 1;
        if self.near[slot].is_empty() {
            self.occ_clear(slot);
        }
        Some((at, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        q.push(3, "d");
        let order: Vec<(Cycle, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, "b"), (3, "d"), (5, "a"), (5, "c")]);
    }

    #[test]
    fn far_events_jump_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(1_000_000, "far");
        q.push(2, "near");
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_and_near_interleave_at_the_same_cycle() {
        let mut q = CalendarQueue::new();
        let target = WINDOW as Cycle + 100;
        q.push(target, 1); // lands far
        q.push(200, 0);
        assert_eq!(q.pop(), Some((200, 0)));
        // target is now inside the window: this push must order *after*
        // the migrated far event at the same cycle.
        q.push(target, 2);
        assert_eq!(q.pop(), Some((target, 1)));
        assert_eq!(q.pop(), Some((target, 2)));
    }

    #[test]
    fn push_at_current_cycle_during_drain() {
        let mut q = CalendarQueue::new();
        q.push(10, 1);
        assert_eq!(q.pop(), Some((10, 1)));
        q.push(10, 2); // an event scheduling a same-cycle successor
        q.push(11, 3);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((11, 3)));
    }

    /// The horizon boundary: a push at exactly `cur + WINDOW` is the
    /// first cycle outside the wheel. `near[at % WINDOW]` is the bucket
    /// serving cycle `cur` itself, so aliasing into it would pop the
    /// event a full window early — it must route far.
    #[test]
    fn push_at_exactly_cur_plus_window_routes_far() {
        let mut q = CalendarQueue::new();
        q.push(100, "tick");
        assert_eq!(q.pop(), Some((100, "tick"))); // cur = 100
        let edge = 100 + WINDOW as Cycle;
        q.push(edge - 1, "inside"); // last wheel cycle
        q.push(edge, "edge"); // first far cycle
        q.push(edge + 1, "outside");
        assert_eq!(q.far_len, 2, "cur + WINDOW and beyond must go to the far map");
        assert_eq!(q.near_len, 1, "cur + WINDOW - 1 still fits the wheel");
        assert_eq!(q.pop(), Some((edge - 1, "inside")));
        assert_eq!(q.pop(), Some((edge, "edge")));
        assert_eq!(q.pop(), Some((edge + 1, "outside")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_is_pure_navigation() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek(), None);
        q.push(7, "a");
        q.push(7, "b");
        q.push(WINDOW as Cycle + 9, "far");
        assert_eq!(q.peek(), Some((7, &"a")));
        assert_eq!(q.now(), 7, "peek advances the cursor to the head");
        assert_eq!(q.peek(), Some((7, &"a")), "peek does not consume");
        assert_eq!(q.pop(), Some((7, "a")));
        assert_eq!(q.pop(), Some((7, "b")));
        assert_eq!(q.peek(), Some((WINDOW as Cycle + 9, &"far")));
        assert_eq!(q.pop(), Some((WINDOW as Cycle + 9, "far")));
        assert_eq!(q.len(), 0);
    }

    /// `pop_until` drains exactly the `<= limit` prefix and parks the
    /// cursor at `limit + 1`, across both wheel and far-map storage.
    #[test]
    fn pop_until_drains_a_window_and_parks_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(3, "a");
        q.push(9, "b");
        q.push(WINDOW as Cycle + 50, "far");
        assert_eq!(q.pop_until(9), Some((3, "a")));
        assert_eq!(q.pop_until(9), Some((9, "b")));
        assert_eq!(q.pop_until(9), None);
        assert_eq!(q.now(), 10, "cursor parks just past the harvested window");
        // Pushes at the boundary stay queued for the next window...
        q.push(10, "edge");
        assert_eq!(q.pop_until(9), None);
        // ...and a wider limit reaches both the edge and the far event.
        assert_eq!(q.pop_until(WINDOW as Cycle + 50), Some((10, "edge")));
        assert_eq!(q.pop_until(WINDOW as Cycle + 50), Some((WINDOW as Cycle + 50, "far")));
        assert!(q.is_empty());
    }

    /// The occupancy scan wraps the wheel: with the cursor parked
    /// mid-wheel, an event whose slot index is *below* the cursor's
    /// (cycle ≥ a full word past it, modulo `WINDOW`) must still be
    /// found, at its true cycle.
    #[test]
    fn occupancy_scan_wraps_the_wheel() {
        let mut q = CalendarQueue::new();
        q.push(100, "tick");
        assert_eq!(q.pop(), Some((100, "tick"))); // cur = 100, slot 100
        let wrapped = 100 + WINDOW as Cycle - 12; // slot 88 < slot 100
        q.push(wrapped, "wrapped");
        assert_eq!(q.pop(), Some((wrapped, "wrapped")));
        // And the bit cleared on drain: a later same-slot cycle is not
        // served early off a stale bit.
        let next_lap = wrapped + WINDOW as Cycle;
        q.push(next_lap, "far"); // routes far, migrates on approach
        q.push(wrapped + 1, "near");
        assert_eq!(q.pop(), Some((wrapped + 1, "near")));
        assert_eq!(q.pop(), Some((next_lap, "far")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn len_spans_both_levels() {
        let mut q = CalendarQueue::new();
        q.push(1, ());
        q.push(1_000_000, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
