//! The event queue: a two-level bucket (calendar) queue.
//!
//! The simulator previously ordered events with a
//! `BinaryHeap<Reverse<(cycle, seq)>>` — `O(log n)` comparisons and a
//! pointer-chasing sift per operation on the hottest path in the
//! repository (every message hop, core step and L2 lookup is one event).
//! Simulated time, however, is an integer that only moves forward, and
//! almost every event lands within a few hundred cycles of *now* (mesh
//! hops, L2 latency, DRAM round trips). A calendar queue exploits that:
//!
//! * a **near wheel** of `WINDOW` per-cycle FIFO buckets covers
//!   `[now, now + WINDOW)`; push is "append to `bucket[cycle % WINDOW]`",
//!   pop is "advance the cursor to the next non-empty bucket and pop its
//!   front" — both O(1) amortized, no comparisons;
//! * a **far map** (`BTreeMap<cycle, Vec>`) holds the rare events beyond
//!   the window (deep DRAM/contention backlogs); whole buckets migrate
//!   into the wheel as the cursor approaches, and an empty wheel jumps the
//!   cursor straight to the earliest far cycle.
//!
//! **Ordering contract**: `pop` yields events in exactly the total order
//! `(cycle, insertion sequence)` — identical to the `BinaryHeap` it
//! replaced, which is what keeps simulation reports byte-identical across
//! the swap. Within a bucket FIFO order *is* insertion order; far buckets
//! are appended in insertion order and migrate before any newer push can
//! land in the same wheel slot (pushes only happen between pops, and the
//! cursor only moves during pops). The property test in
//! `tests/engine_invariants.rs` checks this against a reference heap
//! model.

use std::collections::{BTreeMap, VecDeque};

use lacc_model::Cycle;

/// Near-wheel width in cycles. Must be a power of two. Covers every
/// common latency (hop ≈ 2, L2 ≈ 7–9, DRAM ≈ 100, install retry = 32)
/// so the far map is touched only under heavy contention backlogs.
///
/// Public so tests can pin the horizon boundary: a push landing at
/// exactly `cur + WINDOW` is the first cycle *outside* the wheel and
/// must route to the far map — `near[at % WINDOW]` is the bucket
/// currently serving cycle `cur`, and aliasing into it would deliver
/// the event a full window early.
pub const WINDOW: usize = 512;

/// A monotonic-time priority queue of `(Cycle, T)` preserving insertion
/// order among equal cycles. See the module docs for the design.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    near: Vec<VecDeque<T>>,
    /// Scan cursor: no queued event is earlier than `cur`.
    cur: Cycle,
    near_len: usize,
    far: BTreeMap<Cycle, Vec<T>>,
    far_len: usize,
    /// Cached `far.keys().next()` (`Cycle::MAX` when `far` is empty).
    far_min: Cycle,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue starting at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            near: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            cur: 0,
            near_len: 0,
            far: BTreeMap::new(),
            far_len: 0,
            far_min: Cycle::MAX,
        }
    }

    /// Total queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near_len + self.far_len
    }

    /// `true` when no event is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at cycle `at`.
    ///
    /// Time is monotonic: `at` must not precede the cycle of the last
    /// popped event (debug-asserted; a violating push is clamped to it,
    /// matching how a heap would deliver it immediately anyway).
    pub fn push(&mut self, at: Cycle, item: T) {
        debug_assert!(at >= self.cur, "event scheduled at {at} before current cycle {}", self.cur);
        let at = at.max(self.cur);
        if at < self.cur + WINDOW as Cycle {
            self.near[at as usize % WINDOW].push_back(item);
            self.near_len += 1;
        } else {
            self.far.entry(at).or_default().push(item);
            self.far_len += 1;
            if at < self.far_min {
                self.far_min = at;
            }
        }
    }

    /// Pushes `item` at `at` only when the append provably lands in
    /// order *within its cycle*: `at` must sit in the near window at or
    /// ahead of the cursor, and the slot's current tail (same cycle by
    /// the one-cycle-per-slot invariant) must satisfy `after`, i.e. sort
    /// before the new item. Returns the item back otherwise — the
    /// sharded plane then routes it through its inbound heap, which
    /// orders explicitly. The far map is never consulted: every far
    /// bucket below `cur + WINDOW` migrates before any cursor move, so
    /// a near-range cycle cannot also have a pending far batch.
    pub fn push_if_ordered(
        &mut self,
        at: Cycle,
        item: T,
        after: impl FnOnce(&T) -> bool,
    ) -> Result<(), T> {
        if at < self.cur || at - self.cur >= WINDOW as Cycle {
            return Err(item);
        }
        let slot = &mut self.near[at as usize % WINDOW];
        if let Some(tail) = slot.back() {
            if !after(tail) {
                return Err(item);
            }
        }
        slot.push_back(item);
        self.near_len += 1;
        Ok(())
    }

    /// The scan cursor: the cycle the queue is currently serving. No
    /// queued event is earlier, and [`CalendarQueue::peek`] advances it
    /// to the head event's cycle. The sharded event plane uses this to
    /// decide whether a push can still enter this queue in order.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.cur
    }

    /// Advances the cursor (migrating far buckets) to the earliest
    /// queued event's cycle; `None` when empty.
    fn advance(&mut self) -> Option<Cycle> {
        loop {
            // Migrate far buckets that entered the near window. A wheel
            // slot a far bucket lands in is necessarily empty: its
            // previous occupant cycle is < cur (already drained) and no
            // direct push can have targeted this cycle while it was still
            // outside the window.
            while self.far_min < self.cur + WINDOW as Cycle {
                let (at, batch) = self.far.pop_first().expect("far_min tracks a live key");
                self.far_len -= batch.len();
                self.near_len += batch.len();
                let slot = &mut self.near[at as usize % WINDOW];
                debug_assert!(slot.is_empty(), "far bucket migrating into an occupied slot");
                slot.extend(batch);
                self.far_min = self.far.keys().next().copied().unwrap_or(Cycle::MAX);
            }
            if self.near_len == 0 {
                if self.far_len == 0 {
                    return None;
                }
                // Nothing in the window: jump straight to the earliest far
                // cycle instead of scanning empty buckets.
                self.cur = self.far_min;
                continue;
            }
            if !self.near[self.cur as usize % WINDOW].is_empty() {
                return Some(self.cur);
            }
            self.cur += 1;
        }
    }

    /// The earliest event as `(cycle, &item)` without removing it; the
    /// cursor advances to its cycle (pure navigation — the pop order is
    /// unaffected).
    pub fn peek(&mut self) -> Option<(Cycle, &T)> {
        let at = self.advance()?;
        let item = self.near[at as usize % WINDOW].front().expect("advance found a head");
        Some((at, item))
    }

    /// Like [`CalendarQueue::peek`], but bounded: returns the head only
    /// if its cycle is `<= limit`, and never advances the cursor past
    /// `limit + 1`. The sharded event plane races several queues toward
    /// the global minimum with this — an unbounded peek would park a
    /// queue's cursor at its own (possibly far-future) head, which then
    /// rejects pushes behind it that the global order still permits.
    pub fn peek_until(&mut self, limit: Cycle) -> Option<(Cycle, &T)> {
        let at = self.advance_until(limit)?;
        let item = self.near[at as usize % WINDOW].front().expect("advance found a head");
        Some((at, item))
    }

    /// [`CalendarQueue::advance`] bounded by `limit`: if no event exists
    /// at a cycle `<= limit`, the cursor parks at `limit + 1` and `None`
    /// is returned.
    fn advance_until(&mut self, limit: Cycle) -> Option<Cycle> {
        loop {
            while self.far_min < self.cur + WINDOW as Cycle {
                let (at, batch) = self.far.pop_first().expect("far_min tracks a live key");
                self.far_len -= batch.len();
                self.near_len += batch.len();
                let slot = &mut self.near[at as usize % WINDOW];
                debug_assert!(slot.is_empty(), "far bucket migrating into an occupied slot");
                slot.extend(batch);
                self.far_min = self.far.keys().next().copied().unwrap_or(Cycle::MAX);
            }
            if self.near_len == 0 {
                if self.far_min <= limit {
                    // The earliest event is far but within the bound:
                    // jump to it (migration happens next iteration).
                    self.cur = self.far_min;
                    continue;
                }
                if self.cur <= limit {
                    // Park at limit + 1 — but re-enter the loop so the
                    // migration sweep runs at the new cursor first. A
                    // far bucket left below `cur + WINDOW` would let a
                    // later near push at the same cycle slot in ahead
                    // of it, inverting the within-cycle seq order.
                    self.cur = limit + 1;
                    continue;
                }
                return None;
            }
            if self.cur > limit {
                return None;
            }
            if !self.near[self.cur as usize % WINDOW].is_empty() {
                return Some(self.cur);
            }
            self.cur += 1;
        }
    }

    /// Removes and returns the earliest event as `(cycle, item)`; equal
    /// cycles pop in push order.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        let at = self.advance()?;
        let item = self.near[at as usize % WINDOW].pop_front().expect("advance found a head");
        self.near_len -= 1;
        Some((at, item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        q.push(3, "d");
        let order: Vec<(Cycle, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, "b"), (3, "d"), (5, "a"), (5, "c")]);
    }

    #[test]
    fn far_events_jump_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(1_000_000, "far");
        q.push(2, "near");
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_and_near_interleave_at_the_same_cycle() {
        let mut q = CalendarQueue::new();
        let target = WINDOW as Cycle + 100;
        q.push(target, 1); // lands far
        q.push(200, 0);
        assert_eq!(q.pop(), Some((200, 0)));
        // target is now inside the window: this push must order *after*
        // the migrated far event at the same cycle.
        q.push(target, 2);
        assert_eq!(q.pop(), Some((target, 1)));
        assert_eq!(q.pop(), Some((target, 2)));
    }

    #[test]
    fn push_at_current_cycle_during_drain() {
        let mut q = CalendarQueue::new();
        q.push(10, 1);
        assert_eq!(q.pop(), Some((10, 1)));
        q.push(10, 2); // an event scheduling a same-cycle successor
        q.push(11, 3);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((11, 3)));
    }

    /// The horizon boundary: a push at exactly `cur + WINDOW` is the
    /// first cycle outside the wheel. `near[at % WINDOW]` is the bucket
    /// serving cycle `cur` itself, so aliasing into it would pop the
    /// event a full window early — it must route far.
    #[test]
    fn push_at_exactly_cur_plus_window_routes_far() {
        let mut q = CalendarQueue::new();
        q.push(100, "tick");
        assert_eq!(q.pop(), Some((100, "tick"))); // cur = 100
        let edge = 100 + WINDOW as Cycle;
        q.push(edge - 1, "inside"); // last wheel cycle
        q.push(edge, "edge"); // first far cycle
        q.push(edge + 1, "outside");
        assert_eq!(q.far_len, 2, "cur + WINDOW and beyond must go to the far map");
        assert_eq!(q.near_len, 1, "cur + WINDOW - 1 still fits the wheel");
        assert_eq!(q.pop(), Some((edge - 1, "inside")));
        assert_eq!(q.pop(), Some((edge, "edge")));
        assert_eq!(q.pop(), Some((edge + 1, "outside")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_is_pure_navigation() {
        let mut q = CalendarQueue::new();
        assert_eq!(q.peek(), None);
        q.push(7, "a");
        q.push(7, "b");
        q.push(WINDOW as Cycle + 9, "far");
        assert_eq!(q.peek(), Some((7, &"a")));
        assert_eq!(q.now(), 7, "peek advances the cursor to the head");
        assert_eq!(q.peek(), Some((7, &"a")), "peek does not consume");
        assert_eq!(q.pop(), Some((7, "a")));
        assert_eq!(q.pop(), Some((7, "b")));
        assert_eq!(q.peek(), Some((WINDOW as Cycle + 9, &"far")));
        assert_eq!(q.pop(), Some((WINDOW as Cycle + 9, "far")));
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn len_spans_both_levels() {
        let mut q = CalendarQueue::new();
        q.push(1, ());
        q.push(1_000_000, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
