//! The event queue: a two-level bucket (calendar) queue.
//!
//! The simulator previously ordered events with a
//! `BinaryHeap<Reverse<(cycle, seq)>>` — `O(log n)` comparisons and a
//! pointer-chasing sift per operation on the hottest path in the
//! repository (every message hop, core step and L2 lookup is one event).
//! Simulated time, however, is an integer that only moves forward, and
//! almost every event lands within a few hundred cycles of *now* (mesh
//! hops, L2 latency, DRAM round trips). A calendar queue exploits that:
//!
//! * a **near wheel** of `WINDOW` per-cycle FIFO buckets covers
//!   `[now, now + WINDOW)`; push is "append to `bucket[cycle % WINDOW]`",
//!   pop is "advance the cursor to the next non-empty bucket and pop its
//!   front" — both O(1) amortized, no comparisons;
//! * a **far map** (`BTreeMap<cycle, Vec>`) holds the rare events beyond
//!   the window (deep DRAM/contention backlogs); whole buckets migrate
//!   into the wheel as the cursor approaches, and an empty wheel jumps the
//!   cursor straight to the earliest far cycle.
//!
//! **Ordering contract**: `pop` yields events in exactly the total order
//! `(cycle, insertion sequence)` — identical to the `BinaryHeap` it
//! replaced, which is what keeps simulation reports byte-identical across
//! the swap. Within a bucket FIFO order *is* insertion order; far buckets
//! are appended in insertion order and migrate before any newer push can
//! land in the same wheel slot (pushes only happen between pops, and the
//! cursor only moves during pops). The property test in
//! `tests/engine_invariants.rs` checks this against a reference heap
//! model.

use std::collections::{BTreeMap, VecDeque};

use lacc_model::Cycle;

/// Near-wheel width in cycles. Must be a power of two. Covers every
/// common latency (hop ≈ 2, L2 ≈ 7–9, DRAM ≈ 100, install retry = 32)
/// so the far map is touched only under heavy contention backlogs.
const WINDOW: usize = 512;

/// A monotonic-time priority queue of `(Cycle, T)` preserving insertion
/// order among equal cycles. See the module docs for the design.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    near: Vec<VecDeque<T>>,
    /// Scan cursor: no queued event is earlier than `cur`.
    cur: Cycle,
    near_len: usize,
    far: BTreeMap<Cycle, Vec<T>>,
    far_len: usize,
    /// Cached `far.keys().next()` (`Cycle::MAX` when `far` is empty).
    far_min: Cycle,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue starting at cycle 0.
    #[must_use]
    pub fn new() -> Self {
        CalendarQueue {
            near: (0..WINDOW).map(|_| VecDeque::new()).collect(),
            cur: 0,
            near_len: 0,
            far: BTreeMap::new(),
            far_len: 0,
            far_min: Cycle::MAX,
        }
    }

    /// Total queued events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.near_len + self.far_len
    }

    /// `true` when no event is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `item` at cycle `at`.
    ///
    /// Time is monotonic: `at` must not precede the cycle of the last
    /// popped event (debug-asserted; a violating push is clamped to it,
    /// matching how a heap would deliver it immediately anyway).
    pub fn push(&mut self, at: Cycle, item: T) {
        debug_assert!(at >= self.cur, "event scheduled at {at} before current cycle {}", self.cur);
        let at = at.max(self.cur);
        if at < self.cur + WINDOW as Cycle {
            self.near[at as usize % WINDOW].push_back(item);
            self.near_len += 1;
        } else {
            self.far.entry(at).or_default().push(item);
            self.far_len += 1;
            if at < self.far_min {
                self.far_min = at;
            }
        }
    }

    /// Removes and returns the earliest event as `(cycle, item)`; equal
    /// cycles pop in push order.
    pub fn pop(&mut self) -> Option<(Cycle, T)> {
        loop {
            // Migrate far buckets that entered the near window. A wheel
            // slot a far bucket lands in is necessarily empty: its
            // previous occupant cycle is < cur (already drained) and no
            // direct push can have targeted this cycle while it was still
            // outside the window.
            while self.far_min < self.cur + WINDOW as Cycle {
                let (at, batch) = self.far.pop_first().expect("far_min tracks a live key");
                self.far_len -= batch.len();
                self.near_len += batch.len();
                let slot = &mut self.near[at as usize % WINDOW];
                debug_assert!(slot.is_empty(), "far bucket migrating into an occupied slot");
                slot.extend(batch);
                self.far_min = self.far.keys().next().copied().unwrap_or(Cycle::MAX);
            }
            if self.near_len == 0 {
                if self.far_len == 0 {
                    return None;
                }
                // Nothing in the window: jump straight to the earliest far
                // cycle instead of scanning empty buckets.
                self.cur = self.far_min;
                continue;
            }
            let slot = &mut self.near[self.cur as usize % WINDOW];
            if let Some(item) = slot.pop_front() {
                self.near_len -= 1;
                return Some((self.cur, item));
            }
            self.cur += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_fifo_order() {
        let mut q = CalendarQueue::new();
        q.push(5, "a");
        q.push(3, "b");
        q.push(5, "c");
        q.push(3, "d");
        let order: Vec<(Cycle, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, "b"), (3, "d"), (5, "a"), (5, "c")]);
    }

    #[test]
    fn far_events_jump_the_cursor() {
        let mut q = CalendarQueue::new();
        q.push(1_000_000, "far");
        q.push(2, "near");
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.pop(), Some((1_000_000, "far")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_and_near_interleave_at_the_same_cycle() {
        let mut q = CalendarQueue::new();
        let target = WINDOW as Cycle + 100;
        q.push(target, 1); // lands far
        q.push(200, 0);
        assert_eq!(q.pop(), Some((200, 0)));
        // target is now inside the window: this push must order *after*
        // the migrated far event at the same cycle.
        q.push(target, 2);
        assert_eq!(q.pop(), Some((target, 1)));
        assert_eq!(q.pop(), Some((target, 2)));
    }

    #[test]
    fn push_at_current_cycle_during_drain() {
        let mut q = CalendarQueue::new();
        q.push(10, 1);
        assert_eq!(q.pop(), Some((10, 1)));
        q.push(10, 2); // an event scheduling a same-cycle successor
        q.push(11, 3);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((11, 3)));
    }

    #[test]
    fn len_spans_both_levels() {
        let mut q = CalendarQueue::new();
        q.push(1, ());
        q.push(1_000_000, ());
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
