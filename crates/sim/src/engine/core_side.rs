//! Core-side engine: trace execution, instruction fetch, replay, miss
//! issue, and reply handling.
//!
//! Cores are in-order and blocking: a core executes its trace until an L1
//! miss (data or instruction) or a synchronization stall, then parks in a
//! [`Blocked`] state until the reply / release event resumes it. Ops whose
//! local clock has run ahead of the event time are *replayed* — put back
//! and rescheduled at the core's clock — so inter-core interleavings stay
//! event-ordered (the lax synchronization of §4.1).
//!
//! These handlers run at *commit* time on every event plane: serial,
//! windowed-sharded, and the model checker's choice plane all funnel
//! through the same `dispatch`, so nothing here may observe how events
//! were batched or harvested (DESIGN.md §7) — only `(cycle, seq)` commit
//! order, which all planes keep identical.

use lacc_core::classifier::RemovalReason;
use lacc_core::l1::StoreOutcome;
use lacc_core::mesi::MesiState;
use lacc_model::{CoreId, Cycle, LineAddr};

use crate::msg::{Message, Payload};
use crate::sync::{SyncManager, SyncOutcome};
use crate::trace::TraceOp;

use super::state::{Blocked, Outstanding};
use super::{Event, Simulator, INSTR_PER_LINE};

impl Simulator {
    pub(crate) fn step_core(&mut self, ci: usize, now: Cycle) {
        loop {
            if self.cores[ci].finished || self.cores[ci].blocked != Blocked::No {
                return;
            }
            if self.cores[ci].pending_compute > 0 && !self.run_compute(ci, now) {
                return;
            }
            let op = match self.cores[ci].replay.take() {
                Some(op) => op,
                None => match self.cores[ci].trace.next_op() {
                    Some(op) => {
                        self.cores[ci].ops_consumed += 1;
                        op
                    }
                    None => {
                        self.cores[ci].finished = true;
                        self.cores[ci].trace = super::state::TraceFeed::Done;
                        return;
                    }
                },
            };
            if !self.exec_op(ci, op, now) {
                return;
            }
        }
    }

    /// Executes pending compute instructions; `false` when blocked or
    /// rescheduled.
    fn run_compute(&mut self, ci: usize, now: Cycle) -> bool {
        while self.cores[ci].pending_compute > 0 {
            if !self.fetch_instr(ci, now) {
                return false;
            }
            let core = &mut self.cores[ci];
            core.pending_compute -= 1;
            core.clock += 1;
            core.breakdown.compute += 1;
            core.instructions += 1;
            self.counts.l1i_reads += 1;
        }
        true
    }

    /// Fetches the next instruction (I-cache model); `false` when blocked
    /// on an I-miss or rescheduled to the core's local clock.
    fn fetch_instr(&mut self, ci: usize, now: Cycle) -> bool {
        if self.instr_lines == 0 {
            return true;
        }
        let pos = self.cores[ci].instr_pos;
        let line = LineAddr::new(self.instr_base.raw() + (pos / INSTR_PER_LINE) % self.instr_lines);
        if pos % INSTR_PER_LINE == 0 {
            let clock = self.cores[ci].clock;
            let hit = self.tiles[ci].l1i.load(line, 0, clock, &self.slab).is_some();
            if !hit {
                if clock > now {
                    self.schedule(clock, Event::CoreStep(ci));
                    return false;
                }
                let miss = self.cores[ci].miss_class.classify(line, false);
                self.cores[ci].l1i_stats.record_miss(miss);
                self.issue_request(
                    ci,
                    Outstanding {
                        line,
                        word: 0,
                        is_store: false,
                        value: 0,
                        issue_time: clock,
                        instr: true,
                    },
                );
                self.cores[ci].blocked = Blocked::IFetch;
                return false;
            }
            self.cores[ci].l1i_stats.record_hit();
        }
        self.cores[ci].instr_pos = pos + 1;
        true
    }

    /// Executes one trace op; `false` when blocked or rescheduled.
    fn exec_op(&mut self, ci: usize, op: TraceOp, now: Cycle) -> bool {
        // Instruction fetch for the op itself (memory ops are instructions
        // too; sync ops are abstract and free).
        if matches!(op, TraceOp::Load { .. } | TraceOp::Store { .. })
            && !self.cores[ci].replay_ifetched
        {
            if !self.fetch_instr(ci, now) {
                self.cores[ci].replay = Some(op);
                return false;
            }
            self.cores[ci].replay_ifetched = true;
            self.cores[ci].instructions += 1;
            self.counts.l1i_reads += 1;
        }

        let done = match op {
            TraceOp::Compute(n) => {
                self.cores[ci].pending_compute = n;
                self.run_compute(ci, now)
            }
            TraceOp::Load { addr } => {
                let line = addr.line();
                let word = addr.word_in_line();
                let clock = self.cores[ci].clock;
                if let Some(v) = self.tiles[ci].l1d.load(line, word, clock, &self.slab) {
                    self.counts.l1d_reads += 1;
                    self.cores[ci].l1d_stats.record_hit();
                    self.cores[ci].clock += 1;
                    self.cores[ci].breakdown.compute += 1;
                    self.monitor.on_read(CoreId::new(ci), line, word, v, clock);
                    true
                } else {
                    if clock > now {
                        self.cores[ci].replay = Some(op);
                        self.schedule(clock, Event::CoreStep(ci));
                        return false;
                    }
                    self.counts.l1d_tag_probes += 1;
                    let miss = self.cores[ci].miss_class.classify(line, false);
                    self.cores[ci].l1d_stats.record_miss(miss);
                    self.issue_request(
                        ci,
                        Outstanding {
                            line,
                            word,
                            is_store: false,
                            value: 0,
                            issue_time: clock,
                            instr: false,
                        },
                    );
                    self.cores[ci].blocked = Blocked::Data;
                    // The op is consumed (its completion happens at reply
                    // delivery); reset the per-op fetch flag.
                    self.cores[ci].replay_ifetched = false;
                    false
                }
            }
            TraceOp::Store { addr, value } => {
                let line = addr.line();
                let word = addr.word_in_line();
                let clock = self.cores[ci].clock;
                match self.tiles[ci].l1d.store(line, word, value, clock, &mut self.slab) {
                    StoreOutcome::Done => {
                        self.counts.l1d_writes += 1;
                        self.cores[ci].l1d_stats.record_hit();
                        self.cores[ci].clock += 1;
                        self.cores[ci].breakdown.compute += 1;
                        self.monitor.on_write(CoreId::new(ci), line, word, value, clock);
                        true
                    }
                    outcome => {
                        if clock > now {
                            self.cores[ci].replay = Some(op);
                            self.schedule(clock, Event::CoreStep(ci));
                            return false;
                        }
                        let upgrade = outcome == StoreOutcome::NeedsUpgrade;
                        self.counts.l1d_tag_probes += 1;
                        let miss = self.cores[ci].miss_class.classify(line, upgrade);
                        self.cores[ci].l1d_stats.record_miss(miss);
                        self.issue_request(
                            ci,
                            Outstanding {
                                line,
                                word,
                                is_store: true,
                                value,
                                issue_time: clock,
                                instr: false,
                            },
                        );
                        self.cores[ci].blocked = Blocked::Data;
                        self.cores[ci].replay_ifetched = false;
                        false
                    }
                }
            }
            TraceOp::Barrier { id } => {
                self.sync_op(ci, op, now, |s, c, t| s.barrier_arrive(id, c, t))
            }
            TraceOp::Acquire { id } => self.sync_op(ci, op, now, |s, c, t| s.acquire(id, c, t)),
            TraceOp::Release { id } => self.sync_op(ci, op, now, |s, c, t| s.release(id, c, t)),
        };
        if done {
            self.cores[ci].replay_ifetched = false;
        }
        done
    }

    fn sync_op(
        &mut self,
        ci: usize,
        op: TraceOp,
        now: Cycle,
        f: impl FnOnce(&mut SyncManager, CoreId, Cycle) -> SyncOutcome,
    ) -> bool {
        let clock = self.cores[ci].clock;
        if clock > now {
            // Re-run the op at the core's local time so sync interleavings
            // are event-ordered. The op has no side effects yet.
            self.cores[ci].replay = Some(op);
            self.schedule(clock, Event::CoreStep(ci));
            return false;
        }
        match f(&mut self.sync, CoreId::new(ci), clock) {
            SyncOutcome::Proceed => true,
            SyncOutcome::Blocked => {
                self.cores[ci].blocked = Blocked::Sync;
                false
            }
            SyncOutcome::Release(list) => {
                let mut self_proceeds = true;
                for (c, t) in list {
                    let idx = c.index();
                    if idx == ci {
                        let core = &mut self.cores[ci];
                        core.breakdown.synchronization += t.saturating_sub(core.clock);
                        core.clock = t;
                        self_proceeds = true;
                    } else {
                        let core = &mut self.cores[idx];
                        core.breakdown.synchronization += t.saturating_sub(core.clock);
                        core.clock = t;
                        core.blocked = Blocked::No;
                        self.schedule(t, Event::CoreStep(idx));
                    }
                }
                self_proceeds
            }
        }
    }

    fn issue_request(&mut self, ci: usize, req: Outstanding) {
        let Outstanding { line, word, is_store, value, issue_time: clock, instr } = req;
        let src = CoreId::new(ci);
        let home = self.home_of(line, src);
        let hints = if instr {
            self.tiles[ci].l1i.hints_for(line)
        } else {
            self.tiles[ci].l1d.hints_for(line)
        };
        let payload = if is_store {
            Payload::WriteReq { hints, word, value }
        } else {
            Payload::ReadReq { hints, word, instr }
        };
        self.cores[ci].outstanding = Some(req);
        self.send(src, home, line, payload, clock);
    }

    /// Handles a home reply: charges the latency breakdown, applies the
    /// grant to the L1 (or records the remote access), and resumes the
    /// core's trace.
    pub(crate) fn core_resume(&mut self, msg: Message, now: Cycle) {
        let ci = msg.dst.index();
        let out = self.cores[ci].outstanding.take().expect("resume without outstanding miss");
        debug_assert_eq!(out.line, msg.line);
        let ann = match &msg.payload {
            Payload::GrantLine { ann, .. }
            | Payload::GrantUpgrade { ann }
            | Payload::WordReadReply { ann, .. }
            | Payload::WordWriteAck { ann } => *ann,
            _ => unreachable!("not a reply"),
        };
        let total = now - out.issue_time;
        let overlap = ann.waiting + ann.sharers + ann.offchip;
        {
            let b = &mut self.cores[ci].breakdown;
            b.l1_to_l2 += total.saturating_sub(overlap);
            b.l2_waiting += ann.waiting;
            b.l2_to_sharers += ann.sharers;
            b.l2_to_offchip += ann.offchip;
        }
        self.cores[ci].clock = now;
        let core_id = CoreId::new(ci);

        match msg.payload {
            Payload::GrantLine { mesi, data, .. } => {
                // The grant's handle transfers into the private L1 — the
                // resident copy is the granted alias. A store-miss grant
                // writes first, through copy-on-write, since the handle
                // usually aliases the home's resident slot.
                let data = if out.is_store {
                    debug_assert_eq!(mesi, MesiState::Modified);
                    let d = self.slab.make_mut(data);
                    self.slab.get_mut(d).set_word(out.word, out.value);
                    self.monitor.on_write(core_id, out.line, out.word, out.value, now);
                    d
                } else {
                    let v = self.slab.get(data).word(out.word);
                    self.monitor.on_read(core_id, out.line, out.word, v, now);
                    data
                };
                let cache =
                    if out.instr { &mut self.tiles[ci].l1i } else { &mut self.tiles[ci].l1d };
                let victim = cache.install(out.line, mesi, data, now);
                if out.instr {
                    self.counts.l1i_fills += 1;
                } else {
                    self.counts.l1d_fills += 1;
                }
                if let Some(v) = victim {
                    self.cores[ci].miss_class.record_removal(v.line, RemovalReason::Eviction);
                    let vhome = self.home_of(v.line, core_id);
                    // A dirty victim's handle rides the notify; a clean
                    // one is released (its notify is header-only).
                    let data = if v.dirty {
                        Some(v.data)
                    } else {
                        self.slab.release(v.data);
                        None
                    };
                    self.send(
                        core_id,
                        vhome,
                        v.line,
                        Payload::EvictNotify { util: v.utilization, data },
                        now,
                    );
                }
            }
            Payload::GrantUpgrade { .. } => {
                self.tiles[ci].l1d.apply_upgrade(
                    out.line,
                    out.word,
                    out.value,
                    now,
                    &mut self.slab,
                );
                self.counts.l1d_writes += 1;
                self.monitor.on_write(core_id, out.line, out.word, out.value, now);
            }
            Payload::WordReadReply { .. } => {
                self.cores[ci].miss_class.record_remote_access(out.line);
            }
            Payload::WordWriteAck { .. } => {
                self.cores[ci].miss_class.record_remote_access(out.line);
            }
            _ => unreachable!(),
        }
        self.cores[ci].blocked = Blocked::No;
        self.step_core(ci, now);
    }
}
