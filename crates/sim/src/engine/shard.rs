//! The sharded event plane: tile partitioning, per-shard calendar
//! queues, cross-shard FIFOs drained at cycle-window barriers, and the
//! per-shard trace-prefetch workers.
//!
//! `--shards N` partitions the tiles into `N` contiguous blocks. Each
//! shard runs its own [`CalendarQueue`] for same-shard events; an event
//! scheduled from one shard onto a tile of another crosses through a
//! bounded FIFO that is drained only at window barriers. The
//! conservative lookahead is the minimum cross-tile network latency
//! (one mesh hop): a message injected at cycle `t` can never arrive at
//! another tile before `t + lookahead`, so within a window
//! `[start, start + lookahead)` no shard can receive a *network* event
//! it cannot already see. The one exception in this engine is
//! synchronization releases, which resume cores on other tiles at the
//! *same* cycle (`SyncManager` wakes waiters with zero network
//! latency); those take a direct sub-window path into the destination
//! shard's inbound heap and are counted in [`ShardStats::direct`].
//!
//! ## Byte-exactness contract
//!
//! The plane replays the **exact global `(cycle, push sequence)` order**
//! of the serial engine: every push is stamped with a global sequence
//! number, and `pop` takes the minimum `(cycle, seq)` across all shard
//! heads, draining the FIFOs before any pop may cross the current
//! window horizon. Several timing models in this engine are
//! order-sensitive global state — mesh link contention
//! (`link_next_free` advances in injection order), `DataSlab`
//! copy-on-write accounting (a `make_mut` decision reads the live
//! refcount), the coherence monitor's shadow memory, and the zero-cycle
//! sync releases above — so a free-running shard execution cannot be
//! byte-identical to the serial oracle. The plane therefore keeps event
//! *execution* sequenced on the coordinator thread and puts real
//! parallelism where it is provably order-insensitive: trace decode.
//! Each shard gets a prefetch worker that owns its cores'
//! [`TraceSource`] streams (pure, `Send`, no simulator state) and
//! decodes them into bounded per-core feeds ahead of the coordinator.
//! DESIGN.md §7 documents the model and the follow-up path to
//! order-insensitive timing state.
//!
//! ## Failure containment
//!
//! A panic on either side of a feed cannot hang the other. Worker
//! bodies run under `catch_unwind`: a panicking trace source poisons
//! the feed (storing its message) and wakes the coordinator, whose next
//! pull re-raises it as a panic naming the shard. A panicking
//! coordinator (e.g. the deadlock assert in `Simulator::run`) drops a
//! [`ShutdownGuard`] during unwind, which sets the shutdown flag and
//! wakes every parked worker so the thread scope joins cleanly and the
//! original panic — with its job label, under `run_jobs` — propagates.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use lacc_model::Cycle;

use crate::trace::{TraceOp, TraceSource};

use super::queue::CalendarQueue;
use super::Event;

/// Ops buffered ahead per core by a prefetch worker.
const FEED_CAPACITY: usize = 256;
/// Ops decoded per lock acquisition (decode happens outside the lock).
const FEED_BATCH: usize = 64;
/// Queue length at which a consumer pop wakes the prefetch worker: the
/// largest length with room for a whole batch. Notifications are
/// edge-triggered on crossing this mark — a notify per pop is a futex
/// syscall per op, which crushes single-CPU hosts — and pops shrink the
/// queue one op at a time, so the crossing cannot be skipped.
const REFILL_MARK: usize = FEED_CAPACITY - FEED_BATCH;

/// Tile → shard map: `shards` contiguous, balanced blocks. Contiguous
/// blocks keep a tile's nearest mesh neighbours (and therefore most of
/// its traffic) in-shard.
pub(crate) fn partition(num_tiles: usize, shards: usize) -> Vec<u16> {
    debug_assert!(shards >= 1 && shards <= num_tiles);
    (0..num_tiles).map(|t| (t * shards / num_tiles) as u16).collect()
}

/// A stamped event: the global `(cycle, seq)` key plus its payload.
/// Ordering ignores the payload (events are not comparable).
#[derive(Debug)]
struct Stamped {
    at: Cycle,
    seq: u64,
    ev: Event,
}

impl PartialEq for Stamped {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Stamped {}
impl PartialOrd for Stamped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Stamped {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A sequence-stamped entry in a shard's local calendar queue.
#[derive(Debug)]
struct SeqEv {
    seq: u64,
    ev: Event,
}

/// Counters describing how the plane moved events (not part of
/// [`SimReport`](crate::SimReport) — the report must stay byte-identical
/// to the serial oracle at any shard count).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct ShardStats {
    /// Cross-shard events routed through a window FIFO.
    pub crossings: u64,
    /// Window barriers at which the FIFOs drained.
    pub windows: u64,
    /// Sub-window cross-shard deliveries (the sync-release valve).
    pub direct: u64,
}

/// The sharded event plane. Drop-in replacement for the engine's single
/// `CalendarQueue<Event>`: `push`/`pop` reproduce the serial
/// `(cycle, push order)` total order exactly.
#[derive(Debug)]
pub(crate) struct ShardPlane {
    /// Tile → shard.
    shard_of: Vec<u16>,
    nshards: usize,
    /// Per-shard calendar queue for in-shard events.
    locals: Vec<CalendarQueue<SeqEv>>,
    /// Per-shard inbound heap: drained FIFO batches, sub-window direct
    /// deliveries, and in-shard events landing behind the local queue's
    /// cursor (a shard woken by an inbound event schedules follow-ups
    /// earlier than its parked calendar head).
    inbound: Vec<BinaryHeap<Reverse<Stamped>>>,
    /// Cross-shard FIFOs, indexed `src * nshards + dst`.
    fifos: Vec<VecDeque<Stamped>>,
    fifo_len: usize,
    /// Global push counter — the serial tie-break, replayed exactly.
    seq: u64,
    /// Conservative lookahead: minimum cross-tile network latency.
    lookahead: Cycle,
    /// Events before this cycle are all visible (no FIFO can hide one).
    window_end: Cycle,
    /// Shard of the event currently being executed (`None` during
    /// setup, where pushes are in-shard by definition).
    cur_shard: Option<usize>,
    /// Scratch buffer for the head race (one flag per shard).
    race_resolved: Vec<bool>,
    /// Self-check oracle (`LACC_SHARD_SHADOW=1`): mirrors every push in
    /// a reference heap and asserts each pop is the exact global
    /// `(cycle, seq)` minimum — the plane's contract, checked in-run
    /// rather than post-hoc through report bytes. Off (None) it costs
    /// one branch per push/pop.
    shadow: Option<BinaryHeap<Reverse<(Cycle, u64)>>>,
    pub stats: ShardStats,
}

impl ShardPlane {
    pub fn new(num_tiles: usize, shards: usize, lookahead: Cycle) -> Self {
        let shards = shards.clamp(1, num_tiles);
        ShardPlane {
            shard_of: partition(num_tiles, shards),
            nshards: shards,
            locals: (0..shards).map(|_| CalendarQueue::new()).collect(),
            inbound: (0..shards).map(|_| BinaryHeap::new()).collect(),
            fifos: (0..shards * shards).map(|_| VecDeque::new()).collect(),
            fifo_len: 0,
            seq: 0,
            lookahead: lookahead.max(1),
            window_end: 0,
            cur_shard: None,
            race_resolved: vec![false; shards],
            shadow: (std::env::var("LACC_SHARD_SHADOW").as_deref() == Ok("1"))
                .then(BinaryHeap::new),
            stats: ShardStats::default(),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.nshards
    }

    pub fn shard_of_tile(&self, tile: usize) -> usize {
        usize::from(self.shard_of[tile])
    }

    pub fn push(&mut self, at: Cycle, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        if let Some(sh) = self.shadow.as_mut() {
            sh.push(Reverse((at, seq)));
        }
        let dst = self.shard_of_tile(ev.owner_tile());
        match self.cur_shard {
            Some(src) if src != dst => {
                if at < self.window_end {
                    // A cross-shard delivery inside the current window:
                    // only zero-latency sync releases get here (network
                    // hops are >= lookahead by construction). It must
                    // stay visible — hiding it in a FIFO would let the
                    // destination shard run past it.
                    self.stats.direct += 1;
                    self.inbound[dst].push(Reverse(Stamped { at, seq, ev }));
                } else {
                    self.stats.crossings += 1;
                    self.fifos[src * self.nshards + dst].push_back(Stamped { at, seq, ev });
                    self.fifo_len += 1;
                }
            }
            _ => {
                // In-shard (or setup). The local calendar's cursor may
                // have been peeked ahead to its parked head; an event
                // landing behind it goes to the inbound heap, which
                // orders by the same global (cycle, seq) key.
                if at < self.locals[dst].now() {
                    self.inbound[dst].push(Reverse(Stamped { at, seq, ev }));
                } else {
                    self.locals[dst].push(at, SeqEv { seq, ev });
                }
            }
        }
    }

    /// The earliest visible `(cycle, seq)` key and where it lives.
    ///
    /// Inbound heads are exact and free to read. The local calendars are
    /// *raced*: repeatedly bound-peek the queue with the lowest cursor,
    /// limited by the next-lowest cursor and the best candidate so far.
    /// The bound is what keeps every cursor at or below the global
    /// now + 1 — an unbounded peek would park a cursor at its own
    /// (possibly far-future) head, diverting every follow-up event
    /// scheduled behind it into the inbound heap and turning the cheap
    /// calendar path into heap churn.
    fn head(&mut self) -> Option<(Cycle, u64, usize, bool)> {
        let mut best: Option<(Cycle, u64, usize, bool)> = None;
        for s in 0..self.nshards {
            if let Some(Reverse(st)) = self.inbound[s].peek() {
                if best.map_or(true, |b| (st.at, st.seq) < (b.0, b.1)) {
                    best = Some((st.at, st.seq, s, true));
                }
            }
        }
        self.race_resolved.fill(false);
        loop {
            // The unresolved local with the lowest cursor still able to
            // beat `best` (ties included: an equal-cycle local head can
            // win on seq), plus the runner-up cursor as its bound.
            let mut winner: Option<usize> = None;
            let mut low = Cycle::MAX;
            let mut second = Cycle::MAX;
            for s in 0..self.nshards {
                if self.race_resolved[s] || self.locals[s].is_empty() {
                    continue;
                }
                let c = self.locals[s].now();
                if best.is_some_and(|b| c > b.0) {
                    continue;
                }
                if c < low {
                    second = low;
                    low = c;
                    winner = Some(s);
                } else if c < second {
                    second = c;
                }
            }
            let Some(s) = winner else { return best };
            let limit = second.min(best.map_or(Cycle::MAX, |b| b.0));
            if let Some((at, se)) = self.locals[s].peek_until(limit) {
                if best.map_or(true, |b| (at, se.seq) < (b.0, b.1)) {
                    best = Some((at, se.seq, s, false));
                }
                self.race_resolved[s] = true;
            }
            // A `None` peek parked the cursor at `limit + 1`; the next
            // iteration re-ranks, and the loop terminates because every
            // step either resolves a shard or strictly raises a cursor
            // toward the candidate cycle.
        }
    }

    /// Window barrier: every FIFO drains into its destination shard's
    /// inbound heap.
    fn drain_fifos(&mut self) {
        self.stats.windows += 1;
        for idx in 0..self.fifos.len() {
            let dst = idx % self.nshards;
            while let Some(st) = self.fifos[idx].pop_front() {
                self.fifo_len -= 1;
                // Prefer the destination calendar (O(1)) over the
                // inbound heap: safe whenever the within-cycle seq
                // order is preserved by appending. A same-cycle tail
                // with a later seq (an in-shard push that slipped in
                // while this event sat in the FIFO, or another FIFO's
                // earlier drain) falls back to the heap, whose explicit
                // (cycle, seq) order always merges correctly.
                let Stamped { at, seq, ev } = st;
                match self.locals[dst].push_if_ordered(at, SeqEv { seq, ev }, |tail| tail.seq < seq)
                {
                    Ok(()) => {}
                    Err(se) => {
                        self.inbound[dst].push(Reverse(Stamped { at, seq: se.seq, ev: se.ev }));
                    }
                }
            }
        }
    }

    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        loop {
            match self.head() {
                None if self.fifo_len == 0 => return None,
                None => {
                    self.drain_fifos();
                }
                Some((at, _, _, _)) if at >= self.window_end && self.fifo_len > 0 => {
                    // A FIFO may hide an event in [window_end, at):
                    // barrier before crossing the horizon.
                    self.drain_fifos();
                }
                Some((at, seq, s, from_inbound)) => {
                    if at >= self.window_end {
                        // Every FIFO is empty, so the head is exact:
                        // open the next window at the earliest pending
                        // cycle and pop that same head without a second
                        // race. Invariant: window_end <= now + lookahead
                        // at every subsequent pop inside the window, so
                        // any network send still lands at or past
                        // window_end and is FIFO-routable.
                        self.window_end = at + self.lookahead;
                    }
                    self.cur_shard = Some(s);
                    let ev = if from_inbound {
                        let Reverse(st) = self.inbound[s].pop().expect("cached head");
                        debug_assert_eq!(st.at, at);
                        st.ev
                    } else {
                        let (c, se) = self.locals[s].pop().expect("cached head");
                        debug_assert_eq!(c, at);
                        se.ev
                    };
                    if let Some(sh) = self.shadow.as_mut() {
                        let Reverse(want) = sh.pop().expect("shadow tracks pushes");
                        assert_eq!(
                            (at, seq),
                            want,
                            "plane popped out of order (shard {s}, inbound {from_inbound})"
                        );
                    }
                    return Some((at, ev));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Trace-prefetch feeds
// ---------------------------------------------------------------------------

/// Shared state between one shard's prefetch worker (producer) and the
/// coordinator (consumer): one bounded op queue per core of the shard.
pub(crate) struct FeedShared {
    state: Mutex<FeedState>,
    /// Coordinator parks here when a queue is empty.
    can_consume: Condvar,
    /// Worker parks here when every queue is full (or exhausted).
    can_fill: Condvar,
}

struct FeedState {
    queues: Vec<VecDeque<TraceOp>>,
    /// Source exhausted; the queue drains to its true end.
    done: Vec<bool>,
    /// The worker panicked; carries its panic message.
    poisoned: Option<String>,
    /// The coordinator is finished (or unwinding): workers must exit.
    shutdown: bool,
}

/// Locks a feed mutex, recovering from poisoning: the `poisoned` /
/// `shutdown` flags carry the failure semantics, so a lock poisoned by
/// a panicking peer must not cascade (a second panic during unwind
/// would abort the process).
fn lock_feed(shared: &FeedShared) -> MutexGuard<'_, FeedState> {
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FeedShared {
    pub fn new(cores: usize) -> Arc<Self> {
        Arc::new(FeedShared {
            state: Mutex::new(FeedState {
                queues: (0..cores).map(|_| VecDeque::with_capacity(FEED_CAPACITY)).collect(),
                done: vec![false; cores],
                poisoned: None,
                shutdown: false,
            }),
            can_consume: Condvar::new(),
            can_fill: Condvar::new(),
        })
    }
}

/// The coordinator's end of one core's feed. Pulls ops from the shared
/// queue a chunk at a time into a handle-local buffer, so the hot path
/// (one op per `CoreStep`) touches no lock at all — order is unaffected
/// since every op in the slot's queue is destined for this core anyway.
pub(crate) struct FeedHandle {
    shared: Arc<FeedShared>,
    /// Locally buffered ops, consumed before the lock is taken again.
    buffered: VecDeque<TraceOp>,
    /// Index of this core within its shard's feed.
    slot: usize,
    /// Shard number, for poisoning messages.
    shard: usize,
}

impl FeedHandle {
    pub fn new(shared: Arc<FeedShared>, slot: usize, shard: usize) -> Self {
        FeedHandle { shared, buffered: VecDeque::with_capacity(FEED_BATCH), slot, shard }
    }

    /// Blocking pull of the core's next op; `None` at end of trace.
    ///
    /// # Panics
    ///
    /// Panics (naming the shard) if the prefetch worker poisoned the
    /// feed — the worker's own panic message is included, so under
    /// `run_jobs` the failure still surfaces labelled with its job.
    pub fn next_op(&mut self) -> Option<TraceOp> {
        if let Some(op) = self.buffered.pop_front() {
            return Some(op);
        }
        let mut st = lock_feed(&self.shared);
        loop {
            if !st.queues[self.slot].is_empty() {
                let before = st.queues[self.slot].len();
                let take = before.min(FEED_BATCH);
                self.buffered.extend(st.queues[self.slot].drain(..take));
                // Edge-triggered: wake the worker only when this pull
                // moves the queue from above the refill mark to at or
                // below it (chunks can jump the mark, so compare both
                // sides). The worker parks only when no live queue has
                // batch room, and both sides test under the lock, so the
                // wake-up cannot be lost.
                let wake = before > REFILL_MARK
                    && st.queues[self.slot].len() <= REFILL_MARK
                    && !st.done[self.slot];
                drop(st);
                if wake {
                    self.shared.can_fill.notify_one();
                }
                return self.buffered.pop_front();
            }
            if st.done[self.slot] {
                return None;
            }
            if let Some(msg) = &st.poisoned {
                panic!("trace prefetch worker for shard {} poisoned its feed: {msg}", self.shard);
            }
            st =
                self.shared.can_consume.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl std::fmt::Debug for FeedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedHandle").field("slot", &self.slot).field("shard", &self.shard).finish()
    }
}

/// Unwind guard the coordinator holds for each feed while shard workers
/// run: dropping it — normally or during a panic — tells the worker to
/// exit and wakes it, so the thread scope always joins.
pub(crate) struct ShutdownGuard {
    shared: Arc<FeedShared>,
}

impl ShutdownGuard {
    pub fn new(shared: Arc<FeedShared>) -> Self {
        ShutdownGuard { shared }
    }
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        let mut st = lock_feed(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.can_fill.notify_all();
        self.shared.can_consume.notify_all();
    }
}

/// Body of one shard's prefetch worker: decode the shard's trace
/// sources into the feed until exhausted or shut down. Never panics out
/// (a scoped-thread panic would re-raise at scope exit and double-panic
/// an already-unwinding coordinator): trace panics poison the feed.
pub(crate) fn run_feed_worker(shared: &FeedShared, sources: Vec<Box<dyn TraceSource>>) {
    let mut sources: Vec<Option<Box<dyn TraceSource>>> = sources.into_iter().map(Some).collect();
    let result = catch_unwind(AssertUnwindSafe(|| feed_loop(shared, &mut sources)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = lock_feed(shared);
        st.poisoned = Some(msg);
        drop(st);
        shared.can_consume.notify_all();
    }
}

fn feed_loop(shared: &FeedShared, sources: &mut [Option<Box<dyn TraceSource>>]) {
    let mut batch: Vec<TraceOp> = Vec::with_capacity(FEED_BATCH);
    loop {
        // Pick a core with queue space under the lock.
        let slot = {
            let mut st = lock_feed(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if sources.iter().all(Option::is_none) {
                    return; // every source decoded to its end
                }
                let pick = (0..sources.len())
                    .find(|&i| sources[i].is_some() && st.queues[i].len() <= REFILL_MARK);
                match pick {
                    Some(i) => break i,
                    // No live queue has room for a whole batch: the
                    // coordinator is behind. Park; a pop crossing the
                    // refill mark (or shutdown) wakes us.
                    None => {
                        st = shared
                            .can_fill
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        };
        // Decode outside the lock — this is the parallel work. One
        // batched pull per wakeup: sources that can (the LTF cursors)
        // decode the whole batch without per-op dispatch, and a short
        // batch is the `next_ops` contract for end-of-stream.
        let src = sources[slot].as_mut().expect("picked a live source");
        let exhausted = src.next_ops(&mut batch, FEED_BATCH) < FEED_BATCH;
        let mut st = lock_feed(shared);
        // The coordinator is single-threaded and parks only on an empty
        // queue, so a notify is needed only when this append makes an
        // empty queue non-empty — or flips the done flag, which a
        // consumer parked on an exhausted-but-undrained source is
        // waiting to observe.
        let wake = st.queues[slot].is_empty() || exhausted;
        st.queues[slot].extend(batch.drain(..));
        if exhausted {
            st.done[slot] = true;
            sources[slot] = None;
        }
        drop(st);
        if wake {
            shared.can_consume.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use lacc_model::LineAddr;

    fn core_step(c: usize) -> Event {
        Event::CoreStep(c)
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        assert_eq!(partition(8, 2), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(partition(6, 4), vec![0, 0, 1, 2, 2, 3]);
        assert_eq!(partition(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(partition(5, 1), vec![0, 0, 0, 0, 0]);
        // Every shard owns at least one tile and blocks never interleave.
        for (tiles, shards) in [(64, 3), (64, 7), (1024, 16), (9, 8)] {
            let map = partition(tiles, shards);
            assert!(map.windows(2).all(|w| w[0] <= w[1]), "contiguous blocks");
            assert_eq!(usize::from(*map.last().unwrap()), shards - 1);
            for s in 0..shards {
                let n = map.iter().filter(|&&x| usize::from(x) == s).count();
                assert!(n >= tiles / shards && n <= tiles.div_ceil(shards), "balanced: {n}");
            }
        }
    }

    /// The plane replays global (cycle, push-order): a scripted exchange
    /// that exercises local queues, FIFO crossings, the window barrier
    /// and the sub-window direct path pops in exactly serial order.
    #[test]
    fn plane_replays_serial_order_across_shards() {
        let mut plane = ShardPlane::new(4, 2, 2); // tiles {0,1} | {2,3}
        let mut serial: CalendarQueue<Event> = CalendarQueue::new();
        // Setup: one CoreStep per tile at 0 (as with_options does).
        for c in 0..4 {
            plane.push(0, core_step(c));
            serial.push(0, core_step(c));
        }
        // Drive both, mirroring each pop with pushes derived from it.
        let mut script: Vec<(Cycle, Vec<(Cycle, usize)>)> = vec![
            (0, vec![(2, 3)]), // tile 0 at 0 → cross to tile 3 at +lookahead
            (0, vec![(1, 1)]), // tile 1 at 0 → local at 1
            (0, vec![(0, 2)]), // tile 2 at 0 → local, same cycle
            (0, vec![]),       // tile 3 at 0
            (0, vec![(5, 0)]), // tile 2 again at 0 → crosses back to tile 0
            (1, vec![(1, 2)]), // tile 1 at 1 → cross at SAME cycle (sync valve)
            (1, vec![]),       // the direct delivery at tile 2
            (2, vec![]),       // the FIFO crossing arrives at tile 3
            (5, vec![]),       // tile 0's future local event
        ];
        script.reverse();
        loop {
            let (a, b) = (plane.pop(), serial.pop());
            match (a, b) {
                (None, None) => break,
                (Some((pa, ea)), Some((pb, eb))) => {
                    assert_eq!(pa, pb, "cycle diverged");
                    assert_eq!(format!("{ea:?}"), format!("{eb:?}"), "event diverged");
                    let (want_cycle, pushes) = script.pop().expect("script covers every pop");
                    assert_eq!(pa, want_cycle, "script is in sync");
                    for (at, tile) in pushes {
                        plane.push(at, core_step(tile));
                        serial.push(at, core_step(tile));
                    }
                }
                (a, b) => panic!("planes diverged: sharded={a:?} serial={b:?}"),
            }
        }
        assert!(plane.stats.crossings >= 1, "the script crossed shards via FIFO");
        assert!(plane.stats.direct >= 1, "the script used the sub-window valve");
        assert!(plane.stats.windows >= 1, "FIFO crossings force a barrier");
    }

    /// A feed worker decodes its sources to the end; the consumer sees
    /// every op in order, then `None`.
    #[test]
    fn feed_delivers_ops_in_order_then_ends() {
        let ops: Vec<TraceOp> = (0..1000u64)
            .map(|i| TraceOp::Store { addr: lacc_model::Addr::new(i * 8), value: i })
            .collect();
        let shared = FeedShared::new(2);
        let sources: Vec<Box<dyn TraceSource>> = vec![
            Box::new(VecTrace::new(ops.clone())),
            Box::new(VecTrace::new(vec![TraceOp::Compute(3)])),
        ];
        std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || run_feed_worker(&worker_shared, sources));
            let mut h0 = FeedHandle::new(shared.clone(), 0, 0);
            let mut h1 = FeedHandle::new(shared.clone(), 1, 0);
            assert_eq!(h1.next_op(), Some(TraceOp::Compute(3)));
            assert_eq!(h1.next_op(), None);
            for want in &ops {
                assert_eq!(h0.next_op().as_ref(), Some(want));
            }
            assert_eq!(h0.next_op(), None);
            drop(guard);
        });
    }

    struct PanicAfter(u32);
    impl TraceSource for PanicAfter {
        fn next_op(&mut self) -> Option<TraceOp> {
            assert!(self.0 > 0, "trace source exploded");
            self.0 -= 1;
            Some(TraceOp::Compute(1))
        }
    }

    /// A panicking source poisons the feed instead of hanging the
    /// consumer (or double-panicking the scope): the consumer's next
    /// pull re-raises with the shard and the original message.
    #[test]
    fn poisoned_feed_raises_at_the_consumer() {
        let shared = FeedShared::new(1);
        let caught = std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || {
                run_feed_worker(&worker_shared, vec![Box::new(PanicAfter(3))]);
            });
            let mut h = FeedHandle::new(shared.clone(), 0, 7);
            let caught = catch_unwind(AssertUnwindSafe(|| while h.next_op().is_some() {}))
                .expect_err("poisoned feed must raise");
            drop(guard);
            caught
        });
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard 7"), "names the shard: {msg}");
        assert!(msg.contains("trace source exploded"), "carries the cause: {msg}");
    }

    /// Dropping the guard mid-stream releases a worker parked on full
    /// queues — the scope join below would hang forever otherwise.
    #[test]
    fn shutdown_guard_releases_a_parked_worker() {
        let endless = (0..100_000u64).map(|_| TraceOp::Compute(1)).collect::<Vec<_>>();
        let shared = FeedShared::new(1);
        std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || {
                run_feed_worker(&worker_shared, vec![Box::new(VecTrace::new(endless))])
            });
            let mut h = FeedHandle::new(shared.clone(), 0, 0);
            for _ in 0..10 {
                assert!(h.next_op().is_some());
            }
            drop(guard); // coordinator "unwinds" with the trace unfinished
        });
        // Reaching here is the assertion: the scope joined.
    }

    #[test]
    fn stamped_orders_by_cycle_then_seq() {
        let mk = |at, seq| Stamped {
            at,
            seq,
            ev: Event::HomeLookup { tile: 0, line: LineAddr::new(0) },
        };
        assert!(mk(3, 9) < mk(4, 0));
        assert!(mk(3, 1) < mk(3, 2));
    }
}
