//! The sharded event plane: tile partitioning, per-shard calendar
//! queues, window-barrier commit, and the per-shard trace-prefetch and
//! harvest workers.
//!
//! `--shards N` partitions the tiles into `N` contiguous blocks. Each
//! shard owns a [`CalendarQueue`] holding the events destined for its
//! tiles. Commit proceeds in **windows**: the plane finds the earliest
//! queued cycle `m` (each queue's cursor is parked at its own head, so
//! this is a plain minimum over the heads and the pending heap), opens
//! the window `[m, m + lookahead)`, *harvests* every event below the
//! window end out of the shard queues whose head falls inside it in one
//! batch ([`CalendarQueue::pop_until`]), merges the batch by the global
//! `(cycle, push seq)` key, and then serves the whole window without
//! touching the shard queues again. Events pushed *during* the window
//! (always at or after the committing cycle) route by destination:
//! below the window end they join the coordinator's `pending` heap and
//! are merged into the live window; at or beyond it they normally land
//! in their destination shard's queue — unless that queue's cursor is
//! parked beyond them (its head is far in the future), in which case
//! the straggler also rides the pending heap. The conservative
//! lookahead is the minimum cross-tile network latency
//! ([`MeshNetwork::min_cross_tile_latency`]), so in-window pushes below
//! the window end are rare (zero-latency sync releases and same-tile
//! follow-ups); everything else takes the cheap calendar path.
//! Correctness does **not** depend on the lookahead value — any event
//! below the window end is by construction in `run` or `pending` when
//! served — so the window size is purely a batching knob
//! (`LACC_SHARD_WINDOW` overrides it for exactly that experiment).
//!
//! [`MeshNetwork::min_cross_tile_latency`]:
//! lacc_net::MeshNetwork::min_cross_tile_latency
//!
//! ## Byte-exactness contract
//!
//! The plane replays the **exact global `(cycle, push sequence)` order**
//! of the serial engine: every push is stamped with a global sequence
//! number and every pop returns the minimum `(cycle, seq)` key still
//! queued. Several timing models in this engine are order-sensitive
//! global state — mesh link contention (`link_next_free` advances in
//! injection order), `DataSlab` copy-on-write accounting (a `make_mut`
//! decision reads the live refcount), the coherence monitor's shadow
//! memory, and zero-cycle sync releases — so event *execution* stays
//! sequenced on the coordinator thread. What the window protocol
//! decentralizes is everything around it: event *storage* is
//! partitioned per shard (as are the slab's payload arenas), the
//! per-pop global coordination of the old replay plane collapses into
//! one head-minimum and one batched harvest per *window*, and with
//! `concurrent` commit the harvest itself runs on per-shard worker
//! threads that own their queues outright — the coordinator only
//! exchanges window-sized batches with them at barriers. Trace decode
//! is prefetched the same way (pure, `Send`, no simulator state) into
//! bounded per-core feeds. DESIGN.md §7 documents the protocol and why
//! the commit loop itself stays sequenced.
//!
//! ## Failure containment
//!
//! A panic on either side of a feed or harvest channel cannot hang the
//! other. Worker bodies run under `catch_unwind`: a panicking trace
//! source or harvest worker poisons its channel (storing the message)
//! and wakes the coordinator, whose next pull re-raises it as a panic
//! naming the shard. A panicking coordinator (e.g. the deadlock assert
//! in `Simulator::run`) drops its [`ShutdownGuard`]s /
//! [`CrewShutdownGuard`]s during unwind, which set the shutdown flags
//! and wake every parked worker so the thread scope joins cleanly and
//! the original panic — with its job label, under `run_jobs` —
//! propagates.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use lacc_model::Cycle;

use crate::trace::{TraceOp, TraceSource};

use super::queue::{CalendarQueue, WINDOW};
use super::Event;

/// Ops buffered ahead per core by a prefetch worker.
const FEED_CAPACITY: usize = 256;
/// Ops decoded per lock acquisition (decode happens outside the lock).
const FEED_BATCH: usize = 64;
/// Queue length at which a consumer pop wakes the prefetch worker: the
/// largest length with room for a whole batch. Notifications are
/// edge-triggered on crossing this mark — a notify per pop is a futex
/// syscall per op, which crushes single-CPU hosts — and pops shrink the
/// queue one op at a time, so the crossing cannot be skipped.
const REFILL_MARK: usize = FEED_CAPACITY - FEED_BATCH;

/// How far past the window end a harvest's head-peek looks before
/// reporting the head unknown, and the initial span of a head probe.
/// One wheel width: almost every real head is within it, and an
/// unknown head only costs a wider (doubling) probe at the next
/// window open.
const PROBE_SPAN: Cycle = WINDOW as Cycle;

/// Tile → shard map: `shards` contiguous, balanced blocks. Contiguous
/// blocks keep a tile's nearest mesh neighbours (and therefore most of
/// its traffic) in-shard.
pub(crate) fn partition(num_tiles: usize, shards: usize) -> Vec<u16> {
    debug_assert!(shards >= 1 && shards <= num_tiles);
    (0..num_tiles).map(|t| (t * shards / num_tiles) as u16).collect()
}

/// A stamped event: the global `(cycle, seq)` key plus its payload.
/// Ordering ignores the payload (events are not comparable).
#[derive(Debug)]
struct Stamped {
    at: Cycle,
    seq: u64,
    ev: Event,
}

impl PartialEq for Stamped {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Stamped {}
impl PartialOrd for Stamped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Stamped {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A sequence-stamped entry in a shard's calendar queue.
#[derive(Debug)]
pub(crate) struct SeqEv {
    seq: u64,
    ev: Event,
}

/// Counters describing how the plane moved events (not part of
/// [`SimReport`](crate::SimReport) — the report must stay byte-identical
/// to the serial oracle at any shard count).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub(crate) struct ShardStats {
    /// Commit windows opened.
    pub windows: u64,
    /// Events batch-harvested out of the shard calendars at barriers.
    pub harvested: u64,
    /// Events routed through the coordinator's pending heap (in-window
    /// pushes — sync releases, same-cycle follow-ups — plus straggler
    /// pushes landing behind a parked shard cursor, in either commit
    /// mode).
    pub pending: u64,
    /// Inline-mode full scans (run re-arms): pops *not* served by a
    /// live run's fast path. The ratio against total pops is the
    /// plane's merge-amortization factor.
    pub scans: u64,
}

/// The coordinator's knowledge of one detached (worker-owned) shard
/// queue under concurrent commit.
#[derive(Clone, Copy, Debug, Default)]
struct ShardView {
    /// Exact earliest cycle queued, when known (exactly: the last
    /// reported head that has not been harvested since).
    head: Option<Cycle>,
    /// The queue's parked cursor: no queued event is earlier, and a
    /// push below it must route through `pending` instead.
    parked: Cycle,
    /// Events in the queue (exact: replies report it, outbox transfers
    /// add to it).
    len: usize,
}

/// The sharded event plane. Drop-in replacement for the engine's single
/// `CalendarQueue<Event>`: `push`/`pop` reproduce the serial
/// `(cycle, push order)` total order exactly.
#[derive(Debug)]
pub(crate) struct ShardPlane {
    /// Tile → shard.
    shard_of: Vec<u16>,
    nshards: usize,
    /// Per-shard calendar queue (inline commit; drained into the
    /// harvest crew by [`ShardPlane::detach_workers`] under concurrent
    /// commit).
    locals: Vec<CalendarQueue<SeqEv>>,
    /// Cached `(cycle, seq)` minimum of each local queue (`None` when
    /// empty) — maintained on every push and pop, so the inline serve
    /// loop reads the global minimum from `nshards` words instead of
    /// re-peeking queues. The entry for `run_shard` goes stale while a
    /// run is live (its queue is popped directly) and is re-peeked at
    /// the next scan. Unused once the queues detach to a crew.
    heads: Vec<Option<(Cycle, u64)>>,
    /// Fast-serve run (inline mode): while `run_live`, pops come
    /// straight off `locals[run_shard]` for as long as their key stays
    /// below `run_limit` — the minimum competing `(cycle, seq)` at the
    /// last full scan. A push or pending entry that undercuts the limit
    /// clears the run; the scan path re-ranks and re-arms. This is what
    /// amortizes the cross-shard merge: uncontended stretches cost one
    /// bounded pop and two compares per event instead of a head scan.
    run_shard: usize,
    run_limit: (Cycle, u64),
    run_live: bool,
    /// Whether `heads[run_shard]` is stale (fast-path pops bypass the
    /// cache). The fast path's fall-through refreshes the cache from
    /// the peek it already paid for; the scan re-peeks only when this
    /// is still set (push invalidation, pending undercut).
    run_stale: bool,
    /// The shard that owned the last popped event — the committing
    /// shard's identity, exposed so the engine can point the slab's
    /// home arena without re-deriving owner tile → shard per event.
    last_shard: usize,
    /// The merged current window, sorted by `(cycle, seq)` descending —
    /// the head is popped off the back.
    run: Vec<Stamped>,
    /// In-window events: pushes below the window end while the window
    /// commits, merged with `run` at pop.
    pending: BinaryHeap<Reverse<Stamped>>,
    /// Global push counter — the serial tie-break, replayed exactly.
    seq: u64,
    /// Window width: minimum cross-tile network latency (or the
    /// `LACC_SHARD_WINDOW` override — a batching knob, not a
    /// correctness bound).
    lookahead: Cycle,
    /// Events before this cycle are all in `run` or `pending`.
    window_end: Cycle,
    /// Scratch involvement mask for the concurrent window open (one
    /// flag per shard), latched before any harvest command goes out.
    race_resolved: Vec<bool>,
    /// Whether commit barriers hand harvest work to the crew threads.
    concurrent: bool,
    /// Per-shard harvest channels (empty until
    /// [`ShardPlane::detach_workers`]).
    crew: Vec<Arc<HarvestShared>>,
    /// Coordinator-side buffers of events bound for detached queues,
    /// shipped with the next harvest command.
    outbox: Vec<Vec<(Cycle, SeqEv)>>,
    /// Earliest cycle in each outbox (`Cycle::MAX` when empty).
    outbox_min: Vec<Cycle>,
    /// What the coordinator knows about each detached queue.
    views: Vec<ShardView>,
    /// Self-check oracle (`LACC_SHARD_SHADOW=1`): mirrors every push in
    /// a reference heap and asserts each pop is the exact global
    /// `(cycle, seq)` minimum — the plane's contract, checked in-run
    /// rather than post-hoc through report bytes. Works in both commit
    /// modes (pushes and pops both happen on the coordinator). Off
    /// (None) it costs one branch per push/pop.
    shadow: Option<BinaryHeap<Reverse<(Cycle, u64)>>>,
    pub stats: ShardStats,
}

impl ShardPlane {
    pub fn new(num_tiles: usize, shards: usize, lookahead: Cycle, concurrent: bool) -> Self {
        let shards = shards.clamp(1, num_tiles);
        let lookahead = match std::env::var("LACC_SHARD_WINDOW") {
            Ok(v) => v
                .parse::<Cycle>()
                .ok()
                .filter(|&w| w >= 1)
                .unwrap_or_else(|| panic!("LACC_SHARD_WINDOW must be a positive cycle count")),
            Err(_) => lookahead.max(1),
        };
        ShardPlane {
            shard_of: partition(num_tiles, shards),
            nshards: shards,
            locals: (0..shards).map(|_| CalendarQueue::new()).collect(),
            heads: vec![None; shards],
            run_shard: 0,
            run_limit: (0, 0),
            run_live: false,
            run_stale: false,
            last_shard: 0,
            run: Vec::new(),
            pending: BinaryHeap::new(),
            seq: 0,
            lookahead,
            window_end: 0,
            race_resolved: vec![false; shards],
            concurrent,
            crew: Vec::new(),
            outbox: (0..shards).map(|_| Vec::new()).collect(),
            outbox_min: vec![Cycle::MAX; shards],
            views: vec![ShardView::default(); shards],
            shadow: (std::env::var("LACC_SHARD_SHADOW").as_deref() == Ok("1"))
                .then(BinaryHeap::new),
            stats: ShardStats::default(),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.nshards
    }

    pub fn shard_of_tile(&self, tile: usize) -> usize {
        usize::from(self.shard_of[tile])
    }

    /// The shard that owned the event the last `pop` returned —
    /// `shard_of_tile(ev.owner_tile())` for that event, precomputed on
    /// the serve path so the engine's dispatch doesn't re-derive it.
    pub fn last_shard(&self) -> usize {
        self.last_shard
    }

    /// Whether this plane wants a harvest crew
    /// ([`ShardPlane::detach_workers`] + [`run_harvest_worker`]).
    pub fn wants_crew(&self) -> bool {
        self.concurrent
    }

    /// Moves the shard queues out to their harvest workers and returns
    /// one `(channel, queue)` pair per shard for the caller to spawn.
    /// After this, every barrier harvest goes through the crew.
    pub fn detach_workers(&mut self) -> Vec<(Arc<HarvestShared>, CalendarQueue<SeqEv>)> {
        assert!(self.concurrent && self.crew.is_empty(), "crew detaches once");
        let mut out = Vec::with_capacity(self.nshards);
        for q in std::mem::take(&mut self.locals) {
            let shared = Arc::new(HarvestShared::new());
            self.crew.push(shared.clone());
            self.views.push(ShardView { head: None, parked: q.now(), len: q.len() });
            out.push((shared, q));
        }
        self.views.drain(..self.nshards);
        out
    }

    pub fn push(&mut self, at: Cycle, ev: Event) {
        let seq = self.seq;
        self.seq += 1;
        if let Some(sh) = self.shadow.as_mut() {
            sh.push(Reverse((at, seq)));
        }
        let dst = self.shard_of_tile(ev.owner_tile());
        if self.crew.is_empty() {
            // Inline serve: the queues stay live through the window, so
            // the only push a destination queue cannot take in order is
            // one behind its parked cursor (its head is in the future).
            // The pending heap orders those stragglers explicitly.
            if at < self.locals[dst].now() {
                self.stats.pending += 1;
                self.pending.push(Reverse(Stamped { at, seq, ev }));
            } else {
                // A later push at the head's own cycle has a higher
                // seq, so the cache only moves on strictly lower cycles
                // — and, for the same reason, a push can only undercut
                // a live run's limit with a strictly lower cycle, which
                // lands in this branch (run_limit is bounded by every
                // competing head).
                if self.heads[dst].map_or(true, |(h, _)| at < h) {
                    self.heads[dst] = Some((at, seq));
                    if self.run_live && dst != self.run_shard && at < self.run_limit.0 {
                        self.run_live = false;
                    }
                }
                self.locals[dst].push(at, SeqEv { seq, ev });
            }
        } else if at < self.window_end {
            // An in-window push: the committing window is already
            // harvested out of the worker-owned queues, and the event
            // must be visible to it anyway. Merge it at the coordinator.
            self.stats.pending += 1;
            self.pending.push(Reverse(Stamped { at, seq, ev }));
        } else if at < self.views[dst].parked {
            // The destination queue's cursor was probed past this cycle;
            // pushing would violate its monotonicity. The pending heap
            // orders explicitly, so it absorbs the stragglers.
            self.stats.pending += 1;
            self.pending.push(Reverse(Stamped { at, seq, ev }));
        } else {
            self.outbox[dst].push((at, SeqEv { seq, ev }));
            self.outbox_min[dst] = self.outbox_min[dst].min(at);
            self.views[dst].len += 1;
        }
    }

    pub fn pop(&mut self) -> Option<(Cycle, Event)> {
        if self.concurrent {
            self.pop_batch()
        } else {
            self.pop_inline()
        }
    }

    /// Inline serve: the global `(cycle, seq)` minimum, read directly
    /// off the cached queue heads and the pending heap — no batch is
    /// materialized. Pops come in two gears. While a *run* is live
    /// (armed by the last full scan), the winner shard's events are
    /// served straight off its queue for as long as their key stays
    /// below `run_limit` — one peek-and-pop plus two compares per
    /// event, which is the serial engine's own cost. A push or
    /// pending entry undercutting the limit drops back to the scan,
    /// which re-ranks every source and re-arms. The window machinery
    /// still runs underneath: `window_end` advances in `lookahead`
    /// steps as commit crosses each boundary, and the push path routes
    /// stragglers behind a parked cursor through `pending`.
    fn pop_inline(&mut self) -> Option<(Cycle, Event)> {
        if self.run_live {
            // Stragglers merge through the pending heap and can order
            // before the run's next event; one root peek guards that.
            if let Some(Reverse(p)) = self.pending.peek() {
                if (p.at, p.seq) < self.run_limit {
                    self.run_live = false;
                }
            }
        }
        if self.run_live {
            // Serve the run queue's head while it beats the limit key,
            // in one fused cursor walk. The walk advances the cursor
            // only to the head's own cycle (never past it), so pushes
            // behind the limit still enter the queue in order and the
            // cursor stays bounded by real event cycles.
            let limit = self.run_limit;
            if let Some((at, se)) = self.locals[self.run_shard].pop_if(|c, e| (c, e.seq) < limit) {
                self.run_stale = true;
                self.last_shard = self.run_shard;
                return Some(self.serve(at, se.seq, se.ev, false));
            }
            // Head lost to the limit or the queue is empty. The cursor
            // is parked at the head, so the scan's re-peek (when
            // `run_stale`) is a constant-time lookup.
            self.run_live = false;
        }
        self.pop_inline_scan()
    }

    /// The slow gear of [`ShardPlane::pop_inline`]: re-ranks every
    /// source, serves the global minimum, and arms the next run.
    fn pop_inline_scan(&mut self) -> Option<(Cycle, Event)> {
        self.stats.scans += 1;
        // The run shard's cached head goes stale while a run serves its
        // queue directly; re-peek it before ranking (unless the fast
        // path's fall-through already refreshed it).
        if self.run_stale {
            self.heads[self.run_shard] =
                self.locals[self.run_shard].peek().map(|(c, e)| (c, e.seq));
            self.run_stale = false;
        }
        let mut winner = self.pending.peek().map(|Reverse(st)| (st.at, st.seq));
        let mut from: Option<usize> = None;
        for s in 0..self.nshards {
            if let Some(h) = self.heads[s] {
                if winner.map_or(true, |w| h < w) {
                    winner = Some(h);
                    from = Some(s);
                }
            }
        }
        if winner.is_none() {
            return self.finished();
        }
        if let Some(s) = from {
            // A cursor parked at the cached head's cycle means the head
            // is the front of the cursor's own bucket (far events are
            // always ≥ cursor + WINDOW), so the advance can be skipped.
            let (at, se) = if self.heads[s].expect("ranked winner").0 == self.locals[s].now() {
                self.locals[s].pop_peeked()
            } else {
                self.locals[s].pop().expect("cached head tracks the queue")
            };
            self.run_shard = s;
            self.run_stale = true;
            self.last_shard = s;
            // Arm the next run: everything in `s` strictly below the
            // best competing key can be served without rescanning. The
            // limit only shrinks via pushes at strictly lower cycles
            // (seq counters are monotonic), which the push path and the
            // pending peek above both watch for.
            let mut limit =
                self.pending.peek().map_or((Cycle::MAX, u64::MAX), |Reverse(p)| (p.at, p.seq));
            for (o, h) in self.heads.iter().enumerate() {
                if o != s {
                    if let Some(h) = *h {
                        if h < limit {
                            limit = h;
                        }
                    }
                }
            }
            self.run_limit = limit;
            self.run_live = limit.0 > at;
            Some(self.serve(at, se.seq, se.ev, false))
        } else {
            let Reverse(st) = self.pending.pop().expect("peeked head");
            self.last_shard = self.shard_of_tile(st.ev.owner_tile());
            Some(self.serve(st.at, st.seq, st.ev, true))
        }
    }

    /// Commit bookkeeping shared by both inline gears: window
    /// accounting, stats, and the shadow-order check.
    #[inline]
    fn serve(&mut self, at: Cycle, seq: u64, ev: Event, from_pending: bool) -> (Cycle, Event) {
        if at >= self.window_end {
            // Commit crossed the window boundary: everything below the
            // old horizon is served, open the next window at the head.
            self.window_end = at + self.lookahead;
            self.stats.windows += 1;
        }
        if !from_pending {
            self.stats.harvested += 1;
        }
        if let Some(sh) = self.shadow.as_mut() {
            let Reverse(want) = sh.pop().expect("shadow tracks pushes");
            assert_eq!((at, seq), want, "plane popped out of order (pending {from_pending})");
        }
        (at, ev)
    }

    /// Batched serve (concurrent commit): windows are harvested whole
    /// at barriers into `run` and merged with `pending` per pop.
    fn pop_batch(&mut self) -> Option<(Cycle, Event)> {
        loop {
            let run_head = self.run.last().map(|st| (st.at, st.seq));
            let pend_head = self.pending.peek().map(|Reverse(st)| (st.at, st.seq));
            let (key, from_pending) = match (run_head, pend_head) {
                (Some(r), Some(p)) => {
                    if p < r {
                        (p, true)
                    } else {
                        (r, false)
                    }
                }
                (Some(r), None) => (r, false),
                (None, Some(p)) => (p, true),
                (None, None) => {
                    if self.open_window() {
                        continue;
                    }
                    return self.finished();
                }
            };
            // Run events are below the window end by construction; only
            // a pending head (a push parked behind a shard cursor, in
            // either commit mode) can sit beyond it and must wait for
            // its window.
            if key.0 >= self.window_end {
                debug_assert!(run_head.is_none());
                let opened = self.open_window();
                debug_assert!(opened, "pending head must seed a window");
                continue;
            }
            let st = if from_pending {
                self.pending.pop().expect("peeked head").0
            } else {
                self.run.pop().expect("peeked head")
            };
            if let Some(sh) = self.shadow.as_mut() {
                let Reverse(want) = sh.pop().expect("shadow tracks pushes");
                assert_eq!(
                    (st.at, st.seq),
                    want,
                    "plane popped out of order (pending {from_pending})"
                );
            }
            self.last_shard = self.shard_of_tile(st.ev.owner_tile());
            return Some((st.at, st.ev));
        }
    }

    /// Everything drained: cross-check the shadow oracle (a queued push
    /// the plane lost would strand its shadow entry) and report the end.
    fn finished(&mut self) -> Option<(Cycle, Event)> {
        debug_assert!(self.pending.is_empty() && self.run.is_empty());
        if let Some(sh) = &self.shadow {
            assert!(sh.is_empty(), "plane lost {} event(s) the shadow still tracks", sh.len());
        }
        None
    }

    /// Finds the earliest queued cycle `m`, opens `[m, m + lookahead)`
    /// and harvests it into `run` via the crew. Returns `false` when
    /// nothing is queued anywhere.
    fn open_window(&mut self) -> bool {
        debug_assert!(!self.crew.is_empty(), "batched serve requires a detached crew");
        let harvested = self.open_window_concurrent();
        if harvested {
            self.stats.windows += 1;
        }
        harvested
    }

    /// Concurrent window open: establish the minimum cycle from the
    /// pending heap, the outboxes and the workers' reported heads
    /// (probing unknown queues in deterministic bounded rounds), then
    /// hand each involved worker its harvest — inbox transfer, window
    /// drain, next-head peek — and merge the replies. The commands for
    /// one barrier go out to every worker before any reply is awaited,
    /// so the per-shard drains overlap on real cores.
    fn open_window_concurrent(&mut self) -> bool {
        let mut span = PROBE_SPAN;
        let m = loop {
            let mut cand = self.pending.peek().map(|Reverse(st)| st.at);
            let mut unknown = Cycle::MAX; // lowest cursor among unknown heads
            for s in 0..self.nshards {
                if self.outbox_min[s] != Cycle::MAX {
                    cand = Some(cand.map_or(self.outbox_min[s], |c| c.min(self.outbox_min[s])));
                }
                match self.views[s].head {
                    Some(h) => cand = Some(cand.map_or(h, |c| c.min(h))),
                    None if self.views[s].len > self.outbox[s].len() => {
                        unknown = unknown.min(self.views[s].parked);
                    }
                    None => {}
                }
            }
            match cand {
                // The candidate is exact once no unknown queue could
                // still hide something earlier.
                Some(m) if m <= unknown => break m,
                None if unknown == Cycle::MAX => return false,
                _ => {
                    // Probe every unknown queue up to the candidate (or
                    // a doubling span when nothing bounds the search).
                    let limit = cand.map_or(unknown.saturating_add(span), |c| c);
                    span = span.saturating_mul(2);
                    for s in 0..self.nshards {
                        let v = self.views[s];
                        self.race_resolved[s] =
                            v.head.is_none() && v.len > self.outbox[s].len() && v.parked <= limit;
                        if self.race_resolved[s] {
                            self.send(s, HarvestCmd::Probe { limit });
                        }
                    }
                    for s in 0..self.nshards {
                        if self.race_resolved[s] {
                            self.absorb_reply(s);
                        }
                    }
                }
            }
        };
        self.window_end = m + self.lookahead;
        // Hand out the harvests: any shard with an outbox transfer or a
        // (possible) event below the window end participates; a shard
        // whose queue provably starts at or past the end is left alone.
        // Involvement is latched before sending — taking an outbox
        // changes the predicate, not the owed reply.
        for s in 0..self.nshards {
            self.race_resolved[s] = !self.outbox[s].is_empty()
                || match self.views[s].head {
                    Some(h) => h < self.window_end,
                    None => {
                        self.views[s].len > self.outbox[s].len()
                            && self.views[s].parked < self.window_end
                    }
                };
            if self.race_resolved[s] {
                let inbox = std::mem::take(&mut self.outbox[s]);
                self.outbox_min[s] = Cycle::MAX;
                self.send(
                    s,
                    HarvestCmd::Harvest {
                        inbox,
                        end: self.window_end,
                        probe: self.window_end + PROBE_SPAN,
                    },
                );
            }
        }
        for s in 0..self.nshards {
            if self.race_resolved[s] {
                self.absorb_reply(s);
            }
        }
        self.stats.harvested += self.run.len() as u64;
        self.run.sort_unstable_by_key(|e| Reverse((e.at, e.seq)));
        true
    }

    /// Posts a command on shard `s`'s harvest channel.
    fn send(&self, s: usize, cmd: HarvestCmd) {
        let shared = &self.crew[s];
        let mut st = lock_crew(shared);
        debug_assert!(st.cmd.is_none() && st.reply.is_none(), "one command in flight per shard");
        st.cmd = Some(cmd);
        drop(st);
        shared.cmd_ready.notify_one();
    }

    /// Blocks for shard `s`'s reply and folds it into the plane:
    /// harvested events join `run`, the view learns the new head /
    /// cursor / length, and outbox events stranded behind the advanced
    /// cursor fall back to the pending heap.
    fn absorb_reply(&mut self, s: usize) {
        let shared = self.crew[s].clone();
        let mut st = lock_crew(&shared);
        let reply = loop {
            if let Some(msg) = &st.poisoned {
                panic!("harvest worker for shard {s} poisoned its channel: {msg}");
            }
            match st.reply.take() {
                Some(r) => break r,
                None => {
                    st = shared
                        .reply_ready
                        .wait(st)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        };
        drop(st);
        self.run.extend(reply.run);
        self.views[s] = ShardView { head: reply.head, parked: reply.parked, len: reply.remaining };
        // The probe may have parked the cursor past events still waiting
        // in the outbox; those can no longer enter the queue in order
        // and fall back to the pending heap, which orders explicitly.
        if self.outbox_min[s] < reply.parked {
            let mut min = Cycle::MAX;
            for (at, se) in std::mem::take(&mut self.outbox[s]) {
                if at < reply.parked {
                    self.stats.pending += 1;
                    self.pending.push(Reverse(Stamped { at, seq: se.seq, ev: se.ev }));
                } else {
                    min = min.min(at);
                    self.outbox[s].push((at, se));
                }
            }
            self.outbox_min[s] = min;
        }
        self.views[s].len += self.outbox[s].len();
    }
}

// ---------------------------------------------------------------------------
// Harvest crew (concurrent commit)
// ---------------------------------------------------------------------------

/// One barrier command for a harvest worker.
enum HarvestCmd {
    /// Transfer `inbox` into the queue, drain every event below `end`
    /// and report the next head up to `probe`.
    Harvest { inbox: Vec<(Cycle, SeqEv)>, end: Cycle, probe: Cycle },
    /// Only report the head: peek up to `limit`.
    Probe { limit: Cycle },
}

/// A worker's answer to a [`HarvestCmd`].
struct HarvestReply {
    /// The drained window batch (empty for probes).
    run: Vec<Stamped>,
    /// Earliest queued cycle, if found within the peek bound.
    head: Option<Cycle>,
    /// The queue's cursor after the command: pushes below it are no
    /// longer accepted in order.
    parked: Cycle,
    /// Events still queued.
    remaining: usize,
}

/// Channel between the coordinator and one shard's harvest worker: a
/// single-command mailbox with a reply slot.
pub(crate) struct HarvestShared {
    state: Mutex<CrewState>,
    /// Worker parks here waiting for a command.
    cmd_ready: Condvar,
    /// Coordinator parks here waiting for the reply.
    reply_ready: Condvar,
}

struct CrewState {
    cmd: Option<HarvestCmd>,
    reply: Option<HarvestReply>,
    /// The worker panicked; carries its panic message.
    poisoned: Option<String>,
    /// The coordinator is finished (or unwinding): the worker must exit.
    shutdown: bool,
}

impl HarvestShared {
    fn new() -> Self {
        HarvestShared {
            state: Mutex::new(CrewState {
                cmd: None,
                reply: None,
                poisoned: None,
                shutdown: false,
            }),
            cmd_ready: Condvar::new(),
            reply_ready: Condvar::new(),
        }
    }
}

impl std::fmt::Debug for HarvestShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("HarvestShared")
    }
}

/// Locks a crew mutex, recovering from poisoning: the `poisoned` /
/// `shutdown` flags carry the failure semantics, so a lock poisoned by
/// a panicking peer must not cascade.
fn lock_crew(shared: &HarvestShared) -> MutexGuard<'_, CrewState> {
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Unwind guard the coordinator holds for each harvest worker: dropping
/// it — normally or during a panic — tells the worker to exit and wakes
/// it, so the thread scope always joins.
pub(crate) struct CrewShutdownGuard {
    shared: Arc<HarvestShared>,
}

impl CrewShutdownGuard {
    pub fn new(shared: Arc<HarvestShared>) -> Self {
        CrewShutdownGuard { shared }
    }
}

impl Drop for CrewShutdownGuard {
    fn drop(&mut self) {
        let mut st = lock_crew(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.cmd_ready.notify_all();
        self.shared.reply_ready.notify_all();
    }
}

/// Body of one shard's harvest worker: owns the shard's calendar queue
/// and serves barrier commands until shut down. Never panics out (a
/// scoped-thread panic would re-raise at scope exit and double-panic an
/// already-unwinding coordinator): queue panics poison the channel.
pub(crate) fn run_harvest_worker(shared: &HarvestShared, queue: CalendarQueue<SeqEv>) {
    let mut queue = queue;
    let result = catch_unwind(AssertUnwindSafe(|| harvest_loop(shared, &mut queue)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = lock_crew(shared);
        st.poisoned = Some(msg);
        drop(st);
        shared.reply_ready.notify_all();
    }
}

fn harvest_loop(shared: &HarvestShared, queue: &mut CalendarQueue<SeqEv>) {
    loop {
        let cmd = {
            let mut st = lock_crew(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(cmd) = st.cmd.take() {
                    break cmd;
                }
                st = shared.cmd_ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // The drain and peek run outside the lock — this is the
        // parallel work of a barrier.
        let reply = match cmd {
            HarvestCmd::Harvest { inbox, end, probe } => {
                for (at, se) in inbox {
                    queue.push(at, se);
                }
                let mut run = Vec::new();
                while let Some((at, se)) = queue.pop_until(end - 1) {
                    run.push(Stamped { at, seq: se.seq, ev: se.ev });
                }
                let head = queue.peek_until(probe).map(|(c, _)| c);
                HarvestReply { run, head, parked: queue.now(), remaining: queue.len() }
            }
            HarvestCmd::Probe { limit } => {
                let head = queue.peek_until(limit).map(|(c, _)| c);
                HarvestReply { run: Vec::new(), head, parked: queue.now(), remaining: queue.len() }
            }
        };
        let mut st = lock_crew(shared);
        st.reply = Some(reply);
        drop(st);
        shared.reply_ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Trace-prefetch feeds
// ---------------------------------------------------------------------------

/// Shared state between one shard's prefetch worker (producer) and the
/// coordinator (consumer): one bounded op queue per core of the shard.
pub(crate) struct FeedShared {
    state: Mutex<FeedState>,
    /// Coordinator parks here when a queue is empty.
    can_consume: Condvar,
    /// Worker parks here when every queue is full (or exhausted).
    can_fill: Condvar,
}

struct FeedState {
    queues: Vec<VecDeque<TraceOp>>,
    /// Source exhausted; the queue drains to its true end.
    done: Vec<bool>,
    /// The worker panicked; carries its panic message.
    poisoned: Option<String>,
    /// The coordinator is finished (or unwinding): workers must exit.
    shutdown: bool,
}

/// Locks a feed mutex, recovering from poisoning: the `poisoned` /
/// `shutdown` flags carry the failure semantics, so a lock poisoned by
/// a panicking peer must not cascade (a second panic during unwind
/// would abort the process).
fn lock_feed(shared: &FeedShared) -> MutexGuard<'_, FeedState> {
    shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FeedShared {
    pub fn new(cores: usize) -> Arc<Self> {
        Arc::new(FeedShared {
            state: Mutex::new(FeedState {
                queues: (0..cores).map(|_| VecDeque::with_capacity(FEED_CAPACITY)).collect(),
                done: vec![false; cores],
                poisoned: None,
                shutdown: false,
            }),
            can_consume: Condvar::new(),
            can_fill: Condvar::new(),
        })
    }
}

/// The coordinator's end of one core's feed. Pulls ops from the shared
/// queue a chunk at a time into a handle-local buffer, so the hot path
/// (one op per `CoreStep`) touches no lock at all — order is unaffected
/// since every op in the slot's queue is destined for this core anyway.
pub(crate) struct FeedHandle {
    shared: Arc<FeedShared>,
    /// Locally buffered ops, consumed before the lock is taken again.
    buffered: VecDeque<TraceOp>,
    /// Index of this core within its shard's feed.
    slot: usize,
    /// Shard number, for poisoning messages.
    shard: usize,
}

impl FeedHandle {
    pub fn new(shared: Arc<FeedShared>, slot: usize, shard: usize) -> Self {
        FeedHandle { shared, buffered: VecDeque::with_capacity(FEED_BATCH), slot, shard }
    }

    /// Blocking pull of the core's next op; `None` at end of trace.
    ///
    /// # Panics
    ///
    /// Panics (naming the shard) if the prefetch worker poisoned the
    /// feed — the worker's own panic message is included, so under
    /// `run_jobs` the failure still surfaces labelled with its job.
    pub fn next_op(&mut self) -> Option<TraceOp> {
        if let Some(op) = self.buffered.pop_front() {
            return Some(op);
        }
        let mut st = lock_feed(&self.shared);
        loop {
            if !st.queues[self.slot].is_empty() {
                let before = st.queues[self.slot].len();
                let take = before.min(FEED_BATCH);
                self.buffered.extend(st.queues[self.slot].drain(..take));
                // Edge-triggered: wake the worker only when this pull
                // moves the queue from above the refill mark to at or
                // below it (chunks can jump the mark, so compare both
                // sides). The worker parks only when no live queue has
                // batch room, and both sides test under the lock, so the
                // wake-up cannot be lost.
                let wake = before > REFILL_MARK
                    && st.queues[self.slot].len() <= REFILL_MARK
                    && !st.done[self.slot];
                drop(st);
                if wake {
                    self.shared.can_fill.notify_one();
                }
                return self.buffered.pop_front();
            }
            if st.done[self.slot] {
                return None;
            }
            if let Some(msg) = &st.poisoned {
                panic!("trace prefetch worker for shard {} poisoned its feed: {msg}", self.shard);
            }
            st =
                self.shared.can_consume.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl std::fmt::Debug for FeedHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FeedHandle").field("slot", &self.slot).field("shard", &self.shard).finish()
    }
}

/// Unwind guard the coordinator holds for each feed while shard workers
/// run: dropping it — normally or during a panic — tells the worker to
/// exit and wakes it, so the thread scope always joins.
pub(crate) struct ShutdownGuard {
    shared: Arc<FeedShared>,
}

impl ShutdownGuard {
    pub fn new(shared: Arc<FeedShared>) -> Self {
        ShutdownGuard { shared }
    }
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        let mut st = lock_feed(&self.shared);
        st.shutdown = true;
        drop(st);
        self.shared.can_fill.notify_all();
        self.shared.can_consume.notify_all();
    }
}

/// Body of one shard's prefetch worker: decode the shard's trace
/// sources into the feed until exhausted or shut down. Never panics out
/// (a scoped-thread panic would re-raise at scope exit and double-panic
/// an already-unwinding coordinator): trace panics poison the feed.
pub(crate) fn run_feed_worker(shared: &FeedShared, sources: Vec<Box<dyn TraceSource>>) {
    let mut sources: Vec<Option<Box<dyn TraceSource>>> = sources.into_iter().map(Some).collect();
    let result = catch_unwind(AssertUnwindSafe(|| feed_loop(shared, &mut sources)));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = lock_feed(shared);
        st.poisoned = Some(msg);
        drop(st);
        shared.can_consume.notify_all();
    }
}

fn feed_loop(shared: &FeedShared, sources: &mut [Option<Box<dyn TraceSource>>]) {
    let mut batch: Vec<TraceOp> = Vec::with_capacity(FEED_BATCH);
    loop {
        // Pick a core with queue space under the lock.
        let slot = {
            let mut st = lock_feed(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if sources.iter().all(Option::is_none) {
                    return; // every source decoded to its end
                }
                let pick = (0..sources.len())
                    .find(|&i| sources[i].is_some() && st.queues[i].len() <= REFILL_MARK);
                match pick {
                    Some(i) => break i,
                    // No live queue has room for a whole batch: the
                    // coordinator is behind. Park; a pop crossing the
                    // refill mark (or shutdown) wakes us.
                    None => {
                        st = shared
                            .can_fill
                            .wait(st)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        };
        // Decode outside the lock — this is the parallel work. One
        // batched pull per wakeup: sources that can (the LTF cursors)
        // decode the whole batch without per-op dispatch, and a short
        // batch is the `next_ops` contract for end-of-stream.
        let src = sources[slot].as_mut().expect("picked a live source");
        let exhausted = src.next_ops(&mut batch, FEED_BATCH) < FEED_BATCH;
        let mut st = lock_feed(shared);
        // The coordinator is single-threaded and parks only on an empty
        // queue, so a notify is needed only when this append makes an
        // empty queue non-empty — or flips the done flag, which a
        // consumer parked on an exhausted-but-undrained source is
        // waiting to observe.
        let wake = st.queues[slot].is_empty() || exhausted;
        st.queues[slot].extend(batch.drain(..));
        if exhausted {
            st.done[slot] = true;
            sources[slot] = None;
        }
        drop(st);
        if wake {
            shared.can_consume.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::VecTrace;
    use lacc_model::LineAddr;

    fn core_step(c: usize) -> Event {
        Event::CoreStep(c)
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        assert_eq!(partition(8, 2), vec![0, 0, 0, 0, 1, 1, 1, 1]);
        assert_eq!(partition(6, 4), vec![0, 0, 1, 2, 2, 3]);
        assert_eq!(partition(4, 4), vec![0, 1, 2, 3]);
        assert_eq!(partition(5, 1), vec![0, 0, 0, 0, 0]);
        // Every shard owns at least one tile and blocks never interleave.
        for (tiles, shards) in [(64, 3), (64, 7), (1024, 16), (9, 8)] {
            let map = partition(tiles, shards);
            assert!(map.windows(2).all(|w| w[0] <= w[1]), "contiguous blocks");
            assert_eq!(usize::from(*map.last().unwrap()), shards - 1);
            for s in 0..shards {
                let n = map.iter().filter(|&&x| usize::from(x) == s).count();
                assert!(n >= tiles / shards && n <= tiles.div_ceil(shards), "balanced: {n}");
            }
        }
    }

    /// The script from the replay test: each pop reacts with pushes,
    /// exercising window harvests, in-window (pending) merges, a
    /// same-cycle cross-shard push (the old sync-valve case) and a
    /// far-future local event.
    fn replay_script() -> Vec<(Cycle, Vec<(Cycle, usize)>)> {
        vec![
            (0, vec![(2, 3)]), // tile 0 at 0 → tile 3 at the window edge
            (0, vec![(1, 1)]), // tile 1 at 0 → in-window at 1
            (0, vec![(0, 2)]), // tile 2 at 0 → in-window, same cycle
            (0, vec![]),       // tile 3 at 0
            (0, vec![(5, 0)]), // tile 2 again at 0 → tile 0 beyond the window
            (1, vec![(1, 2)]), // tile 1 at 1 → cross-shard at the SAME cycle
            (1, vec![]),       // the same-cycle delivery at tile 2
            (2, vec![]),       // the window-edge event at tile 3
            (5, vec![]),       // tile 0's future local event
        ]
    }

    fn drive_replay_script(plane: &mut ShardPlane) {
        let mut serial: CalendarQueue<Event> = CalendarQueue::new();
        // Setup: one CoreStep per tile at 0 (as with_options does).
        for c in 0..4 {
            plane.push(0, core_step(c));
            serial.push(0, core_step(c));
        }
        let mut script = replay_script();
        script.reverse();
        loop {
            let (a, b) = (plane.pop(), serial.pop());
            match (a, b) {
                (None, None) => break,
                (Some((pa, ea)), Some((pb, eb))) => {
                    assert_eq!(pa, pb, "cycle diverged");
                    assert_eq!(format!("{ea:?}"), format!("{eb:?}"), "event diverged");
                    let (want_cycle, pushes) = script.pop().expect("script covers every pop");
                    assert_eq!(pa, want_cycle, "script is in sync");
                    for (at, tile) in pushes {
                        plane.push(at, core_step(tile));
                        serial.push(at, core_step(tile));
                    }
                }
                (a, b) => panic!("planes diverged: sharded={a:?} serial={b:?}"),
            }
        }
    }

    /// The plane replays global (cycle, push-order): a scripted exchange
    /// that exercises the window race, batch harvest, and the in-window
    /// pending merge pops in exactly serial order.
    #[test]
    fn plane_replays_serial_order_across_shards() {
        let mut plane = ShardPlane::new(4, 2, 2, false); // tiles {0,1} | {2,3}
        drive_replay_script(&mut plane);
        assert!(plane.stats.windows >= 2, "the script spans several windows");
        assert!(plane.stats.harvested >= 4, "the setup events harvest in a batch");
        assert!(plane.stats.pending >= 1, "the same-cycle crossing merges in-window");
    }

    /// The same script through the concurrent-commit path: the shard
    /// queues live on harvest worker threads and every barrier is a
    /// command/reply exchange, yet the pop order is byte-identical.
    #[test]
    fn concurrent_crew_replays_the_same_order() {
        let mut plane = ShardPlane::new(4, 2, 2, true);
        assert!(plane.wants_crew());
        std::thread::scope(|scope| {
            let mut guards = Vec::new();
            for (shared, queue) in plane.detach_workers() {
                guards.push(CrewShutdownGuard::new(shared.clone()));
                scope.spawn(move || run_harvest_worker(&shared, queue));
            }
            drive_replay_script(&mut plane);
            drop(guards);
        });
        assert!(plane.stats.windows >= 2);
        assert!(plane.stats.pending >= 1);
    }

    /// A panicking harvest worker poisons its channel instead of
    /// hanging the coordinator; the next barrier names the shard.
    #[test]
    fn poisoned_harvest_channel_raises_at_the_coordinator() {
        let shared = Arc::new(HarvestShared::new());
        std::thread::scope(|scope| {
            let guard = CrewShutdownGuard::new(shared.clone());
            let worker = shared.clone();
            scope.spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| panic!("queue exploded")));
                if result.is_err() {
                    let mut st = lock_crew(&worker);
                    st.poisoned = Some("queue exploded".into());
                    drop(st);
                    worker.reply_ready.notify_all();
                }
            });
            let mut plane = ShardPlane::new(2, 2, 1, true);
            let detached = plane.detach_workers();
            drop(detached); // queues never reach a live worker
            plane.crew[0] = shared.clone();
            let caught = catch_unwind(AssertUnwindSafe(|| plane.absorb_reply(0)))
                .expect_err("poisoned channel must raise");
            let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("shard 0"), "names the shard: {msg}");
            assert!(msg.contains("queue exploded"), "carries the cause: {msg}");
            drop(guard);
        });
    }

    /// A feed worker decodes its sources to the end; the consumer sees
    /// every op in order, then `None`.
    #[test]
    fn feed_delivers_ops_in_order_then_ends() {
        let ops: Vec<TraceOp> = (0..1000u64)
            .map(|i| TraceOp::Store { addr: lacc_model::Addr::new(i * 8), value: i })
            .collect();
        let shared = FeedShared::new(2);
        let sources: Vec<Box<dyn TraceSource>> = vec![
            Box::new(VecTrace::new(ops.clone())),
            Box::new(VecTrace::new(vec![TraceOp::Compute(3)])),
        ];
        std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || run_feed_worker(&worker_shared, sources));
            let mut h0 = FeedHandle::new(shared.clone(), 0, 0);
            let mut h1 = FeedHandle::new(shared.clone(), 1, 0);
            assert_eq!(h1.next_op(), Some(TraceOp::Compute(3)));
            assert_eq!(h1.next_op(), None);
            for want in &ops {
                assert_eq!(h0.next_op().as_ref(), Some(want));
            }
            assert_eq!(h0.next_op(), None);
            drop(guard);
        });
    }

    struct PanicAfter(u32);
    impl TraceSource for PanicAfter {
        fn next_op(&mut self) -> Option<TraceOp> {
            assert!(self.0 > 0, "trace source exploded");
            self.0 -= 1;
            Some(TraceOp::Compute(1))
        }
    }

    /// A panicking source poisons the feed instead of hanging the
    /// consumer (or double-panicking the scope): the consumer's next
    /// pull re-raises with the shard and the original message.
    #[test]
    fn poisoned_feed_raises_at_the_consumer() {
        let shared = FeedShared::new(1);
        let caught = std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || {
                run_feed_worker(&worker_shared, vec![Box::new(PanicAfter(3))]);
            });
            let mut h = FeedHandle::new(shared.clone(), 0, 7);
            let caught = catch_unwind(AssertUnwindSafe(|| while h.next_op().is_some() {}))
                .expect_err("poisoned feed must raise");
            drop(guard);
            caught
        });
        let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("shard 7"), "names the shard: {msg}");
        assert!(msg.contains("trace source exploded"), "carries the cause: {msg}");
    }

    /// Dropping the guard mid-stream releases a worker parked on full
    /// queues — the scope join below would hang forever otherwise.
    #[test]
    fn shutdown_guard_releases_a_parked_worker() {
        let endless = (0..100_000u64).map(|_| TraceOp::Compute(1)).collect::<Vec<_>>();
        let shared = FeedShared::new(1);
        std::thread::scope(|s| {
            let guard = ShutdownGuard::new(shared.clone());
            let worker_shared = shared.clone();
            s.spawn(move || {
                run_feed_worker(&worker_shared, vec![Box::new(VecTrace::new(endless))])
            });
            let mut h = FeedHandle::new(shared.clone(), 0, 0);
            for _ in 0..10 {
                assert!(h.next_op().is_some());
            }
            drop(guard); // coordinator "unwinds" with the trace unfinished
        });
        // Reaching here is the assertion: the scope joined.
    }

    /// Dev microbench (`cargo test --release -p lacc-sim shard_plane_micro
    /// -- --ignored --nocapture`): ns/event through the inline plane at 1
    /// vs 2 shards against the raw calendar queue. Not a correctness
    /// test — it prints timings for tuning the serve loop.
    #[test]
    #[ignore = "dev microbench, run with --ignored --nocapture"]
    fn shard_plane_micro() {
        const N: usize = 1_000_000;
        let deltas = [1u64, 2, 2, 7, 1, 9, 2, 100];
        let ev = |t: usize| Event::HomeLookup { tile: t % 16, line: LineAddr::new(0) };
        let t0 = std::time::Instant::now();
        let mut q: CalendarQueue<Event> = CalendarQueue::new();
        let mut now = 0;
        for i in 0..N {
            q.push(now + deltas[i % deltas.len()], ev(i));
            if i % 2 == 0 {
                let (at, _) = q.pop().expect("queued");
                now = at;
            }
        }
        while q.pop().is_some() {}
        let serial = t0.elapsed();
        // Three interleaving patterns: all events on one shard (runs
        // never end), blocks of 8 (medium runs), and per-event
        // alternation (every pop re-scans) — the scan-rate sensitivity
        // curve of the two serve gears.
        type TileOf = fn(usize) -> usize;
        let patterns: [(&str, TileOf); 3] =
            [("fixed", |_| 0), ("blocky", |i| (i / 8) % 16), ("alternating", |i| i % 16)];
        for shards in [1usize, 2, 4] {
            for (pat, tile_of) in patterns {
                let t1 = std::time::Instant::now();
                let mut p = ShardPlane::new(16, shards, 2, false);
                let mut now = 0;
                for i in 0..N {
                    p.push(now + deltas[i % deltas.len()], ev(tile_of(i)));
                    if i % 2 == 0 {
                        let (at, _) = p.pop().expect("queued");
                        now = at;
                    }
                }
                while p.pop().is_some() {}
                println!(
                    "raw queue {:>6.1} ns/ev  plane({shards}) {pat:<11} {:>6.1} ns/ev  \
                     pending {}  scans {}",
                    serial.as_nanos() as f64 / N as f64,
                    t1.elapsed().as_nanos() as f64 / N as f64,
                    p.stats.pending,
                    p.stats.scans,
                );
            }
        }
    }

    #[test]
    fn stamped_orders_by_cycle_then_seq() {
        let mk = |at, seq| Stamped {
            at,
            seq,
            ev: Event::HomeLookup { tile: 0, line: LineAddr::new(0) },
        };
        assert!(mk(3, 9) < mk(4, 0));
        assert!(mk(3, 1) < mk(3, 2));
    }
}
