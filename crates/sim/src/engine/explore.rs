//! The model checker's nondeterminism seam.
//!
//! A normal run pops events in the serial `(cycle, push-order)` total
//! order. Exploration mode ([`Simulator::for_exploration`]) replaces the
//! calendar queue with a [`ChoicePlane`] — an inspectable pending-event
//! list — and lets the driver (`lacc_mc`) fire any *enabled* pending
//! event via [`Simulator::fire_choice`]. Enabledness encodes the one
//! ordering guarantee the machine really gives: delivery is FIFO per
//! `(src, dst)` wormhole channel, so only each channel's oldest message
//! is eligible; core steps and home lookups commute freely.
//!
//! The events fired are dispatched through `Simulator::dispatch` — the
//! exact transition function of the shipping engine — so the checker
//! explores the real protocol, not a model of it. Timing is abstracted:
//! every event fires at the monotone `explore_now` clock (the maximum
//! cycle any fired event has carried), which keeps handler-internal
//! subtractions (`now - issue_time`) well-defined on every interleaving.
//!
//! The module also hosts [`Simulator::fingerprint`] (canonical state
//! encoding with symmetry reduction over core permutations),
//! [`Simulator::check_invariants`] (SWMR, data value, directory
//! agreement, slab refcount audit) and [`Simulator::check_quiescent`]
//! — see DESIGN.md §8.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, VecDeque};

use lacc_cache::DataSlab;
use lacc_core::home::DirectoryEntry;
use lacc_core::l1::L1Cache;
use lacc_core::mesi::{DirState, MesiState};
use lacc_core::sharer::InvalidationPlan;
use lacc_model::{ConfigError, CoreId, CoreSet, Cycle, LineAddr, SystemConfig};

use crate::msg::{Message, Payload};
use crate::trace::{TraceOp, Workload};

use super::state::{Awaiting, Blocked, HomeTxn, Phase};
use super::{Event, EventPlane, SimOptions, Simulator};

/// The pending-event set of an exploration-mode simulator: every
/// scheduled event sits in an inspectable list tagged with its cycle and
/// a global push sequence number. `ChoicePlane::pop` replays the serial
/// `(cycle, push-order)` total order, so `Simulator::run` still works on
/// a `Choice` plane; the model checker instead removes *chosen* entries
/// through `Simulator::fire_choice`.
#[derive(Debug, Default)]
pub struct ChoicePlane {
    /// `(cycle, push sequence, event)` triples in push order.
    pub(crate) pending: Vec<(Cycle, u64, Event)>,
    next_seq: u64,
}

impl ChoicePlane {
    /// An empty plane.
    #[must_use]
    pub fn new() -> Self {
        ChoicePlane::default()
    }

    pub(crate) fn push(&mut self, at: Cycle, ev: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((at, seq, ev));
    }

    pub(crate) fn pop(&mut self) -> Option<(Cycle, Event)> {
        let pos = self
            .pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(at, seq, _))| (at, seq))
            .map(|(i, _)| i)?;
        let (at, _, ev) = self.pending.remove(pos);
        Some((at, ev))
    }
}

/// A seeded protocol bug for mutation-testing the model checker
/// (DESIGN.md §8.4). Each variant disables or corrupts one protocol
/// action at its real engine call site; the checker must kill every
/// mutant with an invariant violation or a handler panic on some
/// explored interleaving. Never set in a normal run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultInjection {
    /// The home drops one unicast invalidation from an invalidation round.
    DropInvalidation,
    /// Line grants carry zeroed data instead of the home's resident line.
    StaleGrant,
    /// Invalidation acks no longer decrement the home's pending-ack state.
    SkippedAckDecrement,
    /// Acks clear the *next* core (mod N) from the sharer set, not the
    /// sender.
    WrongSharerClear,
    /// The home retires a transaction while its write-back is in flight.
    PrematureTxnRetire,
    /// The shadow-memory oracle itself records writes one word off.
    MonitorWordSkew,
}

impl Simulator {
    /// Builds a simulator in exploration mode: monitor on (recording, not
    /// panicking), serial timing model, and every scheduled event landing
    /// in a [`ChoicePlane`] for the model checker to fire in any enabled
    /// order. `fault` optionally seeds one protocol bug for mutation
    /// testing.
    ///
    /// # Errors
    ///
    /// Same as [`Simulator::new`].
    pub fn for_exploration(
        cfg: SystemConfig,
        workload: Workload,
        fault: Option<FaultInjection>,
    ) -> Result<Self, ConfigError> {
        let opts = SimOptions {
            monitor: true,
            panic_on_violation: false,
            shards: 1,
            concurrent_commit: false,
        };
        let mut sim = Self::with_options(cfg, workload, opts)?;
        let mut plane = ChoicePlane::new();
        while let Some((at, ev)) = sim.events.pop() {
            plane.push(at, ev);
        }
        sim.events = EventPlane::Choice(plane);
        sim.fault = fault;
        if fault == Some(FaultInjection::MonitorWordSkew) {
            sim.monitor.set_word_skew(1);
        }
        Ok(sim)
    }

    fn choice_plane(&self) -> &ChoicePlane {
        match &self.events {
            EventPlane::Choice(p) => p,
            _ => panic!("not an exploration-mode simulator (use for_exploration)"),
        }
    }

    /// Positions (into the pending list) of the enabled events, sorted by
    /// push sequence so choice indices are stable for a given state.
    fn enabled_positions(&self) -> Vec<usize> {
        let plane = self.choice_plane();
        let mut positions = Vec::new();
        // Per-channel FIFO: only the oldest pending message of each
        // (src, dst) pair is deliverable.
        let mut heads: HashMap<(usize, usize), usize> = HashMap::new();
        for (i, (_, seq, ev)) in plane.pending.iter().enumerate() {
            match ev {
                Event::Deliver(m) => match heads.entry((m.src.index(), m.dst.index())) {
                    Entry::Occupied(mut e) => {
                        if plane.pending[*e.get()].1 > *seq {
                            e.insert(i);
                        }
                    }
                    Entry::Vacant(e) => {
                        e.insert(i);
                    }
                },
                Event::CoreStep(_) | Event::HomeLookup { .. } => positions.push(i),
            }
        }
        positions.extend(heads.into_values());
        positions.sort_unstable_by_key(|&i| plane.pending[i].1);
        positions
    }

    /// Number of enabled events in the current state (`0` means the
    /// system has drained — check [`Simulator::check_quiescent`]).
    #[must_use]
    pub fn enabled_count(&self) -> usize {
        self.enabled_positions().len()
    }

    /// Human-readable labels of the enabled events; the index into this
    /// list is the choice id [`Simulator::fire_choice`] accepts.
    #[must_use]
    pub fn enabled_choices(&self) -> Vec<String> {
        let plane = self.choice_plane();
        self.enabled_positions()
            .into_iter()
            .map(|i| match &plane.pending[i].2 {
                Event::CoreStep(c) => format!("step core {c}"),
                Event::Deliver(m) => format!(
                    "deliver {} {}->{} line {}",
                    payload_name(&m.payload),
                    m.src,
                    m.dst,
                    m.line
                ),
                Event::HomeLookup { tile, line } => format!("L2 lookup tile {tile} line {line}"),
            })
            .collect()
    }

    /// Fires the `k`-th enabled event (an index into
    /// [`Simulator::enabled_choices`]) through the engine's real
    /// transition function, advancing the monotone exploration clock.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range, and propagates any panic of the
    /// fired handler (protocol-bug detectors: `debug_assert!`,
    /// `unreachable!`, monitor asserts).
    pub fn fire_choice(&mut self, k: usize) {
        let positions = self.enabled_positions();
        let pos = positions[k];
        let EventPlane::Choice(plane) = &mut self.events else {
            unreachable!("enabled_positions checked the plane")
        };
        let (at, _, ev) = plane.pending.remove(pos);
        let mut now = self.explore_now.max(at);
        if let Event::CoreStep(c) = ev {
            // A replaying core re-schedules itself at its own clock; fire
            // at least there so the handler never sees time run backwards.
            now = now.max(self.cores[c].clock);
        }
        self.explore_now = now;
        self.dispatch(ev, now);
    }

    // -- canonical fingerprint ---------------------------------------------

    /// Canonical fingerprint of the architectural state for the visited
    /// set: the minimum encoding over the given core permutations
    /// (`perm[phys] = role`; pass `&[identity]` for no symmetry
    /// reduction). Timing is excluded — clocks, latency attributions,
    /// statistics and LRU stamp *values* (only relative recency is
    /// encoded) — so states differing only in when events fired coincide.
    ///
    /// Permutation soundness requires the exploration conventions:
    /// `rnuca_cluster == 1`, no instruction lines, every touched region
    /// declared `Shared` (homes then depend only on the address), and
    /// only cores with identical scripts permuted.
    ///
    /// # Panics
    ///
    /// Panics if the simulator is not in exploration mode or a
    /// permutation's length differs from the core count.
    #[must_use]
    pub fn fingerprint(&self, perms: &[Vec<usize>]) -> Vec<u64> {
        let mut best: Option<Vec<u64>> = None;
        for perm in perms {
            assert_eq!(perm.len(), self.cfg.num_cores, "permutation arity");
            let enc = self.encode_state(perm);
            if best.as_ref().map_or(true, |b| enc < *b) {
                best = Some(enc);
            }
        }
        best.expect("at least one permutation (pass the identity)")
    }

    /// One encoding of the state under `perm` (`perm[phys] = role`).
    fn encode_state(&self, perm: &[usize]) -> Vec<u64> {
        let n = self.cfg.num_cores;
        let mut inv = vec![0usize; n];
        for (phys, &role) in perm.iter().enumerate() {
            inv[role] = phys;
        }
        let mut out = Vec::with_capacity(256);

        // Cores, in role order.
        for &phys in &inv {
            let core = &self.cores[phys];
            out.push(core.ops_consumed);
            out.push(u64::from(core.finished));
            out.push(blocked_tag(core.blocked));
            out.push(u64::from(core.pending_compute));
            match core.replay {
                None => out.push(0),
                Some(op) => {
                    out.push(1);
                    encode_op(op, &mut out);
                }
            }
            out.push(u64::from(core.replay_ifetched));
            match core.outstanding {
                None => out.push(0),
                Some(o) => {
                    out.push(1);
                    out.push(o.line.raw());
                    out.push(o.word as u64);
                    out.push(u64::from(o.is_store));
                    out.push(o.value);
                    out.push(u64::from(o.instr));
                }
            }
        }

        // Private L1s, in role order.
        for &phys in &inv {
            encode_l1(&self.tiles[phys].l1i, &self.slab, &mut out);
            encode_l1(&self.tiles[phys].l1d, &self.slab, &mut out);
        }

        // Shared L2 slices and their directory state, in *physical* tile
        // order: under the exploration conventions a line's home tile is
        // a pure function of the address, unaffected by role permutation.
        let mut map = |c: usize| perm[c];
        for tile in &self.tiles {
            for set in 0..tile.l2.num_sets() {
                let mut ways: Vec<_> = tile.l2.iter_set(set).collect();
                ways.sort_unstable_by_key(|&(_, stamp, _)| stamp);
                out.push(ways.len() as u64);
                for (line, _, l2line) in ways {
                    out.push(line.raw());
                    out.push(u64::from(l2line.dirty));
                    out.extend_from_slice(self.slab.get(l2line.data).words());
                    encode_dir_entry(&l2line.entry, &mut out, &mut map);
                }
            }
        }

        // In-flight home transactions, per tile, sorted by line.
        for tile in &self.tiles {
            let mut lines: Vec<(LineAddr, u32)> =
                tile.txns.iter().map(|(l, id)| (*l, *id)).collect();
            lines.sort_unstable_by_key(|&(l, _)| l.raw());
            out.push(lines.len() as u64);
            for (line, id) in lines {
                out.push(line.raw());
                match tile.txn_arena.get(id) {
                    HomeTxn::Request(t) => {
                        out.push(1);
                        out.push(perm[t.requester.index()] as u64);
                        out.push(t.kind as u64);
                        out.push(t.word as u64);
                        out.push(t.value);
                        out.push(u64::from(t.instr));
                        out.push(u64::from(t.hints.set_has_invalid));
                        out.push(phase_tag(t.phase));
                        match &t.decision {
                            None => out.push(0),
                            Some(d) => {
                                out.push(1);
                                out.push(d.grant as u64);
                                match d.fetch_from_owner {
                                    None => out.push(0),
                                    Some(c) => {
                                        out.push(1);
                                        out.push(perm[c.index()] as u64);
                                    }
                                }
                                match &d.invalidate {
                                    None => out.push(0),
                                    Some(InvalidationPlan::Unicast(set)) => {
                                        out.push(1);
                                        encode_coreset(set, &mut out, perm);
                                    }
                                    Some(InvalidationPlan::Broadcast { expected_acks }) => {
                                        out.push(2);
                                        out.push(*expected_acks as u64);
                                    }
                                }
                                out.push(d.outcome.mode as u64);
                                out.push(u64::from(d.outcome.promoted));
                                out.push(u64::from(d.outcome.tracked));
                            }
                        }
                        encode_awaiting(&t.awaiting, &mut out, perm);
                    }
                    HomeTxn::Evict(t) => {
                        out.push(2);
                        encode_dir_entry(&t.entry, &mut out, &mut map);
                        out.push(u64::from(t.dirty));
                        out.extend_from_slice(self.slab.get(t.data).words());
                        encode_awaiting(&t.awaiting, &mut out, perm);
                    }
                }
            }
        }

        // Waiter queues, per tile, sorted by line, FIFO order inside.
        for tile in &self.tiles {
            let mut queues: Vec<(LineAddr, &VecDeque<(Message, Cycle)>)> =
                tile.waiters.iter().collect();
            queues.sort_unstable_by_key(|&(l, _)| l.raw());
            out.push(queues.len() as u64);
            for (line, q) in queues {
                out.push(line.raw());
                out.push(q.len() as u64);
                for (msg, _) in q {
                    encode_message(msg, &self.slab, perm, &mut out);
                }
            }
        }

        // DRAM backing store, sorted by line.
        let mut backing: Vec<_> = self.backing.iter().map(|(l, r)| (*l, *r)).collect();
        backing.sort_unstable_by_key(|&(l, _)| l.raw());
        out.push(backing.len() as u64);
        for (line, r) in backing {
            out.push(line.raw());
            out.extend_from_slice(self.slab.get(r).words());
        }

        // Synchronization and the shadow-memory oracle.
        self.sync.encode_state(&mut out, &mut map);
        self.monitor.encode_shadow(&mut out);

        // Pending events: non-deliveries as a sorted multiset, deliveries
        // grouped per remapped channel in send order (the FIFO order that
        // constrains which is enabled).
        let plane = self.choice_plane();
        let mut others: Vec<[u64; 3]> = Vec::new();
        let mut channels: BTreeMap<(u64, u64), Vec<(u64, &Message)>> = BTreeMap::new();
        for (_, seq, ev) in &plane.pending {
            match ev {
                Event::CoreStep(c) => others.push([0, perm[*c] as u64, 0]),
                Event::HomeLookup { tile, line } => others.push([1, *tile as u64, line.raw()]),
                Event::Deliver(m) => {
                    channels.entry(remap_endpoints(m, perm)).or_default().push((*seq, m));
                }
            }
        }
        others.sort_unstable();
        out.push(others.len() as u64);
        for o in others {
            out.extend_from_slice(&o);
        }
        out.push(channels.len() as u64);
        for ((src, dst), mut msgs) in channels {
            msgs.sort_unstable_by_key(|&(seq, _)| seq);
            out.push(src);
            out.push(dst);
            out.push(msgs.len() as u64);
            for (_, m) in msgs {
                encode_message(m, &self.slab, perm, &mut out);
            }
        }
        out
    }

    // -- invariants --------------------------------------------------------

    /// Checks the four invariant families over the current state: single
    /// writer / multiple readers, data values against the shadow oracle,
    /// directory/sharer-set agreement, and the data-slab refcount audit.
    /// Assumes the exploration conventions (no instruction lines).
    ///
    /// Violations are also recorded through the monitor (so
    /// `MonitorReport::first_violation` carries the line, cycle, core and
    /// kind of the first failure).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        // Writable and readable copies per line across all private L1Ds.
        let mut copies: HashMap<LineAddr, Vec<(usize, MesiState)>> = HashMap::new();
        for (t, tile) in self.tiles.iter().enumerate() {
            if !tile.l1i.is_empty() {
                return Err(format!(
                    "tile {t}: L1I holds lines but the workload has no instruction lines"
                ));
            }
            for set in 0..tile.l1d.num_sets() {
                for (line, _, l) in tile.l1d.iter_set(set) {
                    copies.entry(line).or_default().push((t, l.mesi));
                }
            }
        }

        // SWMR: at most one writable copy, and a writable copy is sole.
        for (&line, holders) in &copies {
            let writable: Vec<usize> =
                holders.iter().filter(|&&(_, m)| m.can_write()).map(|&(c, _)| c).collect();
            if writable.len() > 1 || (writable.len() == 1 && holders.len() > 1) {
                let core = CoreId::new(writable[0]);
                self.monitor.record_swmr_breach(core, line, self.explore_now);
                return Err(format!(
                    "SWMR breach on {line}: writable copy at core {} among copies at {:?}",
                    writable[0],
                    holders.iter().map(|&(c, _)| c).collect::<Vec<_>>()
                ));
            }
        }

        // Directory agreement: every L2 directory entry against the real
        // L1 copies of its line.
        for (t, tile) in self.tiles.iter().enumerate() {
            for (line, l2line) in tile.l2.iter() {
                let entry = &l2line.entry;
                let holders = copies.get(&line).map_or(&[][..], Vec::as_slice);
                match entry.sharers.known_sharers() {
                    Some(set) => {
                        for &(c, _) in holders {
                            if !set.contains(CoreId::new(c)) {
                                return Err(format!(
                                    "directory at tile {t} does not track core {c}'s copy of \
                                     {line} (sharers {set:?})"
                                ));
                            }
                        }
                    }
                    None => {
                        if entry.sharers.count() < holders.len() {
                            return Err(format!(
                                "directory at tile {t} counts {} sharer(s) of {line} but {} \
                                 L1 copies exist",
                                entry.sharers.count(),
                                holders.len()
                            ));
                        }
                    }
                }
                for &(c, m) in holders {
                    if m.can_write() && entry.state != DirState::Exclusive(CoreId::new(c)) {
                        return Err(format!(
                            "core {c} holds {line} in {m:?} but the directory at tile {t} \
                             says {:?}",
                            entry.state
                        ));
                    }
                }
                if let DirState::Exclusive(owner) = entry.state {
                    let consistent = match entry.sharers.known_sharers() {
                        Some(set) => set.len() == 1 && set.contains(owner),
                        None => entry.sharers.count() == 1,
                    };
                    if !consistent {
                        return Err(format!(
                            "directory at tile {t} says {line} is exclusive at {owner} but \
                             tracks {} sharer(s)",
                            entry.sharers.count()
                        ));
                    }
                }
            }
        }

        // Data values: every violation the monitor saw during execution,
        // then a sweep of resident copies against the shadow. L2 content
        // is only checkable when the line is at rest (no writable L1
        // copy, no transaction, message or waiter touching it).
        let mut to_verify: Vec<(CoreId, LineAddr, usize, u64)> = Vec::new();
        for (t, tile) in self.tiles.iter().enumerate() {
            for set in 0..tile.l1d.num_sets() {
                for (line, _, l) in tile.l1d.iter_set(set) {
                    let words = self.slab.get(l.data).words();
                    for (w, &v) in words.iter().enumerate() {
                        to_verify.push((CoreId::new(t), line, w, v));
                    }
                }
            }
            for (line, l2line) in tile.l2.iter() {
                let at_rest = !matches!(l2line.entry.state, DirState::Exclusive(_))
                    && !tile.txns.contains_key(&line)
                    && !tile.waiters.line_busy(line)
                    && !self.line_in_flight(line);
                if at_rest {
                    let words = self.slab.get(l2line.data).words();
                    for (w, &v) in words.iter().enumerate() {
                        to_verify.push((CoreId::new(t), line, w, v));
                    }
                }
            }
        }
        for (core, line, word, value) in to_verify {
            self.monitor.verify_resident(core, line, word, value, self.explore_now);
        }
        if let Some(v) = self.monitor.report().first_violation {
            return Err(v.to_string());
        }

        self.check_slab_refs()
    }

    /// `true` when any pending message or event concerns `line`.
    fn line_in_flight(&self, line: LineAddr) -> bool {
        self.choice_plane().pending.iter().any(|(_, _, ev)| match ev {
            Event::Deliver(m) => m.line == line,
            Event::HomeLookup { line: l, .. } => *l == line,
            Event::CoreStep(_) => false,
        })
    }

    /// The at-every-state version of the end-of-run slab audit: the
    /// outstanding handle count must equal the owners — resident lines,
    /// backing entries, data-bearing pending/waiting messages and evict
    /// transactions.
    fn check_slab_refs(&self) -> Result<(), String> {
        let resident: usize =
            self.tiles.iter().map(|t| t.l1i.len() + t.l1d.len() + t.l2.len()).sum();
        let mut expected = resident + self.backing.len();
        for (_, _, ev) in &self.choice_plane().pending {
            if let Event::Deliver(m) = ev {
                expected += payload_handles(&m.payload);
            }
        }
        for tile in &self.tiles {
            for (_, q) in tile.waiters.iter() {
                for (msg, _) in q {
                    expected += payload_handles(&msg.payload);
                }
            }
            for (_, &id) in tile.txns.iter() {
                if matches!(tile.txn_arena.get(id), HomeTxn::Evict(_)) {
                    expected += 1;
                }
            }
        }
        if self.slab.total_refs() != expected {
            return Err(format!(
                "data-slab audit: {} outstanding handles but {expected} owners",
                self.slab.total_refs()
            ));
        }
        Ok(())
    }

    /// Checks that a state with no enabled events is a proper terminal:
    /// every core finished, every transaction retired, no waiter queued,
    /// nobody blocked on synchronization.
    ///
    /// # Errors
    ///
    /// Returns a description of what is stuck (a deadlock or lost-event
    /// bug).
    pub fn check_quiescent(&self) -> Result<(), String> {
        let stuck: Vec<usize> =
            (0..self.cores.len()).filter(|&c| !self.cores[c].finished).collect();
        if !stuck.is_empty() {
            let states: Vec<_> = stuck.iter().map(|&c| self.cores[c].blocked).collect();
            return Err(format!("cores {stuck:?} never finished (blocked: {states:?})"));
        }
        for (t, tile) in self.tiles.iter().enumerate() {
            if tile.txn_arena.live() != 0 {
                return Err(format!(
                    "tile {t}: {} home transaction(s) never retired",
                    tile.txn_arena.live()
                ));
            }
            if !tile.waiters.is_empty() {
                return Err(format!("tile {t}: waiter queues are not empty"));
            }
        }
        if self.sync.blocked_count() != 0 {
            return Err(format!("{} core(s) still blocked on sync", self.sync.blocked_count()));
        }
        Ok(())
    }
}

// -- encoding helpers -------------------------------------------------------

fn blocked_tag(b: Blocked) -> u64 {
    match b {
        Blocked::No => 0,
        Blocked::IFetch => 1,
        Blocked::Data => 2,
        Blocked::Sync => 3,
    }
}

fn phase_tag(p: Phase) -> u64 {
    match p {
        Phase::Lookup => 0,
        Phase::AwaitDram => 1,
        Phase::Installing => 2,
        Phase::AwaitWb => 3,
        Phase::AwaitAcks => 4,
    }
}

fn mesi_tag(m: MesiState) -> u64 {
    match m {
        MesiState::Modified => 0,
        MesiState::Exclusive => 1,
        MesiState::Shared => 2,
    }
}

fn encode_op(op: TraceOp, out: &mut Vec<u64>) {
    match op {
        TraceOp::Compute(n) => {
            out.push(0);
            out.push(u64::from(n));
        }
        TraceOp::Load { addr } => {
            out.push(1);
            out.push(addr.raw());
        }
        TraceOp::Store { addr, value } => {
            out.push(2);
            out.push(addr.raw());
            out.push(value);
        }
        TraceOp::Barrier { id } => {
            out.push(3);
            out.push(u64::from(id));
        }
        TraceOp::Acquire { id } => {
            out.push(4);
            out.push(u64::from(id));
        }
        TraceOp::Release { id } => {
            out.push(5);
            out.push(u64::from(id));
        }
    }
}

/// Encodes one L1's valid lines per set in LRU-recency order (stamp
/// *values* are timing; only their order is behavioral).
fn encode_l1(l1: &L1Cache, slab: &DataSlab, out: &mut Vec<u64>) {
    for set in 0..l1.num_sets() {
        let mut ways: Vec<_> = l1.iter_set(set).collect();
        ways.sort_unstable_by_key(|&(_, stamp, _)| stamp);
        out.push(ways.len() as u64);
        for (line, _, l) in ways {
            out.push(line.raw());
            out.push(mesi_tag(l.mesi));
            out.push(u64::from(l.utilization));
            out.extend_from_slice(slab.get(l.data).words());
        }
    }
}

fn encode_coreset(set: &CoreSet, out: &mut Vec<u64>, perm: &[usize]) {
    let mut mapped: Vec<u64> = set.iter().map(|c| perm[c.index()] as u64).collect();
    mapped.sort_unstable();
    out.push(mapped.len() as u64);
    out.extend(mapped);
}

fn encode_awaiting(a: &Awaiting, out: &mut Vec<u64>, perm: &[usize]) {
    match a {
        Awaiting::Set(set) => {
            out.push(0);
            encode_coreset(set, out, perm);
        }
        Awaiting::Count(n) => {
            out.push(1);
            out.push(*n as u64);
        }
    }
}

fn encode_dir_entry(
    entry: &DirectoryEntry,
    out: &mut Vec<u64>,
    map: &mut dyn FnMut(usize) -> usize,
) {
    match entry.state {
        DirState::Uncached => out.push(0),
        DirState::Shared => out.push(1),
        DirState::Exclusive(c) => {
            out.push(2);
            out.push(map(c.index()) as u64);
        }
    }
    match entry.sharers.known_sharers() {
        Some(set) => {
            out.push(0);
            let mut mapped: Vec<u64> = set.iter().map(|c| map(c.index()) as u64).collect();
            mapped.sort_unstable();
            out.push(mapped.len() as u64);
            out.extend(mapped);
        }
        None => {
            out.push(1);
            out.push(entry.sharers.count() as u64);
        }
    }
    entry.classifier.encode_state(out, map);
}

/// Remaps a message's endpoints for the fingerprint: the *core-played*
/// endpoint follows the role permutation, the *home/controller-played*
/// endpoint is a physical tile and stays fixed (homes are a pure
/// function of the address under the exploration conventions).
fn remap_endpoints(msg: &Message, perm: &[usize]) -> (u64, u64) {
    let s = msg.src.index();
    let d = msg.dst.index();
    match msg.payload {
        // Core → home.
        Payload::ReadReq { .. }
        | Payload::WriteReq { .. }
        | Payload::InvAck { .. }
        | Payload::WbData { .. }
        | Payload::WbNack
        | Payload::EvictNotify { .. } => (perm[s] as u64, d as u64),
        // Home → core.
        Payload::GrantLine { .. }
        | Payload::GrantUpgrade { .. }
        | Payload::WordReadReply { .. }
        | Payload::WordWriteAck { .. }
        | Payload::Inv { .. }
        | Payload::WbReq => (s as u64, perm[d] as u64),
        // Home ↔ memory controller: both physical.
        Payload::DramFetch | Payload::DramData { .. } | Payload::DramWriteBack { .. } => {
            (s as u64, d as u64)
        }
    }
}

fn encode_message(msg: &Message, slab: &DataSlab, perm: &[usize], out: &mut Vec<u64>) {
    let (src, dst) = remap_endpoints(msg, perm);
    out.push(src);
    out.push(dst);
    out.push(msg.line.raw());
    match &msg.payload {
        Payload::ReadReq { hints, word, instr } => {
            out.push(0);
            out.push(u64::from(hints.set_has_invalid));
            out.push(*word as u64);
            out.push(u64::from(*instr));
        }
        Payload::WriteReq { hints, word, value } => {
            out.push(1);
            out.push(u64::from(hints.set_has_invalid));
            out.push(*word as u64);
            out.push(*value);
        }
        Payload::GrantLine { mesi, data, .. } => {
            out.push(2);
            out.push(mesi_tag(*mesi));
            out.extend_from_slice(slab.get(*data).words());
        }
        Payload::GrantUpgrade { .. } => out.push(3),
        Payload::WordReadReply { value, .. } => {
            out.push(4);
            out.push(*value);
        }
        Payload::WordWriteAck { .. } => out.push(5),
        Payload::Inv { back } => {
            out.push(6);
            out.push(u64::from(*back));
        }
        Payload::InvAck { util, data, back } => {
            out.push(7);
            out.push(u64::from(*util));
            encode_opt_data(*data, slab, out);
            out.push(u64::from(*back));
        }
        Payload::WbReq => out.push(8),
        Payload::WbData { data } => {
            out.push(9);
            encode_opt_data(*data, slab, out);
        }
        Payload::WbNack => out.push(10),
        Payload::EvictNotify { util, data } => {
            out.push(11);
            out.push(u64::from(*util));
            encode_opt_data(*data, slab, out);
        }
        Payload::DramFetch => out.push(12),
        Payload::DramData { data } => {
            out.push(13);
            out.extend_from_slice(slab.get(*data).words());
        }
        Payload::DramWriteBack { data } => {
            out.push(14);
            out.extend_from_slice(slab.get(*data).words());
        }
    }
}

fn encode_opt_data(data: Option<lacc_cache::DataRef>, slab: &DataSlab, out: &mut Vec<u64>) {
    match data {
        None => out.push(0),
        Some(r) => {
            out.push(1);
            out.extend_from_slice(slab.get(r).words());
        }
    }
}

fn payload_name(p: &Payload) -> &'static str {
    match p {
        Payload::ReadReq { .. } => "ReadReq",
        Payload::WriteReq { .. } => "WriteReq",
        Payload::GrantLine { .. } => "GrantLine",
        Payload::GrantUpgrade { .. } => "GrantUpgrade",
        Payload::WordReadReply { .. } => "WordReadReply",
        Payload::WordWriteAck { .. } => "WordWriteAck",
        Payload::Inv { .. } => "Inv",
        Payload::InvAck { .. } => "InvAck",
        Payload::WbReq => "WbReq",
        Payload::WbData { .. } => "WbData",
        Payload::WbNack => "WbNack",
        Payload::EvictNotify { .. } => "EvictNotify",
        Payload::DramFetch => "DramFetch",
        Payload::DramData { .. } => "DramData",
        Payload::DramWriteBack { .. } => "DramWriteBack",
    }
}

/// Live slab handles a queued payload owns (the retain-on-send,
/// consume-on-delivery ledger of `crate::msg`).
fn payload_handles(p: &Payload) -> usize {
    match p {
        Payload::GrantLine { .. } | Payload::DramData { .. } | Payload::DramWriteBack { .. } => 1,
        Payload::InvAck { data, .. }
        | Payload::WbData { data }
        | Payload::EvictNotify { data, .. } => usize::from(data.is_some()),
        _ => 0,
    }
}
