//! Protocol messages exchanged over the mesh.
//!
//! Flit sizing follows Table 1 and §3.6: 64-bit flits, a 1-flit header
//! (source, destination, address, type — with room for the line offset, a
//! 1-bit access-width indicator and the 2-bit utilization counter), 1 extra
//! flit per 64-bit data word, 8 extra flits for a full cache line.
//!
//! The in-memory representation mirrors that flit-level shape: no variant
//! embeds line content. Data-bearing messages carry a compact
//! [`DataRef`] handle into the simulator's [`DataSlab`]
//! (`Simulator::slab`), and messages that are header-only on the wire —
//! including *clean* [`Payload::InvAck`]/[`Payload::EvictNotify`] — carry
//! no payload at all (`data: None`). [`Payload::flits`] derives from the
//! same structure, so a message can never claim one size on the wire and
//! occupy another in memory. The handle-lifetime rule is
//! retain-on-send, consume-on-delivery: the sender puts one live handle
//! into the payload (usually a [`DataSlab::retain`] alias of its resident
//! line, or an outright transfer of a handle it owned), and the delivery
//! handler consumes it exactly once — by installing it as a resident
//! line, adopting it as the new L2/backing data, or releasing it. The
//! end-of-run refcount audit in `Simulator::run` catches any violation;
//! DESIGN.md §6.2 tabulates who retains and who consumes per message
//! type.

use lacc_cache::DataRef;
use lacc_core::classifier::RequestHints;
use lacc_core::mesi::MesiState;
use lacc_model::{CoreId, Cycle, LatencyAnnotation, LineAddr};

#[cfg(doc)]
use lacc_cache::DataSlab;

/// Message payloads. `ann` fields carry the home's latency attribution
/// back to the requester (§4.4 breakdown).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Payload {
    /// L1 read miss → home. Header-only (offset + hints ride the header).
    ReadReq {
        /// Set-pressure hints (§3.2–3.3).
        hints: RequestHints,
        /// Which word missed (for a possible word reply).
        word: usize,
        /// Instruction fetch (always-private class).
        instr: bool,
    },
    /// L1 write miss / upgrade → home. Carries the word to be written
    /// because the requester cannot know whether it is a remote sharer.
    WriteReq {
        /// Set-pressure hints.
        hints: RequestHints,
        /// Word index within the line.
        word: usize,
        /// The 64-bit value to write.
        value: u64,
    },
    /// Home → requester: a whole-line grant.
    GrantLine {
        /// MESI state granted (S, E or M).
        mesi: MesiState,
        /// Line content (slab handle; released by the requester).
        data: DataRef,
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: write permission for a line already held in S.
    GrantUpgrade {
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: remote word-read reply.
    WordReadReply {
        /// The word value.
        value: u64,
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: remote word-write acknowledgement.
    WordWriteAck {
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → sharer: invalidate your copy. `back` marks inclusive-L2
    /// back-invalidations (classified as capacity, not sharing).
    Inv {
        /// `true` for back-invalidations.
        back: bool,
    },
    /// Sharer → home: invalidation ack with the final private utilization
    /// (§3.2); dirty acks carry the line, clean acks carry nothing.
    InvAck {
        /// Final private utilization of the invalidated copy.
        util: u32,
        /// Line content when the copy was Modified; `None` for a clean
        /// copy (the ack is then a single header flit).
        data: Option<DataRef>,
        /// Response to a back-invalidation.
        back: bool,
    },
    /// Home → exclusive owner: supply your copy and downgrade to S.
    WbReq,
    /// Owner → home: synchronous write-back response. On the wire this
    /// always carries the line (9 flits); in memory a payload is only
    /// materialized when the copy was actually Modified — a clean copy
    /// matches the home's resident data, so `None`.
    WbData {
        /// Line content when the copy was dirty.
        data: Option<DataRef>,
    },
    /// Owner → home: copy already gone (the eviction notify, ordered
    /// ahead of this message, carries the data).
    WbNack,
    /// L1 → home: a line was evicted; carries the utilization counter and,
    /// if dirty, the data (§3.2 "Evictions and Invalidations").
    EvictNotify {
        /// Final private utilization.
        util: u32,
        /// Line content when the copy was Modified; `None` for a clean
        /// copy (the notify is then a single header flit).
        data: Option<DataRef>,
    },
    /// Home → memory-controller tile: fetch a line from DRAM.
    DramFetch,
    /// Memory-controller tile → home: the fetched line.
    DramData {
        /// Line content from DRAM.
        data: DataRef,
    },
    /// Home → memory-controller tile: write back a dirty line.
    DramWriteBack {
        /// Line content to store.
        data: DataRef,
    },
}

impl Payload {
    /// Message size in flits (Table 1 / §3.6), derived from the payload
    /// shape: header-only variants (and acks/notifies with `data: None`)
    /// are 1 flit, word carriers are 2, line carriers are 9.
    #[must_use]
    pub fn flits(&self) -> usize {
        match self {
            // Header-only messages.
            Payload::ReadReq { .. }
            | Payload::GrantUpgrade { .. }
            | Payload::WordWriteAck { .. }
            | Payload::Inv { .. }
            | Payload::WbReq
            | Payload::WbNack
            | Payload::DramFetch => 1,
            // Header + one word.
            Payload::WriteReq { .. } | Payload::WordReadReply { .. } => 2,
            // Header + full line.
            Payload::GrantLine { .. }
            | Payload::WbData { .. }
            | Payload::DramData { .. }
            | Payload::DramWriteBack { .. } => 9,
            // Header only when clean (no payload at all); header + line
            // when the copy was dirty.
            Payload::InvAck { data, .. } | Payload::EvictNotify { data, .. } => {
                if data.is_some() {
                    9
                } else {
                    1
                }
            }
        }
    }
}

/// A message in flight (or queued at its destination).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Message {
    /// Sending tile.
    pub src: CoreId,
    /// Destination tile.
    pub dst: CoreId,
    /// The cache line concerned.
    pub line: LineAddr,
    /// Payload.
    pub payload: Payload,
    /// Cycle at which the message was injected.
    pub sent: Cycle,
}

// Data-plane size pins. Every `Event::Deliver` moves a `Message` through
// the calendar queue, so these bounds are hot-path regressions, not
// style: pre-refactor (inline `LineData` payloads) the sizes were
// Payload = 96 and Message = 120 bytes; handle-carrying payloads bound
// them at 40 and 64. Growing past the bound breaks the build here.
const _: () = {
    assert!(std::mem::size_of::<Payload>() <= 40);
    assert!(std::mem::size_of::<Message>() <= 64);
    // The whole point of `Option<DataRef>`: absence is free.
    assert!(std::mem::size_of::<Option<DataRef>>() == 8);
};

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_cache::{DataSlab, LineData};

    #[test]
    fn flit_sizes_match_table1() {
        let mut slab = DataSlab::new();
        let mut r = || slab.alloc(LineData::zeroed());
        let h = RequestHints::default();
        assert_eq!(Payload::ReadReq { hints: h, word: 0, instr: false }.flits(), 1);
        assert_eq!(Payload::WriteReq { hints: h, word: 0, value: 0 }.flits(), 2);
        assert_eq!(
            Payload::GrantLine {
                mesi: MesiState::Shared,
                data: r(),
                ann: LatencyAnnotation::default()
            }
            .flits(),
            9,
            "header + 8 data flits for a 64-byte line"
        );
        assert_eq!(
            Payload::WordReadReply { value: 0, ann: LatencyAnnotation::default() }.flits(),
            2
        );
        assert_eq!(Payload::Inv { back: false }.flits(), 1);
        assert_eq!(Payload::InvAck { util: 3, data: Some(r()), back: false }.flits(), 9);
        assert_eq!(Payload::WbData { data: Some(r()) }.flits(), 9);
        assert_eq!(Payload::WbData { data: None }.flits(), 9, "clean WbData still ships the line");
        assert_eq!(Payload::DramFetch.flits(), 1);
        assert_eq!(Payload::DramData { data: r() }.flits(), 9);
    }

    /// §3.6: the utilization counter rides the header — a clean ack or
    /// notify is a single flit and, structurally, carries no data handle.
    #[test]
    fn clean_acks_are_header_only_and_carry_no_data() {
        let clean_ack = Payload::InvAck { util: 3, data: None, back: false };
        let clean_notify = Payload::EvictNotify { util: 1, data: None };
        assert_eq!(clean_ack.flits(), 1);
        assert_eq!(clean_notify.flits(), 1);
        for p in [clean_ack, clean_notify] {
            match p {
                Payload::InvAck { data, .. } | Payload::EvictNotify { data, .. } => {
                    assert!(data.is_none(), "clean messages must not hold a slab slot");
                }
                _ => unreachable!(),
            }
        }
        // And the dirty forms are full-line messages.
        let mut slab = DataSlab::new();
        let d = slab.alloc(LineData::zeroed());
        assert_eq!(Payload::InvAck { util: 3, data: Some(d), back: false }.flits(), 9);
        assert_eq!(Payload::EvictNotify { util: 1, data: Some(d) }.flits(), 9);
    }
}
