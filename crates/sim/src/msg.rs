//! Protocol messages exchanged over the mesh.
//!
//! Flit sizing follows Table 1 and §3.6: 64-bit flits, a 1-flit header
//! (source, destination, address, type — with room for the line offset, a
//! 1-bit access-width indicator and the 2-bit utilization counter), 1 extra
//! flit per 64-bit data word, 8 extra flits for a full cache line.

use lacc_cache::LineData;
use lacc_core::classifier::RequestHints;
use lacc_core::mesi::MesiState;
use lacc_model::{CoreId, Cycle, LatencyAnnotation, LineAddr};

/// Message payloads. `ann` fields carry the home's latency attribution
/// back to the requester (§4.4 breakdown).
#[derive(Clone, PartialEq, Debug)]
pub enum Payload {
    /// L1 read miss → home. Header-only (offset + hints ride the header).
    ReadReq {
        /// Set-pressure hints (§3.2–3.3).
        hints: RequestHints,
        /// Which word missed (for a possible word reply).
        word: usize,
        /// Instruction fetch (always-private class).
        instr: bool,
    },
    /// L1 write miss / upgrade → home. Carries the word to be written
    /// because the requester cannot know whether it is a remote sharer.
    WriteReq {
        /// Set-pressure hints.
        hints: RequestHints,
        /// Word index within the line.
        word: usize,
        /// The 64-bit value to write.
        value: u64,
    },
    /// Home → requester: a whole-line grant.
    GrantLine {
        /// MESI state granted (S, E or M).
        mesi: MesiState,
        /// Line content.
        data: LineData,
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: write permission for a line already held in S.
    GrantUpgrade {
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: remote word-read reply.
    WordReadReply {
        /// The word value.
        value: u64,
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → requester: remote word-write acknowledgement.
    WordWriteAck {
        /// Latency attribution.
        ann: LatencyAnnotation,
    },
    /// Home → sharer: invalidate your copy. `back` marks inclusive-L2
    /// back-invalidations (classified as capacity, not sharing).
    Inv {
        /// `true` for back-invalidations.
        back: bool,
    },
    /// Sharer → home: invalidation ack with the final private utilization
    /// (§3.2); dirty acks carry the line.
    InvAck {
        /// Final private utilization of the invalidated copy.
        util: u32,
        /// Whether the copy was Modified.
        dirty: bool,
        /// Line content (meaningful when `dirty`).
        data: LineData,
        /// Response to a back-invalidation.
        back: bool,
    },
    /// Home → exclusive owner: supply your copy and downgrade to S.
    WbReq,
    /// Owner → home: synchronous write-back data.
    WbData {
        /// Whether the copy was Modified.
        dirty: bool,
        /// Line content.
        data: LineData,
    },
    /// Owner → home: copy already gone (the eviction notify, ordered
    /// ahead of this message, carries the data).
    WbNack,
    /// L1 → home: a line was evicted; carries the utilization counter and,
    /// if dirty, the data (§3.2 "Evictions and Invalidations").
    EvictNotify {
        /// Final private utilization.
        util: u32,
        /// Whether the copy was Modified.
        dirty: bool,
        /// Line content (meaningful when `dirty`).
        data: LineData,
    },
    /// Home → memory-controller tile: fetch a line from DRAM.
    DramFetch,
    /// Memory-controller tile → home: the fetched line.
    DramData {
        /// Line content from DRAM.
        data: LineData,
    },
    /// Home → memory-controller tile: write back a dirty line.
    DramWriteBack {
        /// Line content to store.
        data: LineData,
    },
}

impl Payload {
    /// Message size in flits (Table 1 / §3.6).
    #[must_use]
    pub fn flits(&self) -> usize {
        match self {
            // Header-only messages.
            Payload::ReadReq { .. }
            | Payload::GrantUpgrade { .. }
            | Payload::WordWriteAck { .. }
            | Payload::Inv { .. }
            | Payload::WbReq
            | Payload::WbNack
            | Payload::DramFetch => 1,
            // Header + one word.
            Payload::WriteReq { .. } | Payload::WordReadReply { .. } => 2,
            // Header + full line.
            Payload::GrantLine { .. }
            | Payload::WbData { .. }
            | Payload::DramData { .. }
            | Payload::DramWriteBack { .. } => 9,
            // Header only when clean; header + line when dirty.
            Payload::InvAck { dirty, .. } | Payload::EvictNotify { dirty, .. } => {
                if *dirty {
                    9
                } else {
                    1
                }
            }
        }
    }
}

/// A message in flight (or queued at its destination).
#[derive(Clone, PartialEq, Debug)]
pub struct Message {
    /// Sending tile.
    pub src: CoreId,
    /// Destination tile.
    pub dst: CoreId,
    /// The cache line concerned.
    pub line: LineAddr,
    /// Payload.
    pub payload: Payload,
    /// Cycle at which the message was injected.
    pub sent: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_sizes_match_table1() {
        let h = RequestHints::default();
        assert_eq!(Payload::ReadReq { hints: h, word: 0, instr: false }.flits(), 1);
        assert_eq!(Payload::WriteReq { hints: h, word: 0, value: 0 }.flits(), 2);
        assert_eq!(
            Payload::GrantLine {
                mesi: MesiState::Shared,
                data: LineData::zeroed(),
                ann: LatencyAnnotation::default()
            }
            .flits(),
            9,
            "header + 8 data flits for a 64-byte line"
        );
        assert_eq!(
            Payload::WordReadReply { value: 0, ann: LatencyAnnotation::default() }.flits(),
            2
        );
        assert_eq!(Payload::Inv { back: false }.flits(), 1);
        // §3.6: the utilization counter rides the header — a clean ack or
        // notify is a single flit.
        assert_eq!(
            Payload::InvAck { util: 3, dirty: false, data: LineData::zeroed(), back: false }
                .flits(),
            1
        );
        assert_eq!(
            Payload::InvAck { util: 3, dirty: true, data: LineData::zeroed(), back: false }.flits(),
            9
        );
        assert_eq!(
            Payload::EvictNotify { util: 1, dirty: false, data: LineData::zeroed() }.flits(),
            1
        );
        assert_eq!(Payload::DramFetch.flits(), 1);
        assert_eq!(Payload::DramData { data: LineData::zeroed() }.flits(), 9);
    }
}
