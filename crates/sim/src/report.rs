//! Simulation results: everything the paper's figures consume.

use lacc_cache::SlabStats;
use lacc_dram::DramStats;
use lacc_energy::EnergyCounts;
use lacc_model::{CompletionBreakdown, Cycle, EnergyBreakdown, MissStats, UtilizationHistogram};
use lacc_network::NetStats;

use crate::monitor::MonitorReport;

/// Protocol-level event counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProtocolStats {
    /// Whole-line grants to private sharers.
    pub line_grants: u64,
    /// Upgrade grants.
    pub upgrades: u64,
    /// Remote word reads served at the L2.
    pub word_reads: u64,
    /// Remote word writes served at the L2.
    pub word_writes: u64,
    /// Remote→private promotions.
    pub promotions: u64,
    /// Private→remote demotions.
    pub demotions: u64,
    /// Invalidation messages sent (unicast count + one per broadcast).
    pub invalidations_sent: u64,
    /// Broadcast invalidation rounds.
    pub broadcasts: u64,
    /// Synchronous write-backs (owner downgrades).
    pub write_backs: u64,
    /// L1 eviction notifies processed.
    pub evictions: u64,
    /// Inclusive-L2 back-invalidation rounds.
    pub l2_evictions: u64,
}

/// Full result of one simulation run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Parallel-region completion time: the maximum core finish time.
    pub completion_time: Cycle,
    /// Per-core completion breakdowns (§4.4).
    pub per_core: Vec<CompletionBreakdown>,
    /// Sum of the per-core breakdowns (the Figure 9 stack).
    pub breakdown: CompletionBreakdown,
    /// Dynamic energy by component (the Figure 8 stack).
    pub energy: EnergyBreakdown,
    /// Raw energy-event ledger.
    pub energy_counts: EnergyCounts,
    /// Aggregate L1-D hit/miss statistics with miss classes (Figure 10).
    pub l1d: MissStats,
    /// Aggregate L1-I statistics.
    pub l1i: MissStats,
    /// Utilization histogram of invalidated lines (Figure 1).
    pub inval_histogram: UtilizationHistogram,
    /// Utilization histogram of evicted lines (Figure 2).
    pub evict_histogram: UtilizationHistogram,
    /// Network traffic counters.
    pub net: NetStats,
    /// DRAM traffic counters.
    pub dram: DramStats,
    /// Protocol event counters.
    pub protocol: ProtocolStats,
    /// Instructions executed across all cores.
    pub instructions: u64,
    /// Coherence-monitor outcome.
    pub monitor: MonitorReport,
    /// Data-slab copy accounting: how often line bytes were actually
    /// copied vs aliased on the simulator's data plane (also printed by
    /// the `LACC_SIM_STATS=1` dump).
    pub slab: SlabStats,
}

impl SimReport {
    /// L1-D miss rate in percent (the Figure 10 y-axis).
    #[must_use]
    pub fn l1d_miss_rate_pct(&self) -> f64 {
        self.l1d.miss_rate() * 100.0
    }

    /// Total dynamic energy in picojoules.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.energy.total()
    }

    /// The `LACC_SIM_STATS=1` data-plane ledger as one intact line.
    ///
    /// `Simulator::run` used to print this to stderr itself, which tore
    /// and interleaved lines under parallel sweeps (`--jobs N`) and
    /// sharded runs; the ledger now travels only through
    /// [`SimReport::slab`] and the sweep aggregator emits this line in
    /// submission order. `live`/`total_refs` are derived from the
    /// ledger's invariants (`live = allocs + cow_clones - frees`,
    /// `total_refs = allocs + cow_clones + retains - releases`), which
    /// the slab's proptests pin.
    #[must_use]
    pub fn sim_stats_line(&self) -> String {
        let s = &self.slab;
        format!(
            "[lacc-sim-stats] workload={} slab: allocs={} retains={} releases={} frees={} \
             cow_clones={} bytes_copied={} bytes_aliased={} live={} total_refs={}",
            self.workload,
            s.allocs,
            s.retains,
            s.releases,
            s.frees,
            s.cow_clones,
            s.bytes_copied,
            s.bytes_aliased,
            s.allocs + s.cow_clones - s.frees,
            s.allocs + s.cow_clones + s.retains - s.releases,
        )
    }

    /// A compact one-line summary for harness output.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<14} time={:>10} cyc  energy={:>12.0} pJ  l1d-miss={:>6.2}%  word-misses={}  checked={}",
            self.workload,
            self.completion_time,
            self.total_energy(),
            self.l1d_miss_rate_pct(),
            self.l1d.of(lacc_model::MissClass::Word),
            if self.monitor.violations == 0 { "ok" } else { "VIOLATED" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_mentions_workload_and_status() {
        let r = SimReport {
            workload: "demo".into(),
            completion_time: 1000,
            per_core: vec![],
            breakdown: CompletionBreakdown::default(),
            energy: EnergyBreakdown::default(),
            energy_counts: EnergyCounts::default(),
            l1d: MissStats::default(),
            l1i: MissStats::default(),
            inval_histogram: UtilizationHistogram::new(),
            evict_histogram: UtilizationHistogram::new(),
            net: NetStats::default(),
            dram: DramStats::default(),
            protocol: ProtocolStats::default(),
            instructions: 0,
            monitor: MonitorReport::default(),
            slab: SlabStats::default(),
        };
        let s = r.summary();
        assert!(s.contains("demo"));
        assert!(s.contains("checked=ok"));
    }
}
