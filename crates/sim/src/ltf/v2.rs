//! LTF version 2: delta-compressed per-core op streams.
//!
//! Version 2 keeps the v1 container byte-for-byte (magic, header, region
//! table, fixed-width core offset table) and changes only the per-core op
//! encoding, trading a little encoder/decoder state for a much denser
//! stream:
//!
//! - **Line-delta addresses.** Memory traffic is overwhelmingly local:
//!   consecutive accesses land on the same or nearby cache lines even
//!   though the absolute addresses sit gigabytes up the 48-bit space
//!   (where every v1 address varint costs 4–6 bytes). v2 encodes each
//!   load/store address as a single *packed* varint
//!   `zigzag(line − prev_line) · 64 + offset_in_line`: the signed-zigzag
//!   line delta in the high bits, the byte offset within the 64-byte line
//!   in the low six. A same-line access is one byte; a stride of a few
//!   lines is two.
//! - **Region-relative base.** `prev_line` starts at the first line of
//!   the header's first non-instruction [`RegionDecl`] (or 0 when there
//!   is none), so the first access of every core pays only its distance
//!   from the region table the file already carries — no per-stream
//!   preamble, and the writer stays single-pass.
//! - **Run-length compute.** Consecutive identical `Compute(n)` ops
//!   collapse into one `COMPUTE_RUN` record carrying a repeat count
//!   (bounded by [`MAX_RUN`] so a corrupt count cannot amplify without
//!   limit).
//! - **Single-byte immediates.** The tag byte has 256 values and v1 used
//!   seven, so v2 spends the rest on the hot cases: `Compute(1..=8)` is
//!   one byte, and a word-aligned load or store whose line delta fits
//!   ±7 lines packs its whole address *into the tag* (the sequential and
//!   strided walks that dominate the suite become one byte per load).
//! - **Fixed-width store values.** Store values are data, not structure —
//!   the suite's are uniform random `u64`s, which a varint *expands* to
//!   ten bytes. v2 stores them as eight raw little-endian bytes.
//!
//! Decoding is total, like v1: every arithmetic step wraps and every
//! operand is bounds-checked, so corrupt or truncated input yields a
//! typed [`TraceError`], never a panic — the every-prefix sweep in
//! `tests/ltf_robustness.rs` runs the whole format through a debug build.
//!
//! ```text
//! stream  := op* 0x00                              ; one per core
//! op      := 0x01 varint(n)                        ; Compute(n)
//!          | 0x02 varint(n) varint(repeat)         ; Compute(n) × repeat, 2..=MAX_RUN
//!          | 0x03 varint(packed)                   ; Load
//!          | 0x04 varint(packed) u64le(value)      ; Store
//!          | 0x05 varint(id)                       ; Barrier
//!          | 0x06 varint(id)                       ; Acquire
//!          | 0x07 varint(id)                       ; Release
//!          | 0x08 + (n-1)                          ; Compute(n), n in 1..=8
//!          | 0x10 + imm                            ; Load, imm in 0..=111
//!          | 0x80 + imm, u64le(value)              ; Store, imm in 0..=111
//! packed  := zigzag(line - prev_line) * 64 + (addr mod 64)
//! imm     := zigzag(line - prev_line) * 8 + (addr mod 64) / 8
//!                                                  ; only when addr ≡ 0 (mod 8)
//!                                                  ; and zigzag(delta) ≤ 13
//! zigzag  := 2·d when d ≥ 0, -2·d - 1 when d < 0   ; two's-complement d
//! ```
//!
//! Tags `0xF0..=0xFF` are undefined and decode to
//! [`TraceError::BadOpCode`]. After every load/store — packed or
//! immediate — `prev_line` becomes the line just accessed. Because
//! [`Addr`] is 48 bits, lines fit in 42 bits and a packed value in 49,
//! so the packing can never overflow a `u64`.

use lacc_core::rnuca::RegionClass;
use lacc_model::addr::{LINE_BYTES, LINE_SHIFT};
use lacc_model::{Addr, TraceError};

use crate::trace::{RegionDecl, TraceOp};

use super::varint;

/// End-of-stream marker terminating each per-core v2 op stream.
pub const OP2_END: u8 = 0x00;
/// A single `Compute(n)`.
pub const OP2_COMPUTE: u8 = 0x01;
/// `repeat` consecutive `Compute(n)` ops in one record.
pub const OP2_COMPUTE_RUN: u8 = 0x02;
/// A load with a packed line-delta address.
pub const OP2_LOAD: u8 = 0x03;
/// A store with a packed line-delta address and a fixed 8-byte LE value.
pub const OP2_STORE: u8 = 0x04;
/// A barrier (same operand as v1).
pub const OP2_BARRIER: u8 = 0x05;
/// A lock acquire (same operand as v1).
pub const OP2_ACQUIRE: u8 = 0x06;
/// A lock release (same operand as v1).
pub const OP2_RELEASE: u8 = 0x07;
/// First of eight immediate-compute tags: tag `0x08 + k` is
/// `Compute(k + 1)` in one byte.
pub const OP2_COMPUTE_IMM: u8 = 0x08;
/// First of [`IMM_SPAN`] immediate-load tags: tag `0x10 + imm` is a load
/// whose whole word-aligned, near-delta address is the tag (see the
/// module grammar).
pub const OP2_LOAD_IMM: u8 = 0x10;
/// First of [`IMM_SPAN`] immediate-store tags (followed by the fixed
/// 8-byte value).
pub const OP2_STORE_IMM: u8 = 0x80;
/// Largest `Compute(n)` an immediate-compute tag can carry.
pub const IMM_COMPUTE_MAX: u32 = 8;
/// Number of immediate address values (`imm` in `0..IMM_SPAN`): zigzag
/// line deltas `0..=13` × 8 words.
pub const IMM_SPAN: u8 = 112;

/// Last immediate-compute tag (`Compute(IMM_COMPUTE_MAX)`).
const IMM_COMPUTE_LAST: u8 = OP2_LOAD_IMM - 1;
/// Last immediate-load tag.
const IMM_LOAD_LAST: u8 = OP2_LOAD_IMM + IMM_SPAN - 1;
/// Last immediate-store tag.
const IMM_STORE_LAST: u8 = OP2_STORE_IMM + IMM_SPAN - 1;

/// Longest compute run a single `COMPUTE_RUN` record may claim. Bounds
/// the op-amplification of one record, so eager decoders cannot be blown
/// up by a corrupt repeat count.
pub const MAX_RUN: u64 = 1 << 16;

/// The shared starting value of `prev_line`: the first line of the first
/// non-instruction region declaration, or 0 when there is none. Writer
/// and reader both derive it from the region table, so it costs no
/// stream bytes.
#[must_use]
pub fn base_line(regions: &[RegionDecl]) -> u64 {
    regions
        .iter()
        .find(|r| !matches!(r.class, RegionClass::Instruction))
        .map_or(0, |r| r.first_line.raw())
}

/// Maps a two's-complement delta onto small unsigned values
/// (0, -1, 1, -2, … → 0, 1, 2, 3, …).
#[must_use]
#[inline]
pub fn zigzag(delta: u64) -> u64 {
    let d = delta as i64;
    (d.wrapping_shl(1) ^ (d >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
#[inline]
pub fn unzigzag(z: u64) -> u64 {
    (z >> 1) ^ 0u64.wrapping_sub(z & 1)
}

/// Streaming v2 op encoder for one core's stream.
///
/// Feed every op through [`push`](V2Encoder::push) and call
/// [`finish`](V2Encoder::finish) before writing the end marker — a
/// pending compute run is held back until the encoder sees what follows
/// it.
#[derive(Debug)]
pub struct V2Encoder {
    prev_line: u64,
    run: Option<(u32, u64)>,
}

impl V2Encoder {
    /// Starts a stream whose first address is relative to `base_line`
    /// (see [`base_line`]).
    #[must_use]
    pub fn new(base_line: u64) -> Self {
        V2Encoder { prev_line: base_line, run: None }
    }

    /// Appends the encoding of `op` to `out`. May emit nothing (a compute
    /// run still accumulating) or a previous run plus this op.
    pub fn push(&mut self, op: TraceOp, out: &mut Vec<u8>) {
        if let TraceOp::Compute(n) = op {
            if let Some((run_n, count)) = &mut self.run {
                if *run_n == n && *count < MAX_RUN {
                    *count += 1;
                    return;
                }
            }
            self.finish(out);
            self.run = Some((n, 1));
            return;
        }
        self.finish(out);
        match op {
            TraceOp::Compute(_) => unreachable!("handled above"),
            TraceOp::Load { addr } => {
                self.push_access(OP2_LOAD, OP2_LOAD_IMM, addr, out);
            }
            TraceOp::Store { addr, value } => {
                self.push_access(OP2_STORE, OP2_STORE_IMM, addr, out);
                out.extend_from_slice(&value.to_le_bytes());
            }
            TraceOp::Barrier { id } => {
                out.push(OP2_BARRIER);
                varint::encode(u64::from(id), out);
            }
            TraceOp::Acquire { id } => {
                out.push(OP2_ACQUIRE);
                varint::encode(u64::from(id), out);
            }
            TraceOp::Release { id } => {
                out.push(OP2_RELEASE);
                varint::encode(u64::from(id), out);
            }
        }
    }

    /// Flushes a pending compute run. Must be called after the last op of
    /// the stream (pushing any non-compute op flushes implicitly).
    pub fn finish(&mut self, out: &mut Vec<u8>) {
        match self.run.take() {
            None => {}
            // Up to two small computes are cheaper as immediate tags than
            // as a three-byte run record.
            Some((n, count)) if (1..=IMM_COMPUTE_MAX).contains(&n) && count <= 2 => {
                for _ in 0..count {
                    out.push(OP2_COMPUTE_IMM + (n as u8 - 1));
                }
            }
            Some((n, 1)) => {
                out.push(OP2_COMPUTE);
                varint::encode(u64::from(n), out);
            }
            Some((n, count)) => {
                out.push(OP2_COMPUTE_RUN);
                varint::encode(u64::from(n), out);
                varint::encode(count, out);
            }
        }
    }

    /// Encodes the address of one load/store, picking the immediate tag
    /// when it fits (word-aligned, zigzag delta ≤ 13) and the general
    /// `tag + varint(packed)` form otherwise.
    fn push_access(&mut self, tag: u8, imm_base: u8, addr: Addr, out: &mut Vec<u8>) {
        let raw = addr.raw();
        let line = raw >> LINE_SHIFT;
        let offset = raw & (LINE_BYTES - 1);
        let z = zigzag(line.wrapping_sub(self.prev_line));
        self.prev_line = line;
        let imm = (z << 3) | (offset >> 3);
        if offset & 7 == 0 && imm < u64::from(IMM_SPAN) {
            out.push(imm_base + imm as u8);
        } else {
            out.push(tag);
            // 42-bit lines keep zigzag(delta) << 6 well inside a u64.
            varint::encode((z << LINE_SHIFT) | offset, out);
        }
    }
}

/// Streaming v2 op decoder for one core's stream: the exact inverse of
/// [`V2Encoder`], total over arbitrary input.
#[derive(Debug)]
pub struct V2Decoder {
    prev_line: u64,
    /// `(n, remaining)` of a compute run still being emitted.
    run: Option<(u32, u64)>,
}

impl V2Decoder {
    /// Starts decoding a stream written against `base_line`.
    #[must_use]
    pub fn new(base_line: u64) -> Self {
        V2Decoder { prev_line: base_line, run: None }
    }

    /// Decodes the next op from `bytes` at `*pos`, advancing `*pos` past
    /// the bytes consumed; `Ok(None)` is the end-of-stream marker.
    ///
    /// # Errors
    ///
    /// [`TraceError::Truncated`] mid-record, [`TraceError::BadOpCode`] on
    /// an undefined tag, [`TraceError::Corrupt`] when an operand is out
    /// of range (32-bit overflow, run length outside `2..=MAX_RUN`),
    /// [`TraceError::OverlongVarint`] on an over-long scalar.
    #[inline]
    pub fn next(&mut self, bytes: &[u8], pos: &mut usize) -> Result<Option<TraceOp>, TraceError> {
        if let Some((n, remaining)) = &mut self.run {
            let op = TraceOp::Compute(*n);
            *remaining -= 1;
            if *remaining == 0 {
                self.run = None;
            }
            return Ok(Some(op));
        }
        let op = match take_u8(bytes, pos, "opcode")? {
            OP2_END => return Ok(None),
            OP2_COMPUTE => TraceOp::Compute(take_u32(bytes, pos, "compute count")?),
            OP2_COMPUTE_RUN => {
                let n = take_u32(bytes, pos, "compute count")?;
                let repeat = varint::take(bytes, pos, "compute run length")?;
                if !(2..=MAX_RUN).contains(&repeat) {
                    return Err(TraceError::Corrupt { what: "compute run length out of range" });
                }
                self.run = Some((n, repeat - 1));
                TraceOp::Compute(n)
            }
            OP2_LOAD => TraceOp::Load { addr: self.take_addr(bytes, pos, "load address")? },
            OP2_STORE => {
                let addr = self.take_addr(bytes, pos, "store address")?;
                let value = take_value(bytes, pos)?;
                TraceOp::Store { addr, value }
            }
            OP2_BARRIER => TraceOp::Barrier { id: take_u32(bytes, pos, "barrier id")? },
            OP2_ACQUIRE => TraceOp::Acquire { id: take_u32(bytes, pos, "lock id")? },
            OP2_RELEASE => TraceOp::Release { id: take_u32(bytes, pos, "lock id")? },
            tag @ OP2_COMPUTE_IMM..=IMM_COMPUTE_LAST => {
                TraceOp::Compute(u32::from(tag - OP2_COMPUTE_IMM) + 1)
            }
            tag @ OP2_LOAD_IMM..=IMM_LOAD_LAST => {
                TraceOp::Load { addr: self.imm_addr(tag - OP2_LOAD_IMM) }
            }
            tag @ OP2_STORE_IMM..=IMM_STORE_LAST => {
                let addr = self.imm_addr(tag - OP2_STORE_IMM);
                let value = take_value(bytes, pos)?;
                TraceOp::Store { addr, value }
            }
            code => return Err(TraceError::BadOpCode { code }),
        };
        Ok(Some(op))
    }

    /// Batched [`next`](Self::next): decodes up to `max` ops into `out`,
    /// returning the number appended and whether the end marker was
    /// reached. This is the decode loop behind the trace cursors'
    /// `next_ops` — it lives here so the cursor position stays in a
    /// local across the whole batch instead of bouncing through a
    /// field on every op.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`next`](Self::next).
    #[inline]
    pub fn next_batch(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
        out: &mut Vec<TraceOp>,
        max: usize,
    ) -> Result<(usize, bool), TraceError> {
        // Decode against a local copy of the delta state: a stack-local
        // decoder is scalarized into registers, where the `&mut self`
        // fields would be re-loaded around every `out` write.
        let mut dec = V2Decoder { ..*self };
        let mut p = *pos;
        let mut appended = 0;
        let mut end = false;
        let mut err = None;
        // Ops land in `out`'s spare capacity a chunk at a time, with the
        // length committed once per chunk, so the hot loop carries no
        // per-op length store or growth branch.
        const CHUNK: usize = 64;
        while appended < max && !end && err.is_none() {
            let want = (max - appended).min(CHUNK);
            out.reserve(want);
            let len = out.len();
            // Slicing to `want` up front turns the per-op indexing into a
            // check the optimizer can hoist out of the loop.
            let spare = &mut out.spare_capacity_mut()[..want];
            let mut filled = 0;
            while filled < want {
                // Immediate-compute tags are half of a typical stream and
                // touch no decoder state (no delta, no pending run), so
                // emit them straight from the peeked tag byte.
                if dec.run.is_none() {
                    if let Some(&tag @ OP2_COMPUTE_IMM..=IMM_COMPUTE_LAST) = bytes.get(p) {
                        p += 1;
                        spare[filled].write(TraceOp::Compute(u32::from(tag - OP2_COMPUTE_IMM) + 1));
                        filled += 1;
                        continue;
                    }
                }
                match dec.next(bytes, &mut p) {
                    Ok(Some(op)) => {
                        spare[filled].write(op);
                        filled += 1;
                    }
                    Ok(None) => {
                        end = true;
                        break;
                    }
                    Err(e) => {
                        err = Some(e);
                        break;
                    }
                }
            }
            // SAFETY: the first `filled` spare slots were just written.
            unsafe { out.set_len(len + filled) };
            appended += filled;
        }
        *self = dec;
        *pos = p;
        match err {
            Some(e) => Err(e),
            None => Ok((appended, end)),
        }
    }

    fn take_addr(
        &mut self,
        bytes: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<Addr, TraceError> {
        let packed = varint::take(bytes, pos, what)?;
        // Wrapping throughout: a corrupt packed value must decode to
        // *some* address, never trip debug overflow checks.
        let line = self.prev_line.wrapping_add(unzigzag(packed >> LINE_SHIFT));
        self.prev_line = line;
        Ok(Addr::new((line << LINE_SHIFT) | (packed & (LINE_BYTES - 1))))
    }

    /// Reconstructs a word-aligned near address from an immediate tag
    /// payload (`imm = zigzag(delta)·8 + word`).
    #[inline]
    fn imm_addr(&mut self, imm: u8) -> Addr {
        let line = self.prev_line.wrapping_add(unzigzag(u64::from(imm) >> 3));
        self.prev_line = line;
        Addr::new((line << LINE_SHIFT) | (u64::from(imm & 7) << 3))
    }
}

#[inline]
fn take_u8(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u8, TraceError> {
    match bytes.get(*pos) {
        Some(&b) => {
            *pos += 1;
            Ok(b)
        }
        None => Err(TraceError::Truncated { what }),
    }
}

#[inline]
fn take_u32(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, TraceError> {
    u32::try_from(varint::take(bytes, pos, what)?)
        .map_err(|_| TraceError::Corrupt { what: "32-bit operand overflows" })
}

/// Reads a store value: eight raw little-endian bytes.
#[inline]
fn take_value(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let start = (*pos).min(bytes.len());
    match bytes.get(start..start + 8) {
        Some(chunk) => {
            *pos = start + 8;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(chunk);
            Ok(u64::from_le_bytes(raw))
        }
        None => Err(TraceError::Truncated { what: "store value" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_core::rnuca::RegionClass;
    use lacc_model::{CoreId, LineAddr};

    fn round_trip(base: u64, ops: &[TraceOp]) -> Vec<u8> {
        let mut enc = V2Encoder::new(base);
        let mut bytes = Vec::new();
        for &op in ops {
            enc.push(op, &mut bytes);
        }
        enc.finish(&mut bytes);
        bytes.push(OP2_END);

        let mut dec = V2Decoder::new(base);
        let mut pos = 0;
        let mut decoded = Vec::new();
        while let Some(op) = dec.next(&bytes, &mut pos).unwrap() {
            decoded.push(op);
        }
        assert_eq!(decoded, ops);
        assert_eq!(pos, bytes.len(), "decoder consumed the whole stream");
        bytes
    }

    #[test]
    fn zigzag_known_vectors() {
        for (d, z) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
            assert_eq!(zigzag(d as u64), z);
            assert_eq!(unzigzag(z), d as u64);
        }
        assert_eq!(unzigzag(zigzag(u64::MAX)), u64::MAX);
        assert_eq!(unzigzag(zigzag(i64::MIN as u64)), i64::MIN as u64);
    }

    #[test]
    fn every_op_kind_round_trips() {
        round_trip(
            0x41,
            &[
                TraceOp::Compute(7),
                TraceOp::Load { addr: Addr::new(0x1040) },
                TraceOp::Store { addr: Addr::new(0x1048), value: u64::MAX },
                TraceOp::Load { addr: Addr::new(0x10) },
                TraceOp::Barrier { id: 3 },
                TraceOp::Acquire { id: 9 },
                TraceOp::Release { id: 9 },
                TraceOp::Compute(u32::MAX),
            ],
        );
    }

    #[test]
    fn near_aligned_access_is_one_byte() {
        // prev_line == accessed line, word-aligned: the tag is the op.
        let mut enc = V2Encoder::new(0x41);
        let mut bytes = Vec::new();
        enc.push(TraceOp::Load { addr: Addr::new(0x1048) }, &mut bytes);
        assert_eq!(bytes, [OP2_LOAD_IMM + 1], "zigzag(0)·8 + word 1");
        // Next line, word 0: still immediate.
        enc.push(TraceOp::Load { addr: Addr::new(0x1080) }, &mut bytes);
        assert_eq!(bytes[1..], [OP2_LOAD_IMM + 0x10], "zigzag(+1)·8 + word 0");
        // An unaligned byte offset falls back to the general form.
        enc.push(TraceOp::Load { addr: Addr::new(0x1081) }, &mut bytes);
        assert_eq!(bytes[2..], [OP2_LOAD, 0x01]);
    }

    #[test]
    fn small_computes_use_immediate_tags() {
        // One or two small computes: immediate bytes. Three identical:
        // a run record. A large count: the plain varint record.
        let one = round_trip(0, &[TraceOp::Compute(1)]);
        assert_eq!(one, [OP2_COMPUTE_IMM, OP2_END]);
        let two = round_trip(0, &[TraceOp::Compute(8), TraceOp::Compute(8)]);
        assert_eq!(two, [OP2_COMPUTE_IMM + 7, OP2_COMPUTE_IMM + 7, OP2_END]);
        let big = round_trip(0, &[TraceOp::Compute(9)]);
        assert_eq!(big, [OP2_COMPUTE, 9, OP2_END]);
    }

    #[test]
    fn compute_runs_collapse_and_split() {
        // Three identical computes: one run record. A differing count
        // breaks the run; the single small compute becomes an immediate.
        let bytes = round_trip(
            0,
            &[
                TraceOp::Compute(5),
                TraceOp::Compute(5),
                TraceOp::Compute(5),
                TraceOp::Compute(6),
                TraceOp::Load { addr: Addr::new(0) },
            ],
        );
        assert_eq!(bytes[0], OP2_COMPUTE_RUN);
        assert_eq!(&bytes[1..3], &[5, 3], "n = 5, repeat = 3");
        assert_eq!(bytes[3], OP2_COMPUTE_IMM + 5);
    }

    #[test]
    fn runs_longer_than_the_cap_split_into_records() {
        let ops = vec![TraceOp::Compute(1); MAX_RUN as usize + 5];
        let bytes = round_trip(0, &ops);
        // One full run record plus one 5-run record plus the end marker.
        assert_eq!(bytes.iter().filter(|&&b| b == OP2_COMPUTE_RUN).count(), 2);
    }

    #[test]
    fn far_jumps_round_trip() {
        // Worst-case 48-bit jumps in both directions, unaligned offsets.
        round_trip(
            0,
            &[
                TraceOp::Load { addr: Addr::new((1 << 48) - 1) },
                TraceOp::Store { addr: Addr::new(3), value: 0 },
                TraceOp::Load { addr: Addr::new((1 << 47) + 13) },
            ],
        );
    }

    #[test]
    fn base_line_skips_instruction_regions() {
        let r = |line: u64, class| RegionDecl { first_line: LineAddr::new(line), lines: 1, class };
        assert_eq!(base_line(&[]), 0);
        assert_eq!(base_line(&[r(7, RegionClass::Instruction)]), 0);
        assert_eq!(
            base_line(&[
                r(7, RegionClass::Instruction),
                r(0x41, RegionClass::Shared),
                r(0x99, RegionClass::PrivateTo(CoreId::new(0))),
            ]),
            0x41
        );
    }

    #[test]
    fn corrupt_run_lengths_are_typed() {
        for repeat in [0u64, 1, MAX_RUN + 1] {
            let mut bytes = vec![OP2_COMPUTE_RUN, 1];
            varint::encode(repeat, &mut bytes);
            bytes.push(OP2_END);
            let mut dec = V2Decoder::new(0);
            let mut pos = 0;
            assert_eq!(
                dec.next(&bytes, &mut pos).unwrap_err(),
                TraceError::Corrupt { what: "compute run length out of range" },
                "repeat = {repeat}"
            );
        }
    }

    #[test]
    fn worked_example_from_the_docs() {
        // The docs/LTF.md worked example: base line 0x41, then
        // Load 0x1048 / Store 0x1087=5 / Compute(2)×2.
        let mut enc = V2Encoder::new(0x41);
        let mut bytes = Vec::new();
        enc.push(TraceOp::Load { addr: Addr::new(0x1048) }, &mut bytes);
        enc.push(TraceOp::Store { addr: Addr::new(0x1087), value: 5 }, &mut bytes);
        enc.push(TraceOp::Compute(2), &mut bytes);
        enc.push(TraceOp::Compute(2), &mut bytes);
        enc.finish(&mut bytes);
        bytes.push(OP2_END);
        assert_eq!(
            bytes,
            [
                // Load: same line as the base, word 1 — immediate tag.
                OP2_LOAD_IMM + 1,
                // Store: next line but offset 7 is unaligned, so the
                // general form: zigzag(+1)·64 + 7 = 135 = 0x87 0x01.
                OP2_STORE,
                0x87,
                0x01,
                // Value 5 as eight little-endian bytes.
                0x05,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                0x00,
                // Compute(2) × 2: two immediate tags beat a run record.
                OP2_COMPUTE_IMM + 1,
                OP2_COMPUTE_IMM + 1,
                OP2_END,
            ]
        );
    }
}
