//! Streaming LTF decoding.
//!
//! [`read_workload`] is the replay entry point: it validates the entire
//! file in one buffered pass (header, region table, every op of every
//! stream), then hands back a [`Workload`] whose per-core traces are
//! [`LtfTrace`]s — each one a `BufReader` positioned at its core's stream,
//! decoding one op per [`next_op`](crate::TraceSource::next_op) call.
//! Memory stays bounded by the read buffers; the file is never slurped
//! into a `Vec`.

use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use lacc_core::rnuca::RegionClass;
use lacc_model::{Addr, CoreId, LineAddr, TraceError};

use crate::trace::{RegionDecl, TraceOp, TraceSource, Workload};

use super::varint;
use super::{
    CLASS_INSTRUCTION, CLASS_PRIVATE, CLASS_SHARED, MAGIC, MAX_CORES, MAX_NAME_LEN, MAX_REGIONS,
    OP_ACQUIRE, OP_BARRIER, OP_COMPUTE, OP_END, OP_LOAD, OP_RELEASE, OP_STORE, VERSION,
};

/// Per-core read-buffer size for streaming replay: large enough to
/// amortize syscalls, small enough that 64 cores stay within a few MiB.
const STREAM_BUF_BYTES: usize = 64 * 1024;

/// Everything an LTF header declares about its workload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LtfHeader {
    /// Workload name.
    pub name: String,
    /// Number of per-core op streams.
    pub num_cores: usize,
    /// Instruction footprint per core, in cache lines.
    pub instr_lines: u64,
    /// First line of the text segment.
    pub instr_base: LineAddr,
    /// R-NUCA oracle declarations.
    pub regions: Vec<RegionDecl>,
}

fn read_exact<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { what }
        } else {
            TraceError::from(e)
        }
    })
}

fn read_u8<R: Read + ?Sized>(r: &mut R, what: &'static str) -> Result<u8, TraceError> {
    let mut byte = [0u8; 1];
    read_exact(r, &mut byte, what)?;
    Ok(byte[0])
}

/// Decodes the header (magic through region table) from `r`, leaving the
/// cursor at the start of the core offset table.
///
/// # Errors
///
/// Any [`TraceError`] variant a malformed header can produce: wrong magic,
/// unsupported version, truncation, over-long varints, undefined region
/// class tags, out-of-range counts.
pub fn read_header<R: Read + ?Sized>(r: &mut R) -> Result<LtfHeader, TraceError> {
    let mut magic = [0u8; 8];
    read_exact(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic.to_vec() });
    }
    let version = varint::read_from(r, "version")?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let flags = varint::read_from(r, "flags")?;
    if flags != 0 {
        return Err(TraceError::Corrupt { what: "reserved flags must be zero" });
    }

    let name_len = varint::read_from(r, "name length")?;
    if name_len > MAX_NAME_LEN {
        return Err(TraceError::Corrupt { what: "name length exceeds limit" });
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    read_exact(r, &mut name_bytes, "name")?;
    let name = String::from_utf8(name_bytes).map_err(|_| TraceError::BadUtf8 { what: "name" })?;

    let num_cores = varint::read_from(r, "core count")?;
    if num_cores > MAX_CORES {
        return Err(TraceError::Corrupt { what: "core count exceeds architecture limit" });
    }
    let instr_lines = varint::read_from(r, "instruction footprint")?;
    let instr_base = LineAddr::new(varint::read_from(r, "instruction base")?);

    let num_regions = varint::read_from(r, "region count")?;
    if num_regions > MAX_REGIONS {
        return Err(TraceError::Corrupt { what: "region count exceeds limit" });
    }
    let mut regions = Vec::with_capacity(num_regions as usize);
    for _ in 0..num_regions {
        let first_line = LineAddr::new(varint::read_from(r, "region first line")?);
        let lines = varint::read_from(r, "region length")?;
        let class = match read_u8(r, "region class")? {
            CLASS_SHARED => RegionClass::Shared,
            CLASS_INSTRUCTION => RegionClass::Instruction,
            CLASS_PRIVATE => {
                let core = varint::read_from(r, "region owner core")?;
                if core >= MAX_CORES {
                    return Err(TraceError::Corrupt { what: "region owner core out of range" });
                }
                RegionClass::PrivateTo(CoreId::new(core as usize))
            }
            tag => return Err(TraceError::BadRegionClass { tag }),
        };
        regions.push(RegionDecl { first_line, lines, class });
    }

    Ok(LtfHeader { name, num_cores: num_cores as usize, instr_lines, instr_base, regions })
}

/// Reads the fixed-width core offset table that follows the header.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the table is cut short.
pub fn read_offsets<R: Read + ?Sized>(r: &mut R, num_cores: usize) -> Result<Vec<u64>, TraceError> {
    let mut offsets = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut bytes = [0u8; 8];
        read_exact(r, &mut bytes, "core offset table")?;
        offsets.push(u64::from_le_bytes(bytes));
    }
    Ok(offsets)
}

/// Decodes one op record; `Ok(None)` is the end-of-stream marker.
///
/// # Errors
///
/// [`TraceError::Truncated`] mid-record, [`TraceError::BadOpCode`] on an
/// undefined opcode, [`TraceError::Corrupt`] when a 32-bit operand
/// overflows.
pub fn decode_op<R: Read + ?Sized>(r: &mut R) -> Result<Option<TraceOp>, TraceError> {
    let read_u32 = |r: &mut R, what| -> Result<u32, TraceError> {
        u32::try_from(varint::read_from(r, what)?)
            .map_err(|_| TraceError::Corrupt { what: "32-bit operand overflows" })
    };
    let op = match read_u8(r, "opcode")? {
        OP_END => return Ok(None),
        OP_COMPUTE => TraceOp::Compute(read_u32(r, "compute count")?),
        OP_LOAD => TraceOp::Load { addr: Addr::new(varint::read_from(r, "load address")?) },
        OP_STORE => TraceOp::Store {
            addr: Addr::new(varint::read_from(r, "store address")?),
            value: varint::read_from(r, "store value")?,
        },
        OP_BARRIER => TraceOp::Barrier { id: read_u32(r, "barrier id")? },
        OP_ACQUIRE => TraceOp::Acquire { id: read_u32(r, "lock id")? },
        OP_RELEASE => TraceOp::Release { id: read_u32(r, "lock id")? },
        code => return Err(TraceError::BadOpCode { code }),
    };
    Ok(Some(op))
}

fn check_offsets(offsets: &[u64], streams_start: u64, len: u64) -> Result<(), TraceError> {
    for &offset in offsets {
        // Every stream holds at least its end marker, so a valid offset
        // points strictly inside the file, at or after the offset table.
        if offset < streams_start || offset >= len {
            return Err(TraceError::Corrupt { what: "core offset outside stream area" });
        }
    }
    Ok(())
}

/// A lazily decoded per-core trace, produced by [`read_workload`].
///
/// Implements [`TraceSource`] by decoding one op per call from its own
/// buffered file handle. The backing file was fully validated when the
/// workload was opened, so decoding cannot fail for any input that
/// existed at open time — malformed files are rejected by
/// [`read_workload`] with a typed error, never here.
#[derive(Debug)]
pub struct LtfTrace {
    reader: BufReader<std::fs::File>,
    finished: bool,
}

impl TraceSource for LtfTrace {
    /// # Panics
    ///
    /// Panics if the already-validated backing file fails to decode —
    /// only possible when it is truncated or rewritten *while the
    /// simulation replays it*. Ending the stream quietly instead would
    /// let the run complete with silently wrong statistics.
    fn next_op(&mut self) -> Option<TraceOp> {
        if self.finished {
            return None;
        }
        match decode_op(&mut self.reader) {
            Ok(Some(op)) => Some(op),
            Ok(None) => {
                self.finished = true;
                None
            }
            Err(e) => panic!("LTF file changed during replay (validated at open): {e}"),
        }
    }
}

/// Opens a `.ltf` file as a replayable [`Workload`] with streaming
/// per-core traces.
///
/// The whole file is validated first (one buffered sequential pass that
/// decodes every op and discards it), so any corruption surfaces here as
/// a typed error rather than during simulation. Each core then gets an
/// independent buffered handle positioned at its stream.
///
/// # Errors
///
/// Any [`TraceError`]: I/O failures, bad magic, unsupported version,
/// truncation anywhere, over-long varints, undefined opcodes or region
/// classes, offsets outside the file.
pub fn read_workload<P: AsRef<Path>>(path: P) -> Result<Workload, TraceError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    let len = file.metadata()?.len();
    let mut r = BufReader::with_capacity(STREAM_BUF_BYTES, file);

    let header = read_header(&mut r)?;
    let offsets = read_offsets(&mut r, header.num_cores)?;
    let streams_start = r.stream_position()?;
    check_offsets(&offsets, streams_start, len)?;

    // Validation pass: decode every stream to its end marker.
    for &offset in &offsets {
        r.seek(SeekFrom::Start(offset))?;
        while decode_op(&mut r)?.is_some() {}
    }

    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(header.num_cores);
    for &offset in &offsets {
        let file = std::fs::File::open(path)?;
        let mut reader = BufReader::with_capacity(STREAM_BUF_BYTES, file);
        reader.seek(SeekFrom::Start(offset))?;
        traces.push(Box::new(LtfTrace { reader, finished: false }));
    }

    Ok(Workload {
        name: header.name,
        traces,
        regions: header.regions,
        instr_lines: header.instr_lines,
        instr_base: header.instr_base,
    })
}

/// Decodes the header and core offset table from an in-memory LTF image.
///
/// # Errors
///
/// Same failure modes as [`read_header`] and [`read_offsets`].
pub fn read_header_bytes(bytes: &[u8]) -> Result<(LtfHeader, Vec<u64>), TraceError> {
    let mut cursor = std::io::Cursor::new(bytes);
    let header = read_header(&mut cursor)?;
    let offsets = read_offsets(&mut cursor, header.num_cores)?;
    check_offsets(&offsets, cursor.position(), bytes.len() as u64)?;
    Ok((header, offsets))
}

/// Eagerly decodes a complete in-memory LTF image: the header plus every
/// core's ops. The workhorse of round-trip and robustness tests.
///
/// # Errors
///
/// Any [`TraceError`] a malformed image can produce.
pub fn read_workload_bytes(bytes: &[u8]) -> Result<(LtfHeader, Vec<Vec<TraceOp>>), TraceError> {
    let (header, offsets) = read_header_bytes(bytes)?;
    let mut cores = Vec::with_capacity(header.num_cores);
    for &offset in &offsets {
        let mut cursor = std::io::Cursor::new(bytes);
        cursor.set_position(offset);
        let mut ops = Vec::new();
        while let Some(op) = decode_op(&mut cursor)? {
            ops.push(op);
        }
        cores.push(ops);
    }
    Ok((header, cores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltf::workload_to_ltf_bytes;
    use crate::trace::{default_instr_base, VecTrace};

    fn sample() -> Workload {
        Workload {
            name: "sample".into(),
            traces: vec![
                Box::new(VecTrace::new(vec![
                    TraceOp::Compute(7),
                    TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX },
                    TraceOp::Load { addr: Addr::new(0x1040) },
                ])),
                Box::new(VecTrace::new(vec![
                    TraceOp::Acquire { id: 1 },
                    TraceOp::Release { id: 1 },
                    TraceOp::Barrier { id: 0 },
                ])),
            ],
            regions: vec![
                RegionDecl {
                    first_line: LineAddr::new(0x41),
                    lines: 16,
                    class: RegionClass::Shared,
                },
                RegionDecl {
                    first_line: LineAddr::new(0x100),
                    lines: 4,
                    class: RegionClass::PrivateTo(CoreId::new(1)),
                },
                RegionDecl {
                    first_line: LineAddr::new(0x200),
                    lines: 2,
                    class: RegionClass::Instruction,
                },
            ],
            instr_lines: 12,
            instr_base: default_instr_base(),
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        let bytes = workload_to_ltf_bytes(sample()).unwrap();
        let (header, ops) = read_workload_bytes(&bytes).unwrap();
        assert_eq!(header.name, "sample");
        assert_eq!(header.num_cores, 2);
        assert_eq!(header.instr_lines, 12);
        assert_eq!(header.instr_base, default_instr_base());
        assert_eq!(header.regions, sample().regions);
        assert_eq!(ops[0][1], TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX });
        assert_eq!(ops[0].len(), 3);
        assert_eq!(ops[1].len(), 3);
    }

    #[test]
    fn file_round_trip_streams() {
        let path = std::env::temp_dir().join("lacc_ltf_reader_unit.ltf");
        sample().dump_ltf(&path).unwrap();
        let replayed = read_workload(&path).unwrap();
        assert_eq!(replayed.name, "sample");
        assert_eq!(replayed.active_cores(), 2);
        let mut core0 = replayed.traces.into_iter().next().unwrap();
        assert_eq!(core0.next_op(), Some(TraceOp::Compute(7)));
        assert_eq!(
            core0.next_op(),
            Some(TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX })
        );
        assert_eq!(core0.next_op(), Some(TraceOp::Load { addr: Addr::new(0x1040) }));
        assert_eq!(core0.next_op(), None);
        assert_eq!(core0.next_op(), None, "exhausted streams stay exhausted");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_core_workload_round_trips() {
        let w = Workload {
            name: "none".into(),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        let bytes = workload_to_ltf_bytes(w).unwrap();
        let (header, ops) = read_workload_bytes(&bytes).unwrap();
        assert_eq!(header.num_cores, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_workload("/nonexistent/definitely/not/here.ltf").unwrap_err();
        assert!(matches!(e, TraceError::Io { .. }));
    }
}
