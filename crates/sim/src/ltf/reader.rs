//! Zero-copy LTF decoding.
//!
//! [`read_workload`] is the replay entry point: it loads the file once
//! into a [`SharedBuf`] (an mmap on unix, a heap read elsewhere), decodes
//! and validates header, region table and every op of every stream in a
//! single pass over that buffer, then hands back a [`Workload`] whose
//! per-core traces are [`LtfTrace`]s — cheap cursors that all share the
//! one buffer and decode in place, one op (or one batch, via
//! [`next_ops`](crate::TraceSource::next_ops)) per call. Nothing is ever
//! copied out of the buffer and no per-core file handles exist; with an
//! mmap backing, untouched parts of a large trace are never even paged
//! in.
//!
//! Both format versions decode here: the header's version field selects
//! the per-stream decoder (plain v1 records or the delta-compressed
//! [`super::v2`] encoding).

use std::io::Read;
use std::path::Path;

use lacc_core::rnuca::RegionClass;
use lacc_model::{Addr, CoreId, LineAddr, TraceError};

use crate::trace::{RegionDecl, TraceOp, TraceSource, Workload};

use super::mmap::SharedBuf;
use super::v2::V2Decoder;
use super::{
    varint, CLASS_INSTRUCTION, CLASS_PRIVATE, CLASS_SHARED, MAGIC, MAX_CORES, MAX_NAME_LEN,
    MAX_REGIONS, OP_ACQUIRE, OP_BARRIER, OP_COMPUTE, OP_END, OP_LOAD, OP_RELEASE, OP_STORE,
    VERSION, VERSION_V2,
};

/// Everything an LTF header declares about its workload.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LtfHeader {
    /// Format version of the op streams (1 or 2).
    pub version: u64,
    /// Workload name.
    pub name: String,
    /// Number of per-core op streams.
    pub num_cores: usize,
    /// Instruction footprint per core, in cache lines.
    pub instr_lines: u64,
    /// First line of the text segment.
    pub instr_base: LineAddr,
    /// R-NUCA oracle declarations.
    pub regions: Vec<RegionDecl>,
}

fn read_exact<R: Read + ?Sized>(
    r: &mut R,
    buf: &mut [u8],
    what: &'static str,
) -> Result<(), TraceError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Truncated { what }
        } else {
            TraceError::from(e)
        }
    })
}

fn read_u8<R: Read + ?Sized>(r: &mut R, what: &'static str) -> Result<u8, TraceError> {
    let mut byte = [0u8; 1];
    read_exact(r, &mut byte, what)?;
    Ok(byte[0])
}

/// Decodes the header (magic through region table) from `r`, leaving the
/// cursor at the start of the core offset table. Accepts both format
/// versions — the container is identical; [`LtfHeader::version`] records
/// which stream encoding follows.
///
/// # Errors
///
/// Any [`TraceError`] variant a malformed header can produce: wrong magic,
/// unsupported version, truncation, over-long varints, undefined region
/// class tags, out-of-range counts.
pub fn read_header<R: Read + ?Sized>(r: &mut R) -> Result<LtfHeader, TraceError> {
    let mut magic = [0u8; 8];
    read_exact(r, &mut magic, "magic")?;
    if magic != MAGIC {
        return Err(TraceError::BadMagic { found: magic.to_vec() });
    }
    let version = varint::read_from(r, "version")?;
    if version != VERSION && version != VERSION_V2 {
        return Err(TraceError::UnsupportedVersion { found: version });
    }
    let flags = varint::read_from(r, "flags")?;
    if flags != 0 {
        return Err(TraceError::Corrupt { what: "reserved flags must be zero" });
    }

    let name_len = varint::read_from(r, "name length")?;
    if name_len > MAX_NAME_LEN {
        return Err(TraceError::Corrupt { what: "name length exceeds limit" });
    }
    let mut name_bytes = vec![0u8; name_len as usize];
    read_exact(r, &mut name_bytes, "name")?;
    let name = String::from_utf8(name_bytes).map_err(|_| TraceError::BadUtf8 { what: "name" })?;

    let num_cores = varint::read_from(r, "core count")?;
    if num_cores > MAX_CORES {
        return Err(TraceError::Corrupt { what: "core count exceeds architecture limit" });
    }
    let instr_lines = varint::read_from(r, "instruction footprint")?;
    let instr_base = LineAddr::new(varint::read_from(r, "instruction base")?);

    let num_regions = varint::read_from(r, "region count")?;
    if num_regions > MAX_REGIONS {
        return Err(TraceError::Corrupt { what: "region count exceeds limit" });
    }
    let mut regions = Vec::with_capacity(num_regions as usize);
    for _ in 0..num_regions {
        let first_line = LineAddr::new(varint::read_from(r, "region first line")?);
        let lines = varint::read_from(r, "region length")?;
        let class = match read_u8(r, "region class")? {
            CLASS_SHARED => RegionClass::Shared,
            CLASS_INSTRUCTION => RegionClass::Instruction,
            CLASS_PRIVATE => {
                let core = varint::read_from(r, "region owner core")?;
                if core >= MAX_CORES {
                    return Err(TraceError::Corrupt { what: "region owner core out of range" });
                }
                RegionClass::PrivateTo(CoreId::new(core as usize))
            }
            tag => return Err(TraceError::BadRegionClass { tag }),
        };
        regions.push(RegionDecl { first_line, lines, class });
    }

    Ok(LtfHeader { version, name, num_cores: num_cores as usize, instr_lines, instr_base, regions })
}

/// Reads the fixed-width core offset table that follows the header.
///
/// # Errors
///
/// [`TraceError::Truncated`] when the table is cut short.
pub fn read_offsets<R: Read + ?Sized>(r: &mut R, num_cores: usize) -> Result<Vec<u64>, TraceError> {
    let mut offsets = Vec::with_capacity(num_cores);
    for _ in 0..num_cores {
        let mut bytes = [0u8; 8];
        read_exact(r, &mut bytes, "core offset table")?;
        offsets.push(u64::from_le_bytes(bytes));
    }
    Ok(offsets)
}

/// Decodes one version-1 op record from an `io::Read`; `Ok(None)` is the
/// end-of-stream marker. Retained for incremental consumers of v1 files
/// (and as the pre-v2 per-op decode path the `ltf` benches baseline
/// against); the replay path itself decodes from shared buffers via
/// [`LtfTrace`].
///
/// # Errors
///
/// [`TraceError::Truncated`] mid-record, [`TraceError::BadOpCode`] on an
/// undefined opcode, [`TraceError::Corrupt`] when a 32-bit operand
/// overflows.
pub fn decode_op<R: Read + ?Sized>(r: &mut R) -> Result<Option<TraceOp>, TraceError> {
    let read_u32 = |r: &mut R, what| -> Result<u32, TraceError> {
        u32::try_from(varint::read_from(r, what)?)
            .map_err(|_| TraceError::Corrupt { what: "32-bit operand overflows" })
    };
    let op = match read_u8(r, "opcode")? {
        OP_END => return Ok(None),
        OP_COMPUTE => TraceOp::Compute(read_u32(r, "compute count")?),
        OP_LOAD => TraceOp::Load { addr: Addr::new(varint::read_from(r, "load address")?) },
        OP_STORE => TraceOp::Store {
            addr: Addr::new(varint::read_from(r, "store address")?),
            value: varint::read_from(r, "store value")?,
        },
        OP_BARRIER => TraceOp::Barrier { id: read_u32(r, "barrier id")? },
        OP_ACQUIRE => TraceOp::Acquire { id: read_u32(r, "lock id")? },
        OP_RELEASE => TraceOp::Release { id: read_u32(r, "lock id")? },
        code => return Err(TraceError::BadOpCode { code }),
    };
    Ok(Some(op))
}

/// Decodes one version-1 op record from `bytes` at `*pos`, advancing the
/// cursor — the slice twin of [`decode_op`].
#[inline]
fn decode_op_at(bytes: &[u8], pos: &mut usize) -> Result<Option<TraceOp>, TraceError> {
    let take_u32 = |pos: &mut usize, what| -> Result<u32, TraceError> {
        u32::try_from(varint::take(bytes, pos, what)?)
            .map_err(|_| TraceError::Corrupt { what: "32-bit operand overflows" })
    };
    let opcode = match bytes.get(*pos) {
        Some(&b) => {
            *pos += 1;
            b
        }
        None => return Err(TraceError::Truncated { what: "opcode" }),
    };
    let op = match opcode {
        OP_END => return Ok(None),
        OP_COMPUTE => TraceOp::Compute(take_u32(pos, "compute count")?),
        OP_LOAD => TraceOp::Load { addr: Addr::new(varint::take(bytes, pos, "load address")?) },
        OP_STORE => TraceOp::Store {
            addr: Addr::new(varint::take(bytes, pos, "store address")?),
            value: varint::take(bytes, pos, "store value")?,
        },
        OP_BARRIER => TraceOp::Barrier { id: take_u32(pos, "barrier id")? },
        OP_ACQUIRE => TraceOp::Acquire { id: take_u32(pos, "lock id")? },
        OP_RELEASE => TraceOp::Release { id: take_u32(pos, "lock id")? },
        code => return Err(TraceError::BadOpCode { code }),
    };
    Ok(Some(op))
}

fn check_offsets(offsets: &[u64], streams_start: u64, len: u64) -> Result<(), TraceError> {
    for &offset in offsets {
        // Every stream holds at least its end marker, so a valid offset
        // points strictly inside the file, at or after the offset table.
        if offset < streams_start || offset >= len {
            return Err(TraceError::Corrupt { what: "core offset outside stream area" });
        }
    }
    Ok(())
}

/// The per-stream op decoder for whichever format version the header
/// negotiated. v1 records are stateless; v2 carries the delta/run state.
#[derive(Debug)]
enum StreamDecoder {
    V1,
    V2(V2Decoder),
}

impl StreamDecoder {
    fn for_header(header: &LtfHeader) -> StreamDecoder {
        match header.version {
            VERSION => StreamDecoder::V1,
            _ => StreamDecoder::V2(V2Decoder::new(super::v2::base_line(&header.regions))),
        }
    }

    #[inline]
    fn next(&mut self, bytes: &[u8], pos: &mut usize) -> Result<Option<TraceOp>, TraceError> {
        match self {
            StreamDecoder::V1 => decode_op_at(bytes, pos),
            StreamDecoder::V2(dec) => dec.next(bytes, pos),
        }
    }
}

/// A lazily decoded per-core trace, produced by [`read_workload`] (or
/// [`LtfTrace::open`] for a single stream).
///
/// Implements [`TraceSource`] by decoding in place from a [`SharedBuf`]
/// all cursors of a workload share; [`next_ops`](TraceSource::next_ops)
/// amortizes the decode across a whole batch. The backing stream was
/// fully validated when the cursor was opened, so decoding cannot fail
/// for any input that existed at open time — malformed files are rejected
/// with a typed error at open, never here.
#[derive(Debug)]
pub struct LtfTrace {
    buf: SharedBuf,
    start: usize,
    base_line: u64,
    pos: usize,
    dec: StreamDecoder,
    finished: bool,
}

impl LtfTrace {
    /// Opens one validated cursor over the stream starting at byte
    /// `start` of `buf`, described by `header`: the stream is decoded to
    /// its end marker once (catching every malformation), then the
    /// cursor rewinds to the start.
    ///
    /// # Errors
    ///
    /// Any [`TraceError`] the stream's records can produce.
    pub fn open(buf: SharedBuf, start: usize, header: &LtfHeader) -> Result<LtfTrace, TraceError> {
        let mut trace = LtfTrace {
            buf,
            start,
            base_line: super::v2::base_line(&header.regions),
            pos: start,
            dec: StreamDecoder::for_header(header),
            finished: false,
        };
        while trace.try_next()?.is_some() {}
        trace.reset();
        Ok(trace)
    }

    /// Rewinds the cursor to the start of its stream (decoder state
    /// included), so the same validated stream can be replayed again.
    pub fn reset(&mut self) {
        self.pos = self.start;
        self.finished = false;
        self.dec = match self.dec {
            StreamDecoder::V1 => StreamDecoder::V1,
            StreamDecoder::V2(_) => StreamDecoder::V2(V2Decoder::new(self.base_line)),
        };
    }

    #[inline]
    fn try_next(&mut self) -> Result<Option<TraceOp>, TraceError> {
        if self.finished {
            return Ok(None);
        }
        match self.dec.next(&self.buf, &mut self.pos)? {
            Some(op) => Ok(Some(op)),
            None => {
                self.finished = true;
                Ok(None)
            }
        }
    }
}

impl TraceSource for LtfTrace {
    /// # Panics
    ///
    /// Panics if the already-validated backing buffer fails to decode —
    /// only possible for an mmap-backed buffer whose file is truncated or
    /// rewritten *while the simulation replays it*. Ending the stream
    /// quietly instead would let the run complete with silently wrong
    /// statistics.
    #[inline]
    fn next_op(&mut self) -> Option<TraceOp> {
        self.try_next()
            .unwrap_or_else(|e| panic!("LTF file changed during replay (validated at open): {e}"))
    }

    /// Batched decode straight off the shared buffer; same panic
    /// contract as [`next_op`](Self::next_op). Everything a per-op
    /// cursor pays on every call — the buffer deref (an `Arc` chase
    /// plus a backing-enum match), the version dispatch, and the cursor
    /// field write-back — is hoisted out of the loop, so the loop body
    /// is just the record decode against registers.
    #[inline]
    fn next_ops(&mut self, out: &mut Vec<TraceOp>, max: usize) -> usize {
        if self.finished {
            return 0;
        }
        let bytes: &[u8] = &self.buf;
        let mut pos = self.pos;
        let drained = match &mut self.dec {
            StreamDecoder::V1 => drain_v1(bytes, &mut pos, out, max),
            StreamDecoder::V2(dec) => dec.next_batch(bytes, &mut pos, out, max),
        };
        self.pos = pos;
        match drained {
            Ok((appended, end)) => {
                self.finished = end;
                appended
            }
            Err(e) => panic!("LTF file changed during replay (validated at open): {e}"),
        }
    }
}

/// The v1 batch loop of [`TraceSource::next_ops`]; the v2 twin lives on
/// [`V2Decoder::next_batch`] next to its delta state. Returns the number
/// of ops appended and whether the stream's end marker was reached.
fn drain_v1(
    bytes: &[u8],
    pos: &mut usize,
    out: &mut Vec<TraceOp>,
    max: usize,
) -> Result<(usize, bool), TraceError> {
    let mut p = *pos;
    let mut appended = 0;
    let mut end = false;
    while appended < max {
        match decode_op_at(bytes, &mut p)? {
            Some(op) => {
                out.push(op);
                appended += 1;
            }
            None => {
                end = true;
                break;
            }
        }
    }
    *pos = p;
    Ok((appended, end))
}

/// Opens a `.ltf` file (either format version) as a replayable
/// [`Workload`] with zero-copy per-core traces.
///
/// The file is loaded once into a [`SharedBuf`] — an mmap where
/// available, a buffered read otherwise — and validated in a single pass
/// over that buffer: header, offset table, then every op of every stream
/// exactly once ([`LtfTrace::open`] doubles as the validator), so any
/// corruption surfaces here as a typed error rather than during
/// simulation. Every core's cursor shares the one buffer.
///
/// # Errors
///
/// Any [`TraceError`]: I/O failures, bad magic, unsupported version,
/// truncation anywhere, over-long varints, undefined opcodes or region
/// classes, offsets outside the file.
pub fn read_workload<P: AsRef<Path>>(path: P) -> Result<Workload, TraceError> {
    workload_from_shared(SharedBuf::open(path)?)
}

/// [`read_workload`] for an already-loaded buffer (in-memory encoders,
/// benches, servers holding trace images).
///
/// # Errors
///
/// Same failure modes as [`read_workload`], minus the I/O.
pub fn workload_from_shared(buf: SharedBuf) -> Result<Workload, TraceError> {
    let (header, offsets) = read_header_bytes(&buf)?;
    let mut traces: Vec<Box<dyn TraceSource>> = Vec::with_capacity(header.num_cores);
    for &offset in &offsets {
        traces.push(Box::new(LtfTrace::open(buf.clone(), offset as usize, &header)?));
    }
    Ok(Workload {
        name: header.name,
        traces,
        regions: header.regions,
        instr_lines: header.instr_lines,
        instr_base: header.instr_base,
    })
}

/// Decodes the header and core offset table from an in-memory LTF image.
///
/// # Errors
///
/// Same failure modes as [`read_header`] and [`read_offsets`].
pub fn read_header_bytes(bytes: &[u8]) -> Result<(LtfHeader, Vec<u64>), TraceError> {
    let mut cursor = std::io::Cursor::new(bytes);
    let header = read_header(&mut cursor)?;
    let offsets = read_offsets(&mut cursor, header.num_cores)?;
    check_offsets(&offsets, cursor.position(), bytes.len() as u64)?;
    Ok((header, offsets))
}

/// Eagerly decodes a complete in-memory LTF image of either version: the
/// header plus every core's ops. The workhorse of round-trip and
/// robustness tests.
///
/// # Errors
///
/// Any [`TraceError`] a malformed image can produce.
pub fn read_workload_bytes(bytes: &[u8]) -> Result<(LtfHeader, Vec<Vec<TraceOp>>), TraceError> {
    let (header, offsets) = read_header_bytes(bytes)?;
    let mut cores = Vec::with_capacity(header.num_cores);
    for &offset in &offsets {
        let mut dec = StreamDecoder::for_header(&header);
        let mut pos = offset as usize;
        let mut ops = Vec::new();
        while let Some(op) = dec.next(bytes, &mut pos)? {
            ops.push(op);
        }
        cores.push(ops);
    }
    Ok((header, cores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ltf::{workload_to_ltf_bytes, workload_to_ltf_bytes_v2};
    use crate::trace::{default_instr_base, VecTrace};

    fn sample() -> Workload {
        Workload {
            name: "sample".into(),
            traces: vec![
                Box::new(VecTrace::new(vec![
                    TraceOp::Compute(7),
                    TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX },
                    TraceOp::Load { addr: Addr::new(0x1040) },
                ])),
                Box::new(VecTrace::new(vec![
                    TraceOp::Acquire { id: 1 },
                    TraceOp::Release { id: 1 },
                    TraceOp::Barrier { id: 0 },
                ])),
            ],
            regions: vec![
                RegionDecl {
                    first_line: LineAddr::new(0x41),
                    lines: 16,
                    class: RegionClass::Shared,
                },
                RegionDecl {
                    first_line: LineAddr::new(0x100),
                    lines: 4,
                    class: RegionClass::PrivateTo(CoreId::new(1)),
                },
                RegionDecl {
                    first_line: LineAddr::new(0x200),
                    lines: 2,
                    class: RegionClass::Instruction,
                },
            ],
            instr_lines: 12,
            instr_base: default_instr_base(),
        }
    }

    #[test]
    fn bytes_round_trip_exactly() {
        type Encode = fn(Workload) -> Result<Vec<u8>, TraceError>;
        for (encode, version) in [
            (workload_to_ltf_bytes as Encode, VERSION),
            (workload_to_ltf_bytes_v2 as Encode, VERSION_V2),
        ] {
            let bytes = encode(sample()).unwrap();
            let (header, ops) = read_workload_bytes(&bytes).unwrap();
            assert_eq!(header.version, version);
            assert_eq!(header.name, "sample");
            assert_eq!(header.num_cores, 2);
            assert_eq!(header.instr_lines, 12);
            assert_eq!(header.instr_base, default_instr_base());
            assert_eq!(header.regions, sample().regions);
            assert_eq!(ops[0][1], TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX });
            assert_eq!(ops[0].len(), 3);
            assert_eq!(ops[1].len(), 3);
        }
    }

    #[test]
    fn file_round_trip_streams() {
        for v2 in [false, true] {
            let path = std::env::temp_dir().join(format!("lacc_ltf_reader_unit_{v2}.ltf"));
            if v2 {
                sample().dump_ltf_v2(&path).unwrap();
            } else {
                sample().dump_ltf(&path).unwrap();
            }
            let replayed = read_workload(&path).unwrap();
            assert_eq!(replayed.name, "sample");
            assert_eq!(replayed.active_cores(), 2);
            let mut core0 = replayed.traces.into_iter().next().unwrap();
            assert_eq!(core0.next_op(), Some(TraceOp::Compute(7)));
            assert_eq!(
                core0.next_op(),
                Some(TraceOp::Store { addr: Addr::new(0x1040), value: u64::MAX })
            );
            assert_eq!(core0.next_op(), Some(TraceOp::Load { addr: Addr::new(0x1040) }));
            assert_eq!(core0.next_op(), None);
            assert_eq!(core0.next_op(), None, "exhausted streams stay exhausted");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn cursors_share_one_buffer_and_batch_decode() {
        let bytes = workload_to_ltf_bytes_v2(sample()).unwrap();
        let buf = SharedBuf::from_vec(bytes);
        let w = workload_from_shared(buf).unwrap();
        let mut ops = Vec::new();
        let mut traces = w.traces;
        assert_eq!(traces[0].next_ops(&mut ops, 100), 3, "short batch means end of stream");
        assert_eq!(ops.len(), 3);
        assert_eq!(traces[0].next_ops(&mut ops, 100), 0);
        // A bounded batch leaves the rest for the next call.
        assert_eq!(traces[1].next_ops(&mut ops, 2), 2);
        assert_eq!(traces[1].next_ops(&mut ops, 2), 1);
    }

    #[test]
    fn reset_replays_the_same_stream() {
        let bytes = workload_to_ltf_bytes_v2(sample()).unwrap();
        let (header, offsets) = read_header_bytes(&bytes).unwrap();
        let buf = SharedBuf::from_vec(bytes);
        let mut t = LtfTrace::open(buf, offsets[0] as usize, &header).unwrap();
        let first: Vec<_> = std::iter::from_fn(|| t.next_op()).collect();
        t.reset();
        let second: Vec<_> = std::iter::from_fn(|| t.next_op()).collect();
        assert_eq!(first, second);
        assert_eq!(first.len(), 3);
    }

    #[test]
    fn zero_core_workload_round_trips() {
        let w = Workload {
            name: "none".into(),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        let bytes = workload_to_ltf_bytes(w).unwrap();
        let (header, ops) = read_workload_bytes(&bytes).unwrap();
        assert_eq!(header.num_cores, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn missing_file_is_io_error() {
        let e = read_workload("/nonexistent/definitely/not/here.ltf").unwrap_err();
        assert!(matches!(e, TraceError::Io { .. }));
    }
}
