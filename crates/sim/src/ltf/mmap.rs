//! Shared immutable byte buffers backing zero-copy trace replay.
//!
//! A [`SharedBuf`] is the storage behind every
//! [`LtfTrace`](crate::ltf::LtfTrace) cursor: one refcounted, immutable
//! byte image of
//! the trace file that all per-core streams decode from in place. Opening
//! a 64-core trace therefore costs one file mapping (or one read), not 64
//! seek-positioned handles, and cloning a buffer for another cursor is an
//! `Arc` bump.
//!
//! On unix the buffer is an `mmap(2)` of the file — the kernel pages
//! trace bytes in on demand, so gigabyte traces replay without ever being
//! resident at once. The build environment has no access to the `libc`
//! crate, so the two calls needed are declared directly against the
//! platform C library (which `std` already links). Everywhere else — or
//! when the mapping fails, or when `LACC_LTF_MMAP=0` opts out — the file
//! is read into an ordinary heap allocation behind the same type.
//!
//! Mapped memory reflects the file: truncating or rewriting a trace
//! *while a simulation replays it* is as undefined as it sounds (the v1
//! reader had the same caveat with live file handles). The heap fallback
//! snapshots instead.

use std::ops::Deref;
use std::path::Path;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer: either a whole-file heap
/// read or (unix) a shared read-only file mapping.
pub struct SharedBuf(Arc<Backing>);

enum Backing {
    Heap(Vec<u8>),
    #[cfg(unix)]
    Mmap(MmapRegion),
}

impl SharedBuf {
    /// Wraps in-memory bytes (tests, benches, in-process encoders).
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        SharedBuf(Arc::new(Backing::Heap(bytes)))
    }

    /// Opens `path`, preferring an mmap on unix and falling back to a
    /// buffered whole-file read (always used when `LACC_LTF_MMAP=0`, for
    /// empty files, and on non-unix hosts).
    ///
    /// # Errors
    ///
    /// Any I/O error from opening or reading the file. A failed mapping
    /// is not an error — it falls back to the read path.
    pub fn open<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = std::fs::File::open(path.as_ref())?;
        #[cfg(unix)]
        if std::env::var("LACC_LTF_MMAP").as_deref() != Ok("0") {
            if let Some(region) = MmapRegion::map(&file) {
                return Ok(SharedBuf(Arc::new(Backing::Mmap(region))));
            }
        }
        let mut bytes = Vec::new();
        std::io::Read::read_to_end(&mut std::io::BufReader::new(file), &mut bytes)?;
        Ok(Self::from_vec(bytes))
    }

    /// Whether this buffer is an actual file mapping (unix only; the heap
    /// fallback and `from_vec` report `false`).
    #[must_use]
    pub fn is_mmap(&self) -> bool {
        #[cfg(unix)]
        {
            matches!(*self.0, Backing::Mmap(_))
        }
        #[cfg(not(unix))]
        {
            false
        }
    }
}

impl Clone for SharedBuf {
    fn clone(&self) -> Self {
        SharedBuf(Arc::clone(&self.0))
    }
}

impl Deref for SharedBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &*self.0 {
            Backing::Heap(bytes) => bytes,
            #[cfg(unix)]
            Backing::Mmap(region) => region.as_slice(),
        }
    }
}

impl std::fmt::Debug for SharedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBuf")
            .field("len", &self.len())
            .field("mmap", &self.is_mmap())
            .finish()
    }
}

/// The two calls this module needs from the platform C library, declared
/// by hand because the container has no registry access for the `libc`
/// crate. Constants are the shared Linux/macOS values for the only
/// protection/flag combination ever requested.
#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const MAP_PRIVATE: i32 = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// `MAP_FAILED`: all-ones, not null.
    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// An owned read-only private mapping of a whole file.
#[cfg(unix)]
struct MmapRegion {
    ptr: *mut std::ffi::c_void,
    len: usize,
}

// SAFETY: the region is read-only for its whole lifetime and owned by
// exactly one `Arc<Backing>`; sharing `&[u8]` views across threads is as
// safe as any other shared immutable memory.
#[cfg(unix)]
unsafe impl Send for MmapRegion {}
#[cfg(unix)]
unsafe impl Sync for MmapRegion {}

#[cfg(unix)]
impl MmapRegion {
    /// Maps `file` read-only, returning `None` on any failure (zero-size
    /// files included: `mmap` rejects empty mappings) so the caller can
    /// fall back to reading.
    fn map(file: &std::fs::File) -> Option<Self> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(file.metadata().ok()?.len()).ok()?;
        if len == 0 {
            return None;
        }
        // SAFETY: a fresh private read-only mapping of a file descriptor
        // this function verifiably owns for the duration of the call;
        // length is nonzero and the result is checked below.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return None;
        }
        Some(MmapRegion { ptr, len })
    }

    fn as_slice(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` readable bytes
        // until `Drop` unmaps it.
        unsafe { std::slice::from_raw_parts(self.ptr.cast::<u8>(), self.len) }
    }
}

#[cfg(unix)]
impl Drop for MmapRegion {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful `mmap` and are
        // unmapped exactly once.
        unsafe {
            sys::munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_matches_file_contents_and_clones_share() {
        let path = std::env::temp_dir().join("lacc_sharedbuf_unit.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();

        let buf = SharedBuf::open(&path).unwrap();
        assert_eq!(&*buf, &payload[..]);
        let clone = buf.clone();
        assert_eq!(clone.as_ptr(), buf.as_ptr(), "clones alias the same bytes");
        #[cfg(unix)]
        assert!(buf.is_mmap(), "unix opens map the file");

        std::fs::remove_file(&path).ok();
        // The mapping (or heap copy) outlives the directory entry.
        assert_eq!(clone.len(), payload.len());
        assert!(format!("{buf:?}").contains("len"));
    }

    #[test]
    fn empty_files_fall_back_to_the_heap() {
        let path = std::env::temp_dir().join("lacc_sharedbuf_empty.bin");
        std::fs::write(&path, b"").unwrap();
        let buf = SharedBuf::open(&path).unwrap();
        assert!(buf.is_empty());
        assert!(!buf.is_mmap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_vec_is_heap_backed() {
        let buf = SharedBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(&*buf, &[1, 2, 3]);
        assert!(!buf.is_mmap());
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(SharedBuf::open("/nonexistent/definitely/not/here.bin").is_err());
    }
}
