//! Serializing [`Workload`]s into LTF streams.
//!
//! The writer drains each per-core [`TraceSource`] in
//! turn, so memory stays bounded by the writer's buffer no matter how long
//! the traces are. It needs `Write + Seek` because the core offset table
//! sits in the header but stream lengths are only known after draining:
//! offsets are backpatched in place once the last stream is written.
//!
//! Both format versions share the container ([`write_workload`] emits v1,
//! [`write_workload_v2`] the delta-compressed v2); only the per-core op
//! encoding differs. See [`super::v2`] for the v2 stream encoding.

use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use lacc_core::rnuca::RegionClass;
use lacc_model::TraceError;

use crate::trace::{TraceOp, TraceSource, Workload};

use super::v2::V2Encoder;
use super::{
    varint, CLASS_INSTRUCTION, CLASS_PRIVATE, CLASS_SHARED, MAGIC, MAX_CORES, MAX_NAME_LEN,
    MAX_REGIONS, OP_ACQUIRE, OP_BARRIER, OP_COMPUTE, OP_END, OP_LOAD, OP_RELEASE, OP_STORE,
    VERSION, VERSION_V2,
};

/// What a dump wrote: per-core op counts and the encoded sizes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LtfSummary {
    /// Ops serialized for each core, in core order.
    pub ops_per_core: Vec<u64>,
    /// Encoded stream bytes for each core (op records plus the end
    /// marker; header and offset table excluded), in core order.
    pub bytes_per_core: Vec<u64>,
    /// Total bytes of the encoded file.
    pub bytes: u64,
}

impl LtfSummary {
    /// Total ops across all cores.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.ops_per_core.iter().sum()
    }
}

struct CountingWriter<'a, W: Write> {
    inner: &'a mut W,
    written: u64,
}

impl<W: Write> CountingWriter<'_, W> {
    fn put(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        self.inner.write_all(bytes)?;
        self.written += bytes.len() as u64;
        Ok(())
    }

    fn put_varint(&mut self, value: u64) -> Result<(), TraceError> {
        let mut buf = Vec::with_capacity(varint::MAX_LEN);
        varint::encode(value, &mut buf);
        self.put(&buf)
    }
}

fn encode_op(op: TraceOp, buf: &mut Vec<u8>) {
    match op {
        TraceOp::Compute(n) => {
            buf.push(OP_COMPUTE);
            varint::encode(u64::from(n), buf);
        }
        TraceOp::Load { addr } => {
            buf.push(OP_LOAD);
            varint::encode(addr.raw(), buf);
        }
        TraceOp::Store { addr, value } => {
            buf.push(OP_STORE);
            varint::encode(addr.raw(), buf);
            varint::encode(value, buf);
        }
        TraceOp::Barrier { id } => {
            buf.push(OP_BARRIER);
            varint::encode(u64::from(id), buf);
        }
        TraceOp::Acquire { id } => {
            buf.push(OP_ACQUIRE);
            varint::encode(u64::from(id), buf);
        }
        TraceOp::Release { id } => {
            buf.push(OP_RELEASE);
            varint::encode(u64::from(id), buf);
        }
    }
}

/// The per-stream op encoder for whichever format version is being
/// written. v1 records are stateless; v2 carries the delta/run state.
enum StreamEncoder {
    V1,
    V2(V2Encoder),
}

impl StreamEncoder {
    fn push(&mut self, op: TraceOp, buf: &mut Vec<u8>) {
        match self {
            StreamEncoder::V1 => encode_op(op, buf),
            StreamEncoder::V2(enc) => enc.push(op, buf),
        }
    }

    fn finish(&mut self, buf: &mut Vec<u8>) {
        match self {
            StreamEncoder::V1 => {}
            StreamEncoder::V2(enc) => enc.finish(buf),
        }
    }
}

fn write_workload_impl<W: Write + Seek>(
    out: &mut W,
    workload: Workload,
    version: u64,
) -> Result<LtfSummary, TraceError> {
    if workload.name.len() as u64 > MAX_NAME_LEN {
        return Err(TraceError::Corrupt { what: "name length exceeds limit" });
    }
    if workload.traces.len() as u64 > MAX_CORES {
        return Err(TraceError::Corrupt { what: "core count exceeds architecture limit" });
    }
    if workload.regions.len() as u64 > MAX_REGIONS {
        return Err(TraceError::Corrupt { what: "region count exceeds limit" });
    }
    let start = out.stream_position()?;
    let mut w = CountingWriter { inner: out, written: 0 };

    w.put(&MAGIC)?;
    w.put_varint(version)?;
    w.put_varint(0)?; // flags, reserved
    w.put_varint(workload.name.len() as u64)?;
    w.put(workload.name.as_bytes())?;
    w.put_varint(workload.traces.len() as u64)?;
    w.put_varint(workload.instr_lines)?;
    w.put_varint(workload.instr_base.raw())?;

    w.put_varint(workload.regions.len() as u64)?;
    for region in &workload.regions {
        w.put_varint(region.first_line.raw())?;
        w.put_varint(region.lines)?;
        match region.class {
            RegionClass::Shared => w.put(&[CLASS_SHARED])?,
            RegionClass::Instruction => w.put(&[CLASS_INSTRUCTION])?,
            RegionClass::PrivateTo(core) => {
                w.put(&[CLASS_PRIVATE])?;
                w.put_varint(core.index() as u64)?;
            }
        }
    }

    // Placeholder offset table, backpatched once stream lengths are known.
    let table_at = start + w.written;
    w.put(&vec![0u8; workload.traces.len() * 8])?;

    let base_line = super::v2::base_line(&workload.regions);
    let mut offsets = Vec::with_capacity(workload.traces.len());
    let mut ops_per_core = Vec::with_capacity(workload.traces.len());
    let mut bytes_per_core = Vec::with_capacity(workload.traces.len());
    let mut buf = Vec::with_capacity(256);
    for mut trace in workload.traces {
        offsets.push(start + w.written);
        let stream_start = w.written;
        let mut enc = match version {
            VERSION => StreamEncoder::V1,
            _ => StreamEncoder::V2(V2Encoder::new(base_line)),
        };
        let mut count = 0u64;
        while let Some(op) = trace.next_op() {
            buf.clear();
            enc.push(op, &mut buf);
            w.put(&buf)?;
            count += 1;
        }
        buf.clear();
        enc.finish(&mut buf);
        buf.push(OP_END);
        w.put(&buf)?;
        ops_per_core.push(count);
        bytes_per_core.push(w.written - stream_start);
    }

    let bytes = w.written;
    let end = start + bytes;
    out.seek(SeekFrom::Start(table_at))?;
    for offset in &offsets {
        out.write_all(&offset.to_le_bytes())?;
    }
    out.seek(SeekFrom::Start(end))?;
    out.flush()?;
    Ok(LtfSummary { ops_per_core, bytes_per_core, bytes })
}

/// Serializes `workload` to `out` in format version 1, draining every
/// trace source.
///
/// The stream is written front to back; the core offset table is
/// backpatched at the end, after which the cursor is restored to
/// end-of-stream so callers can append (nothing in version 1 does).
///
/// # Errors
///
/// [`TraceError::Io`] on any write or seek failure;
/// [`TraceError::Corrupt`] when the workload exceeds a decoder limit
/// (name over [`MAX_NAME_LEN`] bytes, more than [`MAX_CORES`] traces or
/// [`MAX_REGIONS`] regions) — the encoder refuses to produce a file the
/// reader would reject.
pub fn write_workload<W: Write + Seek>(
    out: &mut W,
    workload: Workload,
) -> Result<LtfSummary, TraceError> {
    write_workload_impl(out, workload, VERSION)
}

/// Serializes `workload` to `out` in the delta-compressed format
/// version 2 (see [`super::v2`]). Same container, same single pass, same
/// summary — typically less than half the stream bytes.
///
/// # Errors
///
/// Same failure modes as [`write_workload`].
pub fn write_workload_v2<W: Write + Seek>(
    out: &mut W,
    workload: Workload,
) -> Result<LtfSummary, TraceError> {
    write_workload_impl(out, workload, VERSION_V2)
}

/// Encodes `workload` into an in-memory version-1 LTF byte vector.
///
/// # Errors
///
/// [`TraceError::Io`] if encoding fails (it cannot for a `Vec` sink).
pub fn workload_to_ltf_bytes(workload: Workload) -> Result<Vec<u8>, TraceError> {
    let mut cursor = std::io::Cursor::new(Vec::new());
    write_workload(&mut cursor, workload)?;
    Ok(cursor.into_inner())
}

/// Encodes `workload` into an in-memory version-2 LTF byte vector.
///
/// # Errors
///
/// [`TraceError::Io`] if encoding fails (it cannot for a `Vec` sink).
pub fn workload_to_ltf_bytes_v2(workload: Workload) -> Result<Vec<u8>, TraceError> {
    let mut cursor = std::io::Cursor::new(Vec::new());
    write_workload_v2(&mut cursor, workload)?;
    Ok(cursor.into_inner())
}

impl Workload {
    /// Serializes this workload to a version-1 `.ltf` file at `path`,
    /// consuming it (the trace sources are drained).
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on file-creation or write failure.
    ///
    /// # Examples
    ///
    /// ```no_run
    /// use lacc_sim::trace::{default_instr_base, VecTrace, Workload};
    /// let w = Workload {
    ///     name: "empty".into(),
    ///     traces: vec![Box::new(VecTrace::new(vec![]))],
    ///     regions: vec![],
    ///     instr_lines: 1,
    ///     instr_base: default_instr_base(),
    /// };
    /// w.dump_ltf("empty.ltf")?;
    /// # Ok::<(), lacc_model::TraceError>(())
    /// ```
    pub fn dump_ltf<P: AsRef<Path>>(self, path: P) -> Result<LtfSummary, TraceError> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        write_workload(&mut out, self)
    }

    /// Serializes this workload to a delta-compressed version-2 `.ltf`
    /// file at `path`, consuming it. Replays identically to the v1 dump.
    ///
    /// # Errors
    ///
    /// [`TraceError::Io`] on file-creation or write failure.
    pub fn dump_ltf_v2<P: AsRef<Path>>(self, path: P) -> Result<LtfSummary, TraceError> {
        let file = std::fs::File::create(path)?;
        let mut out = std::io::BufWriter::new(file);
        write_workload_v2(&mut out, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{default_instr_base, VecTrace};
    use lacc_model::Addr;

    fn tiny_workload() -> Workload {
        Workload {
            name: "tiny".into(),
            traces: vec![
                Box::new(VecTrace::new(vec![
                    TraceOp::Compute(2),
                    TraceOp::Load { addr: Addr::new(0x80) },
                ])),
                Box::new(VecTrace::new(vec![TraceOp::Barrier { id: 0 }])),
            ],
            regions: vec![],
            instr_lines: 8,
            instr_base: default_instr_base(),
        }
    }

    #[test]
    fn bytes_start_with_magic_and_version() {
        let bytes = workload_to_ltf_bytes(tiny_workload()).unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(bytes[8], VERSION as u8);
        let bytes = workload_to_ltf_bytes_v2(tiny_workload()).unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        assert_eq!(bytes[8], VERSION_V2 as u8);
    }

    #[test]
    fn summary_counts_ops_and_bytes() {
        let bytes = workload_to_ltf_bytes(tiny_workload()).unwrap();
        let mut cursor = std::io::Cursor::new(Vec::new());
        let summary = write_workload(&mut cursor, tiny_workload()).unwrap();
        assert_eq!(summary.ops_per_core, vec![2, 1]);
        assert_eq!(summary.total_ops(), 3);
        assert_eq!(summary.bytes, bytes.len() as u64);
        // Stream bytes account for everything after the offset table.
        let header_bytes = summary.bytes - summary.bytes_per_core.iter().sum::<u64>();
        let (_, offsets) = crate::ltf::read_header_bytes(&bytes).unwrap();
        assert_eq!(header_bytes, offsets[0]);
    }

    #[test]
    fn v2_counts_the_same_ops_in_fewer_bytes() {
        let v1 = write_workload(&mut std::io::Cursor::new(Vec::new()), tiny_workload()).unwrap();
        let v2 = write_workload_v2(&mut std::io::Cursor::new(Vec::new()), tiny_workload()).unwrap();
        assert_eq!(v1.ops_per_core, v2.ops_per_core);
        assert!(v2.bytes <= v1.bytes, "v2 {} vs v1 {}", v2.bytes, v1.bytes);
    }

    #[test]
    fn workloads_beyond_decoder_limits_are_refused() {
        let oversized_name = Workload {
            name: "n".repeat(super::MAX_NAME_LEN as usize + 1),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        assert_eq!(
            workload_to_ltf_bytes(oversized_name).unwrap_err(),
            lacc_model::TraceError::Corrupt { what: "name length exceeds limit" },
        );
        // Every successful dump must decode: the exact name-length limit
        // still round-trips.
        let at_limit = Workload {
            name: "n".repeat(super::MAX_NAME_LEN as usize),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        let bytes = workload_to_ltf_bytes(at_limit).unwrap();
        assert!(crate::ltf::read_workload_bytes(&bytes).is_ok());
    }

    #[test]
    fn empty_workload_encodes() {
        let w = Workload {
            name: String::new(),
            traces: vec![],
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        let bytes = workload_to_ltf_bytes(w).unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
    }
}
