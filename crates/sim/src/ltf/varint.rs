//! LEB128 variable-length integers, the scalar encoding of LTF.
//!
//! Seven value bits per byte, least-significant group first, high bit set
//! on every byte but the last. A `u64` therefore takes 1–10 bytes; the
//! 10th byte may only carry the single remaining bit (values `0x00` or
//! `0x01`), and decoders reject anything longer or larger as
//! [`TraceError::OverlongVarint`].

use std::io::Read;

use lacc_model::TraceError;

/// Maximum encoded length of a `u64`.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `value` to `out`.
///
/// # Examples
///
/// ```
/// let mut buf = Vec::new();
/// lacc_sim::ltf::varint::encode(300, &mut buf);
/// assert_eq!(buf, [0xac, 0x02]);
/// ```
pub fn encode(mut value: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// The number of bytes [`encode`] emits for `value`.
#[must_use]
pub fn encoded_len(value: u64) -> usize {
    (64 - value.leading_zeros()).max(1).div_ceil(7) as usize
}

/// Decodes one varint from the front of `bytes`, returning the value and
/// the number of bytes consumed.
///
/// # Errors
///
/// [`TraceError::Truncated`] when `bytes` ends mid-varint,
/// [`TraceError::OverlongVarint`] when the encoding exceeds 10 bytes or
/// overflows 64 bits. `what` names the field for the error message.
pub fn decode(bytes: &[u8], what: &'static str) -> Result<(u64, usize), TraceError> {
    let mut cursor = bytes;
    let before = cursor.len();
    let value = read_from(&mut cursor, what)?;
    Ok((value, before - cursor.len()))
}

/// Decodes one varint from `bytes` at `*pos`, advancing `*pos` past the
/// bytes consumed — the cursor-style primitive the zero-copy stream
/// decoders are built on. Decoding straight off the slice (with a
/// single-byte fast path, the overwhelmingly common case in both stream
/// encodings) is what makes the v2 cursors fast; keep this free of the
/// `io::Read` machinery.
///
/// # Errors
///
/// Same failure modes as [`decode`].
#[inline]
pub fn take(bytes: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, TraceError> {
    let start = *pos;
    // Unrolled one- and two-byte fast paths: v2 packed line deltas are
    // almost always one or two groups, and the generic per-byte loop
    // costs more than the decode itself. A cursor already past the end
    // falls through to the slow path, which reports truncation.
    if let Some(&b0) = bytes.get(start) {
        if b0 & 0x80 == 0 {
            *pos = start + 1;
            return Ok(u64::from(b0));
        }
        if let Some(&b1) = bytes.get(start + 1) {
            if b1 & 0x80 == 0 {
                *pos = start + 2;
                return Ok(u64::from(b0 & 0x7f) | u64::from(b1) << 7);
            }
        }
    }
    take_multibyte(bytes, start, pos, what)
}

fn take_multibyte(
    bytes: &[u8],
    start: usize,
    pos: &mut usize,
    what: &'static str,
) -> Result<u64, TraceError> {
    // Clamp a cursor already past the end so `start + i` cannot overflow.
    let start = start.min(bytes.len());
    let mut value: u64 = 0;
    for i in 0..MAX_LEN {
        let Some(&b) = bytes.get(start + i) else {
            return Err(TraceError::Truncated { what });
        };
        if i == MAX_LEN - 1 && b > 0x01 {
            // 9 groups cover 63 bits; the 10th byte may only hold bit 63.
            return Err(TraceError::OverlongVarint { what });
        }
        value |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            *pos = start + i + 1;
            return Ok(value);
        }
    }
    Err(TraceError::OverlongVarint { what })
}

/// Reads one varint from `r`.
///
/// # Errors
///
/// Same failure modes as [`decode`], plus [`TraceError::Io`] for
/// non-EOF I/O failures.
pub fn read_from<R: Read + ?Sized>(r: &mut R, what: &'static str) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    for i in 0..MAX_LEN {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceError::Truncated { what }
            } else {
                TraceError::from(e)
            }
        })?;
        let b = byte[0];
        if i == MAX_LEN - 1 && b > 0x01 {
            // 9 groups cover 63 bits; the 10th byte may only hold bit 63.
            return Err(TraceError::OverlongVarint { what });
        }
        value |= u64::from(b & 0x7f) << (7 * i);
        if b & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(TraceError::OverlongVarint { what })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) {
        let mut buf = Vec::new();
        encode(v, &mut buf);
        assert_eq!(buf.len(), encoded_len(v), "{v}");
        let (decoded, used) = decode(&buf, "test").unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn known_vectors() {
        let mut buf = Vec::new();
        encode(0, &mut buf);
        assert_eq!(buf, [0x00]);
        buf.clear();
        encode(127, &mut buf);
        assert_eq!(buf, [0x7f]);
        buf.clear();
        encode(128, &mut buf);
        assert_eq!(buf, [0x80, 0x01]);
    }

    #[test]
    fn boundary_values_round_trip() {
        for shift in 0..64 {
            roundtrip(1u64 << shift);
            roundtrip((1u64 << shift) - 1);
        }
        roundtrip(u64::MAX);
        assert_eq!(encoded_len(u64::MAX), MAX_LEN);
    }

    #[test]
    fn truncated_input_is_typed() {
        // Continuation bit set, then nothing.
        let e = decode(&[0x80], "field").unwrap_err();
        assert_eq!(e, TraceError::Truncated { what: "field" });
        let e = decode(&[], "field").unwrap_err();
        assert_eq!(e, TraceError::Truncated { what: "field" });
    }

    #[test]
    fn overlong_input_is_typed() {
        // Eleven continuation bytes can never be a u64.
        let e = decode(&[0x80; 11], "field").unwrap_err();
        assert_eq!(e, TraceError::OverlongVarint { what: "field" });
        // Ten bytes whose last overflows bit 63.
        let mut bytes = vec![0xff; 9];
        bytes.push(0x02);
        let e = decode(&bytes, "field").unwrap_err();
        assert_eq!(e, TraceError::OverlongVarint { what: "field" });
        // u64::MAX itself is exactly representable.
        let mut max = vec![0xff; 9];
        max.push(0x01);
        assert_eq!(decode(&max, "field").unwrap(), (u64::MAX, 10));
    }

    #[test]
    fn take_advances_a_cursor() {
        let mut buf = Vec::new();
        encode(300, &mut buf);
        encode(7, &mut buf);
        let mut pos = 0;
        assert_eq!(take(&buf, &mut pos, "a").unwrap(), 300);
        assert_eq!(pos, 2);
        assert_eq!(take(&buf, &mut pos, "b").unwrap(), 7);
        assert_eq!(pos, buf.len());
        assert_eq!(take(&buf, &mut pos, "c").unwrap_err(), TraceError::Truncated { what: "c" });
        // A cursor already past the end is truncation, not a panic.
        let mut past = buf.len() + 10;
        assert!(take(&buf, &mut past, "d").is_err());
    }

    #[test]
    fn non_canonical_zero_padding_still_decodes() {
        // 0x80 0x00 is a two-byte zero: wasteful but well-formed LEB128.
        assert_eq!(decode(&[0x80, 0x00], "z").unwrap(), (0, 2));
    }
}
