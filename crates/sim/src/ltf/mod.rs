//! LACC Trace Format (LTF): durable, replayable trace files.
//!
//! The simulator normally consumes in-memory [`crate::VecTrace`]s from the
//! synthetic generators. LTF makes the same per-core instruction/memory
//! streams durable: any [`Workload`](crate::Workload) can be serialized to
//! a `.ltf` file and later replayed through a streaming
//! [`TraceSource`](crate::TraceSource) that decodes lazily with bounded
//! memory — the reproducible input artifact that trace-driven evaluation
//! (the paper's Graphite methodology) and protocol-verification workflows
//! both rely on. The full specification also lives in `docs/LTF.md`.
//!
//! Two format versions share one container. **Version 1** stores absolute
//! addresses, one self-contained record per op. **Version 2** (module
//! [`v2`]) delta-compresses the streams — signed-zigzag line deltas,
//! region-relative bases, run-length compute — to less than half the
//! bytes; the header's version field negotiates which stream encoding
//! follows, so v1 files keep decoding forever. Readers are zero-copy:
//! every per-core cursor decodes in place from one shared immutable
//! buffer (module [`mmap`]; an mmap on unix), instead of 64
//! seek-positioned file handles.
//!
//! # Format specification (container + version-1 ops)
//!
//! All multi-byte integers are **varints** (LEB128: 7 value bits per byte,
//! high bit = continuation, little-endian groups, at most 10 bytes) except
//! the core offset table, whose entries are fixed-width `u64`
//! little-endian so the writer can backpatch them after streaming.
//!
//! ```text
//! file      := magic version flags name header regions offsets stream*
//! magic     := "LACCLTF1"                      ; 8 bytes
//! version   := varint                          ; 1 or 2 (stream encoding)
//! flags     := varint                          ; reserved, must be 0
//! name      := varint(len) byte{len}           ; UTF-8 workload name
//! header    := varint(num_cores)
//!              varint(instr_lines)             ; instruction footprint
//!              varint(instr_base)              ; text-segment line number
//! regions   := varint(count) region{count}
//! region    := varint(first_line) varint(lines) class
//! class     := 0x00                            ; Shared
//!            | 0x01                            ; Instruction
//!            | 0x02 varint(core)               ; PrivateTo(core)
//! offsets   := u64le{num_cores}                ; absolute stream offsets
//! stream    := op* 0x00                        ; one per core, 0x00 = end
//! op        := 0x01 varint(n)                  ; Compute(n)
//!            | 0x02 varint(addr)               ; Load
//!            | 0x03 varint(addr) varint(value) ; Store
//!            | 0x04 varint(id)                 ; Barrier
//!            | 0x05 varint(id)                 ; Acquire
//!            | 0x06 varint(id)                 ; Release
//! ```
//!
//! When `version` is 2 the `stream` production is replaced by the
//! delta-compressed encoding specified in [`v2`]; everything before the
//! streams is byte-identical.
//!
//! Decoding is total: every malformed input — wrong magic, unknown
//! version, truncation anywhere (including mid-op), over-long varints,
//! undefined opcodes or class tags, offsets outside the file — returns a
//! typed [`TraceError`](lacc_model::TraceError) instead of panicking.
//! [`read_workload`] validates the entire file in one streaming pass
//! before handing out per-core sources, so replay itself cannot trip over
//! corruption.
//!
//! # Examples
//!
//! ```
//! use lacc_sim::ltf;
//! use lacc_sim::trace::{default_instr_base, TraceOp, VecTrace, Workload};
//! use lacc_model::Addr;
//!
//! let w = Workload {
//!     name: "doc".into(),
//!     traces: vec![Box::new(VecTrace::new(vec![
//!         TraceOp::Store { addr: Addr::new(0x40), value: 7 },
//!         TraceOp::Compute(3),
//!     ]))],
//!     regions: vec![],
//!     instr_lines: 4,
//!     instr_base: default_instr_base(),
//! };
//! let bytes = ltf::workload_to_ltf_bytes(w)?;
//! let (header, ops) = ltf::read_workload_bytes(&bytes)?;
//! assert_eq!(header.name, "doc");
//! assert_eq!(ops[0].len(), 2);
//! # Ok::<(), lacc_model::TraceError>(())
//! ```

pub mod mmap;
pub mod reader;
pub mod v2;
pub mod varint;
pub mod writer;

pub use mmap::SharedBuf;
pub use reader::{
    read_header_bytes, read_workload, read_workload_bytes, workload_from_shared, LtfHeader,
    LtfTrace,
};
pub use writer::{
    workload_to_ltf_bytes, workload_to_ltf_bytes_v2, write_workload, write_workload_v2, LtfSummary,
};

/// The 8-byte file magic ("LACCLTF" + format generation).
pub const MAGIC: [u8; 8] = *b"LACCLTF1";

/// The original format version: absolute addresses, one record per op.
pub const VERSION: u64 = 1;

/// The delta-compressed format version (see [`v2`]).
pub const VERSION_V2: u64 = 2;

/// End-of-stream marker terminating each per-core op stream.
pub const OP_END: u8 = 0x00;
/// Opcode for [`TraceOp::Compute`](crate::TraceOp::Compute).
pub const OP_COMPUTE: u8 = 0x01;
/// Opcode for [`TraceOp::Load`](crate::TraceOp::Load).
pub const OP_LOAD: u8 = 0x02;
/// Opcode for [`TraceOp::Store`](crate::TraceOp::Store).
pub const OP_STORE: u8 = 0x03;
/// Opcode for [`TraceOp::Barrier`](crate::TraceOp::Barrier).
pub const OP_BARRIER: u8 = 0x04;
/// Opcode for [`TraceOp::Acquire`](crate::TraceOp::Acquire).
pub const OP_ACQUIRE: u8 = 0x05;
/// Opcode for [`TraceOp::Release`](crate::TraceOp::Release).
pub const OP_RELEASE: u8 = 0x06;

/// Region-class tag for `RegionClass::Shared`.
pub const CLASS_SHARED: u8 = 0x00;
/// Region-class tag for `RegionClass::Instruction`.
pub const CLASS_INSTRUCTION: u8 = 0x01;
/// Region-class tag for `RegionClass::PrivateTo(core)`.
pub const CLASS_PRIVATE: u8 = 0x02;

/// Decoder limit: cores are 16-bit ids, so a header claiming more is
/// corrupt rather than merely large.
pub const MAX_CORES: u64 = 1 << 16;
/// Decoder limit on the workload-name length in bytes.
pub const MAX_NAME_LEN: u64 = 4096;
/// Decoder limit on the region-declaration count.
pub const MAX_REGIONS: u64 = 1 << 20;
