//! Failure containment in the sharded engine (`SimOptions::shards > 1`).
//!
//! The sharded run parks trace-prefetch worker threads behind bounded
//! feeds, so every abnormal exit has two new ways to go wrong: a
//! coordinator panic could leave workers parked forever (a hung thread
//! scope), and a worker panic could unwind into the scope join while the
//! coordinator is itself unwinding (an abort). These tests pin the
//! containment contract: the original panic message always propagates to
//! the caller, nothing hangs, and the sweep-pool layer above can
//! therefore name the broken job and finish the healthy ones (covered in
//! `lacc-experiments`' `sweep_pool` tests).
//!
//! Byte-exactness of healthy sharded runs is covered by the repo-level
//! `determinism` suite against the serial oracle.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lacc_model::{Addr, SystemConfig};
use lacc_sim::trace::{default_instr_base, TraceOp, TraceSource, VecTrace, Workload};
use lacc_sim::{SimOptions, Simulator};

fn workload_from(name: &str, traces: Vec<Box<dyn TraceSource>>) -> Workload {
    Workload {
        name: name.into(),
        traces,
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// A classic lock/barrier deadlock: core 0 takes the lock and waits at a
/// barrier core 1 can never reach (core 1 is queued on the lock). The
/// event queue drains with both cores blocked and the deadlock assert
/// fires on the coordinator thread — with shards > 1 that panic must
/// still unwind out cleanly (waking the parked prefetch workers on the
/// way), not hang the thread scope or abort. The test *completing* is
/// the no-hang proof.
#[test]
fn deadlock_assert_fires_cleanly_under_shards() {
    // Force the prefetch workers on: this suite exists to exercise the
    // worker shutdown paths, and the engine otherwise skips the threads
    // on a single-CPU host.
    std::env::set_var("LACC_SHARD_PREFETCH", "1");
    for shards in [2usize, 4] {
        let traces: Vec<Box<dyn TraceSource>> = vec![
            Box::new(VecTrace::new(vec![TraceOp::Acquire { id: 1 }, TraceOp::Barrier { id: 0 }])),
            Box::new(VecTrace::new(vec![TraceOp::Acquire { id: 1 }])),
            Box::new(VecTrace::new(vec![TraceOp::Compute(5)])),
            Box::new(VecTrace::new(vec![TraceOp::Compute(5)])),
        ];
        let w = workload_from("deadlock", traces);
        let opts = SimOptions { shards, ..SimOptions::default() };
        let sim = Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap();
        let payload = catch_unwind(AssertUnwindSafe(|| sim.run()))
            .expect_err("a deadlocked workload must panic");
        let msg = panic_message(&*payload);
        assert!(msg.contains("deadlock"), "shards={shards}: diagnostic survives: {msg}");
        assert!(msg.contains("[0, 1]"), "shards={shards}: names the stuck cores: {msg}");
    }
}

struct ExplodingTrace {
    remaining: u32,
}

impl TraceSource for ExplodingTrace {
    fn next_op(&mut self) -> Option<TraceOp> {
        assert!(self.remaining > 0, "synthetic trace decode failure");
        self.remaining -= 1;
        Some(if self.remaining % 3 == 0 {
            TraceOp::Load { addr: Addr::new(0x4000) }
        } else {
            TraceOp::Compute(2)
        })
    }
}

/// A trace source that panics mid-run panics on a *worker* thread under
/// shards. The worker must poison its feed (not unwind into the scope
/// join), and the coordinator's next pull re-raises with the shard id
/// and the original message — so the failure surfaces exactly like a
/// serial trace panic, just relabeled.
#[test]
fn exploding_trace_source_is_relabeled_not_hung() {
    std::env::set_var("LACC_SHARD_PREFETCH", "1");
    let traces: Vec<Box<dyn TraceSource>> = vec![
        Box::new(ExplodingTrace { remaining: 40 }),
        Box::new(VecTrace::new(vec![TraceOp::Compute(200)])),
        Box::new(VecTrace::new(vec![TraceOp::Compute(200)])),
        Box::new(VecTrace::new(vec![TraceOp::Compute(200)])),
    ];
    let w = workload_from("exploding", traces);
    let opts = SimOptions { shards: 2, ..SimOptions::default() };
    let sim = Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap();
    let payload =
        catch_unwind(AssertUnwindSafe(|| sim.run())).expect_err("the trace panic must propagate");
    let msg = panic_message(&*payload);
    assert!(msg.contains("poisoned its feed"), "relabeled by the feed: {msg}");
    assert!(msg.contains("shard 0"), "names the shard (cores 0-1 are shard 0): {msg}");
    assert!(msg.contains("synthetic trace decode failure"), "carries the cause: {msg}");
}

/// The plane's in-run self-check (`LACC_SHARD_SHADOW=1`): a reference
/// heap mirrors every push and every pop is asserted to be the exact
/// global `(cycle, seq)` minimum. Running a workload with contended
/// lines, barriers and cross-shard traffic under the oracle catches
/// ordering bugs even when they happen not to perturb the report bytes.
#[test]
fn shadow_oracle_accepts_a_contended_sharded_run() {
    std::env::set_var("LACC_SHARD_SHADOW", "1");
    let traces: Vec<Box<dyn TraceSource>> = (0..4u64)
        .map(|c| {
            let mut ops = vec![TraceOp::Barrier { id: 0 }];
            for r in 0..200 {
                ops.push(TraceOp::Store { addr: Addr::new(0x4000), value: c * 200 + r + 1 });
                ops.push(TraceOp::Load { addr: Addr::new(0x8000 + c * 64) });
                ops.push(TraceOp::Compute((c % 3) as u32 + 1));
            }
            ops.push(TraceOp::Barrier { id: 1 });
            Box::new(VecTrace::new(ops)) as Box<dyn TraceSource>
        })
        .collect();
    let w = workload_from("shadowed", traces);
    let opts = SimOptions { shards: 2, ..SimOptions::default() };
    Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap().run();
}

/// The deadlock assert under *concurrent commit*: the coordinator panics
/// while harvest-crew threads are parked on their command channels. The
/// crew shutdown guards must wake and retire them so the thread scope
/// joins and the original diagnostic propagates — the test completing is
/// the no-hang proof, exactly as for the prefetch workers above.
#[test]
fn deadlock_assert_fires_cleanly_under_concurrent_commit() {
    std::env::set_var("LACC_SHARD_PREFETCH", "1");
    let traces: Vec<Box<dyn TraceSource>> = vec![
        Box::new(VecTrace::new(vec![TraceOp::Acquire { id: 1 }, TraceOp::Barrier { id: 0 }])),
        Box::new(VecTrace::new(vec![TraceOp::Acquire { id: 1 }])),
        Box::new(VecTrace::new(vec![TraceOp::Compute(5)])),
        Box::new(VecTrace::new(vec![TraceOp::Compute(5)])),
    ];
    let w = workload_from("deadlock-crew", traces);
    let opts = SimOptions { shards: 2, concurrent_commit: true, ..SimOptions::default() };
    let sim = Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap();
    let payload =
        catch_unwind(AssertUnwindSafe(|| sim.run())).expect_err("a deadlocked workload must panic");
    let msg = panic_message(&*payload);
    assert!(msg.contains("deadlock"), "diagnostic survives the crew shutdown: {msg}");
}

/// The shadow oracle works identically under concurrent commit: pushes
/// and commits both happen coordinator-side, so the reference heap sees
/// the same stream whichever threads harvested the calendars. A
/// contended cross-shard workload with real crew threads must commit in
/// exact global `(cycle, seq)` order and drain the shadow completely
/// (the plane asserts emptiness — a lost event fails fast here).
#[test]
fn shadow_oracle_accepts_a_concurrent_commit_run() {
    std::env::set_var("LACC_SHARD_SHADOW", "1");
    let traces: Vec<Box<dyn TraceSource>> = (0..4u64)
        .map(|c| {
            let mut ops = vec![TraceOp::Barrier { id: 0 }];
            for r in 0..200 {
                ops.push(TraceOp::Store { addr: Addr::new(0x4000), value: c * 200 + r + 1 });
                ops.push(TraceOp::Load { addr: Addr::new(0x8000 + c * 64) });
                ops.push(TraceOp::Compute((c % 3) as u32 + 1));
            }
            ops.push(TraceOp::Barrier { id: 1 });
            Box::new(VecTrace::new(ops)) as Box<dyn TraceSource>
        })
        .collect();
    let w = workload_from("shadowed-crew", traces);
    let opts = SimOptions { shards: 2, concurrent_commit: true, ..SimOptions::default() };
    Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap().run();
}

/// `--shards 0` and `--shards > tiles` are forgiving: 0 means serial and
/// oversized shard counts clamp to the tile count, both reproducing the
/// serial report byte-for-byte.
#[test]
fn degenerate_shard_counts_clamp_and_match_serial() {
    let run = |shards: usize| {
        let traces: Vec<Box<dyn TraceSource>> = (0..4)
            .map(|c| {
                Box::new(VecTrace::new(vec![
                    TraceOp::Store { addr: Addr::new(0x4000), value: c + 1 },
                    TraceOp::Load { addr: Addr::new(0x4000 + 64 * c) },
                    TraceOp::Barrier { id: 0 },
                    TraceOp::Compute(10),
                ])) as Box<dyn TraceSource>
            })
            .collect();
        let w = workload_from("clamp", traces);
        let opts = SimOptions { shards, ..SimOptions::default() };
        format!(
            "{:?}",
            Simulator::with_options(SystemConfig::small_for_tests(4), w, opts).unwrap().run()
        )
    };
    let oracle = run(1);
    for shards in [0usize, 4, 64] {
        assert_eq!(run(shards), oracle, "shards={shards}");
    }
}
