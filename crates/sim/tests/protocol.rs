//! End-to-end protocol tests: every §3 behaviour observed through the
//! public simulator API, with the coherence monitor as a standing oracle.

use lacc_core::rnuca::RegionClass;
use lacc_model::config::{ClassifierConfig, MechanismKind, TrackingKind};
use lacc_model::{Addr, LineAddr, MissClass, SystemConfig};
use lacc_sim::trace::default_instr_base;
use lacc_sim::{RegionDecl, SimReport, Simulator, TraceOp, VecTrace, Workload};

fn addr(line: u64, word: u64) -> Addr {
    Addr::new(line * 64 + word * 8)
}

fn shared_region(first: u64, lines: u64) -> RegionDecl {
    RegionDecl { first_line: LineAddr::new(first), lines, class: RegionClass::Shared }
}

fn run(cfg: SystemConfig, traces: Vec<Vec<TraceOp>>, regions: Vec<RegionDecl>) -> SimReport {
    let w = Workload {
        name: "test".into(),
        traces: traces.into_iter().map(|t| Box::new(VecTrace::new(t)) as _).collect(),
        regions,
        instr_lines: 0,
        instr_base: default_instr_base(),
    };
    Simulator::new(cfg, w).expect("valid config").run()
}

#[test]
fn single_core_private_data_round_trip() {
    let mut ops = vec![TraceOp::Compute(10)];
    for i in 0..8 {
        ops.push(TraceOp::Store { addr: addr(1, i), value: 100 + i });
    }
    for i in 0..8 {
        ops.push(TraceOp::Load { addr: addr(1, i) });
    }
    let r = run(SystemConfig::small_for_tests(2), vec![ops], vec![]);
    assert_eq!(r.monitor.violations, 0);
    // One cold miss; everything else hits in the private L1.
    assert_eq!(r.l1d.total_misses(), 1);
    assert_eq!(r.l1d.of(MissClass::Cold), 1);
    assert_eq!(r.l1d.hits, 15);
    assert_eq!(r.instructions, 10 + 16);
    assert!(r.completion_time > 0);
}

#[test]
fn capacity_misses_after_working_set_overflow() {
    // small_for_tests L1D = 1 KB (16 lines); stream 64 lines twice.
    let mut ops = vec![];
    for pass in 0..2 {
        for l in 0..64 {
            ops.push(TraceOp::Load { addr: addr(l, 0) });
        }
        ops.push(TraceOp::Compute(pass + 1));
    }
    let r = run(SystemConfig::small_for_tests(2).with_pct(1), vec![ops], vec![]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.l1d.of(MissClass::Cold), 64);
    assert!(r.l1d.of(MissClass::Capacity) > 0, "second pass must re-miss");
    assert!(r.protocol.evictions > 0, "eviction notifies must flow");
}

#[test]
fn pct1_baseline_never_uses_word_accesses() {
    let mut t0 = vec![];
    let mut t1 = vec![TraceOp::Barrier { id: 0 }];
    for l in 0..32 {
        t0.push(TraceOp::Store { addr: addr(l, 0), value: l });
    }
    t0.push(TraceOp::Barrier { id: 0 });
    for l in 0..32 {
        t1.push(TraceOp::Load { addr: addr(l, 0) });
    }
    let r =
        run(SystemConfig::small_for_tests(4).with_pct(1), vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.word_reads + r.protocol.word_writes, 0, "PCT=1 is the baseline");
    assert_eq!(r.l1d.of(MissClass::Word), 0);
}

#[test]
fn writer_invalidates_reader_and_sharing_miss_follows() {
    let line = 4u64;
    // Core 0 reads; core 1 writes; core 0 reads again (sharing miss).
    let t0 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Barrier { id: 1 },
        TraceOp::Load { addr: addr(line, 0) },
    ];
    let t1 = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 0), value: 7 },
        TraceOp::Barrier { id: 1 },
    ];
    let r =
        run(SystemConfig::small_for_tests(4).with_pct(1), vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.l1d.of(MissClass::Sharing), 1, "second read of core 0");
    assert!(r.protocol.invalidations_sent >= 1);
}

#[test]
fn low_locality_sharer_is_demoted_to_word_accesses() {
    // PCT=4. Core 0 reads the line once (utilization 1), core 1's write
    // invalidates it -> demotion. Core 0's next reads are served remotely.
    let line = 8u64;
    let t0 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Barrier { id: 1 },
        TraceOp::Load { addr: addr(line, 1) }, // word miss (remote)
        TraceOp::Load { addr: addr(line, 2) }, // word miss (remote)
    ];
    let t1 = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 0), value: 9 },
        TraceOp::Barrier { id: 1 },
    ];
    let r = run(SystemConfig::small_for_tests(4), vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.demotions, 1, "core 0 demoted on invalidation with util 1");
    assert_eq!(r.protocol.word_reads, 2, "subsequent reads served at the L2");
    // First remote access is a Sharing miss; the second is a Word miss.
    assert_eq!(r.l1d.of(MissClass::Sharing), 1);
    assert_eq!(r.l1d.of(MissClass::Word), 1);
}

#[test]
fn remote_sharer_promoted_back_after_pct_accesses() {
    // After demotion, 4 remote accesses (PCT=4) promote core 0 again; the
    // 4th access returns a full line, and a 5th access hits in the L1.
    let line = 8u64;
    let t0 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Barrier { id: 1 },
        TraceOp::Load { addr: addr(line, 0) }, // remote 1
        TraceOp::Load { addr: addr(line, 1) }, // remote 2
        TraceOp::Load { addr: addr(line, 2) }, // remote 3
        TraceOp::Load { addr: addr(line, 3) }, // remote 4 -> promotion
        TraceOp::Load { addr: addr(line, 4) }, // L1 hit
    ];
    let t1 = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 7), value: 1 },
        TraceOp::Barrier { id: 1 },
    ];
    let r = run(SystemConfig::small_for_tests(4), vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.promotions, 1);
    assert_eq!(r.protocol.word_reads, 3, "three word reads before the promoting fourth");
    assert_eq!(r.l1d.hits, 1, "post-promotion access hits in L1");
}

#[test]
fn upgrade_miss_keeps_line_and_invalidates_peers() {
    let line = 3u64;
    let t0 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 0), value: 5 }, // upgrade
        TraceOp::Barrier { id: 1 },
    ];
    let t1 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Barrier { id: 1 },
        TraceOp::Load { addr: addr(line, 0) },
    ];
    let r =
        run(SystemConfig::small_for_tests(4).with_pct(1), vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.upgrades, 1, "core 0 upgrades its S copy");
    assert_eq!(r.l1d.of(MissClass::Upgrade), 1);
}

#[test]
fn ackwise_overflow_broadcasts_once() {
    // 6 readers overflow ACKwise_4; a writer then triggers one broadcast
    // and must collect exactly 6 acks.
    let n = 8;
    let line = 2u64;
    let mut traces: Vec<Vec<TraceOp>> = vec![];
    for c in 0..n {
        let mut t = vec![];
        if c < 6 {
            t.push(TraceOp::Load { addr: addr(line, c as u64) });
        }
        t.push(TraceOp::Barrier { id: 0 });
        if c == 7 {
            t.push(TraceOp::Store { addr: addr(line, 0), value: 1 });
        }
        traces.push(t);
    }
    let mut cfg = SystemConfig::small_for_tests(n).with_pct(1);
    cfg.classifier.tracking = TrackingKind::Limited { k: 3 };
    let r = run(cfg, traces, vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.broadcasts, 1, "one broadcast invalidation round");
    assert!(r.net.broadcasts >= 1);
}

#[test]
fn l2_eviction_back_invalidates_l1_copies() {
    // small_for_tests L2 = 8 KB (128 lines, 32 sets x 4 ways). One core
    // touches 8 lines that map to the same L2 set spacing... easier: touch
    // far more lines than L2 capacity and re-read the first ones.
    let mut ops = vec![];
    for l in 0..256 {
        ops.push(TraceOp::Load { addr: addr(l, 0) });
    }
    for l in 0..4 {
        ops.push(TraceOp::Load { addr: addr(l, 0) });
    }
    let r = run(SystemConfig::small_for_tests(2).with_pct(1), vec![ops], vec![]);
    assert_eq!(r.monitor.violations, 0);
    assert!(r.protocol.l2_evictions > 0, "inclusive L2 must evict");
    assert!(r.dram.accesses >= 256, "misses go off-chip");
}

#[test]
fn dirty_data_survives_l2_eviction_round_trip() {
    // Write lines, stream past L2 capacity to force dirty write-backs,
    // read the original values back. The monitor checks every value.
    let mut ops = vec![];
    for l in 0..32 {
        ops.push(TraceOp::Store { addr: addr(l, 3), value: 0xbeef + l });
    }
    for l in 32..256 {
        ops.push(TraceOp::Load { addr: addr(l, 0) });
    }
    for l in 0..32 {
        ops.push(TraceOp::Load { addr: addr(l, 3) });
    }
    let r = run(SystemConfig::small_for_tests(2).with_pct(1), vec![ops], vec![]);
    assert_eq!(r.monitor.violations, 0);
    assert!(r.dram.bytes > 256 * 64, "write-backs add DRAM traffic");
}

#[test]
fn synchronization_time_is_attributed() {
    let t0 = vec![TraceOp::Compute(1000), TraceOp::Barrier { id: 0 }];
    let t1 = vec![TraceOp::Compute(10), TraceOp::Barrier { id: 0 }];
    let r = run(SystemConfig::small_for_tests(2), vec![t0, t1], vec![]);
    // Core 1 waits ~990 cycles at the barrier.
    assert!(r.per_core[1].synchronization >= 900, "{:?}", r.per_core[1]);
    assert_eq!(r.per_core[0].synchronization, 0);
    assert!(r.completion_time >= 1000);
}

#[test]
fn locks_serialize_critical_sections() {
    let cs = |v: u64| {
        vec![
            TraceOp::Acquire { id: 0 },
            TraceOp::Load { addr: addr(0, 0) },
            TraceOp::Store { addr: addr(0, 0), value: v },
            TraceOp::Release { id: 0 },
        ]
    };
    let r = run(
        SystemConfig::small_for_tests(4).with_pct(1),
        vec![cs(1), cs(2), cs(3), cs(4)],
        vec![shared_region(0, 8)],
    );
    assert_eq!(r.monitor.violations, 0);
    // At least some cores waited for the lock.
    assert!(r.breakdown.synchronization > 0);
}

#[test]
fn word_misses_generate_less_network_traffic_than_line_misses() {
    // The paper's central energy mechanism: a demoted (remote) sharer
    // moves 2-3 flits per miss instead of 10.
    let line = 16u64;
    let stream = |n: u64| -> Vec<TraceOp> {
        let mut t = vec![TraceOp::Load { addr: addr(line, 0) }, TraceOp::Barrier { id: 0 }];
        t.push(TraceOp::Barrier { id: 1 });
        for i in 0..n {
            t.push(TraceOp::Load { addr: addr(line, i % 8) });
        }
        t
    };
    let writer = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 0), value: 1 },
        TraceOp::Barrier { id: 1 },
    ];
    // Adaptive run: reader demoted, server at L2. nRATlevels=1 pins the
    // RAT at PCT... use defaults but many accesses so promotion happens
    // once and hits follow; compare against PCT=1 where every access after
    // each invalidation is a line move. Simpler assertion: word replies
    // exist and flit counts stay modest.
    let r =
        run(SystemConfig::small_for_tests(4), vec![stream(3), writer], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert!(r.protocol.word_reads > 0);
}

#[test]
fn instruction_fetch_models_icache() {
    let w = Workload {
        name: "ifetch".into(),
        traces: vec![Box::new(VecTrace::new(vec![TraceOp::Compute(1000)]))],
        regions: vec![],
        instr_lines: 8, // footprint: 8 lines = 64 instructions
        instr_base: default_instr_base(),
    };
    let r = Simulator::new(SystemConfig::small_for_tests(2), w).unwrap().run();
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.instructions, 1000);
    assert_eq!(r.l1i.total_misses(), 8, "footprint fits: only cold I-misses");
    assert!(r.l1i.hits > 0);
    assert!(r.energy_counts.l1i_reads >= 1000);
}

#[test]
fn instruction_footprint_larger_than_l1i_thrashes() {
    // small_for_tests L1I = 1 KB = 16 lines; footprint of 64 lines loops.
    let w = Workload {
        name: "ithrash".into(),
        traces: vec![Box::new(VecTrace::new(vec![TraceOp::Compute(2000)]))],
        regions: vec![],
        instr_lines: 64,
        instr_base: default_instr_base(),
    };
    let r = Simulator::new(SystemConfig::small_for_tests(2), w).unwrap().run();
    assert!(r.l1i.of(MissClass::Capacity) > 0, "looping footprint must thrash");
}

#[test]
fn deterministic_runs_produce_identical_reports() {
    let build = || {
        let mut t0 = vec![];
        let mut t1 = vec![];
        for l in 0..64 {
            t0.push(TraceOp::Store { addr: addr(l, 0), value: l });
            t1.push(TraceOp::Load { addr: addr(63 - l, 0) });
        }
        t0.push(TraceOp::Barrier { id: 0 });
        t1.push(TraceOp::Barrier { id: 0 });
        run(SystemConfig::small_for_tests(4), vec![t0, t1], vec![shared_region(0, 64)])
    };
    let a = build();
    let b = build();
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.energy_counts, b.energy_counts);
    assert_eq!(a.l1d, b.l1d);
    assert_eq!(a.protocol.word_reads, b.protocol.word_reads);
}

#[test]
fn one_way_protocol_never_promotes_in_system() {
    let line = 8u64;
    let mut t0 = vec![
        TraceOp::Load { addr: addr(line, 0) },
        TraceOp::Barrier { id: 0 },
        TraceOp::Barrier { id: 1 },
    ];
    for i in 0..40 {
        t0.push(TraceOp::Load { addr: addr(line, i % 8) });
    }
    let t1 = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(line, 0), value: 9 },
        TraceOp::Barrier { id: 1 },
    ];
    let mut cfg = SystemConfig::small_for_tests(4);
    cfg.classifier = ClassifierConfig { one_way: true, ..cfg.classifier };
    let r = run(cfg, vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert_eq!(r.protocol.promotions, 0, "Adapt1-way never promotes");
    assert_eq!(r.protocol.word_reads, 40, "every post-demotion access is remote");
}

#[test]
fn timestamp_classifier_runs_end_to_end() {
    let mut cfg = SystemConfig::small_for_tests(4);
    cfg.classifier = ClassifierConfig {
        mechanism: MechanismKind::Timestamp,
        tracking: TrackingKind::Complete,
        ..cfg.classifier
    };
    let mut t0 = vec![TraceOp::Load { addr: addr(5, 0) }, TraceOp::Barrier { id: 0 }];
    t0.push(TraceOp::Barrier { id: 1 });
    for i in 0..10 {
        t0.push(TraceOp::Load { addr: addr(5, i % 8) });
    }
    let t1 = vec![
        TraceOp::Barrier { id: 0 },
        TraceOp::Store { addr: addr(5, 0), value: 3 },
        TraceOp::Barrier { id: 1 },
    ];
    let r = run(cfg, vec![t0, t1], vec![shared_region(0, 64)]);
    assert_eq!(r.monitor.violations, 0);
    assert!(r.protocol.promotions >= 1, "timestamp check passes with invalid ways");
}

#[test]
fn completion_breakdown_components_are_populated() {
    let mut t0 = vec![TraceOp::Compute(100)];
    for l in 0..128 {
        t0.push(TraceOp::Load { addr: addr(l, 0) });
    }
    t0.push(TraceOp::Barrier { id: 0 });
    let t1 = vec![TraceOp::Barrier { id: 0 }];
    let r = run(SystemConfig::small_for_tests(2), vec![t0, t1], vec![]);
    let b = r.breakdown;
    assert!(b.compute > 0);
    assert!(b.l1_to_l2 > 0, "misses must accrue L1->L2 time");
    assert!(b.l2_to_offchip > 0, "cold misses go to DRAM");
    assert!(b.synchronization > 0, "core 1 waits at the barrier");
    assert_eq!(b.total(), r.per_core.iter().map(|c| c.total()).sum::<u64>());
}

#[test]
fn report_energy_matches_counts() {
    let r = run(
        SystemConfig::small_for_tests(2),
        vec![vec![TraceOp::Load { addr: addr(0, 0) }]],
        vec![],
    );
    let recomputed = lacc_energy::EnergyParams::isca13_11nm().charge(&r.energy_counts);
    assert!((recomputed.total() - r.energy.total()).abs() < 1e-9);
    assert!(r.energy.total() > 0.0);
}
