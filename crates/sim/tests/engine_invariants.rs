//! Invariants the engine refactor must preserve.
//!
//! 1. Event-queue determinism: the calendar queue yields events in exactly
//!    `(cycle, schedule order)` — property-tested against a reference
//!    `BinaryHeap<Reverse<(cycle, seq)>>` model (the structure it
//!    replaced).
//! 2. Home waiter-queue FIFO fairness under contention, observed end to
//!    end: a line hammered by every core stays coherent, charges L2
//!    waiting time, and reproduces bit-identically (the per-structure
//!    FIFO property test lives with the `Waiters` type in the engine).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use lacc_model::{Addr, SystemConfig};
use lacc_sim::engine::queue::{CalendarQueue, WINDOW};
use lacc_sim::trace::{default_instr_base, TraceOp, VecTrace, Workload};
use lacc_sim::Simulator;

#[test]
fn equal_cycle_events_fire_in_schedule_order() {
    let mut q = CalendarQueue::new();
    for id in 0..100u32 {
        q.push(42, id);
    }
    for expect in 0..100u32 {
        assert_eq!(q.pop(), Some((42, expect)));
    }
    assert!(q.is_empty());
}

proptest! {
    /// Under arbitrary interleavings of schedules (with delays spanning
    /// the near window and the far map, including zero-delay self-
    /// rescheduling) and pops, the calendar queue pops exactly what the
    /// reference heap pops.
    #[test]
    fn calendar_queue_matches_binary_heap(
        ops in proptest::collection::vec((0u64..2000, proptest::bool::ANY), 1..400)
    ) {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (delay, push) in ops {
            if push {
                q.push(now + delay, seq);
                heap.push(Reverse((now + delay, seq)));
                seq += 1;
            } else {
                let want = heap.pop().map(|Reverse((at, s))| (at, s));
                let got = q.pop();
                prop_assert_eq!(got, want);
                if let Some((at, _)) = got {
                    now = at; // time is monotonic: later pushes are >= now
                }
            }
            prop_assert_eq!(q.len(), heap.len());
        }
        // Drain what remains: total order must agree to the end.
        while let Some(Reverse(want)) = heap.pop() {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// The horizon boundary, pinned: a push at exactly `now + WINDOW`
    /// must take the far path — `near[at % WINDOW]` is the bucket
    /// currently serving `now`, so routing it near would file the event
    /// one full rotation early. This generator concentrates pushes on
    /// the three delays that straddle the boundary (plus short fillers
    /// so pops land at awkward cursor positions) and checks the total
    /// order against the reference heap.
    #[test]
    fn horizon_boundary_pushes_match_binary_heap(
        ops in proptest::collection::vec((0u8..8, proptest::bool::ANY), 1..300)
    ) {
        let w = WINDOW as u64;
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (pick, push) in ops {
            if push {
                // Mostly boundary-straddling delays, a few short ones.
                let delay = match pick {
                    0 | 1 => w - 1,
                    2 | 3 => w,
                    4 | 5 => w + 1,
                    6 => 0,
                    _ => 7,
                };
                q.push(now + delay, seq);
                heap.push(Reverse((now + delay, seq)));
                seq += 1;
            } else {
                let want = heap.pop().map(|Reverse((at, s))| (at, s));
                let got = q.pop();
                prop_assert_eq!(got, want);
                if let Some((at, _)) = got {
                    now = at;
                }
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert_eq!(q.pop(), None);
    }

    /// Bounded peeks are pure navigation: interleaving `peek_until`
    /// (the sharded plane's head race) with pushes and pops must leave
    /// the total order untouched, and each peek must report exactly the
    /// reference heap's head when it is within the bound. The regression
    /// this pins: a peek that parks the cursor without sweeping the far
    /// map lets a later near-path push at the same cycle slot in ahead
    /// of an earlier far-filed event, inverting the within-cycle seq
    /// order.
    #[test]
    fn bounded_peeks_never_disturb_the_total_order(
        ops in proptest::collection::vec((0u8..8, 0u8..4), 1..300)
    ) {
        let w = WINDOW as u64;
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for (pick, action) in ops {
            match action {
                0 | 1 => {
                    let delay = match pick {
                        0 | 1 => w - 1,
                        2 | 3 => w,
                        4 | 5 => w + 1,
                        6 => 0,
                        _ => 7,
                    };
                    // The engine never schedules behind the cursor; a
                    // parked cursor clamps the cycle like the plane's
                    // inbound diversion would.
                    let at = (now + delay).max(q.now());
                    q.push(at, seq);
                    heap.push(Reverse((at, seq)));
                    seq += 1;
                }
                2 => {
                    let want = heap.pop().map(|Reverse((at, s))| (at, s));
                    let got = q.pop();
                    prop_assert_eq!(got, want);
                    if let Some((at, _)) = got {
                        now = at;
                    }
                }
                _ => {
                    let bound = match pick {
                        0 | 1 => 0,
                        2 | 3 => 7,
                        4 | 5 => w,
                        6 => w + 1,
                        _ => 3 * w,
                    };
                    let limit = now + bound;
                    let want = heap
                        .peek()
                        .filter(|Reverse((at, _))| *at <= limit)
                        .map(|Reverse((at, s))| (*at, *s));
                    let got = q.peek_until(limit).map(|(at, &s)| (at, s));
                    prop_assert_eq!(got, want);
                }
            }
        }
        while let Some(Reverse(want)) = heap.pop() {
            prop_assert_eq!(q.pop(), Some(want));
        }
        prop_assert_eq!(q.pop(), None);
    }
}

/// Builds a workload where every core hammers one contended line (plus a
/// private line each, so caches see traffic), synchronized by a barrier.
fn contended_workload(cores: usize, rounds: usize) -> Workload {
    let hot = 0x4000u64; // one shared line
    let traces = (0..cores)
        .map(|c| {
            let mut ops = vec![TraceOp::Barrier { id: 0 }];
            for r in 0..rounds {
                ops.push(TraceOp::Store {
                    addr: Addr::new(hot),
                    value: (c * rounds + r) as u64 + 1,
                });
                ops.push(TraceOp::Load { addr: Addr::new(hot + 8) });
                ops.push(TraceOp::Load { addr: Addr::new(0x8000 + (c as u64) * 64) });
                ops.push(TraceOp::Compute(3));
            }
            Box::new(VecTrace::new(ops)) as Box<dyn lacc_sim::TraceSource>
        })
        .collect();
    Workload {
        name: "contended".into(),
        traces,
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    }
}

#[test]
fn contended_line_is_fifo_fair_coherent_and_deterministic() {
    let run = || {
        let w = contended_workload(8, 12);
        Simulator::new(SystemConfig::small_for_tests(8), w).unwrap().run()
    };
    let a = run();
    // Coherence under heavy same-line contention is exactly the property
    // FIFO waiter service protects (a starved or reordered waiter would
    // read a stale serialization).
    assert_eq!(a.monitor.violations, 0);
    assert!(a.breakdown.l2_waiting > 0, "8 cores hammering one line must queue at the home");
    // Waiter service order is part of simulated time: any nondeterminism
    // in the queues or the event order shows up here.
    let b = run();
    assert_eq!(a.completion_time, b.completion_time);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.energy_counts, b.energy_counts);
}
