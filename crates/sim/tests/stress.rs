//! Randomized whole-system stress tests.
//!
//! Property: under *any* interleaving of loads, stores, locks and barriers
//! across cores, protocols and classifier configurations, the system (1)
//! terminates (no protocol deadlock), and (2) never violates coherence —
//! every read observes the serialized value (the monitor panics otherwise).

use lacc_core::rnuca::RegionClass;
use lacc_model::config::{ClassifierConfig, DirectoryKind, MechanismKind, TrackingKind};
use lacc_model::{Addr, LineAddr, SystemConfig};
use lacc_sim::trace::default_instr_base;
use lacc_sim::{RegionDecl, Simulator, TraceOp, VecTrace, Workload};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct OpSpec {
    line: u64,
    word: u64,
    is_store: bool,
    compute: u8,
}

fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        (0u64..24, 0u64..8, proptest::bool::ANY, 0u8..4)
            .prop_map(|(line, word, is_store, compute)| OpSpec { line, word, is_store, compute }),
        1..120,
    )
}

fn arb_cfg() -> impl Strategy<Value = SystemConfig> {
    (
        1u32..6,             // pct
        0usize..3,           // tracking selector
        proptest::bool::ANY, // one_way
        proptest::bool::ANY, // timestamp vs RAT
        proptest::bool::ANY, // full map vs ackwise
    )
        .prop_map(|(pct, track, one_way, ts, fm)| {
            let mut cfg = SystemConfig::small_for_tests(4).with_pct(pct);
            cfg.classifier = ClassifierConfig {
                pct,
                tracking: match track {
                    0 => TrackingKind::Complete,
                    1 => TrackingKind::Limited { k: 1 },
                    _ => TrackingKind::Limited { k: 3 },
                },
                mechanism: if ts {
                    MechanismKind::Timestamp
                } else {
                    MechanismKind::RatLevels { levels: 2, rat_max: pct + 12 }
                },
                one_way,
                shortcut: one_way, // exercise both flags together
            };
            cfg.directory =
                if fm { DirectoryKind::FullMap } else { DirectoryKind::AckWise { pointers: 2 } };
            cfg
        })
}

fn build_traces(per_core: &[Vec<OpSpec>], with_sync: bool) -> Vec<Box<dyn lacc_sim::TraceSource>> {
    per_core
        .iter()
        .enumerate()
        .map(|(ci, specs)| {
            let mut ops: Vec<TraceOp> = Vec::new();
            for (i, s) in specs.iter().enumerate() {
                if s.compute > 0 {
                    ops.push(TraceOp::Compute(s.compute as u32));
                }
                // Occasionally wrap an access in a lock to exercise queued
                // synchronization alongside coherence traffic.
                let locked = with_sync && i % 7 == 3;
                if locked {
                    ops.push(TraceOp::Acquire { id: (s.line % 3) as u32 });
                }
                let addr = Addr::new(s.line * 64 + s.word * 8);
                if s.is_store {
                    let value = (ci as u64) << 32 | i as u64;
                    ops.push(TraceOp::Store { addr, value });
                } else {
                    ops.push(TraceOp::Load { addr });
                }
                if locked {
                    ops.push(TraceOp::Release { id: (s.line % 3) as u32 });
                }
            }
            if with_sync {
                ops.push(TraceOp::Barrier { id: 999 });
            }
            Box::new(VecTrace::new(ops)) as Box<dyn lacc_sim::TraceSource>
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random 4-core workload, on any protocol configuration,
    /// completes coherently. The monitor panics on violations, and the
    /// simulator panics on deadlock, so reaching the assertions is the
    /// property.
    #[test]
    fn random_workloads_stay_coherent(
        t0 in arb_ops(),
        t1 in arb_ops(),
        t2 in arb_ops(),
        t3 in arb_ops(),
        cfg in arb_cfg(),
        with_sync in proptest::bool::ANY,
    ) {
        let per_core = vec![t0, t1, t2, t3];
        let total_ops: usize = per_core.iter().map(Vec::len).sum();
        let w = Workload {
            name: "stress".into(),
            traces: build_traces(&per_core, with_sync),
            regions: vec![RegionDecl {
                first_line: LineAddr::new(0),
                lines: 64,
                class: RegionClass::Shared,
            }],
            instr_lines: 4,
            instr_base: default_instr_base(),
        };
        let report = Simulator::new(cfg, w).expect("valid config").run();
        prop_assert_eq!(report.monitor.violations, 0);
        prop_assert!(report.completion_time > 0 || total_ops == 0);
        // Accounting sanity: every miss is classified, accesses add up.
        prop_assert_eq!(
            report.l1d.total_accesses(),
            report.l1d.hits + report.l1d.total_misses()
        );
    }

    /// Private-only workloads on the default config never invalidate.
    #[test]
    fn disjoint_working_sets_never_share(
        t0 in arb_ops(),
        t1 in arb_ops(),
    ) {
        // Give each core its own address space (line | core << 32).
        let shift = |specs: &[OpSpec], core: u64| -> Vec<OpSpec> {
            specs.iter().map(|s| OpSpec { line: s.line + core * 4096, ..s.clone() }).collect()
        };
        let per_core = vec![shift(&t0, 0), shift(&t1, 1)];
        let w = Workload {
            name: "disjoint".into(),
            traces: build_traces(&per_core, false),
            regions: vec![],
            instr_lines: 0,
            instr_base: default_instr_base(),
        };
        let report = Simulator::new(SystemConfig::small_for_tests(4), w).unwrap().run();
        prop_assert_eq!(report.monitor.violations, 0);
        prop_assert_eq!(report.protocol.invalidations_sent, 0);
        prop_assert_eq!(report.protocol.write_backs, 0);
    }
}
