//! Property tests: LTF encoding is lossless.
//!
//! Arbitrary op sequences, region declarations and headers encode and
//! decode identically — including empty traces, zero-core workloads and
//! maximum-width varints. Sampling is deterministic (the vendored proptest
//! shim seeds from the test name), so failures reproduce exactly.

use proptest::prelude::*;

use lacc_core::rnuca::RegionClass;
use lacc_model::{Addr, CoreId, LineAddr, TraceError};
use lacc_sim::ltf::{self, varint};
use lacc_sim::trace::{default_instr_base, RegionDecl, TraceOp, VecTrace, Workload};
use lacc_sim::TraceSource;

fn arb_op() -> impl Strategy<Value = TraceOp> {
    prop_oneof![
        (0u32..100_000).prop_map(TraceOp::Compute),
        (0u64..(1u64 << 48)).prop_map(|a| TraceOp::Load { addr: Addr::new(a) }),
        ((0u64..(1u64 << 48)), (0u64..u64::MAX))
            .prop_map(|(a, v)| TraceOp::Store { addr: Addr::new(a), value: v }),
        (0u32..1_000).prop_map(|id| TraceOp::Barrier { id }),
        (0u32..1_000).prop_map(|id| TraceOp::Acquire { id }),
        (0u32..1_000).prop_map(|id| TraceOp::Release { id }),
    ]
}

fn arb_region() -> impl Strategy<Value = RegionDecl> {
    ((0u64..(1u64 << 42)), (0u64..(1u64 << 24)), (0u8..3), (0u64..256)).prop_map(
        |(first, lines, tag, core)| RegionDecl {
            first_line: LineAddr::new(first),
            lines,
            class: match tag {
                0 => RegionClass::Shared,
                1 => RegionClass::Instruction,
                _ => RegionClass::PrivateTo(CoreId::new(core as usize)),
            },
        },
    )
}

fn workload_from(
    name: String,
    cores: &[Vec<TraceOp>],
    regions: Vec<RegionDecl>,
    instr_lines: u64,
) -> Workload {
    Workload {
        name,
        traces: cores
            .iter()
            .map(|ops| Box::new(VecTrace::new(ops.clone())) as Box<dyn TraceSource>)
            .collect(),
        regions,
        instr_lines,
        instr_base: default_instr_base(),
    }
}

proptest! {
    #[test]
    fn varints_round_trip(v in prop_oneof![
        Just(0u64),
        Just(u64::MAX),                 // max-width: exactly 10 bytes
        Just(u64::MAX - 1),
        0u64..u64::MAX,
        (0u32..64).prop_map(|s| 1u64 << s),
    ]) {
        let mut buf = Vec::new();
        varint::encode(v, &mut buf);
        prop_assert!(buf.len() <= varint::MAX_LEN);
        let (decoded, used) = varint::decode(&buf, "prop").map_err(|e| {
            proptest::TestCaseError::fail(format!("{e}"))
        })?;
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(used, buf.len());
    }

    #[test]
    fn workloads_round_trip(
        cores in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..80), 0..5),
        regions in proptest::collection::vec(arb_region(), 0..10),
        instr_lines in 0u64..4096,
        name_reps in 0usize..8,
    ) {
        // Names exercise multi-byte UTF-8 (and the empty string).
        let name = "wl·π".repeat(name_reps);
        let w = workload_from(name.clone(), &cores, regions.clone(), instr_lines);
        let bytes = ltf::workload_to_ltf_bytes(w).map_err(|e| {
            proptest::TestCaseError::fail(format!("encode: {e}"))
        })?;
        let (header, decoded) = ltf::read_workload_bytes(&bytes).map_err(|e| {
            proptest::TestCaseError::fail(format!("decode: {e}"))
        })?;
        prop_assert_eq!(&header.name, &name);
        prop_assert_eq!(header.num_cores, cores.len());
        prop_assert_eq!(header.instr_lines, instr_lines);
        prop_assert_eq!(header.instr_base, default_instr_base());
        prop_assert_eq!(&header.regions, &regions);
        prop_assert_eq!(&decoded, &cores);
    }

    #[test]
    fn headers_survive_reencode(
        regions in proptest::collection::vec(arb_region(), 0..6),
        instr_lines in 0u64..1024,
    ) {
        // Encoding is deterministic: same workload, same bytes.
        let mk = || workload_from("stable".into(), &[vec![], vec![]], regions.clone(), instr_lines);
        let a = ltf::workload_to_ltf_bytes(mk()).unwrap();
        let b = ltf::workload_to_ltf_bytes(mk()).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn v2_workloads_round_trip(
        cores in proptest::collection::vec(
            proptest::collection::vec(arb_op(), 0..80), 0..5),
        regions in proptest::collection::vec(arb_region(), 0..10),
        instr_lines in 0u64..4096,
    ) {
        // The delta-compressed encoding is as lossless as v1 over the
        // same arbitrary inputs — including unaligned addresses (which
        // cannot use immediate tags) and 48-bit far jumps.
        let mk = || workload_from("wl2·π".into(), &cores, regions.clone(), instr_lines);
        let bytes = ltf::workload_to_ltf_bytes_v2(mk()).map_err(|e| {
            proptest::TestCaseError::fail(format!("encode: {e}"))
        })?;
        let (header, decoded) = ltf::read_workload_bytes(&bytes).map_err(|e| {
            proptest::TestCaseError::fail(format!("decode: {e}"))
        })?;
        prop_assert_eq!(header.version, ltf::VERSION_V2);
        prop_assert_eq!(header.num_cores, cores.len());
        prop_assert_eq!(&header.regions, &regions);
        prop_assert_eq!(&decoded, &cores);
        // Deterministic, like v1: same workload, same bytes.
        prop_assert_eq!(&ltf::workload_to_ltf_bytes_v2(mk()).unwrap(), &bytes);
    }
}

#[test]
fn extreme_operands_stream_back_from_disk() {
    // Deterministic companion to the properties: max-width varint operands
    // (and, for v2, worst-case line deltas across the whole 48-bit space)
    // written to a real file and decoded through the streaming reader.
    let ops = vec![
        TraceOp::Store { addr: Addr::new((1 << 48) - 8), value: u64::MAX },
        TraceOp::Compute(u32::MAX),
        TraceOp::Load { addr: Addr::new(0) },
        TraceOp::Barrier { id: u32::MAX },
    ];
    let w = || workload_from("extreme".into(), std::slice::from_ref(&ops), vec![], u64::MAX);
    type Dump = fn(Workload, &std::path::PathBuf) -> Result<ltf::LtfSummary, TraceError>;
    let dumps: [(Dump, &str); 2] = [(|w, p| w.dump_ltf(p), "v1"), (|w, p| w.dump_ltf_v2(p), "v2")];
    for (dump, tag) in dumps {
        let path = std::env::temp_dir().join(format!("lacc_ltf_extreme_{tag}.ltf"));
        dump(w(), &path).unwrap();

        let replayed = lacc_sim::ltf::read_workload(&path).unwrap();
        assert_eq!(replayed.instr_lines, u64::MAX, "{tag}");
        let mut trace = replayed.traces.into_iter().next().unwrap();
        for expected in &ops {
            assert_eq!(trace.next_op(), Some(*expected), "{tag}");
        }
        assert_eq!(trace.next_op(), None, "{tag}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn empty_workload_round_trips_through_disk() {
    let w = workload_from(String::new(), &[], vec![], 0);
    let path = std::env::temp_dir().join("lacc_ltf_empty.ltf");
    w.dump_ltf(&path).unwrap();
    let replayed = lacc_sim::ltf::read_workload(&path).unwrap();
    assert_eq!(replayed.name, "");
    assert_eq!(replayed.active_cores(), 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn decode_errors_are_values_not_panics() {
    // The property suite only sees valid images; pin the Result surface.
    assert!(matches!(ltf::read_workload_bytes(&[]), Err(TraceError::Truncated { .. })));
}
