//! The `LACC_SHARD_COMMIT` override: resolution happens once, at
//! simulator construction, and an unrecognized value fails fast there —
//! never a silent fall-through to a mode the user did not ask for.
//!
//! This lives in its own test binary (one `#[test]`, sequential steps)
//! because the variable is process-global: toggling it beside the other
//! sharded-engine tests would race their `with_options` calls.

use std::panic::{catch_unwind, AssertUnwindSafe};

use lacc_model::{Addr, SystemConfig};
use lacc_sim::trace::{default_instr_base, TraceOp, TraceSource, VecTrace, Workload};
use lacc_sim::{SimOptions, Simulator};

fn workload(name: &str) -> Workload {
    let traces: Vec<Box<dyn TraceSource>> = (0..4)
        .map(|c| {
            Box::new(VecTrace::new(vec![
                TraceOp::Store { addr: Addr::new(0x4000), value: c + 1 },
                TraceOp::Load { addr: Addr::new(0x4000 + 64 * c) },
                TraceOp::Barrier { id: 0 },
                TraceOp::Compute(10),
            ])) as Box<dyn TraceSource>
        })
        .collect();
    Workload {
        name: name.into(),
        traces,
        regions: vec![],
        instr_lines: 0,
        instr_base: default_instr_base(),
    }
}

fn run(name: &str, concurrent_commit: bool) -> String {
    let opts = SimOptions { shards: 2, concurrent_commit, ..SimOptions::default() };
    let sim = Simulator::with_options(SystemConfig::small_for_tests(4), workload(name), opts)
        .expect("valid config");
    format!("{:?}", sim.run())
}

#[test]
fn commit_mode_env_override_resolves_or_fails_fast() {
    // Baseline, no override: both option settings produce the serial bytes.
    std::env::remove_var("LACC_SHARD_COMMIT");
    let oracle = run("env-commit", false);
    assert_eq!(run("env-commit", true), oracle, "concurrent commit is byte-exact");

    // Explicit overrides win over the option, in both directions.
    std::env::set_var("LACC_SHARD_COMMIT", "concurrent");
    assert_eq!(run("env-commit", false), oracle, "env forces crews on");
    std::env::set_var("LACC_SHARD_COMMIT", "inline");
    assert_eq!(run("env-commit", true), oracle, "env forces crews off");

    // A typo is a construction-time panic naming the variable's contract,
    // not a silently chosen mode.
    std::env::set_var("LACC_SHARD_COMMIT", "paralel");
    let payload = catch_unwind(AssertUnwindSafe(|| run("env-commit", false)))
        .expect_err("unknown commit mode must fail fast");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| "non-string panic payload".into());
    assert!(
        msg.contains("LACC_SHARD_COMMIT") && msg.contains("paralel"),
        "diagnostic names the variable and the bad value: {msg}"
    );
    std::env::remove_var("LACC_SHARD_COMMIT");
}
