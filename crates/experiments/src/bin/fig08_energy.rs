//! Figure 8 (§5.1.1): dynamic-energy breakdown (L1-I, L1-D, L2, directory,
//! router, link) as PCT sweeps 1..8, per benchmark, normalized to PCT = 1.
//!
//! Paper anchor: at PCT 4 the mean energy across benchmarks is ~25% below
//! PCT 1; links out-contribute routers at 11 nm; directory energy is
//! negligible.

use lacc_experiments::{csv_row, mean, open_results_file, Cli, Table, FIG89_PCTS};

fn main() {
    let cli = Cli::parse();
    let jobs = FIG89_PCTS
        .iter()
        .flat_map(|&pct| {
            let cfg = cli.base_config().with_pct(pct);
            cli.benchmarks().into_iter().map(move |b| (format!("pct{pct}"), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig08_energy.csv");
    csv_row(
        &mut csv,
        &"benchmark,pct,l1i,l1d,l2,directory,router,link,total,normalized"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    println!("\nFigure 8: Energy breakdown vs PCT (normalized to PCT=1)");
    let t = Table::new(&[14, 4, 7, 7, 7, 7, 7, 7, 9]);
    t.row(
        &"benchmark,PCT,L1-I,L1-D,L2,Dir,Router,Link,Total"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();

    let mut per_pct_totals: Vec<Vec<f64>> = vec![Vec::new(); FIG89_PCTS.len()];
    for b in cli.benchmarks() {
        let base = results[&("pct1".to_string(), b.name())].energy.total();
        for (pi, &pct) in FIG89_PCTS.iter().enumerate() {
            let r = &results[&(format!("pct{pct}"), b.name())];
            let e = r.energy;
            let norm = e.total() / base.max(1e-9);
            per_pct_totals[pi].push(norm);
            let mut row = vec![b.name().to_string(), pct.to_string()];
            row.extend(e.components().iter().map(|(_, v)| format!("{:.3}", v / base.max(1e-9))));
            row.push(format!("{norm:.3}"));
            t.row(&row);
            let mut cells = vec![b.name().to_string(), pct.to_string()];
            cells.extend(e.components().iter().map(|(_, v)| format!("{v:.1}")));
            cells.push(format!("{:.1}", e.total()));
            cells.push(format!("{norm:.4}"));
            csv_row(&mut csv, &cells);
        }
        t.sep();
    }

    println!("\nAverage normalized energy per PCT (the paper plots Average, not geomean):");
    let t2 = Table::new(&[6, 10]);
    t2.row(&["PCT".to_string(), "avg".to_string()]);
    for (pi, &pct) in FIG89_PCTS.iter().enumerate() {
        t2.row(&[pct.to_string(), format!("{:.3}", mean(&per_pct_totals[pi]))]);
    }
    let at4 = mean(&per_pct_totals[3]);
    println!("\nEnergy at PCT=4 vs PCT=1: {:.1}% reduction (paper: ~25%)", 100.0 * (1.0 - at4));
}
