//! Dump any suite workload to a LACC Trace Format (`.ltf`) file.
//!
//! The dumped file is a durable, replayable artifact: feed it back through
//! `trace_replay` (or `lacc_sim::ltf::read_workload`) to reproduce the
//! exact simulation the in-memory generator would drive. See `docs/LTF.md`
//! for the format.
//!
//! ```text
//! trace_dump --bench <name> [--cores N] [--scale F] [--out PATH] [--v2] [--stats]
//! ```
//!
//! `--v2` writes the delta-compressed version-2 stream encoding (same
//! container; `trace_replay` reads either). `--stats` additionally prints
//! per-core stream sizes and the compression ratio against the v1
//! encoding of the same workload (computed in memory, nothing extra is
//! written).
//!
//! Default output path: `results/<benchmark>.ltf`.

use lacc_sim::ltf;
use lacc_workloads::Benchmark;

struct Args {
    bench: Benchmark,
    cores: usize,
    scale: f64,
    out: Option<String>,
    v2: bool,
    stats: bool,
}

fn parse_args() -> Args {
    let mut bench = None;
    let mut cores = 64;
    let mut scale = 1.0;
    let mut out = None;
    let mut v2 = false;
    let mut stats = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                bench = Some(
                    Benchmark::by_name(&args[i])
                        .unwrap_or_else(|| panic!("unknown benchmark '{}'", args[i])),
                );
            }
            "--cores" => {
                i += 1;
                cores = args[i].parse().expect("--cores takes an integer");
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            "--v2" => v2 = true,
            "--stats" => stats = true,
            other => {
                panic!("unknown flag '{other}' (try --bench/--cores/--scale/--out/--v2/--stats)")
            }
        }
        i += 1;
    }
    let bench = bench.expect(
        "usage: trace_dump --bench <name> [--cores N] [--scale F] [--out PATH] [--v2] [--stats]",
    );
    Args { bench, cores, scale, out, v2, stats }
}

fn main() {
    let args = parse_args();
    let path = args.out.clone().unwrap_or_else(|| format!("results/{}.ltf", args.bench.name()));
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    let summary = if args.v2 {
        args.bench.dump_ltf_v2(args.cores, args.scale, &path)
    } else {
        args.bench.dump_ltf(args.cores, args.scale, &path)
    }
    .unwrap_or_else(|e| panic!("dump failed: {e}"));

    let buf = ltf::SharedBuf::open(&path).expect("re-open dumped trace");
    let (header, _) = ltf::read_header_bytes(&buf).expect("dumped trace decodes");
    println!(
        "wrote {path}: workload '{}' (v{}), {} cores, {} regions, instr footprint {} lines",
        header.name,
        header.version,
        header.num_cores,
        header.regions.len(),
        header.instr_lines,
    );
    println!(
        "  {} ops total ({} bytes, {:.2} bytes/op)",
        summary.total_ops(),
        summary.bytes,
        summary.bytes as f64 / summary.total_ops().max(1) as f64,
    );

    if args.stats {
        // Re-encode the same workload as v1 in memory: the ratio below is
        // "v1 bytes / written bytes", so a v1 dump reads 1.00x and a v2
        // dump reads its real compression factor.
        let v1_bytes = ltf::workload_to_ltf_bytes(args.bench.build(args.cores, args.scale))
            .expect("in-memory v1 encode")
            .len();
        println!("  per-core stream bytes (core: bytes, bytes/op):");
        for (core, (&bytes, &ops)) in
            summary.bytes_per_core.iter().zip(summary.ops_per_core.iter()).enumerate()
        {
            println!("    {core:3}: {bytes} B, {:.2} B/op", bytes as f64 / ops.max(1) as f64);
        }
        println!(
            "  compression: {} B total vs {v1_bytes} B as v1 ({:.2}x)",
            summary.bytes,
            v1_bytes as f64 / summary.bytes.max(1) as f64,
        );
    }
}
