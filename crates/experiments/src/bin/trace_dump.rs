//! Dump any suite workload to a LACC Trace Format (`.ltf`) file.
//!
//! The dumped file is a durable, replayable artifact: feed it back through
//! `trace_replay` (or `lacc_sim::ltf::read_workload`) to reproduce the
//! exact simulation the in-memory generator would drive. See `docs/LTF.md`
//! for the format.
//!
//! ```text
//! trace_dump --bench <name> [--cores N] [--scale F] [--out PATH]
//! ```
//!
//! Default output path: `results/<benchmark>.ltf`.

use lacc_sim::ltf;
use lacc_workloads::Benchmark;

struct Args {
    bench: Benchmark,
    cores: usize,
    scale: f64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut bench = None;
    let mut cores = 64;
    let mut scale = 1.0;
    let mut out = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => {
                i += 1;
                bench = Some(
                    Benchmark::by_name(&args[i])
                        .unwrap_or_else(|| panic!("unknown benchmark '{}'", args[i])),
                );
            }
            "--cores" => {
                i += 1;
                cores = args[i].parse().expect("--cores takes an integer");
            }
            "--scale" => {
                i += 1;
                scale = args[i].parse().expect("--scale takes a float");
            }
            "--out" => {
                i += 1;
                out = Some(args[i].clone());
            }
            other => panic!("unknown flag '{other}' (try --bench/--cores/--scale/--out)"),
        }
        i += 1;
    }
    let bench =
        bench.expect("usage: trace_dump --bench <name> [--cores N] [--scale F] [--out PATH]");
    Args { bench, cores, scale, out }
}

fn main() {
    let args = parse_args();
    let path = args.out.clone().unwrap_or_else(|| format!("results/{}.ltf", args.bench.name()));
    if let Some(parent) = std::path::Path::new(&path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output directory");
        }
    }

    let summary = args
        .bench
        .dump_ltf(args.cores, args.scale, &path)
        .unwrap_or_else(|e| panic!("dump failed: {e}"));

    let file = std::fs::File::open(&path).expect("re-open dumped trace");
    let header =
        ltf::reader::read_header(&mut std::io::BufReader::new(file)).expect("dumped trace decodes");
    println!(
        "wrote {path}: workload '{}', {} cores, {} regions, instr footprint {} lines",
        header.name,
        header.num_cores,
        header.regions.len(),
        header.instr_lines,
    );
    println!(
        "  {} ops total ({} bytes, {:.2} bytes/op)",
        summary.total_ops(),
        summary.bytes,
        summary.bytes as f64 / summary.total_ops().max(1) as f64,
    );
}
