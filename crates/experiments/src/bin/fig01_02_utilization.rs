//! Figures 1 and 2 (§2.2 motivation): breakdown of invalidated and evicted
//! cache lines by utilization bins {1, 2-3, 4-5, 6-7, >=8}, measured on the
//! baseline directory protocol (PCT = 1).
//!
//! Paper anchor: "in streamcluster, 80% of the cache lines that are
//! invalidated have utilization < 4".

use lacc_experiments::{csv_row, open_results_file, Cli, Table};
use lacc_model::UtilizationHistogram;

fn main() {
    let cli = Cli::parse();
    let cfg = cli.base_config().with_pct(1);
    let jobs = cli.benchmarks().into_iter().map(|b| ("pct1".to_string(), b, cfg.clone())).collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig01_02_utilization.csv");
    csv_row(
        &mut csv,
        &"benchmark,kind,u1,u2-3,u4-5,u6-7,u8+".split(',').map(String::from).collect::<Vec<_>>(),
    );

    for (title, pick) in [
        ("Figure 1: Invalidations breakdown (%) vs utilization", 0usize),
        ("Figure 2: Evictions breakdown (%) vs utilization", 1usize),
    ] {
        println!("\n{title}");
        let t = Table::new(&[14, 8, 8, 8, 8, 8]);
        let mut header = vec!["benchmark".to_string()];
        header.extend(UtilizationHistogram::LABELS.iter().map(|s| (*s).to_string()));
        t.row(&header);
        t.sep();
        for b in cli.benchmarks() {
            let r = &results[&("pct1".to_string(), b.name())];
            let h = if pick == 0 { r.inval_histogram } else { r.evict_histogram };
            let f = h.fractions();
            let mut row = vec![b.name().to_string()];
            row.extend(f.iter().map(|v| format!("{:.1}", 100.0 * v)));
            t.row(&row);
            let mut cells =
                vec![b.name().to_string(), if pick == 0 { "inval" } else { "evict" }.into()];
            cells.extend(f.iter().map(|v| format!("{:.4}", v)));
            csv_row(&mut csv, &cells);
        }
    }

    // The paper's §2.2 anchor observation.
    let sc = &results[&("pct1".to_string(), "streamclus.")];
    if sc.inval_histogram.total() > 0 {
        println!(
            "\nstreamcluster: {:.0}% of invalidated lines have utilization < 4 (paper: ~80%)",
            100.0 * sc.inval_histogram.below(4)
        );
    }
}
