//! Table 2 (§4.3): the benchmark suite — original problem sizes alongside
//! the generated stand-in traces' vital statistics at the current scale.

use lacc_experiments::{Cli, Table};
use lacc_sim::TraceOp;

fn main() {
    let cli = Cli::parse();
    println!("Table 2: Problem sizes and generated stand-ins (scale {})", cli.scale);
    let t = Table::new(&[14, 18, 34, 10, 10, 8]);
    t.row(
        &"benchmark,suite,paper problem size,mem-ops,stores%,barriers"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();
    for b in cli.benchmarks() {
        let w = b.build(cli.cores, cli.scale);
        let mut mem = 0u64;
        let mut stores = 0u64;
        let mut barriers = 0u64;
        for mut trace in w.traces {
            while let Some(op) = trace.next_op() {
                match op {
                    TraceOp::Load { .. } => mem += 1,
                    TraceOp::Store { .. } => {
                        mem += 1;
                        stores += 1;
                    }
                    TraceOp::Barrier { .. } => barriers += 1,
                    _ => {}
                }
            }
        }
        t.row(&[
            b.name().to_string(),
            b.suite().to_string(),
            b.problem_size().to_string(),
            mem.to_string(),
            format!("{:.1}", 100.0 * stores as f64 / mem.max(1) as f64),
            (barriers / cli.cores.max(1) as u64).to_string(),
        ]);
    }
}
