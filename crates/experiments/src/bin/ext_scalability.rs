//! Extension experiment: protocol benefit vs core count.
//!
//! The paper's framing (§1–2) is scalability: directories struggle as core
//! counts grow, and unnecessary data movement costs more as mesh diameters
//! stretch. This experiment runs the suite's sharing-heavy benchmarks on
//! 16-, 36- and 64-core machines and reports the adaptive protocol's
//! energy/time advantage at each size — the word-conversion saving should
//! *grow* with the average hop distance.
//!
//! Also prints the §3.6 storage ladder at each core count (the Complete
//! classifier's cost explodes with core count; Limited_3's does not —
//! the scalability argument for limited locality tracking).

use lacc_core::overheads::storage_report;
use lacc_experiments::{csv_row, geomean, open_results_file, Cli, Table};
use lacc_model::config::TrackingKind;
use lacc_workloads::Benchmark;

const CORE_COUNTS: [usize; 3] = [16, 36, 64];
const BENCHES: [Benchmark; 5] = [
    Benchmark::Streamcluster,
    Benchmark::DijkstraSs,
    Benchmark::Concomp,
    Benchmark::Patricia,
    Benchmark::Canneal,
];

fn main() {
    let cli = Cli::parse();
    let mut jobs = Vec::new();
    for &cores in &CORE_COUNTS {
        let mut base = Cli { cores, ..cli.clone() }.base_config();
        base.num_mem_ctrls = base.num_mem_ctrls.min(cores / 2).max(1);
        for b in BENCHES {
            jobs.push((format!("c{cores}-pct1"), b, base.clone().with_pct(1)));
            jobs.push((format!("c{cores}-pct4"), b, base.clone().with_pct(4)));
        }
    }
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("ext_scalability.csv");
    csv_row(
        &mut csv,
        &"cores,benchmark,energy_ratio,time_ratio".split(',').map(String::from).collect::<Vec<_>>(),
    );

    println!("\nExtension: adaptive (PCT=4) vs baseline (PCT=1) across machine sizes");
    let t = Table::new(&[8, 14, 14, 14]);
    t.row(
        &"cores,geomean energy,geomean time,avg hops"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();
    for &cores in &CORE_COUNTS {
        let mut energies = Vec::new();
        let mut times = Vec::new();
        for b in BENCHES {
            let base = &results[&(format!("c{cores}-pct1"), b.name())];
            let adaptive = &results[&(format!("c{cores}-pct4"), b.name())];
            let e = adaptive.energy.total() / base.energy.total().max(1e-9);
            let ti = adaptive.completion_time as f64 / base.completion_time.max(1) as f64;
            energies.push(e);
            times.push(ti);
            csv_row(
                &mut csv,
                &[cores.to_string(), b.name().to_string(), format!("{e:.4}"), format!("{ti:.4}")],
            );
        }
        // Mean hop distance of a w x w mesh is ~2w/3.
        let w = (cores as f64).sqrt();
        t.row(&[
            cores.to_string(),
            format!("{:.3}", geomean(&energies)),
            format!("{:.3}", geomean(&times)),
            format!("{:.1}", 2.0 * w / 3.0),
        ]);
    }
    t.sep();

    println!("\nSection 3.6 storage scaling (per-core classifier KB):");
    let t2 = Table::new(&[8, 14, 14]);
    t2.row(&"cores,Limited-3,Complete".split(',').map(String::from).collect::<Vec<_>>());
    for &cores in &[16usize, 64, 256, 1024] {
        let mut cfg = lacc_model::SystemConfig::isca13_64core();
        cfg.num_cores = cores;
        let lim = storage_report(&cfg);
        cfg.classifier.tracking = TrackingKind::Complete;
        let comp = storage_report(&cfg);
        t2.row(&[
            cores.to_string(),
            format!("{:.1}", lim.classifier_kb),
            format!("{:.1}", comp.classifier_kb),
        ]);
    }
    println!("\n(Limited_3 grows only with log2(cores) — the core-id field — while");
    println!("Complete grows linearly: the §3.4 scalability argument.)");
}
