//! §3.6 storage-overhead arithmetic: reproduces every number the paper
//! reports — 18 KB/core for Limited_3, 192 KB for Complete, 12 KB for
//! ACKwise_4, 32 KB for full-map, 5.7%/60% overheads, and the headline
//! that Limited_3 + ACKwise_4 needs less storage than full-map alone.

use lacc_core::overheads::storage_report;
use lacc_experiments::{Cli, Table};
use lacc_model::config::{ClassifierConfig, DirectoryKind, MechanismKind, TrackingKind};

fn main() {
    let cli = Cli::parse();
    let base = cli.base_config();

    let variants = vec![
        ("Limited-3 + ACKwise4 (default)", base.clone()),
        (
            "Complete + ACKwise4",
            base.clone().with_classifier(ClassifierConfig {
                tracking: TrackingKind::Complete,
                ..ClassifierConfig::isca13_default()
            }),
        ),
        (
            "Timestamp + Complete (ideal)",
            base.clone().with_classifier(ClassifierConfig {
                tracking: TrackingKind::Complete,
                mechanism: MechanismKind::Timestamp,
                ..ClassifierConfig::isca13_default()
            }),
        ),
        ("Limited-3 + Full-Map", base.with_directory(DirectoryKind::FullMap)),
    ];

    println!("Section 3.6: storage overheads per core ({}-core machine)", cli.cores);
    let t = Table::new(&[30, 12, 12, 12, 12, 10]);
    t.row(
        &"configuration,classifier,L1 bits,directory,full-map,overhead"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.row(&",KB,KB,KB,KB,%".split(',').map(String::from).collect::<Vec<_>>());
    t.sep();
    for (name, cfg) in &variants {
        let r = storage_report(cfg);
        t.row(&[
            (*name).to_string(),
            format!("{:.2}", r.classifier_kb),
            format!("{:.2}", r.l1_kb),
            format!("{:.2}", r.directory_kb),
            format!("{:.2}", r.full_map_kb),
            format!("{:.1}", 100.0 * r.overhead_vs_baseline),
        ]);
    }
    t.sep();

    let def = storage_report(&variants[0].1);
    println!("\nPaper anchors reproduced:");
    println!("  Limited-3 classifier bits/entry : {} (paper: 36)", def.classifier_bits_per_entry);
    println!("  Limited-3 classifier storage    : {} KB (paper: 18 KB)", def.classifier_kb);
    println!("  ACKwise4 directory              : {} KB (paper: 12 KB)", def.directory_kb);
    println!("  Full-map directory              : {} KB (paper: 32 KB)", def.full_map_kb);
    println!(
        "  Limited-3 + ACKwise4 = {} KB  <  Full-map alone = {} KB  : {}",
        def.classifier_kb + def.directory_kb,
        def.full_map_kb,
        def.classifier_kb + def.directory_kb < def.full_map_kb
    );
    println!(
        "  Overhead vs baseline ACKwise4   : {:.1}% (paper: 5.7%)",
        100.0 * def.overhead_vs_baseline
    );
    let complete = storage_report(&variants[1].1);
    println!(
        "  Complete classifier             : {} KB, {:.0}% overhead (paper: 192 KB, ~60%)",
        complete.classifier_kb,
        100.0 * complete.overhead_vs_baseline
    );
}
