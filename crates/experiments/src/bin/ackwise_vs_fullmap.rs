//! §5 preamble: "We have compared the baseline ACKwise4 with a full-map
//! directory protocol and the average performance and energy consumption
//! were found to be within 1% of each other."

use lacc_experiments::{csv_row, geomean, open_results_file, Cli, Table};
use lacc_model::config::DirectoryKind;

fn main() {
    let cli = Cli::parse();
    let ackwise = cli.base_config().with_pct(1);
    let fullmap = cli.base_config().with_pct(1).with_directory(DirectoryKind::FullMap);
    let mut jobs = Vec::new();
    for b in cli.benchmarks() {
        jobs.push(("ackwise4".to_string(), b, ackwise.clone()));
        jobs.push(("fullmap".to_string(), b, fullmap.clone()));
    }
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("ackwise_vs_fullmap.csv");
    csv_row(
        &mut csv,
        &"benchmark,completion_ratio,energy_ratio".split(',').map(String::from).collect::<Vec<_>>(),
    );

    println!("\nBaseline check: ACKwise4 / Full-map at PCT=1 (1.0 = identical)");
    let t = Table::new(&[14, 16, 12]);
    t.row(&["benchmark".to_string(), "CompletionTime".to_string(), "Energy".to_string()]);
    t.sep();
    let mut times = Vec::new();
    let mut energies = Vec::new();
    for b in cli.benchmarks() {
        let a = &results[&("ackwise4".to_string(), b.name())];
        let f = &results[&("fullmap".to_string(), b.name())];
        let rt = a.completion_time as f64 / f.completion_time.max(1) as f64;
        let re = a.energy.total() / f.energy.total().max(1e-9);
        times.push(rt);
        energies.push(re);
        t.row(&[b.name().to_string(), format!("{rt:.3}"), format!("{re:.3}")]);
        csv_row(&mut csv, &[b.name().to_string(), format!("{rt:.4}"), format!("{re:.4}")]);
    }
    t.sep();
    let (gt, ge) = (geomean(&times), geomean(&energies));
    t.row(&["geomean".to_string(), format!("{gt:.3}"), format!("{ge:.3}")]);
    println!(
        "\nGeomean deltas: completion {:.1}%, energy {:.1}% (paper: within 1%)",
        100.0 * (gt - 1.0).abs(),
        100.0 * (ge - 1.0).abs()
    );
}
