//! Convenience runner: regenerates every table and figure in sequence by
//! invoking the sibling experiment binaries with the same flags.
//!
//! All flags are forwarded verbatim — in particular `--jobs N` (sweep
//! workers) and `--shards N` (threads inside each simulation), so one
//! invocation parallelizes every sweep (`--jobs 1 --shards 1` reproduces
//! the serial baseline byte-for-byte; CI diffs both axes). Per-binary
//! wall-clock goes to stderr to keep stdout deterministic across worker
//! and shard counts.

use std::process::Command;
use std::time::Instant;

const BINS: [&str; 13] = [
    "tab01_parameters",
    "tab02_workloads",
    "tab03_storage",
    "fig01_02_utilization",
    "fig08_energy",
    "fig09_completion",
    "fig10_missrates",
    "fig11_pct_sweep",
    "fig12_rat",
    "fig13_limitedk",
    "fig14_oneway",
    "ext_complete_shortcut",
    "ext_scalability",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("exe dir");
    let started = Instant::now();
    // ackwise_vs_fullmap is part of the §5 preamble; run it too.
    for bin in BINS.iter().copied().chain(std::iter::once("ackwise_vs_fullmap")) {
        println!("\n================================================================");
        println!("== {bin}");
        println!("================================================================");
        let bin_started = Instant::now();
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
        eprintln!("[all_figures] {bin} took {:.2}s", bin_started.elapsed().as_secs_f64());
    }
    println!("\nAll figures and tables regenerated; CSVs in ./results/");
    eprintln!("[all_figures] total wall-clock {:.2}s", started.elapsed().as_secs_f64());
}
