//! Figure 13 (§5.3): accuracy of the Limited_k classifier — per-benchmark
//! completion time and energy for k in {1, 3, 5, 7} and the Complete
//! classifier (= Limited_64), normalized to Complete, at PCT = 4.
//!
//! Paper anchors: Limited_3 never exceeds Complete by more than ~3%;
//! streamcluster/dijkstra-ss *beat* Complete (the majority vote learns
//! remote mode faster); Limited_1 misclassifies radix (starts sharers
//! remote) and bodytrack (starts them private).

use lacc_experiments::{csv_row, fig13_variants, geomean, open_results_file, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let variants = fig13_variants(cli.cores);
    let jobs = variants
        .iter()
        .flat_map(|(label, ccfg)| {
            let cfg = cli.base_config().with_classifier(*ccfg);
            let label = label.clone();
            cli.benchmarks().into_iter().map(move |b| (label.clone(), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig13_limitedk.csv");
    csv_row(
        &mut csv,
        &"benchmark,variant,completion_norm,energy_norm"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    for (title, metric) in [
        ("Completion Time (normalized to Complete)", 0usize),
        ("Energy (normalized to Complete)", 1),
    ] {
        println!("\nFigure 13: {title}");
        let mut widths = vec![14usize];
        widths.extend(std::iter::repeat(11).take(variants.len()));
        let t = Table::new(&widths);
        let mut header = vec!["benchmark".to_string()];
        header.extend(variants.iter().map(|(l, _)| l.clone()));
        t.row(&header);
        t.sep();
        let mut per_variant: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
        for b in cli.benchmarks() {
            let base = &results[&("Complete".to_string(), b.name())];
            let mut row = vec![b.name().to_string()];
            for (vi, (label, _)) in variants.iter().enumerate() {
                let r = &results[&(label.clone(), b.name())];
                let v = if metric == 0 {
                    r.completion_time as f64 / base.completion_time.max(1) as f64
                } else {
                    r.energy.total() / base.energy.total().max(1e-9)
                };
                per_variant[vi].push(v);
                row.push(format!("{v:.3}"));
                if metric == 0 {
                    csv_row(
                        &mut csv,
                        &[
                            b.name().to_string(),
                            label.clone(),
                            format!("{v:.4}"),
                            format!("{:.4}", r.energy.total() / base.energy.total().max(1e-9)),
                        ],
                    );
                }
            }
            t.row(&row);
        }
        t.sep();
        let mut row = vec!["geomean".to_string()];
        row.extend(per_variant.iter().map(|v| format!("{:.3}", geomean(v))));
        t.row(&row);
    }
    println!(
        "\nPaper: Limited-3 stays within ~3% of Complete; Limited-1 misclassifies radix/bodytrack."
    );
}
