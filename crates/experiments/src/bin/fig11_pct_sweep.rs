//! Figure 11 (§5.1.3): geometric means of completion time and energy as
//! PCT sweeps {1..8, 10..20}, normalized to PCT = 1 — the plot that
//! justifies the static choice of PCT = 4.
//!
//! Paper anchors: completion time falls to ~0.85 by PCT 3-4 then rises;
//! energy falls to ~0.75 by PCT 4-5, stays flat to ~8, then rises.

use lacc_experiments::{csv_row, geomean, open_results_file, Cli, Table, FIG11_PCTS};

fn main() {
    let cli = Cli::parse();
    let jobs = FIG11_PCTS
        .iter()
        .flat_map(|&pct| {
            let cfg = cli.base_config().with_pct(pct);
            cli.benchmarks().into_iter().map(move |b| (format!("pct{pct}"), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig11_pct_sweep.csv");
    csv_row(
        &mut csv,
        &"pct,geomean_completion,geomean_energy".split(',').map(String::from).collect::<Vec<_>>(),
    );

    println!("\nFigure 11: Geomean completion time and energy vs PCT (normalized to PCT=1)");
    let t = Table::new(&[6, 16, 12]);
    t.row(&["PCT".to_string(), "CompletionTime".to_string(), "Energy".to_string()]);
    t.sep();
    let mut best = (1u32, 2.0f64);
    for &pct in &FIG11_PCTS {
        let mut times = Vec::new();
        let mut energies = Vec::new();
        for b in cli.benchmarks() {
            let base = &results[&("pct1".to_string(), b.name())];
            let r = &results[&(format!("pct{pct}"), b.name())];
            times.push(r.completion_time as f64 / base.completion_time.max(1) as f64);
            energies.push(r.energy.total() / base.energy.total().max(1e-9));
        }
        let (gt, ge) = (geomean(&times), geomean(&energies));
        if gt + ge < best.1 {
            best = (pct, gt + ge);
        }
        t.row(&[pct.to_string(), format!("{gt:.3}"), format!("{ge:.3}")]);
        csv_row(&mut csv, &[pct.to_string(), format!("{gt:.4}"), format!("{ge:.4}")]);
    }
    println!(
        "\nBest combined PCT = {} (paper selects PCT = 4: ~15% time, ~25% energy reduction)",
        best.0
    );
}
