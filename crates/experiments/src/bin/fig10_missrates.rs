//! Figure 10 (§5.1): L1-D cache miss rate and miss-type breakdown (cold,
//! capacity, upgrade, sharing, word) as PCT sweeps {1, 2, 3, 4, 6, 8}.
//!
//! Paper anchors: water-sp/susan sit near 0.2%; concomp reaches ~50%+;
//! blackscholes/bodytrack/dijkstra-ap/matmul *drop* in miss rate from
//! PCT 1 to 2 (better cache utilization); capacity and sharing misses
//! convert into word misses as PCT rises.

use lacc_experiments::{csv_row, open_results_file, Cli, Table, FIG10_PCTS};
use lacc_model::MissClass;

fn main() {
    let cli = Cli::parse();
    let jobs = FIG10_PCTS
        .iter()
        .flat_map(|&pct| {
            let cfg = cli.base_config().with_pct(pct);
            cli.benchmarks().into_iter().map(move |b| (format!("pct{pct}"), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig10_missrates.csv");
    csv_row(
        &mut csv,
        &"benchmark,pct,miss_rate_pct,cold,capacity,upgrade,sharing,word"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    println!("\nFigure 10: L1-D miss rate (%) and miss-type breakdown vs PCT");
    let t = Table::new(&[14, 4, 9, 9, 9, 9, 9, 9]);
    t.row(
        &"benchmark,PCT,miss%,Cold,Capacity,Upgrade,Sharing,Word"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();
    for b in cli.benchmarks() {
        for &pct in &FIG10_PCTS {
            let r = &results[&(format!("pct{pct}"), b.name())];
            let total = r.l1d.total_accesses().max(1) as f64;
            let mut row = vec![b.name().to_string(), pct.to_string()];
            row.push(format!("{:.2}", r.l1d_miss_rate_pct()));
            for c in MissClass::ALL {
                row.push(format!("{:.2}", 100.0 * r.l1d.of(c) as f64 / total));
            }
            t.row(&row);
            let mut cells = vec![b.name().to_string(), pct.to_string()];
            cells.push(format!("{:.4}", r.l1d_miss_rate_pct()));
            for c in MissClass::ALL {
                cells.push(r.l1d.of(c).to_string());
            }
            csv_row(&mut csv, &cells);
        }
        t.sep();
    }
}
