//! Figure 12 (§5.2): sensitivity of the RAT approximation — completion
//! time and energy for {Timestamp, L-1, L-2/T-8, L-2/T-16, L-4/T-8,
//! L-4/T-16, L-8/T-16}, normalized to the Timestamp scheme, at PCT = 4.
//!
//! Paper anchors: completion time is flat across the variants; energy is
//! ~9% worse with a single RAT level; with RATmax = 16 the gap to
//! Timestamp closes and nRATlevels in {2, 4, 8} are indistinguishable, so
//! the paper picks L-2/T-16.

use lacc_experiments::{csv_row, fig12_variants, geomean, open_results_file, Cli, Table};

fn main() {
    let cli = Cli::parse();
    let jobs = fig12_variants()
        .into_iter()
        .flat_map(|(label, ccfg)| {
            let cfg = cli.base_config().with_classifier(ccfg);
            cli.benchmarks().into_iter().map(move |b| (label.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig12_rat.csv");
    csv_row(
        &mut csv,
        &"variant,geomean_completion,geomean_energy"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    println!("\nFigure 12: RAT sensitivity at PCT=4 (normalized to Timestamp)");
    let t = Table::new(&[12, 16, 12]);
    t.row(&["variant".to_string(), "CompletionTime".to_string(), "Energy".to_string()]);
    t.sep();
    for (label, _) in fig12_variants() {
        let mut times = Vec::new();
        let mut energies = Vec::new();
        for b in cli.benchmarks() {
            let base = &results[&("Timestamp".to_string(), b.name())];
            let r = &results[&(label.to_string(), b.name())];
            times.push(r.completion_time as f64 / base.completion_time.max(1) as f64);
            energies.push(r.energy.total() / base.energy.total().max(1e-9));
        }
        let (gt, ge) = (geomean(&times), geomean(&energies));
        t.row(&[label.to_string(), format!("{gt:.3}"), format!("{ge:.3}")]);
        csv_row(&mut csv, &[label.to_string(), format!("{gt:.4}"), format!("{ge:.4}")]);
    }
    println!("\nPaper: L-1 is ~9% worse in energy; L-2/T-16 matches Timestamp and is the default.");
}
