//! Figure 14 (§5.4): the cost of removing remote→private transitions —
//! per-benchmark ratio of Adapt1-way over Adapt2-way completion time and
//! energy at PCT = 4.
//!
//! Paper anchors: Adapt1-way is worse by 34% (completion) and 13% (energy)
//! on average; bodytrack reaches 3.3x and dijkstra-ss 2.3x in completion
//! time.

use lacc_experiments::{csv_row, geomean, open_results_file, Cli, Table};
use lacc_model::config::ClassifierConfig;

fn main() {
    let cli = Cli::parse();
    let two_way = cli.base_config();
    let one_way = cli
        .base_config()
        .with_classifier(ClassifierConfig { one_way: true, ..ClassifierConfig::isca13_default() });
    let mut jobs = Vec::new();
    for b in cli.benchmarks() {
        jobs.push(("2way".to_string(), b, two_way.clone()));
        jobs.push(("1way".to_string(), b, one_way.clone()));
    }
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig14_oneway.csv");
    csv_row(
        &mut csv,
        &"benchmark,completion_ratio,energy_ratio".split(',').map(String::from).collect::<Vec<_>>(),
    );

    println!("\nFigure 14: Adapt1-way / Adapt2-way ratios at PCT=4 (higher = 1-way worse)");
    let t = Table::new(&[14, 16, 12]);
    t.row(&["benchmark".to_string(), "CompletionTime".to_string(), "Energy".to_string()]);
    t.sep();
    let mut times = Vec::new();
    let mut energies = Vec::new();
    for b in cli.benchmarks() {
        let two = &results[&("2way".to_string(), b.name())];
        let one = &results[&("1way".to_string(), b.name())];
        let rt = one.completion_time as f64 / two.completion_time.max(1) as f64;
        let re = one.energy.total() / two.energy.total().max(1e-9);
        times.push(rt);
        energies.push(re);
        t.row(&[b.name().to_string(), format!("{rt:.2}"), format!("{re:.2}")]);
        csv_row(&mut csv, &[b.name().to_string(), format!("{rt:.4}"), format!("{re:.4}")]);
    }
    t.sep();
    t.row(&[
        "geomean".to_string(),
        format!("{:.2}", geomean(&times)),
        format!("{:.2}", geomean(&energies)),
    ]);
    println!("\nPaper: 1-way is worse by ~34% completion / ~13% energy; bodytrack 3.3x, dijkstra-ss 2.3x.");
}
