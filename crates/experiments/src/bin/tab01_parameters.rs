//! Table 1 (§4): the architectural parameters of the evaluated machine,
//! printed from the live `SystemConfig` so the table can never drift from
//! the code.

use lacc_experiments::Cli;
use lacc_model::config::{DirectoryKind, MechanismKind, TrackingKind};

fn main() {
    let cli = Cli::parse();
    let c = cli.base_config();
    println!("Table 1: Architectural parameters");
    println!("---------------------------------");
    println!("Number of Cores                 {} @ 1 GHz", c.num_cores);
    println!("Compute Pipeline per Core       In-Order, Single-Issue");
    println!("Physical Address Length         48 bits");
    println!();
    println!(
        "L1-I Cache per core             {} KB, {}-way, {} cycle",
        c.l1i.size_bytes / 1024,
        c.l1i.associativity,
        c.l1i.latency
    );
    println!(
        "L1-D Cache per core             {} KB, {}-way, {} cycle",
        c.l1d.size_bytes / 1024,
        c.l1d.associativity,
        c.l1d.latency
    );
    println!(
        "L2 Cache per core               {} KB, {}-way, {} cycle, Inclusive, R-NUCA",
        c.l2.size_bytes / 1024,
        c.l2.associativity,
        c.l2.latency
    );
    println!("Cache Line Size                 {} bytes", c.line_bytes);
    match c.directory {
        DirectoryKind::AckWise { pointers } => {
            println!("Directory Protocol              Invalidation-based MESI, ACKwise{pointers}");
        }
        DirectoryKind::FullMap => {
            println!("Directory Protocol              Invalidation-based MESI, Full-Map")
        }
    }
    println!("Num. of Memory Controllers      {}", c.num_mem_ctrls);
    println!("DRAM Bandwidth                  {} GBps per controller", c.dram_bytes_per_cycle);
    println!("DRAM Latency                    {} ns", c.dram_latency);
    println!();
    println!("Electrical 2-D Mesh, XY routing");
    println!(
        "Hop Latency                     {} cycles ({}-router, {}-link)",
        c.hop_router_cycles + c.hop_link_cycles,
        c.hop_router_cycles,
        c.hop_link_cycles
    );
    println!("Contention Model                Only link contention (infinite input buffers)");
    println!("Flit Width                      {} bits", c.flit_bits);
    println!("Header                          1 flit");
    println!("Word Length                     1 flit (64 bits)");
    println!("Cache Line Length               {} flits", c.line_msg_flits() - 1);
    println!();
    println!("Locality-Aware Coherence Protocol - Default Parameters");
    println!("Private Caching Threshold       PCT = {}", c.classifier.pct);
    match c.classifier.mechanism {
        MechanismKind::RatLevels { levels, rat_max } => {
            println!("Max Remote Access Threshold     RATmax = {rat_max}");
            println!("Number of RAT Levels            nRATlevels = {levels}");
        }
        MechanismKind::Timestamp => println!("Mechanism                       Timestamp (ideal)"),
    }
    match c.classifier.tracking {
        TrackingKind::Limited { k } => println!("Classifier                      Limited{k}"),
        TrackingKind::Complete => println!("Classifier                      Complete"),
    }
}
