//! Figure 9 (§5.1.2): completion-time breakdown (compute, L1→L2, L2
//! waiting, L2→sharers, L2→off-chip, synchronization) as PCT sweeps 1..8,
//! normalized to PCT = 1.
//!
//! Paper anchor: at PCT 4 the mean completion time is ~15% below PCT 1;
//! streamcluster/dijkstra-ss mostly reduce L2 waiting time; patricia/tsp
//! reduce L2→sharers; lu-nc/barnes regress past PCT 3.

use lacc_experiments::{csv_row, mean, open_results_file, Cli, Table, FIG89_PCTS};

fn main() {
    let cli = Cli::parse();
    let jobs = FIG89_PCTS
        .iter()
        .flat_map(|&pct| {
            let cfg = cli.base_config().with_pct(pct);
            cli.benchmarks().into_iter().map(move |b| (format!("pct{pct}"), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("fig09_completion.csv");
    csv_row(
        &mut csv,
        &"benchmark,pct,compute,l1_l2,l2_wait,l2_sharers,l2_offchip,sync,total_cycles,normalized"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    println!("\nFigure 9: Completion-time breakdown vs PCT (normalized to PCT=1)");
    let t = Table::new(&[14, 4, 8, 8, 8, 8, 8, 8, 9]);
    t.row(
        &"benchmark,PCT,Compute,L1-L2,L2Wait,L2Shrs,OffChip,Sync,Total"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();

    let mut per_pct: Vec<Vec<f64>> = vec![Vec::new(); FIG89_PCTS.len()];
    for b in cli.benchmarks() {
        // The paper plots parallel completion time; the per-component stack
        // uses the summed per-core breakdown, normalized to PCT=1.
        let base = results[&("pct1".to_string(), b.name())].completion_time as f64;
        for (pi, &pct) in FIG89_PCTS.iter().enumerate() {
            let r = &results[&(format!("pct{pct}"), b.name())];
            let bd = r.breakdown;
            let stack_total = bd.total().max(1) as f64;
            let norm = r.completion_time as f64 / base.max(1.0);
            per_pct[pi].push(norm);
            let mut row = vec![b.name().to_string(), pct.to_string()];
            row.extend(
                bd.components()
                    .iter()
                    .map(|(_, v)| format!("{:.3}", norm * *v as f64 / stack_total)),
            );
            row.push(format!("{norm:.3}"));
            t.row(&row);
            let mut cells = vec![b.name().to_string(), pct.to_string()];
            cells.extend(bd.components().iter().map(|(_, v)| v.to_string()));
            cells.push(r.completion_time.to_string());
            cells.push(format!("{norm:.4}"));
            csv_row(&mut csv, &cells);
        }
        t.sep();
    }

    println!("\nAverage normalized completion time per PCT:");
    let t2 = Table::new(&[6, 10]);
    t2.row(&["PCT".to_string(), "avg".to_string()]);
    for (pi, &pct) in FIG89_PCTS.iter().enumerate() {
        t2.row(&[pct.to_string(), format!("{:.3}", mean(&per_pct[pi]))]);
    }
    let at4 = mean(&per_pct[3]);
    println!(
        "\nCompletion time at PCT=4 vs PCT=1: {:.1}% reduction (paper: ~15%)",
        100.0 * (1.0 - at4)
    );
}
