//! Extension experiment (§5.3's closing remark): "the Complete locality
//! classifier can also be equipped with such a learning short-cut".
//!
//! Compares, at PCT = 4: the plain Complete classifier, Complete with the
//! first-touch majority-vote shortcut, and Limited_3 (whose replacement
//! policy has the shortcut built in). On one-touch-per-core sharing
//! patterns the shortcut lets fresh sharers skip the private
//! classification phase entirely — this experiment quantifies how much of
//! Limited_3's advantage over Complete (Figure 13) the shortcut recovers.

use lacc_experiments::{csv_row, geomean, open_results_file, Cli, Table};
use lacc_model::config::{ClassifierConfig, TrackingKind};

fn main() {
    let cli = Cli::parse();
    let variants = vec![
        (
            "Complete",
            ClassifierConfig {
                tracking: TrackingKind::Complete,
                ..ClassifierConfig::isca13_default()
            },
        ),
        (
            "Compl+SC",
            ClassifierConfig {
                tracking: TrackingKind::Complete,
                shortcut: true,
                ..ClassifierConfig::isca13_default()
            },
        ),
        ("Limited-3", ClassifierConfig::isca13_default()),
    ];
    let jobs = variants
        .iter()
        .flat_map(|(label, ccfg)| {
            let cfg = cli.base_config().with_classifier(*ccfg);
            cli.benchmarks().into_iter().map(move |b| (label.to_string(), b, cfg.clone()))
        })
        .collect();
    let results = cli.run_jobs(jobs);

    let mut csv = open_results_file("ext_complete_shortcut.csv");
    csv_row(
        &mut csv,
        &"benchmark,variant,completion_norm,energy_norm"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );

    println!("\nExtension: Complete + learning shortcut (normalized to plain Complete, PCT=4)");
    let t = Table::new(&[14, 11, 11, 11, 11, 11, 11]);
    t.row(
        &"benchmark,Compl t,SC t,Lim3 t,Compl e,SC e,Lim3 e"
            .split(',')
            .map(String::from)
            .collect::<Vec<_>>(),
    );
    t.sep();
    let mut sc_t = Vec::new();
    let mut lim_t = Vec::new();
    for b in cli.benchmarks() {
        let base = &results[&("Complete".to_string(), b.name())];
        let mut row = vec![b.name().to_string()];
        let mut times = vec![];
        let mut energies = vec![];
        for (label, _) in &variants {
            let r = &results[&(label.to_string(), b.name())];
            times.push(r.completion_time as f64 / base.completion_time.max(1) as f64);
            energies.push(r.energy.total() / base.energy.total().max(1e-9));
        }
        sc_t.push(times[1]);
        lim_t.push(times[2]);
        row.extend(times.iter().map(|v| format!("{v:.3}")));
        row.extend(energies.iter().map(|v| format!("{v:.3}")));
        t.row(&row);
        for (vi, (label, _)) in variants.iter().enumerate() {
            csv_row(
                &mut csv,
                &[
                    b.name().to_string(),
                    (*label).to_string(),
                    format!("{:.4}", times[vi]),
                    format!("{:.4}", energies[vi]),
                ],
            );
        }
    }
    t.sep();
    println!(
        "geomean completion: shortcut {:.3}, Limited-3 {:.3} (vs plain Complete 1.000)",
        geomean(&sc_t),
        geomean(&lim_t)
    );
    println!("\nThe shortcut should recover most of Limited-3's Figure-13 advantage.");
}
