//! Replay a `.ltf` trace file through the simulator and print the
//! standard report.
//!
//! The trace is decoded lazily with bounded memory (one buffered handle
//! per core); the run is bit-identical to simulating the workload the
//! file was dumped from.
//!
//! ```text
//! trace_replay <file.ltf> [--cores N] [--pct N] [--small]
//! ```
//!
//! `--cores` defaults to the trace's own core count; `--small` swaps the
//! Table-1 machine for the reduced test configuration (what the repo's
//! tests use at small scales).

use lacc_experiments::config_for_cores;
use lacc_model::SystemConfig;
use lacc_sim::{ltf, Simulator};

struct Args {
    path: String,
    cores: Option<usize>,
    pct: Option<u32>,
    small: bool,
}

fn parse_args() -> Args {
    let mut path = None;
    let mut cores = None;
    let mut pct = None;
    let mut small = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cores" => {
                i += 1;
                cores = Some(args[i].parse().expect("--cores takes an integer"));
            }
            "--pct" => {
                i += 1;
                pct = Some(args[i].parse().expect("--pct takes an integer"));
            }
            "--small" => small = true,
            flag if flag.starts_with("--") => {
                panic!("unknown flag '{flag}' (try --cores/--pct/--small)")
            }
            file => {
                assert!(path.is_none(), "exactly one trace file expected");
                path = Some(file.to_string());
            }
        }
        i += 1;
    }
    let path = path.expect("usage: trace_replay <file.ltf> [--cores N] [--pct N] [--small]");
    Args { path, cores, pct, small }
}

fn main() {
    let args = parse_args();
    let workload = ltf::read_workload(&args.path).unwrap_or_else(|e| {
        eprintln!("error: cannot replay '{}': {e}", args.path);
        std::process::exit(1);
    });

    let cores = args.cores.unwrap_or_else(|| workload.active_cores().max(1));
    assert!(
        cores >= workload.active_cores(),
        "trace has {} cores but the machine only {cores}",
        workload.active_cores(),
    );
    let mut cfg =
        if args.small { SystemConfig::small_for_tests(cores) } else { config_for_cores(cores) };
    if let Some(pct) = args.pct {
        cfg = cfg.with_pct(pct);
    }

    println!(
        "replaying '{}' ({} cores, {} regions) on a {cores}-core machine (PCT {})",
        workload.name,
        workload.active_cores(),
        workload.regions.len(),
        cfg.classifier.pct,
    );
    let report = Simulator::new(cfg, workload).expect("valid replay configuration").run();
    println!("{}", report.summary());
    println!(
        "  network: {} flits   dram: {} accesses   promotions: {}   demotions: {}",
        report.net.link_flits,
        report.dram.accesses,
        report.protocol.promotions,
        report.protocol.demotions,
    );
    assert_eq!(report.monitor.violations, 0, "coherence violated during replay");
}
