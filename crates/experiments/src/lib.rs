//! # lacc-experiments — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§5), all
//! built on the helpers here: benchmark runners, PCT sweeps, classifier
//! sweeps, normalization, geometric means and paper-style table printing.
//! Binaries write a CSV per figure into `./results/` and print the same
//! series to stdout.
//!
//! Common CLI flags (hand-rolled; every binary accepts them):
//!
//! * `--scale <f64>` — workload scale factor (default 1.0);
//! * `--cores <n>` — machine size (default 64, Table 1);
//! * `--bench <name>` — restrict to one benchmark (repeatable);
//! * `--quiet` — suppress per-run progress lines;
//! * `--no-monitor` — disable the shadow-memory coherence monitor
//!   (large calibration sweeps; drops its per-access checking cost).

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Mutex;

use lacc_model::config::{ClassifierConfig, MechanismKind, TrackingKind};
use lacc_model::SystemConfig;
use lacc_sim::{SimOptions, SimReport, Simulator};
use lacc_workloads::Benchmark;

/// Parsed command-line options shared by all experiment binaries.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Workload scale factor.
    pub scale: f64,
    /// Number of cores (Table 1: 64).
    pub cores: usize,
    /// Benchmark filter (empty = all 21).
    pub benches: Vec<Benchmark>,
    /// Suppress progress output.
    pub quiet: bool,
    /// Disable the coherence monitor (calibration sweeps).
    pub no_monitor: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags or unknown
    /// benchmark names.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli =
            Cli { scale: 1.0, cores: 64, benches: Vec::new(), quiet: false, no_monitor: false };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale = args[i].parse().expect("--scale takes a float");
                }
                "--cores" => {
                    i += 1;
                    cli.cores = args[i].parse().expect("--cores takes an integer");
                }
                "--bench" => {
                    i += 1;
                    let b = Benchmark::by_name(&args[i])
                        .unwrap_or_else(|| panic!("unknown benchmark '{}'", args[i]));
                    cli.benches.push(b);
                }
                "--quiet" => cli.quiet = true,
                "--no-monitor" => cli.no_monitor = true,
                other => panic!(
                    "unknown flag '{other}' (try --scale/--cores/--bench/--quiet/--no-monitor)"
                ),
            }
            i += 1;
        }
        cli
    }

    /// The benchmarks to run.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        if self.benches.is_empty() {
            Benchmark::ALL.to_vec()
        } else {
            self.benches.clone()
        }
    }

    /// The machine configuration (Table 1 scaled to `cores`).
    #[must_use]
    pub fn base_config(&self) -> SystemConfig {
        config_for_cores(self.cores)
    }

    /// The run-time simulator options these flags select.
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        SimOptions { monitor: !self.no_monitor, ..SimOptions::default() }
    }
}

/// The Table-1 machine scaled to `cores`: memory controllers, instruction
/// clusters and limited-directory k are clamped so the configuration stays
/// valid at any machine size. Shared by the figure binaries (via
/// [`Cli::base_config`]) and the trace dump/replay tools.
#[must_use]
pub fn config_for_cores(cores: usize) -> SystemConfig {
    if cores == 64 {
        SystemConfig::isca13_64core()
    } else {
        let mut cfg = SystemConfig::isca13_64core();
        cfg.num_cores = cores;
        cfg.num_mem_ctrls = cfg.num_mem_ctrls.min(cores);
        if cores % cfg.rnuca_cluster != 0 {
            cfg.rnuca_cluster = 1;
        }
        if let TrackingKind::Limited { k } = cfg.classifier.tracking {
            cfg.classifier.tracking = TrackingKind::Limited { k: k.min(cores) };
        }
        cfg
    }
}

/// Runs one benchmark under one configuration with default
/// [`SimOptions`].
///
/// # Panics
///
/// Panics if the configuration is invalid or the run violates coherence.
#[must_use]
pub fn run_one(bench: Benchmark, cfg: &SystemConfig, scale: f64) -> SimReport {
    run_one_opts(bench, cfg, scale, SimOptions::default())
}

/// Runs one benchmark under one configuration with explicit run-time
/// [`SimOptions`] (e.g. monitor disabled for calibration sweeps).
///
/// # Panics
///
/// Panics if the configuration is invalid or the run violates coherence
/// (vacuous when the monitor is disabled).
#[must_use]
pub fn run_one_opts(
    bench: Benchmark,
    cfg: &SystemConfig,
    scale: f64,
    opts: SimOptions,
) -> SimReport {
    let w = bench.build(cfg.num_cores, scale);
    let sim =
        Simulator::with_options(cfg.clone(), w, opts).expect("valid experiment configuration");
    let report = sim.run();
    assert_eq!(report.monitor.violations, 0, "{}: coherence violated", bench.name());
    report
}

/// Runs a set of (label, benchmark, config) jobs across worker threads;
/// results keyed by `(label, benchmark name)`.
pub fn run_jobs(
    jobs: Vec<(String, Benchmark, SystemConfig)>,
    scale: f64,
    quiet: bool,
    opts: SimOptions,
) -> HashMap<(String, &'static str), SimReport> {
    let results = Mutex::new(HashMap::new());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers =
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(jobs.len().max(1));
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let (label, bench, cfg) = &jobs[i];
                let report = run_one_opts(*bench, cfg, scale, opts);
                if !quiet {
                    eprintln!("  [{label:>12}] {}", report.summary());
                }
                results.lock().unwrap().insert((label.clone(), bench.name()), report);
            });
        }
    });
    results.into_inner().unwrap()
}

/// Geometric mean of positive values (1.0 for an empty slice).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean (the paper plots the *Average* in Figures 8–9).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Ensures `./results` exists and opens `results/<name>` for writing.
///
/// # Panics
///
/// Panics on I/O errors (experiments are developer tools).
#[must_use]
pub fn open_results_file(name: &str) -> std::fs::File {
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::File::create(format!("results/{name}")).expect("create results file")
}

/// Writes one CSV row.
pub fn csv_row(f: &mut std::fs::File, cells: &[String]) {
    writeln!(f, "{}", cells.join(",")).expect("write csv");
}

/// A fixed-width table printer for paper-style output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a printer with the given column widths.
    #[must_use]
    pub fn new(widths: &[usize]) -> Self {
        Table { widths: widths.to_vec() }
    }

    /// Prints one row, left-aligning the first column and right-aligning
    /// the rest.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
            line.push(' ');
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator sized to the table.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// The PCT values of Figures 8 and 9.
pub const FIG89_PCTS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// The PCT values of Figure 10.
pub const FIG10_PCTS: [u32; 6] = [1, 2, 3, 4, 6, 8];
/// The PCT values of Figure 11.
pub const FIG11_PCTS: [u32; 14] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20];

/// Classifier variants of Figure 12, with the paper's labels.
#[must_use]
pub fn fig12_variants() -> Vec<(&'static str, ClassifierConfig)> {
    let base =
        ClassifierConfig { tracking: TrackingKind::Complete, ..ClassifierConfig::isca13_default() };
    vec![
        ("Timestamp", ClassifierConfig { mechanism: MechanismKind::Timestamp, ..base }),
        (
            "L-1",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 1, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-2,T-8",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 2, rat_max: 8 },
                ..base
            },
        ),
        (
            "L-2,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 2, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-4,T-8",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 4, rat_max: 8 },
                ..base
            },
        ),
        (
            "L-4,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 4, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-8,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 8, rat_max: 16 },
                ..base
            },
        ),
    ]
}

/// The k values of Figure 13 (`usize::MAX` denotes the Complete
/// classifier, labeled `Limited-64` in the paper).
#[must_use]
pub fn fig13_variants(num_cores: usize) -> Vec<(String, ClassifierConfig)> {
    let mut v: Vec<(String, ClassifierConfig)> = [1usize, 3, 5, 7]
        .iter()
        .map(|&k| {
            (
                format!("Limited-{k}"),
                ClassifierConfig {
                    tracking: TrackingKind::Limited { k: k.min(num_cores) },
                    ..ClassifierConfig::isca13_default()
                },
            )
        })
        .collect();
    v.push((
        "Complete".to_string(),
        ClassifierConfig { tracking: TrackingKind::Complete, ..ClassifierConfig::isca13_default() },
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_arithmetic() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig12_has_paper_labels() {
        let labels: Vec<&str> = fig12_variants().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec!["Timestamp", "L-1", "L-2,T-8", "L-2,T-16", "L-4,T-8", "L-4,T-16", "L-8,T-16"]
        );
    }

    #[test]
    fn fig13_ends_with_complete() {
        let v = fig13_variants(64);
        assert_eq!(v.len(), 5);
        assert_eq!(v.last().unwrap().0, "Complete");
    }

    #[test]
    fn config_for_cores_is_always_valid() {
        for cores in [1, 2, 4, 6, 8, 16, 64, 100] {
            let cfg = config_for_cores(cores);
            assert_eq!(cfg.num_cores, cores);
            cfg.validate().unwrap_or_else(|e| panic!("{cores} cores: {e}"));
        }
    }

    #[test]
    fn small_jobs_run_in_parallel() {
        let cfg = SystemConfig::small_for_tests(4);
        let jobs = vec![
            ("a".to_string(), Benchmark::WaterSp, cfg.clone()),
            ("b".to_string(), Benchmark::WaterSp, cfg.with_pct(1)),
        ];
        let out = run_jobs(jobs, 0.02, true, SimOptions::default());
        assert_eq!(out.len(), 2);
        assert!(out.contains_key(&("a".to_string(), "water-sp")));
    }

    #[test]
    fn no_monitor_runs_check_nothing() {
        let cli = Cli { scale: 0.02, cores: 4, benches: Vec::new(), quiet: true, no_monitor: true };
        assert!(!cli.sim_options().monitor);
        let cfg = SystemConfig::small_for_tests(4);
        let r = run_one_opts(Benchmark::WaterSp, &cfg, 0.02, cli.sim_options());
        assert_eq!(r.monitor.reads_checked, 0, "monitor must be off");
        assert!(r.completion_time > 0);
    }
}
