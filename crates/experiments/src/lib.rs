//! # lacc-experiments — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (§5), all
//! built on the helpers here: benchmark runners, PCT sweeps, classifier
//! sweeps, normalization, geometric means and paper-style table printing.
//! Binaries write a CSV per figure into `./results/` and print the same
//! series to stdout. `docs/EXPERIMENTS.md` maps every figure and table to
//! its binary and documents the CSV schemas.
//!
//! Common CLI flags (hand-rolled; every binary accepts them):
//!
//! * `--scale <f64>` — workload scale factor (default 1.0);
//! * `--cores <n>` — machine size (default 64, Table 1);
//! * `--bench <name>` — restrict to one benchmark (repeatable);
//! * `--jobs <n>` — worker threads for the sweep (default: all cores;
//!   `--jobs 1` runs serially on the calling thread);
//! * `--shards <n>` — worker threads *inside each simulation* (default 1
//!   = the serial engine; `0` = one per available hardware thread).
//!   Reports are byte-identical for any shard count — the serial engine
//!   is the oracle (DESIGN.md §7);
//! * `--shard-commit inline|concurrent` — how sharded runs harvest
//!   their commit windows: on the coordinator (`inline`, default) or on
//!   per-shard crew threads (`concurrent`). Byte-identical either way;
//! * `--quiet` — suppress per-run progress lines;
//! * `--no-monitor` — disable the shadow-memory coherence monitor
//!   (large calibration sweeps; drops its per-access checking cost).
//!
//! ## Parallel sweeps are deterministic
//!
//! Every grid point of a figure is an independent simulation, so
//! [`run_jobs`] dispatches them across a scoped worker pool — but it
//! aggregates results, prints progress and reports failures **in
//! submission order**. Figure CSVs and stdout tables are byte-identical
//! for any worker count (see DESIGN.md §7 for why this holds).

use std::collections::HashMap;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use lacc_model::config::{ClassifierConfig, MechanismKind, TrackingKind};
use lacc_model::SystemConfig;
use lacc_sim::{SimOptions, SimReport, Simulator};
use lacc_workloads::Benchmark;

/// Parsed command-line options shared by all experiment binaries.
///
/// # Examples
///
/// ```
/// use lacc_experiments::Cli;
///
/// let cli = Cli::default();
/// assert_eq!((cli.scale, cli.cores, cli.jobs), (1.0, 64, 0)); // 0 = auto
/// assert_eq!(cli.shards, 1); // serial engine unless asked
/// assert!(cli.sim_options().monitor);
/// assert_eq!(cli.sim_options().shards, 1);
/// assert_eq!(cli.benchmarks().len(), 21); // the full Table-2 suite
/// ```
#[derive(Clone, Debug)]
pub struct Cli {
    /// Workload scale factor.
    pub scale: f64,
    /// Number of cores (Table 1: 64).
    pub cores: usize,
    /// Benchmark filter (empty = all 21).
    pub benches: Vec<Benchmark>,
    /// Worker threads for [`run_jobs`]: `0` = one per available hardware
    /// thread, `1` = serial on the calling thread.
    pub jobs: usize,
    /// Shards *within* each simulation (`SimOptions::shards`): `1` =
    /// the serial engine, `0` = one shard per available hardware thread.
    /// Any value produces byte-identical reports.
    pub shards: usize,
    /// `--shard-commit concurrent`: harvest shard windows on real crew
    /// threads (`SimOptions::concurrent_commit`); `inline` (default)
    /// harvests on the coordinator. Byte-identical either way.
    pub concurrent_commit: bool,
    /// Suppress progress output.
    pub quiet: bool,
    /// Disable the coherence monitor (calibration sweeps).
    pub no_monitor: bool,
}

impl Default for Cli {
    fn default() -> Self {
        Cli {
            scale: 1.0,
            cores: 64,
            benches: Vec::new(),
            jobs: 0,
            shards: 1,
            concurrent_commit: false,
            quiet: false,
            no_monitor: false,
        }
    }
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags or unknown
    /// benchmark names.
    #[must_use]
    pub fn parse() -> Self {
        let mut cli = Cli::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    cli.scale = args[i].parse().expect("--scale takes a float");
                }
                "--cores" => {
                    i += 1;
                    cli.cores = args[i].parse().expect("--cores takes an integer");
                }
                "--bench" => {
                    i += 1;
                    let b = Benchmark::by_name(&args[i])
                        .unwrap_or_else(|| panic!("unknown benchmark '{}'", args[i]));
                    cli.benches.push(b);
                }
                "--jobs" => {
                    i += 1;
                    cli.jobs = args[i].parse().expect("--jobs takes an integer (0 = auto)");
                }
                "--shards" => {
                    i += 1;
                    cli.shards = args[i].parse().expect("--shards takes an integer (0 = auto)");
                }
                "--shard-commit" => {
                    i += 1;
                    cli.concurrent_commit = match args.get(i).map(String::as_str) {
                        Some("concurrent") => true,
                        Some("inline") => false,
                        other => {
                            panic!("--shard-commit takes 'inline' or 'concurrent', got {other:?}")
                        }
                    };
                }
                "--quiet" => cli.quiet = true,
                "--no-monitor" => cli.no_monitor = true,
                other => panic!(
                    "unknown flag '{other}' \
                     (try --scale/--cores/--bench/--jobs/--shards/--shard-commit/--quiet/\
                      --no-monitor)"
                ),
            }
            i += 1;
        }
        cli
    }

    /// The benchmarks to run.
    #[must_use]
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        if self.benches.is_empty() {
            Benchmark::ALL.to_vec()
        } else {
            self.benches.clone()
        }
    }

    /// The machine configuration (Table 1 scaled to `cores`).
    #[must_use]
    pub fn base_config(&self) -> SystemConfig {
        config_for_cores(self.cores)
    }

    /// The run-time simulator options these flags select. `--shards 0`
    /// resolves to one shard per available hardware thread here (the
    /// simulator itself clamps to the tile count).
    #[must_use]
    pub fn sim_options(&self) -> SimOptions {
        let shards = if self.shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.shards
        };
        SimOptions {
            monitor: !self.no_monitor,
            shards,
            concurrent_commit: self.concurrent_commit,
            ..SimOptions::default()
        }
    }

    /// Runs a sweep with this invocation's scale, verbosity, simulator
    /// options and `--jobs` worker count — the one-liner every figure
    /// binary uses. Grid points are dispatched largest-first using
    /// [`Benchmark::cost_hint`] so the biggest simulations never straggle
    /// at the tail of a parallel sweep; aggregation (and therefore every
    /// CSV and stdout table) stays submission-ordered. See
    /// [`run_jobs_hinted`].
    pub fn run_jobs(&self, jobs: Vec<(String, Benchmark, SystemConfig)>) -> SweepResults {
        let costs: Vec<u64> = jobs.iter().map(|(_, b, _)| b.cost_hint()).collect();
        run_jobs_hinted(jobs, self.scale, self.quiet, self.sim_options(), self.jobs, Some(&costs))
    }
}

/// The Table-1 machine scaled to `cores`: memory controllers, instruction
/// clusters and limited-directory k are clamped so the configuration stays
/// valid at any machine size. Shared by the figure binaries (via
/// [`Cli::base_config`]) and the trace dump/replay tools.
///
/// # Examples
///
/// ```
/// use lacc_experiments::config_for_cores;
///
/// let cfg = config_for_cores(16);
/// assert_eq!(cfg.num_cores, 16);
/// assert!(cfg.num_mem_ctrls <= 16);
/// cfg.validate().expect("scaled Table-1 machines are always valid");
/// ```
#[must_use]
pub fn config_for_cores(cores: usize) -> SystemConfig {
    if cores == 64 {
        SystemConfig::isca13_64core()
    } else {
        let mut cfg = SystemConfig::isca13_64core();
        cfg.num_cores = cores;
        cfg.num_mem_ctrls = cfg.num_mem_ctrls.min(cores);
        if cores % cfg.rnuca_cluster != 0 {
            cfg.rnuca_cluster = 1;
        }
        if let TrackingKind::Limited { k } = cfg.classifier.tracking {
            cfg.classifier.tracking = TrackingKind::Limited { k: k.min(cores) };
        }
        cfg
    }
}

/// Runs one benchmark under one configuration with default
/// [`SimOptions`].
///
/// # Panics
///
/// Panics if the configuration is invalid or the run violates coherence.
#[must_use]
pub fn run_one(bench: Benchmark, cfg: &SystemConfig, scale: f64) -> SimReport {
    run_one_opts(bench, cfg, scale, SimOptions::default())
}

/// Runs one benchmark under one configuration with explicit run-time
/// [`SimOptions`] (e.g. monitor disabled for calibration sweeps).
///
/// # Examples
///
/// ```
/// use lacc_experiments::run_one_opts;
/// use lacc_model::SystemConfig;
/// use lacc_sim::SimOptions;
/// use lacc_workloads::Benchmark;
///
/// let cfg = SystemConfig::small_for_tests(4);
/// let opts = SimOptions { monitor: false, ..SimOptions::default() };
/// let report = run_one_opts(Benchmark::WaterSp, &cfg, 0.02, opts);
/// assert!(report.completion_time > 0);
/// assert_eq!(report.monitor.reads_checked, 0); // monitor was off
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid or the run violates coherence
/// (vacuous when the monitor is disabled).
#[must_use]
pub fn run_one_opts(
    bench: Benchmark,
    cfg: &SystemConfig,
    scale: f64,
    opts: SimOptions,
) -> SimReport {
    let w = bench.build(cfg.num_cores, scale);
    let sim =
        Simulator::with_options(cfg.clone(), w, opts).expect("valid experiment configuration");
    let report = sim.run();
    assert_eq!(report.monitor.violations, 0, "{}: coherence violated", bench.name());
    report
}

/// Results of one sweep, keyed by `(label, benchmark name)` and ordered
/// by submission.
///
/// Produced by [`run_jobs`]. Lookups are O(1) via [`SweepResults::get`]
/// or indexing; [`SweepResults::iter`] walks the reports in the exact
/// order the jobs were submitted, never the order worker threads finished
/// in — which is what keeps every figure CSV and stdout table
/// byte-identical for any worker count.
pub struct SweepResults {
    order: Vec<(String, &'static str)>,
    map: HashMap<(String, &'static str), SimReport>,
}

impl SweepResults {
    /// Number of completed jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the sweep had no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The report for `(label, benchmark name)`, if that job was run.
    #[must_use]
    pub fn get(&self, key: &(String, &'static str)) -> Option<&SimReport> {
        self.map.get(key)
    }

    /// Whether a job with this key was run.
    #[must_use]
    pub fn contains_key(&self, key: &(String, &'static str)) -> bool {
        self.map.contains_key(key)
    }

    /// Keys and reports in submission order.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, &'static str), &SimReport)> {
        self.order.iter().map(|k| (k, &self.map[k]))
    }
}

impl std::fmt::Debug for SweepResults {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepResults").field("jobs", &self.order).finish()
    }
}

impl std::ops::Index<&(String, &'static str)> for SweepResults {
    type Output = SimReport;

    fn index(&self, key: &(String, &'static str)) -> &SimReport {
        self.map.get(key).unwrap_or_else(|| panic!("no sweep result for {key:?}"))
    }
}

/// Runs a set of `(label, benchmark, config)` jobs across `workers`
/// threads (`0` = one per available hardware thread, `1` = serial on the
/// calling thread) and aggregates the reports **in submission order**.
///
/// Each job builds, owns and runs its own [`Simulator`] — nothing is
/// shared between workers except the read-only job list, which the
/// compiler enforces via the `Send` assertions in `lacc-sim`. Progress
/// lines (unless `quiet`) are printed by the aggregator as the completed
/// prefix of the submission order grows, so stderr is as deterministic as
/// the results themselves.
///
/// # Examples
///
/// ```
/// use lacc_experiments::run_jobs;
/// use lacc_model::SystemConfig;
/// use lacc_sim::SimOptions;
/// use lacc_workloads::Benchmark;
///
/// let cfg = SystemConfig::small_for_tests(2);
/// let jobs = vec![
///     ("pct1".to_string(), Benchmark::WaterSp, cfg.clone().with_pct(1)),
///     ("pct4".to_string(), Benchmark::WaterSp, cfg.with_pct(4)),
/// ];
/// let results = run_jobs(jobs, 0.02, true, SimOptions::default(), 2);
/// assert_eq!(results.len(), 2);
/// // Iteration follows submission order, not completion order.
/// let labels: Vec<&str> = results.iter().map(|((l, _), _)| l.as_str()).collect();
/// assert_eq!(labels, ["pct1", "pct4"]);
/// assert!(results[&("pct1".to_string(), "water-sp")].completion_time > 0);
/// ```
///
/// # Panics
///
/// Panics if two jobs share a `(label, benchmark)` key, or — after every
/// remaining job has finished — if any job panicked, with a message
/// naming each failed job. A panicking job never deadlocks the pool or
/// poisons the other jobs' results.
#[must_use]
pub fn run_jobs(
    jobs: Vec<(String, Benchmark, SystemConfig)>,
    scale: f64,
    quiet: bool,
    opts: SimOptions,
    workers: usize,
) -> SweepResults {
    run_jobs_hinted(jobs, scale, quiet, opts, workers, None)
}

/// The order workers pull jobs in: indices sorted by descending cost
/// hint, submission order breaking ties (and standing in entirely when
/// no hints are given). Dispatch order affects wall-clock only — results
/// are aggregated by submission index regardless.
fn dispatch_order(n: usize, cost_hint: Option<&[u64]>) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    if let Some(costs) = cost_hint {
        order.sort_by_key(|&i| std::cmp::Reverse(costs[i]));
        // sort_by_key is stable: equal costs keep submission order.
    }
    order
}

/// [`run_jobs`] with an optional per-job cost hint controlling *dispatch*
/// order.
///
/// With hints, workers pick up jobs largest-first, which packs the long
/// simulations into the front of the sweep instead of letting one
/// late-dispatched giant straggle after every other worker has drained
/// (the classic LPT schedule). Aggregation, progress printing and the
/// returned [`SweepResults`] remain strictly submission-ordered, so
/// output bytes are unaffected by the hints (and by the worker count).
///
/// # Panics
///
/// As [`run_jobs`], plus if `cost_hint` is `Some` with a length other
/// than `jobs.len()`.
#[must_use]
pub fn run_jobs_hinted(
    jobs: Vec<(String, Benchmark, SystemConfig)>,
    scale: f64,
    quiet: bool,
    opts: SimOptions,
    workers: usize,
    cost_hint: Option<&[u64]>,
) -> SweepResults {
    // `LACC_SIM_STATS=1` asks for the data-plane ledger of every run.
    // The simulator no longer prints it itself (worker threads racing on
    // stderr tore lines mid-write); the aggregator emits one intact line
    // per job, in submission order, from `SimReport::slab`.
    let stats_enabled = std::env::var("LACC_SIM_STATS").as_deref() == Ok("1");
    let mut stderr_sink = |line: &str| eprintln!("{line}");
    run_jobs_core(
        jobs,
        scale,
        quiet,
        opts,
        workers,
        cost_hint,
        if stats_enabled { Some(&mut stderr_sink) } else { None },
    )
}

/// [`run_jobs`] with an explicit sink receiving each job's
/// `[lacc-sim-stats]` ledger line (one intact line per job, in
/// submission order, regardless of `--jobs`/`--shards`). The
/// `LACC_SIM_STATS` environment variable is ignored on this path — the
/// sink *is* the opt-in — which keeps tests hermetic.
///
/// # Panics
///
/// As [`run_jobs`].
#[must_use]
pub fn run_jobs_with_stats_sink(
    jobs: Vec<(String, Benchmark, SystemConfig)>,
    scale: f64,
    quiet: bool,
    opts: SimOptions,
    workers: usize,
    sink: &mut dyn FnMut(&str),
) -> SweepResults {
    run_jobs_core(jobs, scale, quiet, opts, workers, None, Some(sink))
}

fn run_jobs_core(
    jobs: Vec<(String, Benchmark, SystemConfig)>,
    scale: f64,
    quiet: bool,
    opts: SimOptions,
    workers: usize,
    cost_hint: Option<&[u64]>,
    mut stats_sink: Option<&mut dyn FnMut(&str)>,
) -> SweepResults {
    let n = jobs.len();
    if let Some(costs) = cost_hint {
        assert_eq!(costs.len(), n, "one cost hint per job");
    }
    // Reject key collisions before dispatch: a duplicate would silently
    // shadow a result, and a full-scale sweep is far too expensive to run
    // just to find out at aggregation time.
    let mut seen = std::collections::HashSet::with_capacity(n);
    for (label, bench, _) in &jobs {
        assert!(
            seen.insert((label.as_str(), bench.name())),
            "duplicate sweep job ({label:?}, {:?}): labels must disambiguate grid points",
            bench.name()
        );
    }
    drop(seen);

    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        workers
    }
    .min(n);

    // One slot per job, filled exactly once; submission order is the slot
    // order, whatever order the workers finish in.
    let mut slots: Vec<Option<Result<SimReport, String>>> = Vec::new();
    slots.resize_with(n, || None);

    if workers <= 1 {
        // Serial path (`--jobs 1`): run on the calling thread, no pool.
        // Cost hints are moot with a single worker — the makespan is the
        // sum either way — so jobs run in submission order.
        for (slot, (label, bench, cfg)) in slots.iter_mut().zip(&jobs) {
            let res = run_caught(*bench, cfg, scale, opts);
            progress(quiet, label, &res, &mut stats_sink);
            *slot = Some(res);
        }
    } else {
        let dispatch = dispatch_order(n, cost_hint);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<SimReport, String>)>();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let jobs = &jobs;
                let dispatch = &dispatch;
                s.spawn(move || loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let i = dispatch[k];
                    let (_, bench, cfg) = &jobs[i];
                    let res = run_caught(*bench, cfg, scale, opts);
                    if tx.send((i, res)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Aggregate on this thread: buffer out-of-order arrivals and
            // emit progress for the contiguous completed prefix.
            let mut reported = 0;
            for _ in 0..n {
                let (i, res) = rx.recv().expect("a worker died without reporting its job");
                slots[i] = Some(res);
                while reported < n {
                    match &slots[reported] {
                        Some(res) => progress(quiet, &jobs[reported].0, res, &mut stats_sink),
                        None => break,
                    }
                    reported += 1;
                }
            }
        });
    }

    let mut order = Vec::with_capacity(n);
    let mut map = HashMap::with_capacity(n);
    let mut failures = Vec::new();
    for (slot, (label, bench, _)) in slots.into_iter().zip(jobs) {
        let key = (label, bench.name());
        match slot.expect("every job has a result once the pool drains") {
            Ok(report) => {
                map.insert(key.clone(), report); // keys pre-checked unique
                order.push(key);
            }
            Err(msg) => failures.push(format!("[{}] {}: {msg}", key.0, key.1)),
        }
    }
    assert!(
        failures.is_empty(),
        "{} sweep job(s) panicked:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    SweepResults { order, map }
}

/// Runs one job, converting a panic into an `Err` carrying its message so
/// the pool can finish the sweep and report the failure by label.
fn run_caught(
    bench: Benchmark,
    cfg: &SystemConfig,
    scale: f64,
    opts: SimOptions,
) -> Result<SimReport, String> {
    catch_unwind(AssertUnwindSafe(|| run_one_opts(bench, cfg, scale, opts))).map_err(|payload| {
        payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string())
    })
}

/// Emits the progress line and (when a stats sink is installed) the
/// `[lacc-sim-stats]` ledger line for one completed job. Only ever called
/// from the aggregating thread, for the contiguous completed prefix of
/// the submission order — that single-threaded choke point is what makes
/// both streams tear-free and deterministic under any worker count.
fn progress(
    quiet: bool,
    label: &str,
    res: &Result<SimReport, String>,
    stats_sink: &mut Option<&mut dyn FnMut(&str)>,
) {
    if !quiet {
        if let Ok(report) = res {
            eprintln!("  [{label:>12}] {}", report.summary());
        }
    }
    if let (Some(sink), Ok(report)) = (stats_sink.as_mut(), res) {
        sink(&report.sim_stats_line());
    }
}

/// Geometric mean of positive values (1.0 for an empty slice).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Arithmetic mean (the paper plots the *Average* in Figures 8–9).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Ensures `./results` exists and opens `results/<name>` for writing.
///
/// # Panics
///
/// Panics on I/O errors (experiments are developer tools).
#[must_use]
pub fn open_results_file(name: &str) -> std::fs::File {
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::File::create(format!("results/{name}")).expect("create results file")
}

/// Writes one CSV row.
pub fn csv_row(f: &mut std::fs::File, cells: &[String]) {
    writeln!(f, "{}", cells.join(",")).expect("write csv");
}

/// A fixed-width table printer for paper-style output.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a printer with the given column widths.
    #[must_use]
    pub fn new(widths: &[usize]) -> Self {
        Table { widths: widths.to_vec() }
    }

    /// Prints one row, left-aligning the first column and right-aligning
    /// the rest.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            let w = self.widths.get(i).copied().unwrap_or(10);
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
            line.push(' ');
        }
        println!("{}", line.trim_end());
    }

    /// Prints a separator sized to the table.
    pub fn sep(&self) {
        let total: usize = self.widths.iter().sum::<usize>() + self.widths.len();
        println!("{}", "-".repeat(total));
    }
}

/// The PCT values of Figures 8 and 9.
pub const FIG89_PCTS: [u32; 8] = [1, 2, 3, 4, 5, 6, 7, 8];
/// The PCT values of Figure 10.
pub const FIG10_PCTS: [u32; 6] = [1, 2, 3, 4, 6, 8];
/// The PCT values of Figure 11.
pub const FIG11_PCTS: [u32; 14] = [1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20];

/// Classifier variants of Figure 12, with the paper's labels.
///
/// # Examples
///
/// ```
/// let labels: Vec<&str> =
///     lacc_experiments::fig12_variants().iter().map(|(l, _)| *l).collect();
/// assert_eq!(labels[0], "Timestamp"); // the normalization baseline
/// assert_eq!(labels.len(), 7);
/// ```
#[must_use]
pub fn fig12_variants() -> Vec<(&'static str, ClassifierConfig)> {
    let base =
        ClassifierConfig { tracking: TrackingKind::Complete, ..ClassifierConfig::isca13_default() };
    vec![
        ("Timestamp", ClassifierConfig { mechanism: MechanismKind::Timestamp, ..base }),
        (
            "L-1",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 1, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-2,T-8",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 2, rat_max: 8 },
                ..base
            },
        ),
        (
            "L-2,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 2, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-4,T-8",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 4, rat_max: 8 },
                ..base
            },
        ),
        (
            "L-4,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 4, rat_max: 16 },
                ..base
            },
        ),
        (
            "L-8,T-16",
            ClassifierConfig {
                mechanism: MechanismKind::RatLevels { levels: 8, rat_max: 16 },
                ..base
            },
        ),
    ]
}

/// The k values of Figure 13 (`usize::MAX` denotes the Complete
/// classifier, labeled `Limited-64` in the paper).
///
/// # Examples
///
/// ```
/// let v = lacc_experiments::fig13_variants(64);
/// assert_eq!(v.len(), 5);
/// assert_eq!(v.last().unwrap().0, "Complete"); // the baseline variant
/// ```
#[must_use]
pub fn fig13_variants(num_cores: usize) -> Vec<(String, ClassifierConfig)> {
    let mut v: Vec<(String, ClassifierConfig)> = [1usize, 3, 5, 7]
        .iter()
        .map(|&k| {
            (
                format!("Limited-{k}"),
                ClassifierConfig {
                    tracking: TrackingKind::Limited { k: k.min(num_cores) },
                    ..ClassifierConfig::isca13_default()
                },
            )
        })
        .collect();
    v.push((
        "Complete".to_string(),
        ClassifierConfig { tracking: TrackingKind::Complete, ..ClassifierConfig::isca13_default() },
    ));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity_is_one() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_is_arithmetic() {
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fig12_has_paper_labels() {
        let labels: Vec<&str> = fig12_variants().iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec!["Timestamp", "L-1", "L-2,T-8", "L-2,T-16", "L-4,T-8", "L-4,T-16", "L-8,T-16"]
        );
    }

    #[test]
    fn fig13_ends_with_complete() {
        let v = fig13_variants(64);
        assert_eq!(v.len(), 5);
        assert_eq!(v.last().unwrap().0, "Complete");
    }

    #[test]
    fn config_for_cores_is_always_valid() {
        for cores in [1, 2, 4, 6, 8, 16, 64, 100] {
            let cfg = config_for_cores(cores);
            assert_eq!(cfg.num_cores, cores);
            cfg.validate().unwrap_or_else(|e| panic!("{cores} cores: {e}"));
        }
    }

    #[test]
    fn dispatch_order_is_largest_first_stable() {
        assert_eq!(dispatch_order(4, None), vec![0, 1, 2, 3], "no hints: submission order");
        assert_eq!(dispatch_order(0, None), Vec::<usize>::new());
        // Largest first; the two 10s keep their submission order.
        assert_eq!(dispatch_order(5, Some(&[10, 99, 10, 50, 7])), vec![1, 3, 0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "one cost hint per job")]
    fn mismatched_cost_hints_are_rejected() {
        let cfg = SystemConfig::small_for_tests(4);
        let jobs = vec![("a".to_string(), Benchmark::WaterSp, cfg)];
        let _ = run_jobs_hinted(jobs, 0.02, true, SimOptions::default(), 2, Some(&[1, 2]));
    }

    #[test]
    fn hinted_dispatch_matches_unhinted_results() {
        let cfg = SystemConfig::small_for_tests(4);
        let jobs = || {
            vec![
                ("small".to_string(), Benchmark::WaterSp, cfg.clone()),
                ("big".to_string(), Benchmark::WaterSp, cfg.clone().with_pct(1)),
                ("mid".to_string(), Benchmark::WaterSp, cfg.clone().with_pct(4)),
            ]
        };
        let plain = run_jobs(jobs(), 0.02, true, SimOptions::default(), 2);
        // Hints reorder dispatch only: completion times and iteration
        // order must be exactly the submission order either way.
        let hinted =
            run_jobs_hinted(jobs(), 0.02, true, SimOptions::default(), 2, Some(&[1, 100, 50]));
        let key = |r: &SweepResults| -> Vec<(String, u64)> {
            r.iter().map(|((l, _), rep)| (l.clone(), rep.completion_time)).collect()
        };
        assert_eq!(key(&plain), key(&hinted));
        assert_eq!(
            hinted.iter().map(|((l, _), _)| l.as_str()).collect::<Vec<_>>(),
            ["small", "big", "mid"],
            "iteration stays submission-ordered under hints"
        );
    }

    #[test]
    fn small_jobs_run_in_parallel() {
        let cfg = SystemConfig::small_for_tests(4);
        let jobs = vec![
            ("a".to_string(), Benchmark::WaterSp, cfg.clone()),
            ("b".to_string(), Benchmark::WaterSp, cfg.with_pct(1)),
        ];
        let out = run_jobs(jobs, 0.02, true, SimOptions::default(), 2);
        assert_eq!(out.len(), 2);
        assert!(out.contains_key(&("a".to_string(), "water-sp")));
        let order: Vec<&str> = out.iter().map(|((l, _), _)| l.as_str()).collect();
        assert_eq!(order, ["a", "b"], "iteration follows submission order");
    }

    #[test]
    #[should_panic(expected = "duplicate sweep job")]
    fn duplicate_job_keys_are_rejected() {
        let cfg = SystemConfig::small_for_tests(4);
        let jobs = vec![
            ("a".to_string(), Benchmark::WaterSp, cfg.clone()),
            ("a".to_string(), Benchmark::WaterSp, cfg),
        ];
        let _ = run_jobs(jobs, 0.02, true, SimOptions::default(), 1);
    }

    #[test]
    fn no_monitor_runs_check_nothing() {
        let cli = Cli { scale: 0.02, cores: 4, quiet: true, no_monitor: true, ..Cli::default() };
        assert!(!cli.sim_options().monitor);
        let cfg = SystemConfig::small_for_tests(4);
        let r = run_one_opts(Benchmark::WaterSp, &cfg, 0.02, cli.sim_options());
        assert_eq!(r.monitor.reads_checked, 0, "monitor must be off");
        assert!(r.completion_time > 0);
    }
}
