//! The scoped sweep pool (`run_jobs`): worker count must never change the
//! ordered output, a panicking job must be contained and named, and the
//! empty sweep must be a no-op at any worker count.
//!
//! Sampling is deterministic (the vendored proptest shim seeds from the
//! test name), so failures reproduce exactly.

use std::panic::{catch_unwind, AssertUnwindSafe};

use proptest::prelude::*;

use lacc_experiments::{run_jobs, run_jobs_hinted, run_jobs_with_stats_sink, SweepResults};
use lacc_model::SystemConfig;
use lacc_sim::SimOptions;
use lacc_workloads::Benchmark;

const SCALE: f64 = 0.02;
const CORES: usize = 4;
const BENCHES: [Benchmark; 4] =
    [Benchmark::WaterSp, Benchmark::Streamcluster, Benchmark::Concomp, Benchmark::Patricia];

/// A canonical rendering of a whole sweep: submission order plus the full
/// `Debug` state of every report. Two sweeps with equal fingerprints
/// produce byte-identical CSVs and stdout tables in every figure binary.
fn fingerprint(results: &SweepResults) -> String {
    results
        .iter()
        .map(|((label, bench), report)| format!("{label}/{bench}: {report:?}\n"))
        .collect()
}

/// A small but non-trivial job grid derived deterministically from `seed`:
/// mixed benchmarks, mixed PCTs, unique labels.
fn jobs_from_seed(seed: u64, njobs: usize) -> Vec<(String, Benchmark, SystemConfig)> {
    (0..njobs)
        .map(|i| {
            let bench = BENCHES[(seed as usize + i) % BENCHES.len()];
            let pct = 1 + ((seed >> 3) as u32 + i as u32) % 8;
            let cfg = SystemConfig::small_for_tests(CORES).with_pct(pct);
            (format!("j{i}-pct{pct}"), bench, cfg)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    // The acceptance property of the pool: for the same submitted jobs,
    // workers ∈ {1, 2, 8} yield identical ordered output — the serial
    // baseline (`--jobs 1`) fingerprint is the reference.
    #[test]
    fn workers_never_change_the_ordered_output(
        seed in 0u64..(1u64 << 16),
        njobs in 2usize..7,
    ) {
        let serial =
            fingerprint(&run_jobs(jobs_from_seed(seed, njobs), SCALE, true, SimOptions::default(), 1));
        prop_assert!(!serial.is_empty());
        for workers in [2usize, 8] {
            let parallel = fingerprint(&run_jobs(
                jobs_from_seed(seed, njobs),
                SCALE,
                true,
                SimOptions::default(),
                workers,
            ));
            prop_assert_eq!(&serial, &parallel, "workers={} diverged from serial", workers);
        }
    }

    // Largest-first dispatch (cost hints) is a wall-clock optimization
    // only: for any hint vector — including adversarially inverted ones —
    // the ordered output matches the unhinted serial baseline exactly.
    #[test]
    fn cost_hints_never_change_the_ordered_output(
        seed in 0u64..(1u64 << 16),
        njobs in 2usize..6,
        invert in proptest::bool::ANY,
    ) {
        let serial =
            fingerprint(&run_jobs(jobs_from_seed(seed, njobs), SCALE, true, SimOptions::default(), 1));
        let costs: Vec<u64> = (0..njobs as u64)
            .map(|i| if invert { i } else { njobs as u64 - i })
            .collect();
        let hinted = fingerprint(&run_jobs_hinted(
            jobs_from_seed(seed, njobs),
            SCALE,
            true,
            SimOptions::default(),
            3,
            Some(&costs),
        ));
        prop_assert_eq!(&serial, &hinted, "cost hints changed the ordered output");
    }
}

#[test]
fn panicking_job_is_contained_and_named() {
    let good = SystemConfig::small_for_tests(CORES);
    let mut bad = SystemConfig::small_for_tests(CORES);
    bad.classifier.pct = 0; // fails SystemConfig::validate inside the worker

    let jobs = vec![
        ("ok-1".to_string(), Benchmark::WaterSp, good.clone()),
        ("broken".to_string(), Benchmark::Streamcluster, bad),
        ("ok-2".to_string(), Benchmark::WaterSp, good.with_pct(2)),
    ];
    let payload =
        catch_unwind(AssertUnwindSafe(|| run_jobs(jobs, SCALE, true, SimOptions::default(), 2)))
            .expect_err("a panicking job must fail the sweep");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("1 sweep job(s) panicked"), "got: {msg}");
    assert!(msg.contains("[broken] streamclus."), "failure must name the job, got: {msg}");
    assert!(!msg.contains("ok-1") && !msg.contains("ok-2"), "healthy jobs not blamed: {msg}");
}

#[test]
fn panicking_job_under_shards_is_contained_and_named() {
    // Same containment contract when the job runs the *sharded* engine:
    // the deadlock/validation panic may originate with worker threads
    // parked inside the simulation, yet the sweep still finishes the
    // healthy jobs and names the broken one.
    let good = SystemConfig::small_for_tests(CORES);
    let mut bad = SystemConfig::small_for_tests(CORES);
    bad.classifier.pct = 0;

    let jobs = vec![
        ("ok-1".to_string(), Benchmark::WaterSp, good.clone()),
        ("broken".to_string(), Benchmark::Streamcluster, bad),
        ("ok-2".to_string(), Benchmark::WaterSp, good.with_pct(2)),
    ];
    let opts = SimOptions { shards: 2, ..SimOptions::default() };
    let payload = catch_unwind(AssertUnwindSafe(|| run_jobs(jobs, SCALE, true, opts, 2)))
        .expect_err("a panicking sharded job must fail the sweep");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("panic payload is a message");
    assert!(msg.contains("1 sweep job(s) panicked"), "got: {msg}");
    assert!(msg.contains("[broken] streamclus."), "failure must name the job, got: {msg}");
    assert!(!msg.contains("ok-1") && !msg.contains("ok-2"), "healthy jobs not blamed: {msg}");
}

/// The `LACC_SIM_STATS` regression (the old in-`run` `eprintln!` tore
/// under parallel sweeps): through the sink path, every job emits exactly
/// one intact, well-formed ledger line, in submission order, for any
/// worker count — and the lines match the serial baseline byte-for-byte.
#[test]
fn stats_sink_gets_one_intact_line_per_job_in_submission_order() {
    let mk = || jobs_from_seed(11, 5);
    let collect = |workers: usize, shards: usize| -> Vec<String> {
        let mut lines = Vec::new();
        let opts = SimOptions { shards, ..SimOptions::default() };
        let _ = run_jobs_with_stats_sink(mk(), SCALE, true, opts, workers, &mut |line| {
            lines.push(line.to_string());
        });
        lines
    };

    let serial = collect(1, 1);
    assert_eq!(serial.len(), 5, "one line per job");
    let expected_workloads: Vec<String> =
        mk().iter().map(|(_, b, _)| format!("workload={}", b.name())).collect();
    for (line, want) in serial.iter().zip(&expected_workloads) {
        assert!(line.starts_with("[lacc-sim-stats] "), "intact prefix: {line}");
        assert!(line.contains(want), "submission order: expected {want} in {line}");
        assert!(line.contains(" slab: allocs=") && line.contains(" total_refs="), "{line}");
        assert!(!line.contains('\n'), "one line, no tearing: {line:?}");
    }
    // Any worker count — and the sharded engine inside each job — must
    // reproduce the serial stream byte-for-byte.
    for (workers, shards) in [(8, 1), (1, 2), (8, 2)] {
        assert_eq!(collect(workers, shards), serial, "workers={workers} shards={shards}");
    }
}

#[test]
fn empty_job_list_is_a_noop_at_any_worker_count() {
    for workers in [0usize, 1, 8] {
        let out = run_jobs(Vec::new(), SCALE, false, SimOptions::default(), workers);
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
        assert_eq!(out.iter().count(), 0);
        assert!(!out.contains_key(&("anything".to_string(), "water-sp")));
    }
}

#[test]
fn auto_and_oversubscribed_worker_counts_match_serial() {
    let mk = || jobs_from_seed(7, 3);
    let serial = fingerprint(&run_jobs(mk(), SCALE, true, SimOptions::default(), 1));
    // workers = 0 resolves to available parallelism; 16 > njobs clamps.
    for workers in [0usize, 16] {
        let out = fingerprint(&run_jobs(mk(), SCALE, true, SimOptions::default(), workers));
        assert_eq!(serial, out, "workers={workers}");
    }
}
