//! Storage-overhead arithmetic of §3.6.
//!
//! Reproduces, from first principles, every number the paper reports:
//! 18 KB per core for the Limited_3 classifier, 192 KB for the Complete
//! classifier, 12 KB for ACKwise_4, 32 KB for a full-map directory, a
//! 5.7% overhead over baseline ACKwise_4 for the default configuration and
//! ~60% for the Complete classifier — and the headline comparison that
//! **Limited_3 + ACKwise_4 needs less storage than full-map alone**.

use lacc_model::config::{MechanismKind, SystemConfig, TrackingKind};
use lacc_model::DirectoryKind;

/// Bits needed to count `states` distinct values.
#[must_use]
fn bits_for(states: u64) -> u32 {
    64 - states.saturating_sub(1).leading_zeros().min(64)
}

/// Per-core storage accounting, all sizes in kilobytes (KB = 1024 bytes).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct StorageReport {
    /// Bits of locality state per tracked core at the directory
    /// (remote-utilization counter + mode bit + RAT-level bits, §3.6).
    pub bits_per_tracked_core: u32,
    /// Bits added to each directory entry by the classifier (tracked cores
    /// × per-core bits, + core-id bits each under Limited_k).
    pub classifier_bits_per_entry: u32,
    /// KB per core of classifier state at the directory.
    pub classifier_kb: f64,
    /// KB per core of utilization bits in the L1 caches.
    pub l1_kb: f64,
    /// KB per core for the sharer-tracking directory itself.
    pub directory_kb: f64,
    /// KB per core for a full-map directory (comparison point).
    pub full_map_kb: f64,
    /// Classifier overhead as a fraction of the baseline per-core storage
    /// (L1-I + L1-D + L2 + directory), as computed in §3.6.
    pub overhead_vs_baseline: f64,
}

/// Computes the §3.6 storage report for a configuration.
///
/// # Examples
///
/// ```
/// use lacc_core::overheads::storage_report;
/// use lacc_model::config::SystemConfig;
///
/// let r = storage_report(&SystemConfig::isca13_64core());
/// assert_eq!(r.classifier_kb, 18.0);            // the paper's 18 KB
/// assert!((r.overhead_vs_baseline - 0.057).abs() < 0.001); // its 5.7%
/// ```
#[must_use]
pub fn storage_report(cfg: &SystemConfig) -> StorageReport {
    let num_cores = cfg.num_cores as u64;
    let dir_entries = cfg.l2.num_lines(cfg.line_bytes) as u64; // integrated per L2 line

    // Private utilization counter: counts 1..=PCT (2 bits at PCT = 4).
    let l1_util_bits = bits_for(cfg.classifier.pct as u64).max(1);
    // Remote utilization counter: counts up to RATmax (4 bits at 16).
    let (rat_max, rat_levels) = match cfg.classifier.mechanism {
        MechanismKind::RatLevels { levels, rat_max } => (rat_max as u64, levels as u64),
        // The Timestamp variant needs a 64-bit timestamp instead of RAT
        // bits; the remote counter still counts to PCT.
        MechanismKind::Timestamp => (cfg.classifier.pct as u64, 1),
    };
    let remote_util_bits = bits_for(rat_max).max(1);
    let mode_bit = 1u32;
    let rat_level_bits = if rat_levels > 1 { bits_for(rat_levels).max(1) } else { 1 };
    let timestamp_bits =
        if matches!(cfg.classifier.mechanism, MechanismKind::Timestamp) { 64 } else { 0 };
    let bits_per_tracked_core = remote_util_bits + mode_bit + rat_level_bits + timestamp_bits;

    let core_id_bits = bits_for(num_cores).max(1);
    let classifier_bits_per_entry = match cfg.classifier.tracking {
        TrackingKind::Complete => num_cores as u32 * bits_per_tracked_core,
        TrackingKind::Limited { k } => k as u32 * (bits_per_tracked_core + core_id_bits),
    };
    let classifier_kb = (classifier_bits_per_entry as u64 * dir_entries) as f64 / 8.0 / 1024.0;

    // L1 tag extensions: utilization bits per line over both L1s (§3.6
    // neglects this — we report it). The Timestamp variant also stores a
    // 64-bit last-access timestamp per L1 line.
    let l1_lines = (cfg.l1i.num_lines(cfg.line_bytes) + cfg.l1d.num_lines(cfg.line_bytes)) as u64;
    let l1_bits_per_line = l1_util_bits + timestamp_bits;
    let l1_kb = (l1_bits_per_line as u64 * l1_lines) as f64 / 8.0 / 1024.0;

    // Sharer-tracking storage.
    let dir_bits_per_entry = match cfg.directory {
        DirectoryKind::FullMap => num_cores as u32,
        DirectoryKind::AckWise { pointers } => pointers as u32 * core_id_bits,
    };
    let directory_kb = (dir_bits_per_entry as u64 * dir_entries) as f64 / 8.0 / 1024.0;
    let full_map_kb = (num_cores * dir_entries) as f64 / 8.0 / 1024.0;

    // Baseline per-core storage: L1-I + L1-D + L2 + directory (§3.6
    // "factoring in the L1-I, L1-D and L2 cache sizes also").
    let baseline_kb = (cfg.l1i.size_bytes + cfg.l1d.size_bytes + cfg.l2.size_bytes) as f64 / 1024.0
        + directory_kb;
    let overhead_vs_baseline = (classifier_kb + l1_kb) / baseline_kb;

    StorageReport {
        bits_per_tracked_core,
        classifier_bits_per_entry,
        classifier_kb,
        l1_kb,
        directory_kb,
        full_map_kb,
        overhead_vs_baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_model::config::ClassifierConfig;

    #[test]
    fn bits_for_counts() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(16), 4);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(5), 3);
    }

    #[test]
    fn paper_numbers_limited3() {
        let r = storage_report(&SystemConfig::isca13_64core());
        // §3.6: 12 bits per tracked sharer (4 util + 1 mode + 1 RAT-level
        // + 6 core id), 36 bits per entry, 18 KB per core.
        assert_eq!(r.bits_per_tracked_core, 6);
        assert_eq!(r.classifier_bits_per_entry, 36);
        assert_eq!(r.classifier_kb, 18.0);
        // ACKwise_4: 24 bits/entry = 12 KB; full map: 64 bits = 32 KB.
        assert_eq!(r.directory_kb, 12.0);
        assert_eq!(r.full_map_kb, 32.0);
        // L1 overhead ~0.19 KB (neglected by the paper).
        assert!((r.l1_kb - 0.1875).abs() < 1e-9);
        // 18/316 = 5.7%.
        assert!((r.overhead_vs_baseline - 0.0575).abs() < 0.002);
        // Headline: Limited_3 + ACKwise_4 < full-map alone.
        assert!(r.classifier_kb + r.directory_kb < r.full_map_kb);
    }

    #[test]
    fn paper_numbers_complete() {
        let mut cfg = SystemConfig::isca13_64core();
        cfg.classifier.tracking = TrackingKind::Complete;
        let r = storage_report(&cfg);
        // §3.6: 384 (= 64 x 6) bits per entry, 192 KB, ~60% overhead.
        assert_eq!(r.classifier_bits_per_entry, 384);
        assert_eq!(r.classifier_kb, 192.0);
        assert!((r.overhead_vs_baseline - 0.61).abs() < 0.02);
    }

    #[test]
    fn timestamp_variant_is_much_bigger() {
        let mut cfg = SystemConfig::isca13_64core();
        cfg.classifier = ClassifierConfig {
            mechanism: MechanismKind::Timestamp,
            tracking: TrackingKind::Complete,
            ..cfg.classifier
        };
        let r = storage_report(&cfg);
        // 64-bit timestamps per core per entry dwarf everything — the
        // motivation for §3.3's RAT approximation.
        assert!(r.classifier_kb > 1000.0);
        assert!(r.l1_kb > 5.0, "L1 also pays a 64-bit timestamp per line");
    }

    #[test]
    fn complete_classifier_explodes_at_1024_cores() {
        // §3.4: the Complete classifier "has a storage overhead of 60% at
        // 64 cores and over 10x at 1024 cores".
        let mut cfg = SystemConfig::isca13_64core();
        cfg.num_cores = 1024;
        cfg.classifier.tracking = TrackingKind::Complete;
        let r = storage_report(&cfg);
        // Our arithmetic: 6 bits x 1024 cores x 4096 entries = 3072 KB
        // against a 324 KB baseline = 9.5x; the paper quotes "over 10x"
        // (the same calculation under slightly different baseline terms).
        assert!(
            r.overhead_vs_baseline > 9.0,
            "Complete at 1024 cores must be ~10x: {:.1}x",
            r.overhead_vs_baseline
        );
        assert!(r.classifier_kb >= 3000.0);
        // Limited_3 stays modest at the same core count.
        cfg.classifier.tracking = TrackingKind::Limited { k: 3 };
        let r = storage_report(&cfg);
        assert!(
            r.overhead_vs_baseline < 0.10,
            "Limited_3 at 1024 cores: {:.3}",
            r.overhead_vs_baseline
        );
    }

    #[test]
    fn full_map_directory_size() {
        let cfg = SystemConfig::isca13_64core().with_directory(DirectoryKind::FullMap);
        let r = storage_report(&cfg);
        assert_eq!(r.directory_kb, 32.0);
    }
}
