//! The locality classifier: private/remote modes, utilization counters,
//! Timestamp check, RAT levels, Limited_k tracking and the one-way variant.
//!
//! One [`LocalityClassifier`] lives in each directory entry and answers the
//! question at the center of the paper: *when core C misses on this line,
//! should it receive a private copy, or be served a single word at the
//! shared L2?* (§3.2, Figure 4.)
//!
//! State machine per (line, core), from Figure 4:
//!
//! ```text
//!            utilization < PCT  (on eviction/invalidation)
//!   Private ────────────────────────────────────────────▶ Remote
//!      ▲                                                    │
//!      └────────────────────────────────────────────────────┘
//!            remote utilization >= threshold (PCT or RAT)
//! ```
//!
//! Cores start **Private** ("our protocol starts out as a conventional
//! directory protocol and initializes all cores as private sharers of all
//! cache lines"). Demotion happens when a private copy is removed with
//! `private + remote` utilization below `PCT`; promotion happens when
//! remote utilization reaches the promotion threshold, which is `PCT` under
//! the ideal Timestamp mechanism (§3.2) and the current RAT level under the
//! cost-efficient approximation (§3.3).

use lacc_model::config::{ClassifierConfig, MechanismKind, TrackingKind};
use lacc_model::{CoreId, Cycle};

/// Whether a core is a private or remote sharer of a line (Figure 4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SharerMode {
    /// The core receives whole-line copies in its private L1.
    Private,
    /// The core's misses are served as word accesses at the shared L2.
    Remote,
}

/// Why a private copy was removed from an L1, which the classifier needs
/// because §3.3 treats the two differently: an invalidation leaves an
/// invalid line (low set pressure, RAT unchanged) while an eviction
/// signals set pressure (RAT raised).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RemovalReason {
    /// Conflict/capacity eviction from the L1 (high set pressure).
    Eviction,
    /// Invalidation due to another core's exclusive request.
    Invalidation,
    /// Back-invalidation because the inclusive L2 evicted the line. The L1
    /// set gains an invalid way, like an invalidation, so the RAT is left
    /// unchanged.
    BackInvalidation,
}

/// Per-miss information from the requesting L1, carried in the request
/// message (§3.2–§3.3): the minimum last-access time over the target set
/// (for the Timestamp check) and whether the set has an invalid way (the
/// RAT shortcut — promotion cannot pollute the cache if a way is free).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RequestHints {
    /// Minimum last-access time across valid lines of the requester's L1
    /// set; `0` when the set has an invalid line (check trivially passes).
    pub set_min_last_access: Cycle,
    /// `true` when the requester's L1 set contains an invalid way.
    pub set_has_invalid: bool,
}

/// Result of classifying one request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassifyOutcome {
    /// Serve as private (grant line) or remote (serve word).
    pub mode: SharerMode,
    /// `true` when this very request crossed the promotion threshold.
    pub promoted: bool,
    /// `false` when the core is untracked by a full Limited_k list and was
    /// classified by majority vote only.
    pub tracked: bool,
}

const FLAG_PRIVATE: u8 = 1;
const FLAG_ACTIVE: u8 = 2;
const FLAG_STICKY_REMOTE: u8 = 4;
const FLAG_TOUCHED: u8 = 8;

/// Locality record for one core: mode bit, remote utilization counter and
/// RAT level (Figures 6 and 7), plus the active bit §3.4 uses to pick
/// replacement victims and the sticky bit of the one-way protocol (§3.7).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct CoreInfo {
    core: u16,
    flags: u8,
    remote_util: u8,
    rat_level: u8,
}

impl CoreInfo {
    fn fresh(core: CoreId, mode: SharerMode) -> Self {
        CoreInfo {
            core: core.index() as u16,
            flags: if mode == SharerMode::Private { FLAG_PRIVATE } else { 0 },
            remote_util: 0,
            rat_level: 0,
        }
    }

    fn fresh_one_way(core: CoreId, mode: SharerMode, one_way: bool) -> Self {
        let mut info = Self::fresh(core, mode);
        // Under Adapt1-way (§3.7) remote is absorbing: a core that *enters*
        // remote mode — whether by its own demotion or by majority-vote
        // initialization — can never be promoted.
        if one_way && mode == SharerMode::Remote {
            info.flags |= FLAG_STICKY_REMOTE;
        }
        info
    }

    fn mode(&self) -> SharerMode {
        if self.flags & FLAG_PRIVATE != 0 {
            SharerMode::Private
        } else {
            SharerMode::Remote
        }
    }

    fn set_mode(&mut self, mode: SharerMode) {
        match mode {
            SharerMode::Private => self.flags |= FLAG_PRIVATE,
            SharerMode::Remote => self.flags &= !FLAG_PRIVATE,
        }
    }

    fn active(&self) -> bool {
        self.flags & FLAG_ACTIVE != 0
    }

    fn set_active(&mut self, a: bool) {
        if a {
            self.flags |= FLAG_ACTIVE;
        } else {
            self.flags &= !FLAG_ACTIVE;
        }
    }

    fn sticky_remote(&self) -> bool {
        self.flags & FLAG_STICKY_REMOTE != 0
    }

    fn touched(&self) -> bool {
        self.flags & FLAG_TOUCHED != 0
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Storage {
    /// Locality info for every core, indexed by core id (§3.2, Figure 6).
    Complete(Vec<CoreInfo>),
    /// Locality info for at most `k` cores (§3.4, Figure 7).
    Limited(Vec<CoreInfo>),
}

/// Upper bound on `nRATlevels` (the paper evaluates up to 8, Figure 12).
pub const MAX_RAT_LEVELS: usize = 8;

/// The per-directory-entry locality classifier.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalityClassifier {
    pct: u32,
    one_way: bool,
    shortcut: bool,
    timestamp_mech: bool,
    /// Promotion thresholds indexed by RAT level (single entry = PCT for
    /// the Timestamp mechanism and for nRATlevels = 1).
    ladder: [u32; MAX_RAT_LEVELS],
    ladder_len: usize,
    util_cap: u8,
    limit: Option<usize>,
    storage: Storage,
}

impl LocalityClassifier {
    /// Creates the classifier for one directory entry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero PCT, `k` of zero).
    #[must_use]
    pub fn new(cfg: &ClassifierConfig, num_cores: usize) -> Self {
        assert!(cfg.pct >= 1, "pct must be at least 1");
        let ladder_vec = cfg.mechanism.rat_ladder(cfg.pct);
        assert!(ladder_vec.len() <= MAX_RAT_LEVELS, "nRATlevels beyond {MAX_RAT_LEVELS}");
        let mut ladder = [0u32; MAX_RAT_LEVELS];
        ladder[..ladder_vec.len()].copy_from_slice(&ladder_vec);
        let ladder_len = ladder_vec.len();
        let util_cap = (*ladder_vec.last().unwrap()).max(cfg.pct).min(255) as u8;
        let (limit, storage) = match cfg.tracking {
            TrackingKind::Complete => (
                None,
                Storage::Complete(
                    (0..num_cores)
                        .map(|i| CoreInfo::fresh(CoreId::new(i), SharerMode::Private))
                        .collect(),
                ),
            ),
            TrackingKind::Limited { k } => {
                assert!(k >= 1, "Limited_k needs k >= 1");
                (Some(k), Storage::Limited(Vec::with_capacity(k)))
            }
        };
        LocalityClassifier {
            pct: cfg.pct,
            one_way: cfg.one_way,
            shortcut: cfg.shortcut,
            timestamp_mech: matches!(cfg.mechanism, MechanismKind::Timestamp),
            ladder,
            ladder_len,
            util_cap,
            limit,
            storage,
        }
    }

    /// The mode this entry would use for `core` right now, without updating
    /// any state (untracked cores report the majority vote).
    #[must_use]
    pub fn mode_of(&self, core: CoreId) -> SharerMode {
        match &self.storage {
            Storage::Complete(v) => v[core.index()].mode(),
            Storage::Limited(v) => v
                .iter()
                .find(|i| i.core as usize == core.index())
                .map_or_else(|| self.majority_vote(), |i| i.mode()),
        }
    }

    /// Number of cores currently tracked (for tests and storage reports).
    #[must_use]
    pub fn tracked_count(&self) -> usize {
        match &self.storage {
            Storage::Complete(v) => v.len(),
            Storage::Limited(v) => v.len(),
        }
    }

    /// Appends a canonical encoding of the classifier's mutable state to
    /// `out`, remapping core indices through `map` (the model checker's
    /// symmetry-reduction hook; identity for an unpermuted fingerprint).
    ///
    /// Complete storage is order-insensitive, so entries are emitted sorted
    /// by mapped core id. Limited_k storage emits entries in *list order*:
    /// the list position feeds the §3.4 replacement policy, so two states
    /// whose lists differ only in order are behaviorally distinct.
    pub fn encode_state(&self, out: &mut Vec<u64>, map: &mut dyn FnMut(usize) -> usize) {
        let encode_info = |info: &CoreInfo, map: &mut dyn FnMut(usize) -> usize| {
            let mapped = map(info.core as usize) as u64;
            (mapped << 24)
                | (u64::from(info.flags) << 16)
                | (u64::from(info.remote_util) << 8)
                | u64::from(info.rat_level)
        };
        match &self.storage {
            Storage::Complete(v) => {
                let mut entries: Vec<u64> = v.iter().map(|i| encode_info(i, map)).collect();
                entries.sort_unstable();
                out.extend(entries);
            }
            Storage::Limited(v) => {
                out.push(v.len() as u64);
                out.extend(v.iter().map(|i| encode_info(i, map)));
            }
        }
    }

    /// Classifies a miss request from `core` and updates utilization
    /// counters per §3.2/§3.3.
    ///
    /// `line_last_access` is the line's last-access time at the L2 (used by
    /// the Timestamp check); `now` is the current cycle. The caller must
    /// afterwards call [`LocalityClassifier::on_write`] if the request is a
    /// write, and hand out a line or word according to the returned mode.
    pub fn classify_request(
        &mut self,
        core: CoreId,
        hints: RequestHints,
        line_last_access: Cycle,
    ) -> ClassifyOutcome {
        let pct = self.pct;
        let one_way = self.one_way;
        let timestamp_mech = self.timestamp_mech;
        let util_cap = self.util_cap;
        let ladder = self.ladder;
        let ladder_len = self.ladder_len;
        let default_mode = self.majority_or_initial(core);
        let (info, tracked) = match self.lookup_or_allocate(core, default_mode) {
            Some(info) => (info, true),
            None => {
                // Limited_k list full of active sharers: classify by
                // majority vote, leave the list unchanged (§3.4).
                return ClassifyOutcome { mode: default_mode, promoted: false, tracked: false };
            }
        };

        if info.mode() == SharerMode::Private {
            info.set_active(true);
            return ClassifyOutcome { mode: SharerMode::Private, promoted: false, tracked };
        }

        // Remote sharer: update the remote utilization counter.
        if timestamp_mech {
            // Timestamp check (§3.2): count the access only if the line at
            // the L2 is more recent than the coldest line of the
            // requester's L1 set (trivially true with an invalid way).
            let passes = hints.set_has_invalid || line_last_access > hints.set_min_last_access;
            if passes {
                info.remote_util = info.remote_util.saturating_add(1);
            } else {
                info.remote_util = 1;
            }
        } else {
            info.remote_util = info.remote_util.saturating_add(1).min(util_cap);
        }

        // Promotion threshold: PCT under Timestamp; the RAT ladder under
        // the approximation, with the §3.3 shortcut that an invalid way in
        // the requester's set lowers the bar back to PCT (promotion cannot
        // pollute the cache).
        let threshold = if timestamp_mech || hints.set_has_invalid {
            pct
        } else {
            ladder[(info.rat_level as usize).min(ladder_len - 1)]
        };

        if info.remote_util as u32 >= threshold && !(one_way && info.sticky_remote()) {
            info.set_mode(SharerMode::Private);
            info.set_active(true);
            ClassifyOutcome { mode: SharerMode::Private, promoted: true, tracked }
        } else {
            info.set_active(true);
            ClassifyOutcome { mode: SharerMode::Remote, promoted: false, tracked }
        }
    }

    /// A write by `writer` has been serialized at this entry: the remote
    /// utilization counters of all *other* remote sharers are reset to zero
    /// and those sharers become inactive (§3.2, §3.4 — "a remote sharer
    /// becomes inactive on a write by another core").
    pub fn on_write(&mut self, writer: CoreId) {
        let infos: &mut [CoreInfo] = match &mut self.storage {
            Storage::Complete(v) => v,
            Storage::Limited(v) => v,
        };
        for info in infos.iter_mut() {
            if info.core as usize != writer.index() && info.mode() == SharerMode::Remote {
                info.remote_util = 0;
                info.set_active(false);
            }
        }
    }

    /// A private copy held by `core` was removed (invalidation ack or
    /// eviction notify) carrying `private_util`. Runs the §3.2
    /// classification — stay private iff `private + remote >= PCT` — and
    /// the §3.3 RAT adjustment. Returns the core's new mode.
    pub fn on_sharer_removed(
        &mut self,
        core: CoreId,
        private_util: u32,
        reason: RemovalReason,
    ) -> SharerMode {
        let one_way = self.one_way;
        let pct = self.pct;
        let max_level = (self.ladder.len() - 1) as u8;
        let default_mode = self.majority_or_initial(core);
        let Some(info) = self.lookup_or_allocate(core, default_mode) else {
            // Untracked and unallocatable: the classification cannot be
            // stored. Compute it against a zero remote counter anyway so
            // the caller can at least report it.
            return if private_util >= pct { SharerMode::Private } else { SharerMode::Remote };
        };

        let total = private_util + info.remote_util as u32;
        let new_mode = if total >= pct && !(one_way && info.sticky_remote()) {
            SharerMode::Private
        } else {
            SharerMode::Remote
        };
        match new_mode {
            SharerMode::Private => {
                // §3.3: classified private on removal -> RAT resets so the
                // core can re-learn its classification.
                info.rat_level = 0;
                info.set_mode(SharerMode::Private);
            }
            SharerMode::Remote => {
                if reason == RemovalReason::Eviction {
                    // Eviction signals set pressure: harder to re-promote.
                    info.rat_level = (info.rat_level + 1).min(max_level);
                }
                info.set_mode(SharerMode::Remote);
                if one_way {
                    info.flags |= FLAG_STICKY_REMOTE;
                }
            }
        }
        info.remote_util = 0;
        // A private sharer becomes inactive on invalidation or eviction.
        info.set_active(false);
        new_mode
    }

    /// Majority vote over tracked modes; ties and an empty list report
    /// `Private`, the §3.2 initial mode.
    fn majority_vote(&self) -> SharerMode {
        let infos: &[CoreInfo] = match &self.storage {
            Storage::Complete(v) => v,
            Storage::Limited(v) => v,
        };
        let private = infos.iter().filter(|i| i.mode() == SharerMode::Private).count();
        if 2 * private >= infos.len() {
            SharerMode::Private
        } else {
            SharerMode::Remote
        }
    }

    /// Initial mode for a core that is about to be (re)allocated: majority
    /// vote when inferring from existing sharers (§3.4), or the §3.2
    /// Private default when the list is empty / tracking is complete.
    fn majority_or_initial(&self, _core: CoreId) -> SharerMode {
        match &self.storage {
            Storage::Complete(_) => SharerMode::Private, // always tracked
            Storage::Limited(v) if v.is_empty() => SharerMode::Private,
            Storage::Limited(_) => self.majority_vote(),
        }
    }

    /// Finds the record for `core`, allocating (or replacing an inactive
    /// sharer) in Limited_k mode. Returns `None` when the list is full of
    /// active sharers.
    fn lookup_or_allocate(&mut self, core: CoreId, init_mode: SharerMode) -> Option<&mut CoreInfo> {
        let one_way = self.one_way;
        let shortcut = self.shortcut;
        match &mut self.storage {
            Storage::Complete(v) => {
                // §5.3's suggested extension: "the Complete locality
                // classifier can also be equipped with such a learning
                // short-cut" — a core's first classification is inferred
                // from the cores that have already demonstrated a mode.
                if shortcut && !v[core.index()].touched() {
                    let touched: Vec<&CoreInfo> = v.iter().filter(|i| i.touched()).collect();
                    let private =
                        touched.iter().filter(|i| i.mode() == SharerMode::Private).count();
                    let mode = if 2 * private >= touched.len() {
                        SharerMode::Private
                    } else {
                        SharerMode::Remote
                    };
                    let info = &mut v[core.index()];
                    info.set_mode(mode);
                    if one_way && mode == SharerMode::Remote {
                        info.flags |= FLAG_STICKY_REMOTE;
                    }
                }
                let info = &mut v[core.index()];
                info.flags |= FLAG_TOUCHED;
                Some(info)
            }
            Storage::Limited(v) => {
                if let Some(pos) = v.iter().position(|i| i.core as usize == core.index()) {
                    return Some(&mut v[pos]);
                }
                let k = self.limit.expect("limited storage has a limit");
                if v.len() < k {
                    // Free entry: "it allocates the entry to the core and
                    // the actions described in Section 3.2 are carried out"
                    // — i.e. the §3.2 initial mode, Private. (This is what
                    // makes Limited_64 identical to Complete, per the
                    // caption of Figure 13.)
                    v.push(CoreInfo::fresh(core, SharerMode::Private));
                    let pos = v.len() - 1;
                    return Some(&mut v[pos]);
                }
                // Replace an inactive sharer if one exists (§3.4): an ideal
                // candidate "is a core that is currently not using the
                // cache line".
                if let Some(pos) = v.iter().position(|i| !i.active()) {
                    v[pos] = CoreInfo::fresh_one_way(core, init_mode, one_way);
                    return Some(&mut v[pos]);
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pct: u32) -> ClassifierConfig {
        ClassifierConfig {
            pct,
            tracking: TrackingKind::Complete,
            mechanism: MechanismKind::rat_default(),
            one_way: false,
            shortcut: false,
        }
    }

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    const NO_HINT: RequestHints = RequestHints { set_min_last_access: 0, set_has_invalid: true };
    const PRESSURE: RequestHints =
        RequestHints { set_min_last_access: u64::MAX, set_has_invalid: false };

    #[test]
    fn cores_start_private() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        let out = cl.classify_request(c(3), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Private);
        assert!(!out.promoted);
    }

    #[test]
    fn demotion_below_pct_and_stay_at_pct() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        assert_eq!(cl.on_sharer_removed(c(0), 3, RemovalReason::Eviction), SharerMode::Remote);
        assert_eq!(cl.on_sharer_removed(c(1), 4, RemovalReason::Eviction), SharerMode::Private);
        assert_eq!(cl.mode_of(c(0)), SharerMode::Remote);
        assert_eq!(cl.mode_of(c(1)), SharerMode::Private);
    }

    #[test]
    fn remote_utilization_promotes_at_pct_with_invalid_way() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction);
        // Even though the eviction raised the RAT to 16, an invalid way in
        // the requester's set applies the §3.3 shortcut: threshold = PCT.
        for i in 1..4 {
            let out = cl.classify_request(c(0), NO_HINT, 0);
            assert_eq!(out.mode, SharerMode::Remote, "access {i} must stay remote");
        }
        let out = cl.classify_request(c(0), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Private);
        assert!(out.promoted);
    }

    #[test]
    fn eviction_demotion_raises_rat() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction); // RAT -> 16

        // Under set pressure (no invalid way), promotion now needs 16.
        for i in 1..16 {
            let out = cl.classify_request(c(0), PRESSURE, 0);
            assert_eq!(out.mode, SharerMode::Remote, "access {i} of 16");
        }
        let out = cl.classify_request(c(0), PRESSURE, 0);
        assert_eq!(out.mode, SharerMode::Private);
        assert!(out.promoted);
    }

    #[test]
    fn invalidation_demotion_keeps_rat() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Invalidation); // RAT stays at PCT
        for _ in 0..3 {
            assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Remote);
        }
        assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Private);
    }

    #[test]
    fn back_invalidation_behaves_like_invalidation_for_rat() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::BackInvalidation);
        for _ in 0..3 {
            assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Remote);
        }
        assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Private);
    }

    #[test]
    fn reclassification_as_private_resets_rat() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction); // RAT -> 16

        // Build 16 remote accesses to promote under pressure.
        for _ in 0..16 {
            cl.classify_request(c(0), PRESSURE, 0);
        }
        assert_eq!(cl.mode_of(c(0)), SharerMode::Private);
        // Removed as a *private* sharer with good utilization: RAT resets.
        cl.on_sharer_removed(c(0), 4, RemovalReason::Eviction);
        assert_eq!(cl.mode_of(c(0)), SharerMode::Private);
        // Demote again; promotion threshold is PCT+RAT step from scratch:
        // eviction demotion raises to level 1 (=16) again, but the first
        // ladder rung after a private classification restarts at PCT:
        cl.on_sharer_removed(c(0), 1, RemovalReason::Invalidation); // no raise
        for _ in 0..3 {
            assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Remote);
        }
        assert_eq!(cl.classify_request(c(0), PRESSURE, 0).mode, SharerMode::Private);
    }

    #[test]
    fn remote_util_counts_toward_removal_classification() {
        // §3.2: classification on removal uses private + remote utilization.
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Invalidation); // remote

        // Two remote accesses (remote_util = 2), then promoted? no: stays
        // remote (2 < 4). Third and fourth accesses promote at PCT with
        // invalid way.
        cl.classify_request(c(0), NO_HINT, 0);
        cl.classify_request(c(0), NO_HINT, 0);
        cl.classify_request(c(0), NO_HINT, 0);
        let out = cl.classify_request(c(0), NO_HINT, 0);
        assert!(out.promoted);
        // Now removed with private_util = 1: 1 + remote_util(4) >= 4 keeps
        // it private — the paper's argument that the line would not have
        // been evicted earlier had it been cached at reset time.
        assert_eq!(cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction), SharerMode::Private);
    }

    #[test]
    fn write_resets_other_remote_sharers() {
        let mut cl = LocalityClassifier::new(&cfg(4), 8);
        for core in [0, 1, 2] {
            cl.on_sharer_removed(c(core), 1, RemovalReason::Invalidation);
        }
        // Cores 0 and 1 accumulate remote utilization.
        cl.classify_request(c(0), NO_HINT, 0);
        cl.classify_request(c(0), NO_HINT, 0);
        cl.classify_request(c(0), NO_HINT, 0);
        cl.classify_request(c(1), NO_HINT, 0);
        // Core 2 writes: everyone else's counters reset.
        cl.classify_request(c(2), NO_HINT, 0);
        cl.on_write(c(2));
        // Core 0 lost its 3 accesses: needs 4 fresh ones again.
        for _ in 0..3 {
            assert_eq!(cl.classify_request(c(0), NO_HINT, 0).mode, SharerMode::Remote);
        }
        assert_eq!(cl.classify_request(c(0), NO_HINT, 0).mode, SharerMode::Private);
    }

    #[test]
    fn timestamp_check_resets_counter_on_cold_line() {
        let cfg = ClassifierConfig {
            pct: 4,
            tracking: TrackingKind::Complete,
            mechanism: MechanismKind::Timestamp,
            one_way: false,
            shortcut: false,
        };
        let mut cl = LocalityClassifier::new(&cfg, 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction);
        // Line last accessed at t=10; the requester's set min is 50 and no
        // invalid way: check fails -> counter resets to 1 every time, so
        // the core is never promoted (cache pollution avoided).
        let hints = RequestHints { set_min_last_access: 50, set_has_invalid: false };
        for _ in 0..20 {
            let out = cl.classify_request(c(0), hints, 10);
            assert_eq!(out.mode, SharerMode::Remote);
        }
        // A hot line (last access beyond the set minimum) counts up from
        // the resets' residual value of 1 and promotes at PCT.
        for _ in 0..2 {
            assert_eq!(cl.classify_request(c(0), hints, 100).mode, SharerMode::Remote);
        }
        assert!(cl.classify_request(c(0), hints, 100).promoted);
    }

    #[test]
    fn one_way_protocol_never_promotes() {
        let cfg = ClassifierConfig { one_way: true, ..cfg(4) };
        let mut cl = LocalityClassifier::new(&cfg, 8);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction);
        for _ in 0..100 {
            let out = cl.classify_request(c(0), NO_HINT, 0);
            assert_eq!(out.mode, SharerMode::Remote, "Adapt1-way must never promote");
        }
    }

    #[test]
    fn pct_one_never_demotes() {
        let mut cl = LocalityClassifier::new(&cfg(1), 8);
        // Any removal carries utilization >= 1 (the install itself).
        assert_eq!(cl.on_sharer_removed(c(0), 1, RemovalReason::Eviction), SharerMode::Private);
        assert_eq!(cl.mode_of(c(0)), SharerMode::Private);
    }

    // ---- Limited_k (§3.4) ----

    fn limited_cfg(k: usize) -> ClassifierConfig {
        ClassifierConfig { tracking: TrackingKind::Limited { k }, ..cfg(4) }
    }

    #[test]
    fn limited_allocates_free_entries_private() {
        let mut cl = LocalityClassifier::new(&limited_cfg(3), 64);
        let out = cl.classify_request(c(0), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Private);
        assert!(out.tracked);
        assert_eq!(cl.tracked_count(), 1);
    }

    #[test]
    fn limited_majority_vote_for_untracked() {
        let mut cl = LocalityClassifier::new(&limited_cfg(3), 64);
        // Fill the list with three ACTIVE remote sharers.
        for core in 0..3 {
            cl.on_sharer_removed(c(core), 1, RemovalReason::Invalidation);
            cl.classify_request(c(core), NO_HINT, 0); // remote access: active
        }
        assert_eq!(cl.tracked_count(), 3);
        // A fourth core arrives; all entries active -> untracked, majority
        // vote says Remote.
        let out = cl.classify_request(c(50), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Remote);
        assert!(!out.tracked);
        assert_eq!(cl.tracked_count(), 3, "list must be left unchanged");
    }

    #[test]
    fn limited_replaces_inactive_sharer() {
        let mut cl = LocalityClassifier::new(&limited_cfg(2), 64);
        cl.classify_request(c(0), NO_HINT, 0); // private, active
        cl.classify_request(c(1), NO_HINT, 0); // private, active

        // Core 0's copy is invalidated -> inactive, stays private (util 4).
        cl.on_sharer_removed(c(0), 4, RemovalReason::Invalidation);
        // Core 2 arrives: replaces core 0's entry; majority of tracked
        // modes (2 private) -> starts private.
        let out = cl.classify_request(c(2), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Private);
        assert!(out.tracked);
        assert_eq!(cl.tracked_count(), 2);
        // Core 0 is untracked now; its mode is the majority vote.
        assert_eq!(cl.mode_of(c(0)), SharerMode::Private);
    }

    #[test]
    fn limited_majority_vote_starts_new_sharers_remote() {
        // The streamcluster/dijkstra-ss effect (§5.3): once tracked sharers
        // are remote, new sharers skip the private classification phase.
        let mut cl = LocalityClassifier::new(&limited_cfg(3), 64);
        for core in 0..3 {
            cl.on_sharer_removed(c(core), 1, RemovalReason::Invalidation); // remote, inactive
        }
        let out = cl.classify_request(c(10), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Remote, "inferred from majority");
        assert!(out.tracked, "replaced an inactive entry");
    }

    #[test]
    fn limited_one_tracks_first_sharer_pathology() {
        // §5.3: with k=1 the first sharer's mode decides everyone's fate —
        // the radix/bodytrack pathologies.
        let mut cl = LocalityClassifier::new(&limited_cfg(1), 64);
        cl.on_sharer_removed(c(0), 1, RemovalReason::Invalidation); // remote, inactive

        // Core 1 replaces it, inheriting Remote by majority vote even
        // though it might have wanted Private.
        let out = cl.classify_request(c(1), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Remote);
    }

    #[test]
    fn limited_tie_votes_private() {
        let mut cl = LocalityClassifier::new(&limited_cfg(2), 64);
        cl.classify_request(c(0), NO_HINT, 0); // private active
        cl.on_sharer_removed(c(1), 1, RemovalReason::Invalidation); // remote inactive

        // 1 private vs 1 remote: tie -> Private (the §3.2 initial mode).
        assert_eq!(cl.mode_of(c(9)), SharerMode::Private);
    }

    #[test]
    fn complete_shortcut_infers_first_classification() {
        // §5.3's suggested extension: once the demonstrated modes lean
        // remote, a fresh core skips the private classification phase.
        let sc_cfg = ClassifierConfig { shortcut: true, ..cfg(4) };
        let mut cl = LocalityClassifier::new(&sc_cfg, 8);
        for core in 0..3 {
            // Touch + demote three cores.
            cl.classify_request(c(core), NO_HINT, 0);
            cl.on_sharer_removed(c(core), 1, RemovalReason::Invalidation);
        }
        let out = cl.classify_request(c(7), NO_HINT, 0);
        assert_eq!(out.mode, SharerMode::Remote, "inferred from the demonstrated majority");
        // Without the shortcut, the same history yields Private.
        let mut plain = LocalityClassifier::new(&cfg(4), 8);
        for core in 0..3 {
            plain.classify_request(c(core), NO_HINT, 0);
            plain.on_sharer_removed(c(core), 1, RemovalReason::Invalidation);
        }
        assert_eq!(plain.classify_request(c(7), NO_HINT, 0).mode, SharerMode::Private);
    }

    #[test]
    fn complete_shortcut_with_no_history_stays_private() {
        let sc_cfg = ClassifierConfig { shortcut: true, ..cfg(4) };
        let mut cl = LocalityClassifier::new(&sc_cfg, 8);
        assert_eq!(cl.classify_request(c(0), NO_HINT, 0).mode, SharerMode::Private);
    }

    #[test]
    fn complete_shortcut_private_majority_stays_private() {
        let sc_cfg = ClassifierConfig { shortcut: true, ..cfg(4) };
        let mut cl = LocalityClassifier::new(&sc_cfg, 8);
        // Two well-behaved sharers, one demoted: majority private.
        cl.classify_request(c(0), NO_HINT, 0);
        cl.on_sharer_removed(c(0), 6, RemovalReason::Eviction);
        cl.classify_request(c(1), NO_HINT, 0);
        cl.on_sharer_removed(c(1), 5, RemovalReason::Eviction);
        cl.classify_request(c(2), NO_HINT, 0);
        cl.on_sharer_removed(c(2), 1, RemovalReason::Eviction);
        assert_eq!(cl.classify_request(c(7), NO_HINT, 0).mode, SharerMode::Private);
    }

    #[test]
    fn complete_equals_limited_n() {
        // Limited_64 on a 64-core machine must behave like Complete.
        let mut complete = LocalityClassifier::new(&cfg(4), 64);
        let mut limited = LocalityClassifier::new(&limited_cfg(64), 64);
        let script: Vec<(usize, u32)> = vec![(0, 1), (1, 5), (2, 2), (0, 4), (3, 1)];
        for (core, util) in script {
            let a = complete.on_sharer_removed(c(core), util, RemovalReason::Eviction);
            let b = limited.on_sharer_removed(c(core), util, RemovalReason::Eviction);
            assert_eq!(a, b);
            for probe in 0..4 {
                let oa = complete.classify_request(c(probe), NO_HINT, 0);
                let ob = limited.classify_request(c(probe), NO_HINT, 0);
                assert_eq!(oa.mode, ob.mode, "core {probe} diverged");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_cfg() -> impl Strategy<Value = ClassifierConfig> {
        (1u32..6, 1usize..5, prop_oneof![Just(true), Just(false)], 1usize..4).prop_map(
            |(pct, k, one_way, levels)| ClassifierConfig {
                pct,
                tracking: if k == 4 { TrackingKind::Complete } else { TrackingKind::Limited { k } },
                mechanism: MechanismKind::RatLevels { levels, rat_max: pct + 12 },
                one_way,
                shortcut: false,
            },
        )
    }

    proptest! {
        /// The classifier never crashes and always returns a definite mode
        /// under arbitrary event interleavings, and Limited_k never tracks
        /// more than k cores.
        #[test]
        fn total_and_bounded(
            cfg in arb_cfg(),
            events in proptest::collection::vec((0usize..8, 0u8..3, 0u32..8, proptest::bool::ANY), 1..200),
        ) {
            let mut cl = LocalityClassifier::new(&cfg, 8);
            let k = match cfg.tracking {
                TrackingKind::Complete => 8,
                TrackingKind::Limited { k } => k,
            };
            for (core, ev, util, invalid_way) in events {
                let core = CoreId::new(core);
                let hints = RequestHints { set_min_last_access: 5, set_has_invalid: invalid_way };
                match ev {
                    0 => {
                        let out = cl.classify_request(core, hints, 10);
                        if out.promoted {
                            prop_assert_eq!(out.mode, SharerMode::Private);
                        }
                    }
                    1 => {
                        let _ = cl.on_sharer_removed(core, util, RemovalReason::Eviction);
                    }
                    _ => cl.on_write(core),
                }
                prop_assert!(cl.tracked_count() <= k.max(8));
                if let TrackingKind::Limited { k } = cfg.tracking {
                    prop_assert!(cl.tracked_count() <= k);
                }
            }
        }

        /// Under the one-way protocol a demoted core never reports Private
        /// again (Figure 4 loses its return edge).
        #[test]
        fn one_way_is_absorbing(
            pct in 2u32..6,
            events in proptest::collection::vec((0u8..2, 0u32..4), 1..100),
        ) {
            let cfg = ClassifierConfig {
                pct,
                tracking: TrackingKind::Complete,
                mechanism: MechanismKind::rat_default(),
                one_way: true,
                shortcut: false,
            };
            let mut cl = LocalityClassifier::new(&cfg, 2);
            let core = CoreId::new(0);
            let mut demoted = false;
            for (ev, util) in events {
                match ev {
                    0 => {
                        let out = cl.classify_request(
                            core,
                            RequestHints { set_min_last_access: 0, set_has_invalid: true },
                            0,
                        );
                        if demoted {
                            prop_assert_eq!(out.mode, SharerMode::Remote);
                        }
                    }
                    _ => {
                        let m = cl.on_sharer_removed(core, util, RemovalReason::Eviction);
                        if m == SharerMode::Remote {
                            demoted = true;
                        }
                        // util < pct can only happen pre-demotion; once
                        // sticky, on_sharer_removed must keep it remote.
                        if demoted {
                            prop_assert!(util >= pct || m == SharerMode::Remote);
                        }
                    }
                }
            }
        }
    }
}
