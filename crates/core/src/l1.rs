//! The private L1 cache with the paper's tag extensions (Figure 5).
//!
//! Each L1 line carries, beyond MESI state and data: the **private
//! utilization counter** (incremented on every hit, initialized to 1 on
//! install) and the **last-access timestamp** used by the Timestamp
//! classifier. On a miss the L1 computes the [`RequestHints`] — the minimum
//! last-access time over the target set and whether the set has an invalid
//! way — which travel to the directory with the request (§3.2–3.3).
//!
//! §3.6 notes the utilization update costs no extra cache access: the tag
//! array is already written on every hit to update the LRU state; the
//! 2-bit counter rides along.
//!
//! Line content lives in the simulator's shared [`DataSlab`]; the tag
//! array stores only the 8-byte [`DataRef`] handle. The cache owns one
//! reference per valid line: [`L1Cache::install`] takes ownership of the
//! granted handle, removal paths ([`L1Cache::install`]'s victim,
//! [`L1Cache::process_inv`]) hand it back to the caller, and stores go
//! through [`DataSlab::make_mut`] so a write to a line whose slot is
//! aliased (e.g. by the home's resident L2 copy) never leaks to the other
//! owner.

use lacc_cache::{DataRef, DataSlab, SetAssocCache};
use lacc_model::{CacheConfig, CoreId, Cycle, LineAddr};

use crate::classifier::RequestHints;
use crate::mesi::MesiState;

/// One valid L1 line (Figure 5's extended tag + the data handle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct L1Line {
    /// MESI state of this copy.
    pub mesi: MesiState,
    /// Private utilization: accesses since install (§3.2). The simulator
    /// tracks the full value for the Figure 1–2 histograms; hardware only
    /// needs `ceil(log2(PCT))` bits.
    pub utilization: u32,
    /// Cycle of the most recent access (Timestamp classifier).
    pub last_access: Cycle,
    /// The line's eight words (slab handle; one reference owned by the
    /// cache while the line is valid).
    pub data: DataRef,
}

/// A line displaced by an install; its utilization travels to the
/// directory in the eviction notify.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EvictedL1Line {
    /// Which line was evicted.
    pub line: LineAddr,
    /// `true` if the copy was Modified (data must be written back).
    pub dirty: bool,
    /// Final private utilization.
    pub utilization: u32,
    /// The line content. Ownership of this handle transfers to the
    /// caller: ship it (dirty) or release it (clean).
    pub data: DataRef,
}

/// Result of a store lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreOutcome {
    /// Write completed (M, or silent E→M upgrade).
    Done,
    /// The line is present read-only: an *upgrade miss* (S→M request, no
    /// data transfer).
    NeedsUpgrade,
    /// The line is absent: full write miss.
    Miss,
}

/// A private L1 cache (data or instruction side).
#[derive(Clone, Debug)]
pub struct L1Cache {
    tags: SetAssocCache<L1Line>,
    owner: CoreId,
}

impl L1Cache {
    /// Creates an L1 of the given geometry for `owner`.
    #[must_use]
    pub fn new(cfg: &CacheConfig, line_bytes: usize, owner: CoreId) -> Self {
        L1Cache { tags: SetAssocCache::new(cfg.num_sets(line_bytes), cfg.associativity), owner }
    }

    /// The core this cache belongs to.
    #[must_use]
    pub fn owner(&self) -> CoreId {
        self.owner
    }

    /// Number of valid lines (tests).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` when the cache holds no valid line.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Looks up a load. On a hit: bumps utilization, refreshes LRU and the
    /// last-access timestamp, and returns the word. On a miss: `None`.
    pub fn load(
        &mut self,
        line: LineAddr,
        word: usize,
        now: Cycle,
        slab: &DataSlab,
    ) -> Option<u64> {
        let l = self.tags.get_mut(line)?;
        l.utilization += 1;
        l.last_access = now;
        Some(slab.get(l.data).word(word))
    }

    /// Looks up a store. In M/E the word is written (E upgrades to M
    /// silently) and utilization bumps; in S the store must first obtain
    /// write permission (upgrade miss) — the counter bump happens when
    /// [`L1Cache::apply_upgrade`] completes the access. Writes go through
    /// [`DataSlab::make_mut`], so an aliased slot splits instead of
    /// leaking the store to its other owner.
    pub fn store(
        &mut self,
        line: LineAddr,
        word: usize,
        value: u64,
        now: Cycle,
        slab: &mut DataSlab,
    ) -> StoreOutcome {
        match self.tags.get_mut(line) {
            None => StoreOutcome::Miss,
            Some(l) => match l.mesi {
                MesiState::Modified | MesiState::Exclusive => {
                    l.mesi = MesiState::Modified;
                    l.utilization += 1;
                    l.last_access = now;
                    l.data = slab.make_mut(l.data);
                    slab.get_mut(l.data).set_word(word, value);
                    StoreOutcome::Done
                }
                MesiState::Shared => StoreOutcome::NeedsUpgrade,
            },
        }
    }

    /// Computes the §3.2/§3.3 hints for a miss on `line`: minimum
    /// last-access over the valid lines of the target set, and whether the
    /// set has an invalid way (in which case the minimum is reported as 0
    /// and the Timestamp check trivially passes).
    #[must_use]
    pub fn hints_for(&self, line: LineAddr) -> RequestHints {
        let set = self.tags.set_index(line);
        let has_invalid = self.tags.free_ways_in_set_of(line) > 0;
        if has_invalid {
            return RequestHints { set_min_last_access: 0, set_has_invalid: true };
        }
        let min = self.tags.iter_set(set).map(|(_, _, l)| l.last_access).min().unwrap_or(0);
        RequestHints { set_min_last_access: min, set_has_invalid: false }
    }

    /// Installs a granted line (utilization starts at 1 — the access that
    /// caused the miss), taking ownership of the `data` handle. Returns
    /// the displaced victim, if any, whose handle (and eviction notify)
    /// the caller must now deal with.
    pub fn install(
        &mut self,
        line: LineAddr,
        mesi: MesiState,
        data: DataRef,
        now: Cycle,
    ) -> Option<EvictedL1Line> {
        // An install over an already-valid line would silently drop its
        // handle (`SetAssocCache::insert` replaces in place). The protocol
        // never grants a line the requester still holds.
        debug_assert!(self.tags.get(line).is_none(), "install over valid line would leak handle");
        let fresh = L1Line { mesi, utilization: 1, last_access: now, data };
        let out = self.tags.insert(line, fresh);
        out.evicted.map(|(vline, v)| EvictedL1Line {
            line: vline,
            dirty: v.mesi.is_dirty(),
            utilization: v.utilization,
            data: v.data,
        })
    }

    /// Completes an upgrade: S→M, performs the pending store (through
    /// [`DataSlab::make_mut`] — an S copy usually aliases the home's
    /// resident slot), bumps utilization.
    ///
    /// # Panics
    ///
    /// Panics if the line is absent or not in S (the protocol guarantees
    /// the upgrade reply only arrives while the S copy is held: the
    /// directory serializes writes to the line).
    pub fn apply_upgrade(
        &mut self,
        line: LineAddr,
        word: usize,
        value: u64,
        now: Cycle,
        slab: &mut DataSlab,
    ) {
        let l = self.tags.get_mut(line).expect("upgrade for absent line");
        assert_eq!(l.mesi, MesiState::Shared, "upgrade of non-shared line");
        l.mesi = MesiState::Modified;
        l.utilization += 1;
        l.last_access = now;
        l.data = slab.make_mut(l.data);
        slab.get_mut(l.data).set_word(word, value);
    }

    /// Processes an invalidation: removes the copy, returning its final
    /// utilization and its data handle — ownership transfers to the
    /// caller (ship it if dirty, release it if clean). `None` when the
    /// copy is already gone (the eviction notify is in flight and serves as
    /// the response — the core must *not* ack, §3.1/DESIGN.md).
    pub fn process_inv(&mut self, line: LineAddr) -> Option<EvictedL1Line> {
        self.tags.remove(line).map(|l| EvictedL1Line {
            line,
            dirty: l.mesi.is_dirty(),
            utilization: l.utilization,
            data: l.data,
        })
    }

    /// Processes a downgrade (synchronous write-back request): M/E→S,
    /// returning whether the copy was dirty and the **resident** data
    /// handle — the cache keeps its reference (the line stays valid in S),
    /// so a caller that wants to ship the data must
    /// [`DataSlab::retain`] it. `None` when the copy is gone (eviction
    /// raced; the notify carries the data).
    pub fn process_downgrade(&mut self, line: LineAddr) -> Option<(bool, DataRef)> {
        let l = self.tags.peek_mut(line)?;
        let was_dirty = l.mesi.is_dirty();
        let data = l.data;
        l.mesi = MesiState::Shared;
        Some((was_dirty, data))
    }

    /// State of a line, for tests and invariant checks.
    #[must_use]
    pub fn state_of(&self, line: LineAddr) -> Option<MesiState> {
        self.tags.get(line).map(|l| l.mesi)
    }

    /// Utilization counter of a line, for tests.
    #[must_use]
    pub fn utilization_of(&self, line: LineAddr) -> Option<u32> {
        self.tags.get(line).map(|l| l.utilization)
    }

    /// Iterates over valid lines (invariant checks).
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &L1Line)> {
        self.tags.iter()
    }

    /// Number of sets in the tag array.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.tags.num_sets()
    }

    /// The set a line maps to.
    #[must_use]
    pub fn set_index(&self, line: LineAddr) -> usize {
        self.tags.set_index(line)
    }

    /// Iterates over the valid ways of one set as `(line, lru_stamp,
    /// line_state)`. Stamps order ways by recency (larger = more recent);
    /// the model checker canonicalizes them to relative ranks.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (LineAddr, u64, &L1Line)> {
        self.tags.iter_set(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_cache::LineData;

    fn cache() -> L1Cache {
        // 2 sets x 2 ways.
        L1Cache::new(&CacheConfig::new(256, 2, 1), 64, CoreId::new(0))
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    fn zeroed(slab: &mut DataSlab) -> DataRef {
        slab.alloc(LineData::zeroed())
    }

    #[test]
    fn load_miss_then_hit_counts_utilization() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        assert_eq!(c.load(line(0), 0, 1, &slab), None);
        let d = zeroed(&mut slab);
        c.install(line(0), MesiState::Exclusive, d, 2);
        assert_eq!(c.utilization_of(line(0)), Some(1), "install counts as first use");
        assert_eq!(c.load(line(0), 0, 3, &slab), Some(0));
        assert_eq!(c.load(line(0), 1, 4, &slab), Some(0));
        assert_eq!(c.utilization_of(line(0)), Some(3));
    }

    #[test]
    fn store_in_e_upgrades_silently() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let d = zeroed(&mut slab);
        c.install(line(0), MesiState::Exclusive, d, 0);
        assert_eq!(c.store(line(0), 2, 99, 1, &mut slab), StoreOutcome::Done);
        assert_eq!(c.state_of(line(0)), Some(MesiState::Modified));
        assert_eq!(c.load(line(0), 2, 2, &slab), Some(99));
    }

    #[test]
    fn store_in_s_needs_upgrade() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let d = zeroed(&mut slab);
        c.install(line(0), MesiState::Shared, d, 0);
        assert_eq!(c.store(line(0), 0, 1, 1, &mut slab), StoreOutcome::NeedsUpgrade);
        assert_eq!(c.utilization_of(line(0)), Some(1), "pending store not yet counted");
        c.apply_upgrade(line(0), 0, 1, 2, &mut slab);
        assert_eq!(c.state_of(line(0)), Some(MesiState::Modified));
        assert_eq!(c.utilization_of(line(0)), Some(2));
        assert_eq!(c.load(line(0), 0, 3, &slab), Some(1));
    }

    /// A store to a line whose slot aliases another owner's copy must
    /// split the slot, not write through it.
    #[test]
    fn store_on_aliased_slot_is_copy_on_write() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let home_copy = zeroed(&mut slab);
        let grant = slab.retain(home_copy);
        c.install(line(0), MesiState::Exclusive, grant, 0);
        assert_eq!(c.store(line(0), 0, 7, 1, &mut slab), StoreOutcome::Done);
        assert_eq!(slab.get(home_copy).word(0), 0, "home's copy untouched");
        assert_eq!(c.load(line(0), 0, 2, &slab), Some(7));
        assert_eq!(slab.stats().cow_clones, 1);
    }

    #[test]
    fn hints_report_invalid_way() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let h = c.hints_for(line(0));
        assert!(h.set_has_invalid);
        // Fill set 0 (lines 0 and 2 map to set 0 of 2 sets).
        let d0 = zeroed(&mut slab);
        let d2 = zeroed(&mut slab);
        c.install(line(0), MesiState::Shared, d0, 5);
        c.install(line(2), MesiState::Shared, d2, 9);
        let h = c.hints_for(line(4));
        assert!(!h.set_has_invalid);
        assert_eq!(h.set_min_last_access, 5);
        // Touching line 0 raises the set minimum to 9.
        c.load(line(0), 0, 20, &slab);
        assert_eq!(c.hints_for(line(4)).set_min_last_access, 9);
    }

    #[test]
    fn install_evicts_lru_and_reports_dirtiness() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let d0 = zeroed(&mut slab);
        c.install(line(0), MesiState::Exclusive, d0, 0);
        c.store(line(0), 0, 7, 1, &mut slab);
        let d2 = zeroed(&mut slab);
        c.install(line(2), MesiState::Shared, d2, 2);
        // Set 0 is full; line 0 is LRU... but line 0 was touched at t=1 by
        // the store, line 2 installed at t=2, so line 0 is LRU.
        let d4 = zeroed(&mut slab);
        let v = c.install(line(4), MesiState::Shared, d4, 3).unwrap();
        assert_eq!(v.line, line(0));
        assert!(v.dirty);
        assert_eq!(v.utilization, 2);
        assert_eq!(slab.get(v.data).word(0), 7);
        slab.release(v.data);
    }

    #[test]
    fn invalidation_returns_utilization_and_data() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let d = zeroed(&mut slab);
        c.install(line(0), MesiState::Exclusive, d, 0);
        c.store(line(0), 3, 42, 1, &mut slab);
        let v = c.process_inv(line(0)).unwrap();
        assert!(v.dirty);
        assert_eq!(v.utilization, 2);
        assert_eq!(slab.get(v.data).word(3), 42);
        slab.release(v.data);
        assert_eq!(c.process_inv(line(0)), None, "second invalidation finds nothing");
        assert_eq!(slab.total_refs(), 0, "cache handed its only reference back");
    }

    #[test]
    fn downgrade_keeps_line_shared_and_resident() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        let d = zeroed(&mut slab);
        c.install(line(0), MesiState::Exclusive, d, 0);
        c.store(line(0), 0, 5, 1, &mut slab);
        let (dirty, data) = c.process_downgrade(line(0)).unwrap();
        assert!(dirty);
        assert_eq!(slab.get(data).word(0), 5);
        assert_eq!(c.state_of(line(0)), Some(MesiState::Shared));
        assert_eq!(slab.refs(data), 1, "handle still owned by the cache, not the caller");
        // A second downgrade reports clean.
        let (dirty, _) = c.process_downgrade(line(0)).unwrap();
        assert!(!dirty);
    }

    #[test]
    #[should_panic(expected = "absent line")]
    fn upgrade_of_absent_line_panics() {
        let mut slab = DataSlab::new();
        let mut c = cache();
        c.apply_upgrade(line(0), 0, 1, 0, &mut slab);
    }
}
