//! Home-tile (directory) decision logic of the locality-aware protocol.
//!
//! A [`DirectoryEntry`] lives beside every line resident in a shared-L2
//! slice ("the coherence directory is integrated with the L2 slices by
//! extending the L2 tag arrays", §3.1). [`DirectoryEntry::begin_request`]
//! is the pure decision kernel of §3.2: it consults the locality classifier
//! and produces a [`HomeDecision`] describing *what* must happen — fetch
//! data from a dirty owner, invalidate private sharers, and finally grant a
//! line or serve a word. The simulator executes the decision with real
//! timing; this crate stays free of clocks and queues so the protocol can
//! be unit- and property-tested exhaustively.
//!
//! Message-size notes from §3.6 that the simulator applies:
//! * every miss request carries the cache-line offset and a 1-bit
//!   access-width indicator (they fit in the 64-bit header flit);
//! * write requests additionally carry the 64-bit word to be written
//!   (one extra flit) because the requester cannot know whether it is a
//!   private or remote sharer — only the directory knows;
//! * invalidation acknowledgements and eviction notifies carry the private
//!   utilization counter inside the header flit (42-bit line address +
//!   12-bit core ids + 2-bit counter + 8-bit type fit in 64 bits).

use lacc_model::config::ClassifierConfig;
use lacc_model::{CoreId, Cycle};

use crate::classifier::{
    ClassifyOutcome, LocalityClassifier, RemovalReason, RequestHints, SharerMode,
};
use crate::mesi::DirState;
use crate::sharer::{InvalidationPlan, SharerTracker};
use crate::DirectoryKind;

/// Load or store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A load (or instruction fetch).
    Read,
    /// A store.
    Write,
}

/// A miss request as seen by the home tile.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HomeRequest {
    /// The requesting core.
    pub core: CoreId,
    /// Load or store.
    pub kind: AccessKind,
    /// L1 set-pressure hints carried in the request message (§3.2–3.3).
    pub hints: RequestHints,
    /// `true` for instruction lines: they are read-only and always served
    /// as private copies (the protocol adapts *data* caching).
    pub instruction: bool,
}

/// What the home hands the requester once prerequisite steps finish.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Grant {
    /// Whole line, read-only, other sharers exist (MESI S).
    LineShared,
    /// Whole line, read-only, no other sharers (MESI E).
    LineExclusive,
    /// Whole line, writable (MESI M).
    LineModified,
    /// Write permission only — the requester already holds the line in S
    /// (an *upgrade miss*; reply carries no data).
    Upgrade,
    /// One word read at the L2 (requester is a remote sharer).
    WordRead,
    /// One word written at the L2 (requester is a remote sharer); the L2
    /// copy becomes dirty.
    WordWrite,
}

impl Grant {
    /// `true` when the reply carries a full cache line (9 flits).
    #[must_use]
    pub fn carries_line(self) -> bool {
        matches!(self, Grant::LineShared | Grant::LineExclusive | Grant::LineModified)
    }

    /// `true` when the requester becomes a private sharer.
    #[must_use]
    pub fn is_private(self) -> bool {
        !matches!(self, Grant::WordRead | Grant::WordWrite)
    }
}

/// The home's plan for serving one request, in execution order:
/// first `fetch_from_owner`, then `invalidate`, then the `grant`.
#[derive(Clone, PartialEq, Debug)]
pub struct HomeDecision {
    /// Fetch the line from this (possibly dirty) exclusive owner before
    /// replying; the owner downgrades M/E→S and *remains* a sharer
    /// (synchronous write-back, read paths only).
    pub fetch_from_owner: Option<CoreId>,
    /// Invalidate these private sharers and collect one response each
    /// (write paths only). A dirty owner's data rides its ack.
    pub invalidate: Option<InvalidationPlan>,
    /// What to send the requester afterwards.
    pub grant: Grant,
    /// The classifier's verdict (for statistics).
    pub outcome: ClassifyOutcome,
}

/// Directory entry: MESI summary + sharer tracker + locality classifier +
/// the line's L2 last-access time (used by the Timestamp check).
#[derive(Clone, PartialEq, Debug)]
pub struct DirectoryEntry {
    /// Coherence state summary of the L1 copies.
    pub state: DirState,
    /// Private-sharer tracking (full-map or ACKwise_p).
    pub sharers: SharerTracker,
    /// The §3 locality classifier.
    pub classifier: LocalityClassifier,
    /// Last cycle at which any core accessed this line at the L2.
    pub last_access: Cycle,
}

impl DirectoryEntry {
    /// Creates the entry for a line just installed in an L2 slice.
    #[must_use]
    pub fn new(dir: DirectoryKind, classifier: &ClassifierConfig, num_cores: usize) -> Self {
        DirectoryEntry {
            state: DirState::Uncached,
            sharers: SharerTracker::new(dir, num_cores),
            classifier: LocalityClassifier::new(classifier, num_cores),
            last_access: 0,
        }
    }

    /// Classifies and plans one miss request (§3.2). Mutates the
    /// classifier's utilization counters; sharer/state updates are deferred
    /// to [`DirectoryEntry::sharer_response`] (as acks arrive) and
    /// [`DirectoryEntry::complete_grant`] (when the reply is sent).
    ///
    /// # Panics
    ///
    /// Panics on a write to an instruction line (the workload generators
    /// never produce self-modifying code).
    pub fn begin_request(&mut self, req: &HomeRequest, now: Cycle) -> HomeDecision {
        let outcome = if req.instruction {
            assert!(req.kind == AccessKind::Read, "instruction lines are read-only");
            ClassifyOutcome { mode: SharerMode::Private, promoted: false, tracked: false }
        } else {
            self.classifier.classify_request(req.core, req.hints, self.last_access)
        };
        self.last_access = now;

        match (req.kind, outcome.mode) {
            (AccessKind::Read, SharerMode::Private) => {
                let owner = self.state.owner().filter(|&o| o != req.core);
                let grant = if owner.is_none() && self.sharers.is_empty() {
                    Grant::LineExclusive
                } else {
                    Grant::LineShared
                };
                HomeDecision { fetch_from_owner: owner, invalidate: None, grant, outcome }
            }
            (AccessKind::Read, SharerMode::Remote) => HomeDecision {
                fetch_from_owner: self.state.owner(),
                invalidate: None,
                grant: Grant::WordRead,
                outcome,
            },
            (AccessKind::Write, SharerMode::Private) => {
                // An upgrade only when the directory *knows* the requester
                // holds an S copy; after ACKwise overflow it cannot know,
                // so the requester's copy is invalidated with the rest and
                // a full M line is granted.
                let is_sharer =
                    self.sharers.contains(req.core) == Some(true) && self.state == DirState::Shared;
                let skip = if is_sharer { Some(req.core) } else { None };
                let plan = self.sharers.invalidation_plan(skip);
                self.classifier.on_write(req.core);
                HomeDecision {
                    fetch_from_owner: None,
                    invalidate: plan,
                    grant: if is_sharer { Grant::Upgrade } else { Grant::LineModified },
                    outcome,
                }
            }
            (AccessKind::Write, SharerMode::Remote) => {
                let plan = self.sharers.invalidation_plan(None);
                self.classifier.on_write(req.core);
                HomeDecision {
                    fetch_from_owner: None,
                    invalidate: plan,
                    grant: Grant::WordWrite,
                    outcome,
                }
            }
        }
    }

    /// Processes one sharer response: an invalidation ack, an eviction
    /// notify, or a back-invalidation ack, carrying the private utilization
    /// counter (§3.2 "Evictions and Invalidations"). Removes the core from
    /// the sharer set, runs the demotion classification, and fixes the
    /// MESI summary. Returns the core's new mode, or `None` if the core
    /// contributed no sharer slot (a stale response — ignored).
    pub fn sharer_response(
        &mut self,
        core: CoreId,
        private_util: u32,
        reason: RemovalReason,
    ) -> Option<SharerMode> {
        let removed = self.sharers.remove(core);
        if !removed {
            return None;
        }
        let mode = if self.is_instruction_entry() {
            SharerMode::Private
        } else {
            self.classifier.on_sharer_removed(core, private_util, reason)
        };
        if self.state.owner() == Some(core) || self.sharers.is_empty() {
            self.state =
                if self.sharers.is_empty() { DirState::Uncached } else { DirState::Shared };
        }
        Some(mode)
    }

    /// Records that the exclusive owner supplied its data and downgraded to
    /// S (synchronous write-back on a read path). The owner remains a
    /// sharer.
    pub fn owner_downgraded(&mut self, owner: CoreId) {
        debug_assert_eq!(self.state.owner(), Some(owner), "downgrade from non-owner");
        self.state = DirState::Shared;
    }

    /// Finalizes a grant: updates the sharer set and MESI summary to
    /// reflect the reply being sent.
    ///
    /// # Panics
    ///
    /// Panics (debug) if invariants are violated, e.g. granting M while
    /// sharers remain.
    pub fn complete_grant(&mut self, core: CoreId, grant: Grant) {
        match grant {
            Grant::LineShared => {
                self.sharers.add(core);
                self.state = DirState::Shared;
            }
            Grant::LineExclusive => {
                debug_assert!(self.sharers.is_empty());
                self.sharers.add(core);
                self.state = DirState::Exclusive(core);
            }
            Grant::LineModified => {
                debug_assert!(
                    self.sharers.is_empty(),
                    "M grant with live sharers: {:?}",
                    self.sharers
                );
                self.sharers.add(core);
                self.state = DirState::Exclusive(core);
            }
            Grant::Upgrade => {
                debug_assert_eq!(self.sharers.contains(core), Some(true));
                debug_assert_eq!(self.sharers.count(), 1);
                self.state = DirState::Exclusive(core);
            }
            Grant::WordRead => {}
            Grant::WordWrite => {
                debug_assert!(self.sharers.is_empty(), "word write with live sharers");
                self.state = DirState::Uncached;
            }
        }
    }

    /// Plan for tearing the entry down (inclusive-L2 eviction): invalidate
    /// every remaining private copy.
    #[must_use]
    pub fn back_invalidation_plan(&self) -> Option<InvalidationPlan> {
        self.sharers.invalidation_plan(None)
    }

    fn is_instruction_entry(&self) -> bool {
        // Instruction entries never consult the classifier; the simulator
        // routes them by region class, so the entry itself does not need to
        // distinguish — data entries always classify. Kept as a hook.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_model::config::{MechanismKind, TrackingKind};

    fn entry() -> DirectoryEntry {
        let ccfg = ClassifierConfig {
            pct: 4,
            tracking: TrackingKind::Complete,
            mechanism: MechanismKind::rat_default(),
            one_way: false,
            shortcut: false,
        };
        DirectoryEntry::new(DirectoryKind::ackwise4(), &ccfg, 8)
    }

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    fn read(core: usize) -> HomeRequest {
        HomeRequest {
            core: c(core),
            kind: AccessKind::Read,
            hints: RequestHints { set_min_last_access: 0, set_has_invalid: true },
            instruction: false,
        }
    }

    fn write(core: usize) -> HomeRequest {
        HomeRequest { kind: AccessKind::Write, ..read(core) }
    }

    #[test]
    fn first_read_grants_exclusive() {
        let mut e = entry();
        let d = e.begin_request(&read(0), 10);
        assert_eq!(d.grant, Grant::LineExclusive);
        assert_eq!(d.fetch_from_owner, None);
        assert_eq!(d.invalidate, None);
        e.complete_grant(c(0), d.grant);
        assert_eq!(e.state, DirState::Exclusive(c(0)));
        assert_eq!(e.last_access, 10);
    }

    #[test]
    fn second_read_fetches_from_owner_and_shares() {
        let mut e = entry();
        let d = e.begin_request(&read(0), 0);
        e.complete_grant(c(0), d.grant);
        let d = e.begin_request(&read(1), 1);
        assert_eq!(d.grant, Grant::LineShared);
        assert_eq!(d.fetch_from_owner, Some(c(0)), "owner may hold dirty data");
        e.owner_downgraded(c(0));
        e.complete_grant(c(1), d.grant);
        assert_eq!(e.state, DirState::Shared);
        assert_eq!(e.sharers.count(), 2);
    }

    #[test]
    fn write_invalidates_readers_then_grants_m() {
        let mut e = entry();
        for core in 0..3 {
            let d = e.begin_request(&read(core), core as u64);
            if let Some(o) = d.fetch_from_owner {
                e.owner_downgraded(o);
            }
            e.complete_grant(c(core), d.grant);
        }
        let d = e.begin_request(&write(5), 10);
        assert_eq!(d.grant, Grant::LineModified);
        let plan = d.invalidate.expect("three sharers to invalidate");
        assert_eq!(plan.expected_acks(), 3);
        // Acks arrive carrying utilization 1 (low locality): all demoted.
        for core in 0..3 {
            let m = e.sharer_response(c(core), 1, RemovalReason::Invalidation);
            assert_eq!(m, Some(SharerMode::Remote));
        }
        e.complete_grant(c(5), d.grant);
        assert_eq!(e.state, DirState::Exclusive(c(5)));
        assert_eq!(e.sharers.count(), 1);
    }

    #[test]
    fn upgrade_when_requester_is_known_sharer() {
        let mut e = entry();
        let d = e.begin_request(&read(0), 0);
        e.complete_grant(c(0), d.grant); // E owner
        let d = e.begin_request(&read(1), 1);
        e.owner_downgraded(c(0));
        e.complete_grant(c(1), d.grant); // S, sharers {0, 1}
        let d = e.begin_request(&write(1), 2);
        assert_eq!(d.grant, Grant::Upgrade, "requester holds an S copy");
        let plan = d.invalidate.unwrap();
        assert_eq!(plan.expected_acks(), 1, "only the other sharer");
        e.sharer_response(c(0), 1, RemovalReason::Invalidation);
        e.complete_grant(c(1), d.grant);
        assert_eq!(e.state, DirState::Exclusive(c(1)));
    }

    #[test]
    fn overflowed_directory_broadcasts_and_regrants_full_line() {
        let mut e = entry(); // ACKwise_4
        for core in 0..6 {
            let d = e.begin_request(&read(core), core as u64);
            if let Some(o) = d.fetch_from_owner {
                e.owner_downgraded(o);
            }
            e.complete_grant(c(core), d.grant);
        }
        assert_eq!(e.sharers.known_sharers(), None, "overflowed");
        // Core 2 (already a sharer!) writes: directory cannot know, so it
        // broadcasts to all 6 and grants a full M line.
        let d = e.begin_request(&write(2), 10);
        assert_eq!(d.grant, Grant::LineModified);
        assert_eq!(d.invalidate, Some(InvalidationPlan::Broadcast { expected_acks: 6 }));
        for core in 0..6 {
            e.sharer_response(c(core), 1, RemovalReason::Invalidation);
        }
        e.complete_grant(c(2), d.grant);
        assert_eq!(e.state, DirState::Exclusive(c(2)));
    }

    #[test]
    fn demoted_core_gets_word_reads() {
        let mut e = entry();
        // Demote core 0 (installed, then evicted with low utilization).
        let d = e.begin_request(&read(0), 0);
        e.complete_grant(c(0), d.grant);
        e.sharer_response(c(0), 1, RemovalReason::Eviction);
        assert_eq!(e.state, DirState::Uncached);
        // Next read is served remotely.
        let d = e.begin_request(&read(0), 5);
        assert_eq!(d.grant, Grant::WordRead);
        assert_eq!(d.fetch_from_owner, None, "no owner to fetch from");
        e.complete_grant(c(0), d.grant);
        assert_eq!(e.state, DirState::Uncached, "word reads leave no copy");
    }

    #[test]
    fn remote_read_syncs_dirty_owner() {
        let mut e = entry();
        let d = e.begin_request(&write(1), 0);
        e.complete_grant(c(1), d.grant); // M owner: core 1

        // Demote core 0 first so its read is remote.
        e.classifier.on_sharer_removed(c(0), 1, RemovalReason::Eviction);
        let d = e.begin_request(&read(0), 5);
        assert_eq!(d.grant, Grant::WordRead);
        assert_eq!(d.fetch_from_owner, Some(c(1)), "synchronous write-back required");
        e.owner_downgraded(c(1));
        assert_eq!(e.state, DirState::Shared);
        assert_eq!(e.sharers.count(), 1, "owner remains a (read) sharer");
    }

    #[test]
    fn remote_write_invalidates_everyone_and_stays_at_l2() {
        let mut e = entry();
        for core in 1..3 {
            let d = e.begin_request(&read(core), 0);
            if let Some(o) = d.fetch_from_owner {
                e.owner_downgraded(o);
            }
            e.complete_grant(c(core), d.grant);
        }
        e.classifier.on_sharer_removed(c(0), 1, RemovalReason::Eviction); // core 0 remote
        let d = e.begin_request(&write(0), 9);
        assert_eq!(d.grant, Grant::WordWrite);
        assert_eq!(d.invalidate.as_ref().unwrap().expected_acks(), 2);
        e.sharer_response(c(1), 1, RemovalReason::Invalidation);
        e.sharer_response(c(2), 1, RemovalReason::Invalidation);
        e.complete_grant(c(0), d.grant);
        assert_eq!(e.state, DirState::Uncached);
        assert!(e.sharers.is_empty());
    }

    #[test]
    fn eviction_notify_clears_owner() {
        let mut e = entry();
        let d = e.begin_request(&write(3), 0);
        e.complete_grant(c(3), d.grant);
        let m = e.sharer_response(c(3), 6, RemovalReason::Eviction);
        assert_eq!(m, Some(SharerMode::Private), "utilization 6 >= PCT stays private");
        assert_eq!(e.state, DirState::Uncached);
    }

    #[test]
    fn stale_response_is_ignored() {
        let mut e = entry();
        assert_eq!(e.sharer_response(c(7), 1, RemovalReason::Eviction), None);
    }

    #[test]
    fn instruction_requests_bypass_classifier() {
        let mut e = entry();
        // Demote core 0 for data; instruction read must still grant a line.
        e.classifier.on_sharer_removed(c(0), 1, RemovalReason::Eviction);
        let req = HomeRequest { instruction: true, ..read(0) };
        let d = e.begin_request(&req, 0);
        assert!(d.grant.carries_line());
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn instruction_write_panics() {
        let mut e = entry();
        let req = HomeRequest { instruction: true, ..write(0) };
        let _ = e.begin_request(&req, 0);
    }

    #[test]
    fn back_invalidation_plan_lists_all() {
        let mut e = entry();
        for core in 0..2 {
            let d = e.begin_request(&read(core), 0);
            if let Some(o) = d.fetch_from_owner {
                e.owner_downgraded(o);
            }
            e.complete_grant(c(core), d.grant);
        }
        assert_eq!(e.back_invalidation_plan().unwrap().expected_acks(), 2);
    }

    #[test]
    fn grant_helpers() {
        assert!(Grant::LineModified.carries_line());
        assert!(!Grant::Upgrade.carries_line());
        assert!(!Grant::WordRead.carries_line());
        assert!(Grant::Upgrade.is_private());
        assert!(!Grant::WordWrite.is_private());
    }
}
