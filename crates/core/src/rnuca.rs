//! Reactive-NUCA data placement (Hardavellas et al., ISCA 2009), the
//! baseline cache organization of the evaluated machine (§3.1).
//!
//! R-NUCA classifies OS pages and places their lines in the distributed
//! shared L2 accordingly:
//!
//! * **private data** → the L2 slice of the owning core (local access);
//! * **shared data** → a single slice selected by hashing the line address
//!   across all tiles;
//! * **instructions** → replicated per cluster of 4 cores with rotational
//!   interleaving: each cluster holds its own copy, spread across the
//!   cluster's slices.
//!
//! The paper's OS-page-table mechanism is replaced by an oracle: workload
//! generators declare region classes up front, with first-touch
//! classification as the fallback for undeclared pages (see DESIGN.md,
//! "Substitutions"). Reclassification shootdowns are not modeled.

use std::collections::HashMap;

use lacc_model::{CoreId, LineAddr, PageAddr};

/// R-NUCA class of a page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RegionClass {
    /// Accessed by a single core; homed at that core's L2 slice.
    PrivateTo(CoreId),
    /// Accessed by multiple cores; homed by address hash across all tiles.
    Shared,
    /// Instruction page; replicated per 4-core cluster.
    Instruction,
}

/// The placement oracle: page classes plus the home-computation rules.
#[derive(Clone, Debug)]
pub struct Rnuca {
    num_cores: usize,
    cluster: usize,
    pages: HashMap<PageAddr, RegionClass>,
}

impl Rnuca {
    /// Creates a placement map for `num_cores` tiles with instruction
    /// clusters of `cluster` cores (Table 1: 4).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is zero or does not divide `num_cores`.
    #[must_use]
    pub fn new(num_cores: usize, cluster: usize) -> Self {
        assert!(cluster > 0 && num_cores % cluster == 0, "cluster must divide num_cores");
        Rnuca { num_cores, cluster, pages: HashMap::new() }
    }

    /// Declares a page's class up front (the oracle seeding).
    pub fn declare(&mut self, page: PageAddr, class: RegionClass) {
        self.pages.insert(page, class);
    }

    /// Declares every page covering `lines` consecutive lines from
    /// `first_line`.
    pub fn declare_lines(&mut self, first_line: LineAddr, lines: u64, class: RegionClass) {
        let mut l = first_line.raw();
        let end = first_line.raw() + lines.max(1);
        while l < end {
            self.declare(LineAddr::new(l).page(), class);
            l += 64; // 64 lines per 4 KB page
        }
        // Ensure the final partial page is covered.
        self.declare(LineAddr::new(end - 1).page(), class);
    }

    /// The class of `page`, classifying by first touch if undeclared.
    pub fn classify(&mut self, page: PageAddr, toucher: CoreId) -> RegionClass {
        *self.pages.entry(page).or_insert(RegionClass::PrivateTo(toucher))
    }

    /// The class of `page` if already known.
    #[must_use]
    pub fn class_of(&self, page: PageAddr) -> Option<RegionClass> {
        self.pages.get(&page).copied()
    }

    /// The home tile for `line` when accessed by `requester`, classifying
    /// the page by first touch if needed.
    pub fn home_for(&mut self, line: LineAddr, requester: CoreId) -> CoreId {
        match self.classify(line.page(), requester) {
            RegionClass::PrivateTo(owner) => owner,
            RegionClass::Shared => {
                CoreId::new((Self::mix(line.raw()) % self.num_cores as u64) as usize)
            }
            RegionClass::Instruction => {
                // Rotational interleaving within the requester's cluster.
                let base = (requester.index() / self.cluster) * self.cluster;
                CoreId::new(base + (Self::mix(line.raw()) % self.cluster as u64) as usize)
            }
        }
    }

    /// Number of cores per instruction cluster.
    #[must_use]
    pub fn cluster_size(&self) -> usize {
        self.cluster
    }

    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn first_touch_private() {
        let mut r = Rnuca::new(16, 4);
        let line = LineAddr::new(100);
        assert_eq!(r.home_for(line, c(5)), c(5), "first toucher owns the page");
        // A second core touching the *same page* still sees the private
        // home (no reclassification shootdown is modeled).
        assert_eq!(r.home_for(line, c(2)), c(5));
    }

    #[test]
    fn declared_shared_pages_hash_across_tiles() {
        let mut r = Rnuca::new(16, 4);
        r.declare_lines(LineAddr::new(0), 64 * 50, RegionClass::Shared);
        let mut seen = std::collections::HashSet::new();
        for l in 0..800u64 {
            let home = r.home_for(LineAddr::new(l * 4), c(0));
            assert!(home.index() < 16);
            seen.insert(home.index());
        }
        assert!(seen.len() > 12, "shared lines must spread across tiles: {seen:?}");
    }

    #[test]
    fn shared_home_is_requester_independent() {
        let mut r = Rnuca::new(16, 4);
        r.declare(LineAddr::new(77).page(), RegionClass::Shared);
        assert_eq!(r.home_for(LineAddr::new(77), c(0)), r.home_for(LineAddr::new(77), c(9)));
    }

    #[test]
    fn instruction_home_stays_in_cluster() {
        let mut r = Rnuca::new(16, 4);
        r.declare(LineAddr::new(0).page(), RegionClass::Instruction);
        for req in 0..16 {
            let cluster = req / 4;
            for l in 0..32u64 {
                let home = r.home_for(LineAddr::new(l), c(req));
                assert_eq!(home.index() / 4, cluster, "instr home must stay in requester cluster");
            }
        }
    }

    #[test]
    fn instruction_lines_rotate_within_cluster() {
        let mut r = Rnuca::new(16, 4);
        r.declare(LineAddr::new(0).page(), RegionClass::Instruction);
        let homes: std::collections::HashSet<usize> =
            (0..32u64).map(|l| r.home_for(LineAddr::new(l), c(0)).index()).collect();
        assert!(homes.len() > 1, "rotational interleaving must use several slices");
    }

    #[test]
    fn declare_lines_covers_partial_pages() {
        let mut r = Rnuca::new(4, 4);
        // 100 lines starting at line 10: pages 0 and 1 (64 lines/page).
        r.declare_lines(LineAddr::new(10), 100, RegionClass::Shared);
        assert_eq!(r.class_of(LineAddr::new(10).page()), Some(RegionClass::Shared));
        assert_eq!(r.class_of(LineAddr::new(109).page()), Some(RegionClass::Shared));
    }

    #[test]
    #[should_panic(expected = "cluster must divide")]
    fn bad_cluster_panics() {
        let _ = Rnuca::new(10, 4);
    }
}
