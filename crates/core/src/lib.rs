//! # lacc-core — the Locality-Aware Adaptive Cache Coherence protocol
//!
//! This crate implements the primary contribution of Kurian, Khan &
//! Devadas, *The Locality-Aware Adaptive Cache Coherence Protocol* (ISCA
//! 2013): a directory protocol that profiles the spatio-temporal locality
//! of every (cache line, core) pair at runtime and serves low-locality
//! misses as cheap **word accesses at the shared L2** instead of moving
//! whole cache lines into the private L1s.
//!
//! The pieces, bottom-up:
//!
//! * [`mesi`] — MESI line states and the directory's state summary;
//! * [`sharer`] — full-map and ACKwise_p sharer tracking with
//!   broadcast-invalidation plans (§3.1);
//! * [`classifier`] — private/remote modes, utilization counters, the
//!   Timestamp check (§3.2), RAT levels (§3.3), Limited_k tracking (§3.4)
//!   and the one-way variant (§3.7);
//! * [`l1`] — the private L1 with the Figure-5 tag extensions;
//! * [`home`] — the directory-entry decision kernel tying the above
//!   together;
//! * [`miss_class`] — the five-way miss taxonomy of §4.4;
//! * [`rnuca`] — Reactive-NUCA placement of the shared L2;
//! * [`overheads`] — the §3.6 storage arithmetic.
//!
//! Everything here is *pure state machine*: no clocks, queues or network.
//! The `lacc-sim` crate supplies timing; this separation is what lets the
//! test suite drive the protocol through exhaustive and property-based
//! scenarios.
//!
//! # Examples
//!
//! A complete private→remote→private round trip for one line:
//!
//! ```
//! use lacc_core::classifier::{RemovalReason, RequestHints, SharerMode};
//! use lacc_core::home::{AccessKind, DirectoryEntry, Grant, HomeRequest};
//! use lacc_core::DirectoryKind;
//! use lacc_model::config::ClassifierConfig;
//! use lacc_model::CoreId;
//!
//! let mut entry = DirectoryEntry::new(
//!     DirectoryKind::ackwise4(),
//!     &ClassifierConfig::isca13_default(), // PCT = 4
//!     64,
//! );
//! let core = CoreId::new(7);
//! let hints = RequestHints { set_min_last_access: 0, set_has_invalid: true };
//!
//! // First read: private copy (all cores start private).
//! let d = entry.begin_request(
//!     &HomeRequest { core, kind: AccessKind::Read, hints, instruction: false },
//!     0,
//! );
//! assert_eq!(d.grant, Grant::LineExclusive);
//! entry.complete_grant(core, d.grant);
//!
//! // Evicted after a single use: utilization 1 < PCT, demoted to remote.
//! let mode = entry.sharer_response(core, 1, RemovalReason::Eviction);
//! assert_eq!(mode, Some(SharerMode::Remote));
//!
//! // The next read is served as a word access at the shared L2.
//! let d = entry.begin_request(
//!     &HomeRequest { core, kind: AccessKind::Read, hints, instruction: false },
//!     10,
//! );
//! assert_eq!(d.grant, Grant::WordRead);
//! ```

pub mod classifier;
pub mod home;
pub mod l1;
pub mod mesi;
pub mod miss_class;
pub mod overheads;
pub mod rnuca;
pub mod sharer;

pub use classifier::{
    ClassifyOutcome, LocalityClassifier, RemovalReason, RequestHints, SharerMode,
};
pub use home::{AccessKind, DirectoryEntry, Grant, HomeDecision, HomeRequest};
pub use l1::{EvictedL1Line, L1Cache, L1Line, StoreOutcome};
pub use mesi::{DirState, MesiState};
pub use miss_class::MissClassifier;
pub use overheads::{storage_report, StorageReport};
pub use rnuca::{RegionClass, Rnuca};
pub use sharer::{InvalidationPlan, SharerTracker};

// Re-exported so protocol code can name the directory kind without
// depending on `lacc-model` directly.
pub use lacc_model::config::DirectoryKind;
