//! Directory sharer tracking: full-map and ACKwise_p.
//!
//! ACKwise_p (§3.1) keeps up to `p` exact sharer pointers. When a line
//! gains a sharer beyond `p`, the identities are dropped and only a count
//! is maintained; exclusive requests then *broadcast* the invalidation, but
//! acknowledgements are expected "from only the actual sharers of the
//! data", which is exactly the count the directory kept.
//!
//! Sharer identities are stored as [`CoreSet`] bitmaps — fixed-width,
//! allocation-free, O(1) membership — rather than heap vectors; unicast
//! invalidation rounds therefore visit sharers in ascending core order.

use lacc_model::{CoreId, CoreSet};

use crate::DirectoryKind;

/// How an invalidation round must be delivered, produced by
/// [`SharerTracker::invalidation_plan`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InvalidationPlan {
    /// Send a unicast invalidation to each listed sharer (ascending core
    /// order) and await one response (inv-ack or racing evict-notify) per
    /// core.
    Unicast(CoreSet),
    /// Broadcast the invalidation (single network injection) and await
    /// `expected_acks` responses from the actual sharers.
    Broadcast {
        /// Number of responses to await.
        expected_acks: usize,
    },
}

impl InvalidationPlan {
    /// Number of responses the home must collect before proceeding.
    #[must_use]
    pub fn expected_acks(&self) -> usize {
        match self {
            InvalidationPlan::Unicast(s) => s.len(),
            InvalidationPlan::Broadcast { expected_acks } => *expected_acks,
        }
    }
}

/// Internal ACKwise representation: exact pointers until overflow, then a
/// bare count (identities dropped, §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AckWiseState {
    /// Exact sharer pointers (count <= p).
    Exact(CoreSet),
    /// Sharer count only, after pointer overflow.
    CountOnly(usize),
}

/// Sharer-set representation for one directory entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SharerTracker {
    /// One presence bit per core.
    FullMap {
        /// Presence bitmap with cached population count.
        set: CoreSet,
    },
    /// ACKwise_p limited pointers.
    AckWise {
        /// Pointer budget `p`.
        pointers: usize,
        /// Exact pointers, or just a count after overflow.
        state: AckWiseState,
    },
}

impl SharerTracker {
    /// Creates an empty tracker of the configured kind.
    #[must_use]
    pub fn new(kind: DirectoryKind, _num_cores: usize) -> Self {
        match kind {
            DirectoryKind::FullMap => SharerTracker::FullMap { set: CoreSet::new() },
            DirectoryKind::AckWise { pointers } => {
                SharerTracker::AckWise { pointers, state: AckWiseState::Exact(CoreSet::new()) }
            }
        }
    }

    /// Number of sharers (exact in all representations — ACKwise always
    /// knows the count, just not always the identities).
    #[must_use]
    pub fn count(&self) -> usize {
        match self {
            SharerTracker::FullMap { set } => set.len(),
            SharerTracker::AckWise { state, .. } => match state {
                AckWiseState::Exact(s) => s.len(),
                AckWiseState::CountOnly(n) => *n,
            },
        }
    }

    /// `true` when no core holds a private copy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Whether `core` is a sharer: `Some(bool)` when the representation
    /// knows, `None` after ACKwise overflow (identities dropped).
    #[must_use]
    pub fn contains(&self, core: CoreId) -> Option<bool> {
        match self {
            SharerTracker::FullMap { set } => Some(set.contains(core)),
            SharerTracker::AckWise { state, .. } => match state {
                AckWiseState::Exact(s) => Some(s.contains(core)),
                AckWiseState::CountOnly(_) => None,
            },
        }
    }

    /// Records that `core` received a private copy.
    ///
    /// Adding a core that is already tracked is a no-op for the full map
    /// and for exact ACKwise pointers; after ACKwise overflow the caller
    /// must only add genuinely new sharers (the protocol guarantees this:
    /// a core with a valid copy never re-requests the line).
    pub fn add(&mut self, core: CoreId) {
        match self {
            SharerTracker::FullMap { set } => {
                set.insert(core);
            }
            SharerTracker::AckWise { pointers, state } => match state {
                AckWiseState::Exact(s) => {
                    if !s.contains(core) {
                        if s.len() == *pointers {
                            // Overflow: drop identities, keep the count.
                            *state = AckWiseState::CountOnly(s.len() + 1);
                        } else {
                            s.insert(core);
                        }
                    }
                }
                AckWiseState::CountOnly(n) => *n += 1,
            },
        }
    }

    /// Records that `core` no longer holds a copy (eviction notify or
    /// invalidation ack). Returns `true` if the count changed.
    ///
    /// After ACKwise overflow the identity is unknown, so any removal
    /// decrements the count; when it reaches zero the tracker returns to
    /// exact (empty) mode.
    pub fn remove(&mut self, core: CoreId) -> bool {
        match self {
            SharerTracker::FullMap { set } => set.remove(core),
            SharerTracker::AckWise { state, .. } => match state {
                AckWiseState::Exact(s) => s.remove(core),
                AckWiseState::CountOnly(n) => {
                    debug_assert!(*n > 0, "removing sharer from empty overflow set");
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        *state = AckWiseState::Exact(CoreSet::new());
                    }
                    true
                }
            },
        }
    }

    /// Clears all sharers (after an invalidation round completes).
    pub fn clear(&mut self) {
        match self {
            SharerTracker::FullMap { set } => set.clear(),
            SharerTracker::AckWise { state, .. } => *state = AckWiseState::Exact(CoreSet::new()),
        }
    }

    /// Sharer identities, when known exactly.
    #[must_use]
    pub fn known_sharers(&self) -> Option<CoreSet> {
        match self {
            SharerTracker::FullMap { set } => Some(*set),
            SharerTracker::AckWise { state, .. } => match state {
                AckWiseState::Exact(s) => Some(*s),
                AckWiseState::CountOnly(_) => None,
            },
        }
    }

    /// How to invalidate every sharer except `skip` (the requester itself
    /// during an upgrade). Returns `None` when there is nothing to do.
    #[must_use]
    pub fn invalidation_plan(&self, skip: Option<CoreId>) -> Option<InvalidationPlan> {
        match self.known_sharers() {
            Some(mut set) => {
                if let Some(s) = skip {
                    set.remove(s);
                }
                if set.is_empty() {
                    None
                } else {
                    Some(InvalidationPlan::Unicast(set))
                }
            }
            None => {
                // Overflowed ACKwise: broadcast. If the requester itself is
                // a sharer (upgrade), it must not be awaited — but under
                // overflow the directory cannot know, so the paper's
                // protocol invalidates the requester's copy too and the
                // requester simply re-obtains the line with the grant; the
                // caller adjusts `expected_acks` via `skip_is_sharer`.
                let n = self.count();
                (n > 0).then_some(InvalidationPlan::Broadcast { expected_acks: n })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize) -> CoreId {
        CoreId::new(n)
    }

    fn set(cores: &[usize]) -> CoreSet {
        cores.iter().map(|&n| c(n)).collect()
    }

    #[test]
    fn full_map_add_remove() {
        let mut t = SharerTracker::new(DirectoryKind::FullMap, 128);
        t.add(c(0));
        t.add(c(127));
        t.add(c(127)); // idempotent
        assert_eq!(t.count(), 2);
        assert_eq!(t.contains(c(127)), Some(true));
        assert_eq!(t.contains(c(3)), Some(false));
        assert!(t.remove(c(127)));
        assert!(!t.remove(c(127)));
        assert_eq!(t.count(), 1);
        assert_eq!(t.known_sharers(), Some(set(&[0])));
    }

    #[test]
    fn ackwise_exact_until_overflow() {
        let mut t = SharerTracker::new(DirectoryKind::AckWise { pointers: 2 }, 64);
        t.add(c(1));
        t.add(c(2));
        assert_eq!(t.known_sharers(), Some(set(&[1, 2])));
        t.add(c(3)); // overflow: identities dropped
        assert_eq!(t.count(), 3);
        assert_eq!(t.known_sharers(), None);
        assert_eq!(t.contains(c(1)), None);
    }

    #[test]
    fn ackwise_overflow_recovers_at_zero() {
        let mut t = SharerTracker::new(DirectoryKind::AckWise { pointers: 1 }, 64);
        t.add(c(1));
        t.add(c(2));
        assert_eq!(t.known_sharers(), None);
        t.remove(c(1));
        t.remove(c(2));
        assert!(t.is_empty());
        // Back to exact mode.
        t.add(c(5));
        assert_eq!(t.known_sharers(), Some(set(&[5])));
    }

    #[test]
    fn invalidation_plans() {
        let mut t = SharerTracker::new(DirectoryKind::AckWise { pointers: 4 }, 64);
        assert_eq!(t.invalidation_plan(None), None);
        t.add(c(1));
        t.add(c(2));
        assert_eq!(t.invalidation_plan(None), Some(InvalidationPlan::Unicast(set(&[1, 2]))));
        // Skip the requester during an upgrade.
        assert_eq!(t.invalidation_plan(Some(c(1))), Some(InvalidationPlan::Unicast(set(&[2]))));
        assert_eq!(t.invalidation_plan(Some(c(9))).unwrap().expected_acks(), 2);
        for i in 3..=5 {
            t.add(c(i));
        }
        assert_eq!(
            t.invalidation_plan(None),
            Some(InvalidationPlan::Broadcast { expected_acks: 5 })
        );
    }

    #[test]
    fn clear_empties_both_kinds() {
        for kind in [DirectoryKind::FullMap, DirectoryKind::AckWise { pointers: 1 }] {
            let mut t = SharerTracker::new(kind, 64);
            t.add(c(1));
            t.add(c(2));
            t.clear();
            assert!(t.is_empty());
            assert_eq!(t.known_sharers(), Some(CoreSet::new()));
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// ACKwise always reports the exact sharer count, matching a
        /// reference set, no matter how adds and removes interleave — the
        /// property that makes broadcast-ack collection terminate.
        #[test]
        fn ackwise_count_is_exact(
            ops in proptest::collection::vec((0usize..16, proptest::bool::ANY), 1..100),
            p in 1usize..6,
        ) {
            let mut t = SharerTracker::new(DirectoryKind::AckWise { pointers: p }, 16);
            let mut model = std::collections::BTreeSet::new();
            for (core, add) in ops {
                if add {
                    if !model.contains(&core) {
                        model.insert(core);
                        t.add(CoreId::new(core));
                    }
                } else if model.remove(&core) {
                    t.remove(CoreId::new(core));
                }
                prop_assert_eq!(t.count(), model.len());
            }
        }

        /// Full map tracks identities exactly.
        #[test]
        fn full_map_matches_set(
            ops in proptest::collection::vec((0usize..80, proptest::bool::ANY), 1..100)
        ) {
            let mut t = SharerTracker::new(DirectoryKind::FullMap, 80);
            let mut model = std::collections::BTreeSet::new();
            for (core, add) in ops {
                if add {
                    model.insert(core);
                    t.add(CoreId::new(core));
                } else {
                    model.remove(&core);
                    t.remove(CoreId::new(core));
                }
            }
            let known: Vec<usize> =
                t.known_sharers().unwrap().iter().map(|c| c.index()).collect();
            let expect: Vec<usize> = model.into_iter().collect();
            prop_assert_eq!(known, expect);
        }
    }
}
