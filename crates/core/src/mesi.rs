//! MESI cache-line states (Table 1: "Invalidation-based MESI").
//!
//! An L1 line that is not present is simply absent from the tag array, so
//! there is no explicit `Invalid` variant. The directory summarizes the L1
//! copies of a line with [`DirState`].

use lacc_model::CoreId;

/// State of a valid line in a private L1 cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MesiState {
    /// Writable and dirty; the only copy on chip that is newer than the L2.
    Modified,
    /// Writable and clean; the only L1 copy. Upgrades to `Modified`
    /// silently on a store (no upgrade miss).
    Exclusive,
    /// Read-only; other L1 copies may exist.
    Shared,
}

impl MesiState {
    /// `true` if a store can complete without a coherence request.
    #[must_use]
    pub fn can_write(self) -> bool {
        matches!(self, MesiState::Modified | MesiState::Exclusive)
    }

    /// `true` if the copy may differ from the home L2 (must be written
    /// back when removed).
    #[must_use]
    pub fn is_dirty(self) -> bool {
        matches!(self, MesiState::Modified)
    }
}

/// The directory's summary of a line's L1 copies.
///
/// Remote sharers never appear here: they hold no L1 copy, so they are
/// invisible to coherence and tracked only by the locality classifier —
/// the decoupling that §3.4 calls out ("the hardware pointers of ACKwise
/// are used to maintain coherence, the limited locality list serves to
/// classify cores").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum DirState {
    /// No private L1 copies exist (the L2 itself may hold the line).
    #[default]
    Uncached,
    /// One or more read-only copies; identities (or at least the count)
    /// live in the sharer tracker.
    Shared,
    /// A single owner holds the line in `Exclusive` or `Modified` state.
    /// The directory cannot distinguish E from M (E→M upgrades are silent),
    /// so it must assume the owner's copy may be dirty.
    Exclusive(CoreId),
}

impl DirState {
    /// The owner if the line is exclusively held.
    #[must_use]
    pub fn owner(self) -> Option<CoreId> {
        match self {
            DirState::Exclusive(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_permissions() {
        assert!(MesiState::Modified.can_write());
        assert!(MesiState::Exclusive.can_write());
        assert!(!MesiState::Shared.can_write());
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(MesiState::Modified.is_dirty());
        assert!(!MesiState::Exclusive.is_dirty());
        assert!(!MesiState::Shared.is_dirty());
    }

    #[test]
    fn dir_state_owner() {
        assert_eq!(DirState::Uncached.owner(), None);
        assert_eq!(DirState::Shared.owner(), None);
        assert_eq!(DirState::Exclusive(CoreId::new(3)).owner(), Some(CoreId::new(3)));
    }

    #[test]
    fn default_is_uncached() {
        assert_eq!(DirState::default(), DirState::Uncached);
    }
}
