//! Per-core miss-type classification (§4.4, Figure 10).
//!
//! The five classes are keyed off what last happened to the line in *this
//! core's* cache: never seen → **Cold**; previously evicted (by the L1
//! itself or by an inclusive-L2 back-invalidation) → **Capacity**; removed
//! by another core's exclusive request → **Sharing**; previously accessed
//! remotely at the shared L2 → **Word**; and a write hitting an S copy is
//! an **Upgrade** miss regardless of history.

use std::collections::HashMap;

use lacc_model::{LineAddr, MissClass};

use crate::classifier::RemovalReason;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PastEvent {
    Evicted,
    Invalidated,
    RemoteAccessed,
}

/// Tracks per-line history for one core and classifies its misses.
#[derive(Clone, Debug, Default)]
pub struct MissClassifier {
    history: HashMap<LineAddr, PastEvent>,
}

impl MissClassifier {
    /// Creates an empty classifier.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies a miss on `line`; `upgrade` marks a write that found an
    /// S copy.
    #[must_use]
    pub fn classify(&self, line: LineAddr, upgrade: bool) -> MissClass {
        if upgrade {
            return MissClass::Upgrade;
        }
        match self.history.get(&line) {
            None => MissClass::Cold,
            Some(PastEvent::Evicted) => MissClass::Capacity,
            Some(PastEvent::Invalidated) => MissClass::Sharing,
            Some(PastEvent::RemoteAccessed) => MissClass::Word,
        }
    }

    /// Records that this core's copy of `line` was removed.
    pub fn record_removal(&mut self, line: LineAddr, reason: RemovalReason) {
        let ev = match reason {
            // A back-invalidation is capacity pressure at the L2, not
            // communication: the next miss counts as Capacity.
            RemovalReason::Eviction | RemovalReason::BackInvalidation => PastEvent::Evicted,
            RemovalReason::Invalidation => PastEvent::Invalidated,
        };
        self.history.insert(line, ev);
    }

    /// Records that this core accessed `line` remotely (word access at the
    /// shared L2): its next miss on the line is a Word miss.
    pub fn record_remote_access(&mut self, line: LineAddr) {
        self.history.insert(line, PastEvent::RemoteAccessed);
    }

    /// Number of lines with recorded history (tests).
    #[must_use]
    pub fn tracked_lines(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn first_touch_is_cold() {
        let mc = MissClassifier::new();
        assert_eq!(mc.classify(l(1), false), MissClass::Cold);
    }

    #[test]
    fn upgrade_overrides_history() {
        let mut mc = MissClassifier::new();
        mc.record_removal(l(1), RemovalReason::Invalidation);
        assert_eq!(mc.classify(l(1), true), MissClass::Upgrade);
    }

    #[test]
    fn eviction_makes_capacity() {
        let mut mc = MissClassifier::new();
        mc.record_removal(l(1), RemovalReason::Eviction);
        assert_eq!(mc.classify(l(1), false), MissClass::Capacity);
    }

    #[test]
    fn back_invalidation_counts_as_capacity() {
        let mut mc = MissClassifier::new();
        mc.record_removal(l(1), RemovalReason::BackInvalidation);
        assert_eq!(mc.classify(l(1), false), MissClass::Capacity);
    }

    #[test]
    fn invalidation_makes_sharing() {
        let mut mc = MissClassifier::new();
        mc.record_removal(l(1), RemovalReason::Invalidation);
        assert_eq!(mc.classify(l(1), false), MissClass::Sharing);
    }

    #[test]
    fn remote_access_makes_word() {
        let mut mc = MissClassifier::new();
        mc.record_remote_access(l(1));
        assert_eq!(mc.classify(l(1), false), MissClass::Word);
    }

    #[test]
    fn latest_event_wins() {
        let mut mc = MissClassifier::new();
        mc.record_removal(l(1), RemovalReason::Invalidation);
        mc.record_remote_access(l(1));
        assert_eq!(mc.classify(l(1), false), MissClass::Word);
        mc.record_removal(l(1), RemovalReason::Eviction);
        assert_eq!(mc.classify(l(1), false), MissClass::Capacity);
    }
}
