//! Address-space layout for generated workloads.
//!
//! Each benchmark carves disjoint regions out of the 48-bit physical space:
//! one shared heap (declared `Shared` for the R-NUCA oracle), one private
//! arena per core (declared `PrivateTo(core)`), and the replicated text
//! segment handled by the simulator.

use lacc_core::rnuca::RegionClass;
use lacc_model::{Addr, CoreId, LineAddr};
use lacc_sim::RegionDecl;

/// First line of the shared heap.
pub const SHARED_BASE_LINE: u64 = 0x10_0000;
/// First line of core 0's private arena.
pub const PRIVATE_BASE_LINE: u64 = 0x1000_0000;
/// Line stride between per-core private arenas.
pub const PRIVATE_STRIDE_LINES: u64 = 0x10_0000;

/// A contiguous run of cache lines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Region {
    /// First line.
    pub base_line: u64,
    /// Length in lines.
    pub lines: u64,
}

impl Region {
    /// A region of `lines` lines in the shared heap, offset by
    /// `offset_lines`.
    #[must_use]
    pub fn shared(offset_lines: u64, lines: u64) -> Self {
        Region { base_line: SHARED_BASE_LINE + offset_lines, lines }
    }

    /// A region of `lines` lines in `core`'s private arena, offset by
    /// `offset_lines`.
    ///
    /// # Panics
    ///
    /// Panics if the region overflows the arena.
    #[must_use]
    pub fn private(core: usize, offset_lines: u64, lines: u64) -> Self {
        assert!(offset_lines + lines <= PRIVATE_STRIDE_LINES, "private arena overflow");
        Region {
            base_line: PRIVATE_BASE_LINE + core as u64 * PRIVATE_STRIDE_LINES + offset_lines,
            lines,
        }
    }

    /// Byte address of `word` (0..8) in the `idx`-th line of the region
    /// (`idx` wraps around the region length).
    #[must_use]
    pub fn addr(&self, idx: u64, word: u64) -> Addr {
        let line = self.base_line + (idx % self.lines.max(1));
        Addr::new(line * 64 + (word % 8) * 8)
    }

    /// The oracle declaration for this region.
    #[must_use]
    pub fn decl(&self, class: RegionClass) -> RegionDecl {
        RegionDecl { first_line: LineAddr::new(self.base_line), lines: self.lines, class }
    }

    /// Shared-class declaration helper.
    #[must_use]
    pub fn decl_shared(&self) -> RegionDecl {
        self.decl(RegionClass::Shared)
    }

    /// Private-class declaration helper.
    #[must_use]
    pub fn decl_private(&self, core: usize) -> RegionDecl {
        self.decl(RegionClass::PrivateTo(CoreId::new(core)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let s = Region::shared(0, 1 << 16);
        let p0 = Region::private(0, 0, PRIVATE_STRIDE_LINES);
        let p1 = Region::private(1, 0, PRIVATE_STRIDE_LINES);
        assert!(s.base_line + s.lines <= p0.base_line);
        assert!(p0.base_line + p0.lines <= p1.base_line);
    }

    #[test]
    fn addr_wraps_within_region() {
        let r = Region::shared(0, 4);
        assert_eq!(r.addr(0, 0).line().raw(), SHARED_BASE_LINE);
        assert_eq!(r.addr(4, 0), r.addr(0, 0), "index wraps");
        assert_eq!(r.addr(1, 9), r.addr(1, 1), "word wraps");
    }

    #[test]
    #[should_panic(expected = "arena overflow")]
    fn private_overflow_panics() {
        let _ = Region::private(0, PRIVATE_STRIDE_LINES, 1);
    }
}
