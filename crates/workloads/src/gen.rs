//! Coordinated multi-core trace generation.
//!
//! [`Phases`] owns one op buffer per core plus a deterministic RNG, and
//! offers the reusable access patterns from which the 21 benchmark presets
//! are assembled (DESIGN.md §5): private streams with controllable spatial
//! locality, hot working sets, shared read-mostly regions with rotating
//! writers, producer-consumer pipelines, lock-protected migratory records,
//! stencil halo exchanges and irregular graph walks.
//!
//! The central design lever is **utilization**: a pattern that touches
//! `8 / stride` words per line visit produces exactly that private
//! utilization, which is what the locality classifier keys on. Patterns
//! document the utilization they generate.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lacc_sim::trace::{default_instr_base, TraceOp, VecTrace, Workload};
use lacc_sim::RegionDecl;

use crate::regions::Region;

/// Multi-core trace builder.
pub struct Phases {
    ops: Vec<Vec<TraceOp>>,
    rng: SmallRng,
    next_barrier: u32,
    /// Compute instructions inserted between memory accesses.
    pub compute_per_access: u32,
}

impl Phases {
    /// Creates a builder for `cores` cores with a deterministic seed.
    #[must_use]
    pub fn new(cores: usize, seed: u64) -> Self {
        Phases {
            ops: vec![Vec::new(); cores],
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_1acc),
            next_barrier: 0,
            compute_per_access: 1,
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.ops.len()
    }

    /// Emits a global barrier (all cores).
    pub fn barrier(&mut self) {
        let id = self.next_barrier;
        self.next_barrier += 1;
        for t in &mut self.ops {
            t.push(TraceOp::Barrier { id });
        }
    }

    /// Emits `n` compute instructions on every core.
    pub fn compute_all(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        for t in &mut self.ops {
            t.push(TraceOp::Compute(n));
        }
    }

    fn pad(&mut self, core: usize) {
        if self.compute_per_access > 0 {
            self.ops[core].push(TraceOp::Compute(self.compute_per_access));
        }
    }

    fn load(&mut self, core: usize, region: &Region, idx: u64, word: u64) {
        self.pad(core);
        self.ops[core].push(TraceOp::Load { addr: region.addr(idx, word) });
    }

    fn store(&mut self, core: usize, region: &Region, idx: u64, word: u64) {
        self.pad(core);
        let value = self.rng.gen::<u64>();
        self.ops[core].push(TraceOp::Store { addr: region.addr(idx, word), value });
    }

    fn maybe_store(&mut self, core: usize, region: &Region, idx: u64, word: u64, wf: f64) {
        if self.rng.gen_bool(wf) {
            self.store(core, region, idx, word);
        } else {
            self.load(core, region, idx, word);
        }
    }

    /// Each core walks its own region sequentially, touching every
    /// `stride`-th word: per-line utilization = `8 / stride`. `passes > 1`
    /// with a region larger than the L1 produces capacity misses.
    pub fn private_stream(
        &mut self,
        regions: &[Region],
        passes: u32,
        stride: u64,
        write_frac: f64,
    ) {
        let stride = stride.clamp(1, 8);
        for core in 0..self.cores() {
            let r = regions[core % regions.len()];
            for _ in 0..passes {
                for l in 0..r.lines {
                    let mut w = 0;
                    while w < 8 {
                        self.maybe_store(core, &r, l, w, write_frac);
                        w += stride;
                    }
                }
            }
        }
    }

    /// Each core performs `accesses` random word accesses within its own
    /// small region (high temporal locality; stays private at any PCT if
    /// the region fits the L1).
    pub fn private_hot(&mut self, regions: &[Region], accesses: u32, write_frac: f64) {
        for core in 0..self.cores() {
            let r = regions[core % regions.len()];
            for _ in 0..accesses {
                let idx = self.rng.gen_range(0..r.lines);
                let word = self.rng.gen_range(0..8);
                self.maybe_store(core, &r, idx, word, write_frac);
            }
        }
    }

    /// All cores walk the shared region (each starting at a different
    /// offset), touching every `stride`-th word: read-shared streaming
    /// with utilization `8 / stride` per residency.
    pub fn shared_stream(&mut self, region: &Region, passes: u32, stride: u64, write_frac: f64) {
        let stride = stride.clamp(1, 8);
        let n = self.cores() as u64;
        for core in 0..self.cores() {
            let offset = (core as u64 * region.lines) / n;
            for _ in 0..passes {
                for l in 0..region.lines {
                    let idx = offset + l;
                    let mut w = 0;
                    while w < 8 {
                        self.maybe_store(core, region, idx, w, write_frac);
                        w += stride;
                    }
                }
            }
        }
    }

    /// Read-mostly sharing with invalidations: every core performs
    /// `blocks` rounds of `reuse` reads of a random shared line; every
    /// `writer_period`-th round the core *writes* instead, invalidating
    /// the other readers. Private residencies therefore see roughly
    /// `reuse`-utilization before invalidation — the Figure 1 shape.
    pub fn shared_read_write(
        &mut self,
        region: &Region,
        blocks: u32,
        reuse: u32,
        writer_period: u32,
    ) {
        for core in 0..self.cores() {
            for b in 0..blocks {
                let idx = self.rng.gen_range(0..region.lines);
                let is_writer =
                    writer_period > 0 && b % writer_period == (core as u32 % writer_period);
                if is_writer {
                    let w = self.rng.gen_range(0..8);
                    self.store(core, region, idx, w);
                } else {
                    let base_w = self.rng.gen_range(0..8);
                    for k in 0..reuse {
                        self.load(core, region, idx, (base_w + k as u64) % 8);
                    }
                }
            }
        }
    }

    /// Producer-consumer rounds: the rotating producer writes a chunk
    /// (all words: utilization 8), a barrier, then every consumer reads
    /// the chunk once (utilization up to 8), another barrier.
    pub fn producer_consumer(&mut self, region: &Region, rounds: u32, chunk_lines: u64) {
        for round in 0..rounds {
            let producer = round as usize % self.cores();
            let chunk = (round as u64 * chunk_lines) % region.lines.max(1);
            for l in 0..chunk_lines {
                for w in 0..8 {
                    self.store(producer, region, chunk + l, w);
                }
            }
            self.barrier();
            for core in 0..self.cores() {
                if core == producer {
                    continue;
                }
                for l in 0..chunk_lines {
                    for w in 0..8 {
                        self.load(core, region, chunk + l, w);
                    }
                }
            }
            self.barrier();
        }
    }

    /// Lock-protected migratory data: each core repeatedly acquires the
    /// lock, reads and updates the record lines, and releases. The record
    /// migrates between caches with full utilization per visit.
    pub fn migratory(&mut self, region: &Region, lock: u32, rounds: u32, record_lines: u64) {
        for round in 0..rounds {
            for core in 0..self.cores() {
                let _ = round;
                self.ops[core].push(TraceOp::Acquire { id: lock });
                for l in 0..record_lines {
                    for w in 0..4 {
                        self.load(core, region, l, w);
                    }
                    for w in 0..2 {
                        self.store(core, region, l, w);
                    }
                }
                self.ops[core].push(TraceOp::Release { id: lock });
            }
        }
    }

    /// Stencil iterations over per-core strips of a shared grid: each
    /// iteration every core reads+writes its own strip sequentially
    /// (utilization 8) and reads `halo` boundary lines of each neighbor
    /// strip, then a barrier.
    pub fn stencil(&mut self, region: &Region, iters: u32, halo: u64) {
        let cores = self.cores() as u64;
        let strip = (region.lines / cores.max(1)).max(1);
        for _ in 0..iters {
            for core in 0..self.cores() {
                let base = core as u64 * strip;
                for l in 0..strip {
                    for w in 0..8 {
                        self.load(core, region, base + l, w);
                    }
                    self.store(core, region, base + l, 0);
                }
                // Halo reads from the neighbours.
                for h in 0..halo {
                    let left = (base + region.lines - 1 - h) % region.lines;
                    let right = (base + strip + h) % region.lines;
                    for w in 0..4 {
                        self.load(core, region, left, w);
                        self.load(core, region, right, w);
                    }
                }
            }
            self.barrier();
        }
    }

    /// Convoyed sharing: every core walks the *same* line sequence in the
    /// same order (the paper's streamcluster/dijkstra-ss shape — all
    /// threads iterate over the same centers/distances). Every
    /// `writer_period`-th round a rotating core writes the line instead.
    /// At PCT 1 each write triggers an invalidation round over every
    /// convoy reader and the re-fetch storm serializes at the home (the
    /// *L2 cache waiting time* of Figure 9); with remote sharers the line
    /// never has private copies and the convoy degenerates to cheap word
    /// accesses.
    pub fn convoy(&mut self, region: &Region, rounds: u32, reuse: u32, writer_period: u32) {
        for core in 0..self.cores() {
            for r in 0..rounds {
                let idx = r as u64;
                let writer = writer_period > 0
                    && r % writer_period == 0
                    && (r / writer_period) as usize % self.cores() == core;
                if writer {
                    self.store(core, region, idx, 0);
                } else {
                    for k in 0..reuse {
                        self.load(core, region, idx, k as u64 % 8);
                    }
                }
            }
        }
    }

    /// Irregular pointer chasing over a (usually large) shared region:
    /// `steps` visits to random lines, reading `reads_per_node` words and
    /// writing with probability `write_frac` — utilization ≈
    /// `reads_per_node`, the low-locality traffic the protocol converts to
    /// word accesses.
    pub fn graph_walk(
        &mut self,
        region: &Region,
        steps: u32,
        reads_per_node: u32,
        write_frac: f64,
    ) {
        for core in 0..self.cores() {
            for _ in 0..steps {
                let idx = self.rng.gen_range(0..region.lines);
                let base_w = self.rng.gen_range(0..8);
                for k in 0..reads_per_node {
                    self.load(core, region, idx, (base_w + k as u64) % 8);
                }
                if write_frac > 0.0 && self.rng.gen_bool(write_frac) {
                    self.store(core, region, idx, base_w);
                }
            }
        }
    }

    /// Asymmetric sharing for the §5.3 Limited_1 pathologies: `first_core`
    /// touches each line `first_reuse` times, the rest touch it
    /// `rest_reuse` times.
    pub fn asymmetric_sharing(
        &mut self,
        region: &Region,
        blocks: u32,
        first_core: usize,
        first_reuse: u32,
        rest_reuse: u32,
    ) {
        for core in 0..self.cores() {
            let reuse = if core == first_core { first_reuse } else { rest_reuse };
            for _ in 0..blocks {
                let idx = self.rng.gen_range(0..region.lines);
                for k in 0..reuse {
                    self.load(core, region, idx, k as u64 % 8);
                }
            }
        }
    }

    /// Finishes the build: a final barrier, then the workload.
    #[must_use]
    pub fn finish(mut self, name: &str, regions: Vec<RegionDecl>, instr_lines: u64) -> Workload {
        self.barrier();
        Workload {
            name: name.to_string(),
            traces: self
                .ops
                .into_iter()
                .map(|t| Box::new(VecTrace::new(t)) as Box<dyn lacc_sim::TraceSource>)
                .collect(),
            regions,
            instr_lines,
            instr_base: default_instr_base(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lacc_core::rnuca::RegionClass;

    #[test]
    fn barriers_are_symmetric() {
        let mut p = Phases::new(4, 1);
        p.barrier();
        p.compute_all(5);
        p.barrier();
        let w = p.finish("t", vec![], 0);
        assert_eq!(w.active_cores(), 4);
    }

    #[test]
    fn private_stream_utilization_is_controlled() {
        let mut p = Phases::new(1, 2);
        p.compute_per_access = 0;
        let r = Region::private(0, 0, 4);
        p.private_stream(&[r], 1, 2, 0.0);
        let w = p.finish("t", vec![], 0);
        // 4 lines x 4 words (stride 2) + final barrier.
        let mut n_loads = 0;
        let mut tr = w.traces.into_iter().next().unwrap();
        while let Some(op) = tr.next_op() {
            if matches!(op, TraceOp::Load { .. }) {
                n_loads += 1;
            }
        }
        assert_eq!(n_loads, 16);
    }

    #[test]
    fn generation_is_deterministic() {
        let build = || {
            let mut p = Phases::new(2, 42);
            let r = Region::shared(0, 32);
            p.shared_read_write(&r, 20, 3, 5);
            p.graph_walk(&r, 10, 2, 0.3);
            let mut ops = vec![];
            let w = p.finish("t", vec![r.decl(RegionClass::Shared)], 4);
            for mut t in w.traces {
                while let Some(op) = t.next_op() {
                    ops.push(format!("{op:?}"));
                }
            }
            ops
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn migratory_pairs_lock_ops() {
        let mut p = Phases::new(3, 7);
        let r = Region::shared(0, 4);
        p.migratory(&r, 0, 2, 2);
        let w = p.finish("t", vec![], 0);
        for mut t in w.traces {
            let mut depth = 0i32;
            while let Some(op) = t.next_op() {
                match op {
                    TraceOp::Acquire { .. } => depth += 1,
                    TraceOp::Release { .. } => depth -= 1,
                    _ => {}
                }
                assert!((0..=1).contains(&depth));
            }
            assert_eq!(depth, 0);
        }
    }
}
