//! The 21-benchmark suite of Table 2, as synthetic trace presets.
//!
//! Each preset composes the pattern library (`gen.rs`) with parameters
//! chosen to reproduce the benchmark's published character: the L1-D miss
//! rate magnitude (Figure 10), the eviction/invalidation utilization mix
//! (Figures 1–2), which miss classes convert to word misses (§5.1), and
//! the Limited_1 pathologies of §5.3 (radix: first sharer wrongly remote;
//! bodytrack: first sharer wrongly private). DESIGN.md §5 records the
//! correspondence; `problem_size()` quotes Table 2.
//!
//! Presets scale: `scale` multiplies access counts (figures use 1.0; smoke
//! tests use ~0.05).

use lacc_sim::Workload;

use crate::gen::Phases;
use crate::regions::Region;

/// The 21 benchmarks of Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)] // the variants are the benchmark names themselves
pub enum Benchmark {
    Radix,
    LuNc,
    Barnes,
    OceanNc,
    WaterSp,
    Raytrace,
    Blackscholes,
    Streamcluster,
    Dedup,
    Bodytrack,
    Fluidanimate,
    Canneal,
    DijkstraSs,
    DijkstraAp,
    Patricia,
    Susan,
    Concomp,
    Community,
    Tsp,
    Dfs,
    Matmul,
}

impl Benchmark {
    /// All benchmarks in the paper's figure order.
    pub const ALL: [Benchmark; 21] = [
        Benchmark::Radix,
        Benchmark::LuNc,
        Benchmark::Barnes,
        Benchmark::OceanNc,
        Benchmark::WaterSp,
        Benchmark::Raytrace,
        Benchmark::Blackscholes,
        Benchmark::Streamcluster,
        Benchmark::Dedup,
        Benchmark::Bodytrack,
        Benchmark::Fluidanimate,
        Benchmark::Canneal,
        Benchmark::DijkstraSs,
        Benchmark::DijkstraAp,
        Benchmark::Patricia,
        Benchmark::Susan,
        Benchmark::Concomp,
        Benchmark::Community,
        Benchmark::Tsp,
        Benchmark::Dfs,
        Benchmark::Matmul,
    ];

    /// The display name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Radix => "radix",
            Benchmark::LuNc => "lu-nc",
            Benchmark::Barnes => "barnes",
            Benchmark::OceanNc => "ocean-nc",
            Benchmark::WaterSp => "water-sp",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Blackscholes => "blacksch.",
            Benchmark::Streamcluster => "streamclus.",
            Benchmark::Dedup => "dedup",
            Benchmark::Bodytrack => "bodytrack",
            Benchmark::Fluidanimate => "fluidanim.",
            Benchmark::Canneal => "canneal",
            Benchmark::DijkstraSs => "dijkstra-ss",
            Benchmark::DijkstraAp => "dijkstra-ap",
            Benchmark::Patricia => "patricia",
            Benchmark::Susan => "susan",
            Benchmark::Concomp => "concomp",
            Benchmark::Community => "community",
            Benchmark::Tsp => "tsp",
            Benchmark::Dfs => "dfs",
            Benchmark::Matmul => "matmul",
        }
    }

    /// Looks a benchmark up by its figure name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The Table 2 problem size of the original benchmark.
    #[must_use]
    pub fn problem_size(self) -> &'static str {
        match self {
            Benchmark::Radix => "1M Integers, radix 1024",
            Benchmark::LuNc => "512 x 512 matrix, 16 x 16 blocks",
            Benchmark::Barnes => "16K particles",
            Benchmark::OceanNc => "258 x 258 ocean",
            Benchmark::WaterSp => "512 molecules",
            Benchmark::Raytrace => "car",
            Benchmark::Blackscholes => "64K options",
            Benchmark::Streamcluster => "8192 points per block, 1 block",
            Benchmark::Dedup => "31 MB data",
            Benchmark::Bodytrack => "2 frames, 2000 particles",
            Benchmark::Fluidanimate => "5 frames, 100,000 particles",
            Benchmark::Canneal => "200,000 elements",
            Benchmark::DijkstraSs => "Graph with 4096 nodes",
            Benchmark::DijkstraAp => "Graph with 512 nodes",
            Benchmark::Patricia => "5000 IP address queries",
            Benchmark::Susan => "PGM picture 2.8 MB",
            Benchmark::Concomp => "Graph with 2^18 nodes",
            Benchmark::Community => "Graph with 2^16 nodes",
            Benchmark::Tsp => "16 cities",
            Benchmark::Dfs => "Graph with 876800 nodes",
            Benchmark::Matmul => "512 x 512 matrix",
        }
    }

    /// Relative cost of simulating this benchmark: its generated trace
    /// length (total ops, all cores) at the reference configuration of
    /// 64 cores and scale 1.0. Simulation time tracks trace length
    /// closely, so sweep schedulers use this to dispatch big benchmarks
    /// first and keep the tail of a parallel sweep short. The values are
    /// measured, not maintained by hand-waving — regenerate by draining
    /// `build(64, 1.0)` per benchmark if the generators change (a unit
    /// test cross-checks one of them).
    #[must_use]
    pub fn cost_hint(self) -> u64 {
        match self {
            Benchmark::Radix => 695_780,
            Benchmark::LuNc => 1_179_776,
            Benchmark::Barnes => 1_052_914,
            Benchmark::OceanNc => 2_460_992,
            Benchmark::WaterSp => 838_528,
            Benchmark::Raytrace => 1_171_264,
            Benchmark::Blackscholes => 1_417_280,
            Benchmark::Streamcluster => 704_128,
            Benchmark::Dedup => 610_624,
            Benchmark::Bodytrack => 2_896_816,
            Benchmark::Fluidanimate => 739_776,
            Benchmark::Canneal => 831_732,
            Benchmark::DijkstraSs => 849_792,
            Benchmark::DijkstraAp => 1_696_320,
            Benchmark::Patricia => 778_536,
            Benchmark::Susan => 899_136,
            Benchmark::Concomp => 469_819,
            Benchmark::Community => 1_023_462,
            Benchmark::Tsp => 1_091_712,
            Benchmark::Dfs => 677_864,
            Benchmark::Matmul => 2_359_360,
        }
    }

    /// The benchmark's suite in Table 2.
    #[must_use]
    pub fn suite(self) -> &'static str {
        match self {
            Benchmark::Radix
            | Benchmark::LuNc
            | Benchmark::Barnes
            | Benchmark::OceanNc
            | Benchmark::WaterSp
            | Benchmark::Raytrace => "SPLASH-2",
            Benchmark::Blackscholes
            | Benchmark::Streamcluster
            | Benchmark::Dedup
            | Benchmark::Bodytrack
            | Benchmark::Fluidanimate
            | Benchmark::Canneal => "PARSEC",
            Benchmark::DijkstraSs
            | Benchmark::DijkstraAp
            | Benchmark::Patricia
            | Benchmark::Susan => "Parallel MI Bench",
            Benchmark::Concomp | Benchmark::Community => "UHPC",
            Benchmark::Tsp | Benchmark::Dfs | Benchmark::Matmul => "Others",
        }
    }

    /// Builds the workload for `cores` cores at the given scale.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    #[must_use]
    pub fn build(self, cores: usize, scale: f64) -> Workload {
        assert!(cores > 0, "need at least one core");
        let s = |n: u32| -> u32 { ((n as f64 * scale).round() as u32).max(1) };
        let seed = 0xc0ffee ^ (self as u64);
        let mut p = Phases::new(cores, seed);
        let mut decls = Vec::new();

        // Per-core private arenas: [0..) hot set, [4096..) streams.
        let hot: Vec<Region> = (0..cores).map(|c| Region::private(c, 0, 96)).collect();
        let stream: Vec<Region> = (0..cores).map(|c| Region::private(c, 4096, 4096)).collect();
        for (c, r) in hot.iter().enumerate() {
            decls.push(r.decl_private(c));
        }
        for (c, r) in stream.iter().enumerate() {
            decls.push(r.decl_private(c));
        }

        let instr_lines;
        match self {
            Benchmark::Radix => {
                instr_lines = 24;
                let keys: Vec<Region> = (0..cores).map(|c| Region::private(c, 4096, 512)).collect();
                let hist = Region::shared(0, 96);
                let scatter = Region::shared(256, 256);
                decls.push(hist.decl_shared());
                decls.push(scatter.decl_shared());
                p.private_stream(&keys, 1, 1, 0.25);
                p.barrier();
                // §5.3 pathology: the first histogram sharer is low-reuse.
                p.asymmetric_sharing(&hist, s(150), 0, 1, 6);
                p.barrier();
                p.shared_read_write(&scatter, s(450), 1, 2);
            }
            Benchmark::LuNc => {
                instr_lines = 32;
                let blocks: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 1024)).collect();
                let panel = Region::shared(0, 256);
                decls.push(panel.decl_shared());
                p.private_stream(&blocks, 2, 2, 0.2);
                p.barrier();
                p.shared_stream(&panel, 2, 4, 0.08);
            }
            Benchmark::Barnes => {
                instr_lines = 56;
                let tree = Region::shared(0, 768);
                let leaves = Region::shared(896, 96);
                let bodies = Region::shared(1024, 128);
                decls.push(leaves.decl_shared());
                decls.push(tree.decl_shared());
                decls.push(bodies.decl_shared());
                p.private_hot(&hot, s(6000), 0.15);
                p.graph_walk(&tree, s(500), 1, 0.08);
                p.graph_walk(&leaves, s(200), 5, 0.05);
                p.barrier();
                p.shared_read_write(&bodies, s(150), 5, 8);
            }
            Benchmark::OceanNc => {
                instr_lines = 48;
                let grid = Region::shared(0, (cores as u64) * 96);
                decls.push(grid.decl_shared());
                p.private_stream(&stream, 2, 4, 0.3);
                p.barrier();
                p.stencil(&grid, s(3).min(6), 2);
                p.shared_read_write(&grid, s(200), 1, 3);
            }
            Benchmark::WaterSp => {
                instr_lines = 20;
                let mols: Vec<Region> = (0..cores).map(|c| Region::private(c, 0, 64)).collect();
                let forces = Region::shared(0, 64);
                decls.push(forces.decl_shared());
                p.compute_per_access = 3;
                p.private_hot(&mols, s(6000), 0.2);
                p.barrier();
                p.shared_read_write(&forces, s(100), 6, 10);
            }
            Benchmark::Raytrace => {
                instr_lines = 120;
                let scene = Region::shared(0, 4096);
                let objects = Region::shared(8192, 512);
                decls.push(scene.decl_shared());
                decls.push(objects.decl_shared());
                p.compute_per_access = 2;
                p.graph_walk(&scene, s(1400), 1, 0.0);
                p.graph_walk(&objects, s(350), 5, 0.0);
                p.private_hot(&hot, s(6000), 0.1);
            }
            Benchmark::Blackscholes => {
                instr_lines = 24;
                let opts: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 1024)).collect();
                p.compute_per_access = 2;
                p.private_hot(&hot, s(8000), 0.2);
                // Options re-streamed with one word per line per pass: the
                // recurring low-utilization traffic that converts capacity
                // misses into word misses and de-pollutes the hot set.
                p.private_stream(&opts, 3, 8, 0.1);
            }
            Benchmark::Streamcluster => {
                instr_lines = 40;
                let centers = Region::shared(0, 32);
                decls.push(centers.decl_shared());
                p.convoy(&centers, s(1500), 1, 1);
                p.barrier();
                p.private_hot(&hot, s(4000), 0.2);
            }
            Benchmark::Dedup => {
                instr_lines = 48;
                let pipe = Region::shared(0, 512);
                let hash = Region::shared(1024, 512);
                decls.push(pipe.decl_shared());
                decls.push(hash.decl_shared());
                p.producer_consumer(&pipe, s(8).min(16), 8);
                p.shared_read_write(&hash, s(250), 1, 3);
                p.private_hot(&hot, s(4000), 0.25);
            }
            Benchmark::Bodytrack => {
                instr_lines = 96;
                let model = Region::shared(0, 128);
                decls.push(model.decl_shared());
                // §5.3 pathology: the first sharer is high-reuse (private),
                // the population is low-reuse (wants remote).
                p.asymmetric_sharing(&model, s(200), 0, 8, 1);
                p.barrier();
                // Particle streaming evicts the one-touch model copies
                // from the L1s: their low utilization demotes the
                // population to remote. (Kept at half an L2 slice so the
                // model's directory entries — and the learned modes —
                // stay L2-resident.)
                let particles: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 1536)).collect();
                p.private_stream(&particles, 3, 4, 0.15);
                p.barrier();
                // Later frames re-read the model heavily; only two-way
                // transitions can promote back (Figure 14's 3.3x).
                p.shared_stream(&model, 8, 1, 0.0);
                p.private_hot(&hot, s(5000), 0.2);
            }
            Benchmark::Fluidanimate => {
                instr_lines = 48;
                let grid = Region::shared(0, (cores as u64) * 48);
                let cells = Region::shared(16384, 256);
                decls.push(grid.decl_shared());
                decls.push(cells.decl_shared());
                p.stencil(&grid, s(2).min(5), 4);
                p.private_hot(&hot, s(4500), 0.3);
                p.shared_read_write(&cells, s(350), 1, 4);
            }
            Benchmark::Canneal => {
                instr_lines = 32;
                let netlist = Region::shared(0, 6144);
                decls.push(netlist.decl_shared());
                p.graph_walk(&netlist, s(1200), 1, 0.25);
                p.private_hot(&hot, s(5000), 0.2);
            }
            Benchmark::DijkstraSs => {
                instr_lines = 24;
                let dist = Region::shared(0, 32);
                let frontier = Region::shared(128, 8);
                decls.push(dist.decl_shared());
                decls.push(frontier.decl_shared());
                p.convoy(&dist, s(1200), 1, 2);
                p.barrier();
                p.shared_stream(&dist, 8, 1, 0.0);
                p.migratory(&frontier, 0, s(30).min(60), 2);
                p.private_hot(&hot, s(3000), 0.15);
            }
            Benchmark::DijkstraAp => {
                instr_lines = 24;
                let graphs: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 1024)).collect();
                let results = Region::shared(0, 64);
                decls.push(results.decl_shared());
                p.private_stream(&graphs, 2, 2, 0.1);
                p.private_hot(&hot, s(5000), 0.2);
                p.shared_read_write(&results, s(60), 1, 2);
            }
            Benchmark::Patricia => {
                instr_lines = 40;
                let trie = Region::shared(0, 1536);
                decls.push(trie.decl_shared());
                p.graph_walk(&trie, s(900), 1, 0.2);
                p.private_hot(&hot, s(5000), 0.2);
            }
            Benchmark::Susan => {
                instr_lines = 24;
                let img: Vec<Region> = (0..cores).map(|c| Region::private(c, 0, 96)).collect();
                p.compute_per_access = 4;
                p.private_hot(&img, s(6000), 0.25);
                p.private_stream(&[Region::private(0, 4096, 128)], 1, 1, 0.1);
            }
            Benchmark::Concomp => {
                instr_lines = 24;
                let graph = Region::shared(0, 12288);
                decls.push(graph.decl_shared());
                p.compute_per_access = 0;
                p.graph_walk(&graph, s(1800), 1, 0.3);
                p.private_hot(&hot, s(5000), 0.1);
            }
            Benchmark::Community => {
                instr_lines = 32;
                let graph = Region::shared(0, 384);
                decls.push(graph.decl_shared());
                p.graph_walk(&graph, s(300), 6, 0.1);
                p.graph_walk(&graph, s(150), 1, 0.1);
                p.private_hot(&hot, s(6000), 0.15);
            }
            Benchmark::Tsp => {
                instr_lines = 32;
                let distances = Region::shared(0, 256);
                let bound = Region::shared(512, 2);
                decls.push(distances.decl_shared());
                decls.push(bound.decl_shared());
                p.shared_stream(&distances, 1, 1, 0.0);
                p.barrier();
                p.private_hot(&hot, s(6000), 0.3);
                p.migratory(&bound, 0, s(40).min(80), 1);
                p.shared_read_write(&bound, s(200), 1, 3);
            }
            Benchmark::Dfs => {
                instr_lines = 24;
                let graph = Region::shared(0, 2048);
                decls.push(graph.decl_shared());
                let stack: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 256)).collect();
                p.graph_walk(&graph, s(1000), 1, 0.2);
                p.private_stream(&stack, 2, 1, 0.5);
            }
            Benchmark::Matmul => {
                instr_lines = 16;
                let b_matrix = Region::shared(0, 512);
                decls.push(b_matrix.decl_shared());
                let a_rows: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 4096, 512)).collect();
                let c_out: Vec<Region> =
                    (0..cores).map(|c| Region::private(c, 8192, 1024)).collect();
                p.private_stream(&a_rows, 2, 1, 0.0);
                p.shared_stream(&b_matrix, 2, 1, 0.0);
                // Scatter into C: one word per line, recurring passes —
                // the pollution that PCT >= 2 removes (§5.1).
                p.private_stream(&c_out, 2, 8, 0.6);
            }
        }
        p.finish(self.name(), decls, instr_lines)
    }

    /// Builds the workload for `cores` cores at `scale` and serializes it
    /// to `path` as an LTF trace file (see `lacc_sim::ltf`).
    ///
    /// # Errors
    ///
    /// [`lacc_model::TraceError`] on any file-creation or write failure.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero (same contract as [`Benchmark::build`]).
    pub fn dump_ltf<P: AsRef<std::path::Path>>(
        self,
        cores: usize,
        scale: f64,
        path: P,
    ) -> Result<lacc_sim::ltf::LtfSummary, lacc_model::TraceError> {
        self.build(cores, scale).dump_ltf(path)
    }

    /// Like [`Benchmark::dump_ltf`] but writes the delta-compressed v2
    /// encoding (same container, version 2 streams).
    ///
    /// # Errors
    ///
    /// [`lacc_model::TraceError`] on any file-creation or write failure.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero (same contract as [`Benchmark::build`]).
    pub fn dump_ltf_v2<P: AsRef<std::path::Path>>(
        self,
        cores: usize,
        scale: f64,
        path: P,
    ) -> Result<lacc_sim::ltf::LtfSummary, lacc_model::TraceError> {
        self.build(cores, scale).dump_ltf_v2(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_unique_names() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn by_name_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::by_name("nope"), None);
    }

    #[test]
    fn every_benchmark_builds_for_small_machines() {
        for b in Benchmark::ALL {
            let w = b.build(4, 0.02);
            assert_eq!(w.active_cores(), 4, "{}", b.name());
            assert!(!w.regions.is_empty() || b == Benchmark::Blackscholes, "{}", b.name());
            assert!(w.instr_lines > 0);
        }
    }

    #[test]
    fn suites_cover_table2() {
        let mut counts = std::collections::HashMap::new();
        for b in Benchmark::ALL {
            *counts.entry(b.suite()).or_insert(0) += 1;
        }
        assert_eq!(counts["SPLASH-2"], 6);
        assert_eq!(counts["PARSEC"], 6);
        assert_eq!(counts["Parallel MI Bench"], 4);
        assert_eq!(counts["UHPC"], 2);
        assert_eq!(counts["Others"], 3);
    }

    #[test]
    fn cost_hints_match_generated_trace_lengths() {
        // Check every baked-in hint against the generators; a failure
        // here means the table in `cost_hint` needs regenerating.
        for b in Benchmark::ALL {
            let measured: u64 = b
                .build(64, 1.0)
                .traces
                .into_iter()
                .map(|mut t| {
                    let mut n = 0u64;
                    while t.next_op().is_some() {
                        n += 1;
                    }
                    n
                })
                .sum();
            assert_eq!(b.cost_hint(), measured, "{} cost hint is stale", b.name());
        }
    }

    #[test]
    fn problem_sizes_are_nonempty() {
        for b in Benchmark::ALL {
            assert!(!b.problem_size().is_empty());
        }
    }

    #[test]
    fn dump_ltf_writes_a_replayable_file() {
        let path = std::env::temp_dir().join("lacc_suite_dump_ltf.ltf");
        let summary = Benchmark::WaterSp.dump_ltf(2, 0.02, &path).unwrap();
        assert_eq!(summary.ops_per_core.len(), 2);
        assert!(summary.total_ops() > 0);
        let replayed = lacc_sim::ltf::read_workload(&path).unwrap();
        assert_eq!(replayed.name, "water-sp");
        assert_eq!(replayed.active_cores(), 2);
        std::fs::remove_file(&path).ok();
    }
}
