//! # lacc-workloads — synthetic stand-ins for the Table-2 benchmarks
//!
//! The paper evaluates six SPLASH-2, six PARSEC, four Parallel-MI-Bench,
//! two UHPC graph benchmarks and three others on the Graphite simulator.
//! Those binaries (and Graphite) are not reproducible offline, so this
//! crate generates deterministic multi-threaded memory traces whose
//! *spatio-temporal locality and sharing structure* match each benchmark's
//! published character — which is the only thing the locality-aware
//! protocol reacts to. See DESIGN.md ("Substitutions") for the argument
//! and the per-benchmark mapping.
//!
//! # Examples
//!
//! ```
//! use lacc_workloads::Benchmark;
//! use lacc_model::SystemConfig;
//! use lacc_sim::Simulator;
//!
//! // A tiny streamcluster run on a 4-core machine.
//! let w = Benchmark::Streamcluster.build(4, 0.02);
//! let report = Simulator::new(SystemConfig::small_for_tests(4), w)?.run();
//! assert_eq!(report.monitor.violations, 0);
//! # Ok::<(), lacc_model::ConfigError>(())
//! ```

pub mod gen;
pub mod regions;
pub mod suite;

pub use gen::Phases;
pub use regions::Region;
pub use suite::Benchmark;
