//! Every Table-2 preset must run coherently on both a small machine and
//! the full 64-core Table-1 configuration.

use lacc_model::SystemConfig;
use lacc_sim::Simulator;
use lacc_workloads::Benchmark;

#[test]
fn all_presets_run_coherently_on_small_machine() {
    for b in Benchmark::ALL {
        let w = b.build(4, 0.03);
        let r = Simulator::new(SystemConfig::small_for_tests(4), w)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name()))
            .run();
        assert_eq!(r.monitor.violations, 0, "{}", b.name());
        assert!(r.completion_time > 0, "{}", b.name());
        assert!(r.l1d.total_accesses() > 0, "{}", b.name());
    }
}

#[test]
fn presets_run_on_full_64_core_machine() {
    // A subset at small scale keeps the test fast while exercising the
    // real Table-1 geometry (8x8 mesh, ACKwise_4, Limited_3, PCT 4).
    for b in [Benchmark::Streamcluster, Benchmark::WaterSp, Benchmark::Concomp, Benchmark::Tsp] {
        let w = b.build(64, 0.02);
        let r = Simulator::new(SystemConfig::isca13_64core(), w).unwrap().run();
        assert_eq!(r.monitor.violations, 0, "{}", b.name());
        assert!(r.instructions > 0, "{}", b.name());
    }
}

#[test]
fn adaptive_protocol_beats_baseline_on_streamcluster() {
    // The paper's headline mechanism on its best benchmark: frequent
    // invalidations of low-utilization lines convert to word accesses.
    let run = |pct: u32| {
        let w = Benchmark::Streamcluster.build(16, 0.1);
        let mut cfg = SystemConfig::small_for_tests(16).with_pct(pct);
        cfg.l1d = lacc_model::CacheConfig::new(8 * 1024, 4, 1);
        cfg.l2 = lacc_model::CacheConfig::new(64 * 1024, 8, 7);
        Simulator::new(cfg, w).unwrap().run()
    };
    let baseline = run(1);
    let adaptive = run(4);
    assert_eq!(adaptive.monitor.violations, 0);
    assert!(adaptive.protocol.word_reads > 0, "adaptive mode must serve words");
    assert!(
        adaptive.energy.total() < baseline.energy.total(),
        "adaptive {:.0} pJ must beat baseline {:.0} pJ",
        adaptive.energy.total(),
        baseline.energy.total()
    );
}
