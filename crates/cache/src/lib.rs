//! Set-associative cache substrate for the `lacc` workspace.
//!
//! This crate provides the *mechanical* cache structures — a generic
//! set-associative tag/metadata array with pluggable replacement, and a
//! cache-line data container — on top of which `lacc-core` builds the
//! paper's protocol-specific L1 and L2 organizations (utilization counters,
//! last-access timestamps, MESI state, integrated directory).
//!
//! The split keeps this crate free of coherence concepts: it can be reused
//! for any blocking cache model.
//!
//! # Examples
//!
//! ```
//! use lacc_cache::SetAssocCache;
//! use lacc_model::LineAddr;
//!
//! // 2 sets x 2 ways; metadata is a simple access counter here.
//! let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 2);
//! c.insert(LineAddr::new(0), 1);
//! c.insert(LineAddr::new(2), 1); // same set (even lines)
//! assert!(c.contains(LineAddr::new(0)));
//!
//! // A third line in the same set evicts the least recently used.
//! let out = c.insert(LineAddr::new(4), 1);
//! assert_eq!(out.evicted.unwrap().0, LineAddr::new(0));
//! ```

pub mod data;
pub mod replacement;
pub mod set_assoc;
pub mod slab;

pub use data::LineData;
pub use replacement::ReplacementKind;
pub use set_assoc::{InsertOutcome, SetAssocCache};
pub use slab::{DataRef, DataSlab, SlabStats};
