//! A generic set-associative tag/metadata array.
//!
//! [`SetAssocCache<M>`] maps [`LineAddr`]s to per-line metadata `M` under a
//! fixed geometry (sets × ways) and replacement policy. It is the substrate
//! for both the private L1 caches and the shared L2 slices of the simulated
//! machine; the protocol crates choose `M` (MESI state, utilization
//! counters, timestamps, line data, ...).

use std::fmt;

use lacc_model::LineAddr;

use crate::replacement::ReplacementKind;

#[derive(Clone, Debug)]
struct Way<M> {
    line: LineAddr,
    meta: M,
    stamp: u64,
}

/// Result of [`SetAssocCache::insert`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InsertOutcome<M> {
    /// The line (and its metadata) evicted to make room, if the set was
    /// full of valid, evictable lines.
    pub evicted: Option<(LineAddr, M)>,
}

/// A set-associative array of per-line metadata.
///
/// Recency is tracked with a monotonically increasing use stamp per way:
/// [`SetAssocCache::touch`], [`SetAssocCache::get_mut`] and
/// [`SetAssocCache::insert`] refresh it, so LRU victims are exact (not
/// pseudo-LRU), matching the paper's simulation model.
///
/// # Examples
///
/// ```
/// use lacc_cache::SetAssocCache;
/// use lacc_model::LineAddr;
///
/// let mut c: SetAssocCache<&'static str> = SetAssocCache::new(4, 2);
/// c.insert(LineAddr::new(0), "a");
/// assert_eq!(c.get(LineAddr::new(0)), Some(&"a"));
/// assert_eq!(c.remove(LineAddr::new(0)), Some("a"));
/// assert!(!c.contains(LineAddr::new(0)));
/// ```
#[derive(Clone)]
pub struct SetAssocCache<M> {
    sets: Vec<Vec<Option<Way<M>>>>,
    cursors: Vec<usize>,
    num_sets: usize,
    assoc: usize,
    next_stamp: u64,
    policy: ReplacementKind,
}

impl<M> SetAssocCache<M> {
    /// Creates an empty cache with `num_sets` sets of `assoc` ways using LRU
    /// replacement.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn new(num_sets: usize, assoc: usize) -> Self {
        Self::with_policy(num_sets, assoc, ReplacementKind::Lru)
    }

    /// Creates an empty cache with an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` is not a power of two or `assoc` is zero.
    #[must_use]
    pub fn with_policy(num_sets: usize, assoc: usize, policy: ReplacementKind) -> Self {
        assert!(num_sets.is_power_of_two(), "num_sets must be a power of two");
        assert!(assoc > 0, "associativity must be positive");
        SetAssocCache {
            sets: (0..num_sets).map(|_| (0..assoc).map(|_| None).collect()).collect(),
            cursors: vec![0; num_sets],
            num_sets,
            assoc,
            next_stamp: 1,
            policy,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Ways per set.
    #[must_use]
    pub fn associativity(&self) -> usize {
        self.assoc
    }

    /// Total line capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.num_sets * self.assoc
    }

    /// Number of valid lines currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.is_some()).count()
    }

    /// `true` when no line is valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The set a line maps to.
    #[must_use]
    pub fn set_index(&self, line: LineAddr) -> usize {
        (line.raw() as usize) & (self.num_sets - 1)
    }

    fn find(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_index(line);
        self.sets[set].iter().position(|w| w.as_ref().is_some_and(|w| w.line == line))
    }

    /// `true` if the line is valid in the cache. Does not update recency.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find(line).is_some()
    }

    /// Metadata of a valid line. Does not update recency.
    #[must_use]
    pub fn get(&self, line: LineAddr) -> Option<&M> {
        let set = self.set_index(line);
        self.find(line).map(|w| &self.sets[set][w].as_ref().unwrap().meta)
    }

    /// Mutable metadata of a valid line, refreshing its recency stamp (this
    /// models the tag-array write that every hit performs, §3.6).
    pub fn get_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let set = self.set_index(line);
        let way = self.find(line)?;
        let stamp = self.bump_stamp();
        let w = self.sets[set][way].as_mut().unwrap();
        w.stamp = stamp;
        Some(&mut w.meta)
    }

    /// Mutable metadata of a valid line *without* touching recency (for
    /// protocol actions such as invalidations that must not refresh LRU).
    pub fn peek_mut(&mut self, line: LineAddr) -> Option<&mut M> {
        let set = self.set_index(line);
        let way = self.find(line)?;
        Some(&mut self.sets[set][way].as_mut().unwrap().meta)
    }

    /// Refreshes the recency stamp of a valid line; returns `false` if the
    /// line is not present.
    pub fn touch(&mut self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        if let Some(way) = self.find(line) {
            let stamp = self.bump_stamp();
            self.sets[set][way].as_mut().unwrap().stamp = stamp;
            true
        } else {
            false
        }
    }

    /// Inserts a line, evicting the policy's victim if the set is full.
    ///
    /// If the line is already valid its metadata is *replaced* and recency
    /// refreshed; no eviction occurs.
    pub fn insert(&mut self, line: LineAddr, meta: M) -> InsertOutcome<M> {
        self.insert_filtered(line, meta, |_, _| true)
    }

    /// Inserts a line, considering only ways for which `evictable` returns
    /// `true` as victims (the simulator uses this to protect lines with
    /// in-flight transactions at the L2).
    ///
    /// If the set is full and nothing is evictable the insert is refused and
    /// the metadata is handed back in `InsertOutcome::evicted` under the
    /// *inserted* line address — callers distinguish refusal by comparing
    /// the returned address. Prefer [`SetAssocCache::try_insert_filtered`]
    /// for an explicit signature.
    pub fn insert_filtered(
        &mut self,
        line: LineAddr,
        meta: M,
        evictable: impl Fn(LineAddr, &M) -> bool,
    ) -> InsertOutcome<M> {
        match self.try_insert_filtered(line, meta, evictable) {
            Ok(evicted) => InsertOutcome { evicted },
            Err(meta) => InsertOutcome { evicted: Some((line, meta)) },
        }
    }

    /// Like [`SetAssocCache::insert_filtered`], but refusal is explicit.
    ///
    /// # Errors
    ///
    /// Returns `Err(meta)` (handing the metadata back) when the set is full
    /// and no way satisfies `evictable`.
    pub fn try_insert_filtered(
        &mut self,
        line: LineAddr,
        meta: M,
        evictable: impl Fn(LineAddr, &M) -> bool,
    ) -> Result<Option<(LineAddr, M)>, M> {
        let set = self.set_index(line);
        let stamp = self.bump_stamp();

        // Refresh in place if already valid.
        if let Some(way) = self.find(line) {
            let w = self.sets[set][way].as_mut().unwrap();
            w.meta = meta;
            w.stamp = stamp;
            return Ok(None);
        }

        // Fill an invalid way first.
        if let Some(way) = self.sets[set].iter().position(Option::is_none) {
            self.sets[set][way] = Some(Way { line, meta, stamp });
            return Ok(None);
        }

        // Pick a victim among evictable ways only.
        let candidate_stamps: Vec<u64> = self.sets[set]
            .iter()
            .map(|w| {
                let w = w.as_ref().unwrap();
                if evictable(w.line, &w.meta) {
                    w.stamp
                } else {
                    u64::MAX // never chosen by LRU unless all are MAX
                }
            })
            .collect();
        if candidate_stamps.iter().all(|&s| s == u64::MAX) {
            return Err(meta);
        }
        let mut victim = self.policy.pick_victim(&candidate_stamps, self.cursors[set]);
        if candidate_stamps[victim] == u64::MAX {
            // Round-robin may land on a protected way; advance to the next
            // evictable one deterministically.
            victim = (0..self.assoc)
                .map(|i| (victim + i) % self.assoc)
                .find(|&i| candidate_stamps[i] != u64::MAX)
                .expect("checked above that one way is evictable");
        }
        self.cursors[set] = (victim + 1) % self.assoc;
        let old = self.sets[set][victim].replace(Way { line, meta, stamp }).unwrap();
        Ok(Some((old.line, old.meta)))
    }

    /// Invalidates a line, returning its metadata.
    pub fn remove(&mut self, line: LineAddr) -> Option<M> {
        let set = self.set_index(line);
        let way = self.find(line)?;
        Some(self.sets[set][way].take().unwrap().meta)
    }

    /// Iterates over the valid lines of one set as `(line, last_use_stamp,
    /// &meta)`.
    ///
    /// # Panics
    ///
    /// Panics if `set >= num_sets`.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (LineAddr, u64, &M)> {
        self.sets[set].iter().flatten().map(|w| (w.line, w.stamp, &w.meta))
    }

    /// Number of invalid (free) ways in the set a line maps to.
    #[must_use]
    pub fn free_ways_in_set_of(&self, line: LineAddr) -> usize {
        let set = self.set_index(line);
        self.sets[set].iter().filter(|w| w.is_none()).count()
    }

    /// Iterates over every valid line as `(line, &meta)`.
    pub fn iter(&self) -> impl Iterator<Item = (LineAddr, &M)> {
        self.sets.iter().flatten().flatten().map(|w| (w.line, &w.meta))
    }

    fn bump_stamp(&mut self) -> u64 {
        let s = self.next_stamp;
        self.next_stamp += 1;
        s
    }
}

impl<M: fmt::Debug> fmt::Debug for SetAssocCache<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SetAssocCache({} sets x {} ways, {} valid)",
            self.num_sets,
            self.assoc,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn hit_after_insert() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(4, 2);
        assert!(c.insert(line(5), 42).evicted.is_none());
        assert_eq!(c.get(line(5)), Some(&42));
        assert!(c.contains(line(5)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // One set (num_sets = 1): lines 0,1,2 all collide.
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        c.touch(line(0)); // line 1 is now LRU
        let out = c.insert(line(2), 2);
        assert_eq!(out.evicted, Some((line(1), 1)));
        assert!(c.contains(line(0)));
        assert!(c.contains(line(2)));
    }

    #[test]
    fn get_mut_refreshes_recency() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        *c.get_mut(line(0)).unwrap() += 10; // refresh 0
        let out = c.insert(line(2), 2);
        assert_eq!(out.evicted.unwrap().0, line(1));
        assert_eq!(c.get(line(0)), Some(&10));
    }

    #[test]
    fn peek_mut_does_not_refresh_recency() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        *c.peek_mut(line(0)).unwrap() += 1; // 0 stays LRU
        let out = c.insert(line(2), 2);
        assert_eq!(out.evicted.unwrap().0, line(0));
    }

    #[test]
    fn reinsert_replaces_without_eviction() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 1);
        c.insert(line(0), 1);
        let out = c.insert(line(0), 2);
        assert!(out.evicted.is_none());
        assert_eq!(c.get(line(0)), Some(&2));
    }

    #[test]
    fn filtered_insert_skips_protected_ways() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        // Way holding line 0 is LRU but protected; line 1 must go instead.
        let out = c.insert_filtered(line(2), 2, |l, _| l != line(0));
        assert_eq!(out.evicted.unwrap().0, line(1));
    }

    #[test]
    fn filtered_insert_refuses_when_everything_protected() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 2);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        let res = c.try_insert_filtered(line(2), 2, |_, _| false);
        assert_eq!(res, Err(2));
        assert!(!c.contains(line(2)));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn remove_invalidates() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(2, 2);
        c.insert(line(0), 7);
        assert_eq!(c.remove(line(0)), Some(7));
        assert_eq!(c.remove(line(0)), None);
        assert_eq!(c.free_ways_in_set_of(line(0)), 2);
    }

    #[test]
    fn set_mapping_uses_low_bits() {
        let c: SetAssocCache<()> = SetAssocCache::new(8, 1);
        assert_eq!(c.set_index(line(0)), 0);
        assert_eq!(c.set_index(line(9)), 1);
        assert_eq!(c.set_index(line(16)), 0);
    }

    #[test]
    fn round_robin_rotates() {
        let mut c: SetAssocCache<u32> =
            SetAssocCache::with_policy(1, 2, ReplacementKind::RoundRobin);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        assert_eq!(c.insert(line(2), 2).evicted.unwrap().0, line(0));
        assert_eq!(c.insert(line(3), 3).evicted.unwrap().0, line(1));
        assert_eq!(c.insert(line(4), 4).evicted.unwrap().0, line(2));
    }

    #[test]
    fn iter_set_reports_stamps() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(1, 4);
        c.insert(line(0), 0);
        c.insert(line(1), 1);
        let stamps: Vec<u64> = c.iter_set(0).map(|(_, s, _)| s).collect();
        assert_eq!(stamps.len(), 2);
        assert!(stamps[0] < stamps[1]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        let _: SetAssocCache<()> = SetAssocCache::new(3, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The cache never exceeds its capacity and never loses a line
        /// without reporting an eviction.
        #[test]
        fn occupancy_accounting(ops in proptest::collection::vec(0u64..64, 1..200)) {
            let mut c: SetAssocCache<u64> = SetAssocCache::new(4, 2);
            let mut inserted = 0u64;
            let mut evictions = 0u64;
            let mut replaced = 0u64;
            for (i, l) in ops.iter().enumerate() {
                let line = LineAddr::new(*l);
                if c.contains(line) {
                    replaced += 1;
                } else {
                    inserted += 1;
                }
                if c.insert(line, i as u64).evicted.is_some() {
                    evictions += 1;
                }
                prop_assert!(c.len() <= c.capacity());
            }
            prop_assert_eq!(c.len() as u64, inserted - evictions);
            prop_assert_eq!(inserted + replaced, ops.len() as u64);
        }

        /// With a 1-set LRU cache of associativity A, after any sequence of
        /// inserts the cache holds exactly the A most recently used distinct
        /// lines.
        #[test]
        fn lru_keeps_most_recent(ops in proptest::collection::vec(0u64..16, 1..100)) {
            let assoc = 4usize;
            let mut c: SetAssocCache<()> = SetAssocCache::new(1, assoc);
            for l in &ops {
                c.insert(LineAddr::new(*l), ());
            }
            // Reference model: most recent distinct lines, newest first.
            let mut recent: Vec<u64> = Vec::new();
            for l in ops.iter().rev() {
                if !recent.contains(l) {
                    recent.push(*l);
                }
                if recent.len() == assoc {
                    break;
                }
            }
            for l in &recent {
                prop_assert!(c.contains(LineAddr::new(*l)), "missing recent line {l}");
            }
            prop_assert_eq!(c.len(), recent.len());
        }

        /// get/insert/remove agree with a naive map-based model.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((0u64..32, 0u8..3), 1..200)) {
            use std::collections::HashMap;
            let mut c: SetAssocCache<u8> = SetAssocCache::new(2, 2);
            let mut model: HashMap<u64, u8> = HashMap::new();
            for (l, op) in ops {
                let line = LineAddr::new(l);
                match op {
                    0 => {
                        if let Some((el, _)) = c.insert(line, op).evicted {
                            model.remove(&el.raw());
                        }
                        model.insert(l, op);
                    }
                    1 => {
                        prop_assert_eq!(c.get(line).copied(), model.get(&l).copied());
                    }
                    _ => {
                        prop_assert_eq!(c.remove(line), model.remove(&l));
                    }
                }
            }
        }
    }
}
