//! Replacement policies for [`crate::SetAssocCache`].
//!
//! The evaluated machine uses LRU in both cache levels (the Timestamp check
//! of §3.2 explicitly reasons about "the LRU replacement policy of the L1
//! cache"). Round-robin is provided as a cheap alternative for sensitivity
//! studies and as a differential-testing foil in the unit tests.

/// Which victim a set picks when all ways are valid.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ReplacementKind {
    /// Evict the least-recently-used way (per-way monotonic use stamps).
    #[default]
    Lru,
    /// Evict ways in strict rotation, ignoring recency.
    RoundRobin,
}

impl ReplacementKind {
    /// Picks a victim way index.
    ///
    /// `stamps` holds each way's last-use stamp; `cursor` is the set's
    /// round-robin cursor, advanced by the caller after an eviction.
    #[must_use]
    pub(crate) fn pick_victim(self, stamps: &[u64], cursor: usize) -> usize {
        match self {
            ReplacementKind::Lru => {
                let mut best = 0usize;
                for (i, &s) in stamps.iter().enumerate() {
                    if s < stamps[best] {
                        best = i;
                    }
                }
                best
            }
            ReplacementKind::RoundRobin => cursor % stamps.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_smallest_stamp() {
        assert_eq!(ReplacementKind::Lru.pick_victim(&[5, 2, 9, 7], 0), 1);
        assert_eq!(ReplacementKind::Lru.pick_victim(&[1, 1, 1], 2), 0, "ties break to lowest way");
    }

    #[test]
    fn round_robin_follows_cursor() {
        let k = ReplacementKind::RoundRobin;
        assert_eq!(k.pick_victim(&[5, 2, 9, 7], 0), 0);
        assert_eq!(k.pick_victim(&[5, 2, 9, 7], 3), 3);
        assert_eq!(k.pick_victim(&[5, 2, 9, 7], 4), 0, "cursor wraps");
    }

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementKind::default(), ReplacementKind::Lru);
    }
}
