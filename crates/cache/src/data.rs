//! Cache-line data storage.
//!
//! The simulator is *functional* (like Graphite, §4.1): stores write real
//! values and loads return them, which lets the test suite verify that every
//! coherence protocol variant actually keeps memory coherent. A [`LineData`]
//! holds the eight 64-bit words of one 64-byte cache line.

use std::fmt;

use lacc_model::addr::WORDS_PER_LINE;

/// The eight 64-bit words of one cache line.
///
/// Aligned to its own 64-byte size so that a contiguous array of lines
/// (a [`DataSlab`](crate::DataSlab)'s payload store) places every line
/// in exactly one *host* cache line — a word access never straddles two.
///
/// # Examples
///
/// ```
/// use lacc_cache::LineData;
/// let mut d = LineData::zeroed();
/// d.set_word(3, 0xdead_beef);
/// assert_eq!(d.word(3), 0xdead_beef);
/// assert_eq!(d.word(0), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(align(64))]
pub struct LineData([u64; WORDS_PER_LINE as usize]);

impl LineData {
    /// A line of all-zero words (the content of untouched memory).
    #[must_use]
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// Builds a line from eight words.
    #[must_use]
    pub fn from_words(words: [u64; WORDS_PER_LINE as usize]) -> Self {
        LineData(words)
    }

    /// Reads the `i`-th 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    #[must_use]
    pub fn word(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Writes the `i`-th 64-bit word.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 8`.
    pub fn set_word(&mut self, i: usize, value: u64) {
        self.0[i] = value;
    }

    /// All eight words.
    #[must_use]
    pub fn words(&self) -> &[u64; WORDS_PER_LINE as usize] {
        &self.0
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[{:#x}", self.0[0])?;
        for w in &self.0[1..] {
            write!(f, ", {w:#x}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_line_is_all_zero() {
        let d = LineData::zeroed();
        assert!(d.words().iter().all(|&w| w == 0));
    }

    #[test]
    fn word_roundtrip() {
        let mut d = LineData::zeroed();
        for i in 0..8 {
            d.set_word(i, (i as u64) * 7 + 1);
        }
        for i in 0..8 {
            assert_eq!(d.word(i), (i as u64) * 7 + 1);
        }
    }

    #[test]
    fn from_words_preserves_content() {
        let w = [1, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(LineData::from_words(w).words(), &w);
    }

    #[test]
    #[should_panic]
    fn out_of_range_word_panics() {
        let d = LineData::zeroed();
        let _ = d.word(8);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", LineData::zeroed()).starts_with("LineData["));
    }

    #[test]
    fn line_fills_exactly_one_host_cache_line() {
        assert_eq!(std::mem::size_of::<LineData>(), 64);
        assert_eq!(std::mem::align_of::<LineData>(), 64, "array elements must not straddle");
    }
}
